// Tests for the downstream models: optimizers, linear bag-of-words, text
// CNN, and the BiLSTM(-CRF) tagger. The BiLSTM gradients are validated
// against finite differences and the CRF against brute-force enumeration.
#include <gtest/gtest.h>

#include <cmath>

#include "model/bilstm.hpp"
#include "model/linear_bow.hpp"
#include "model/optimizer.hpp"
#include "model/text_cnn.hpp"
#include "util/rng.hpp"

namespace anchor::model {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  embed::Embedding e(vocab, dim);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 0.5));
  return e;
}

/// Synthetic linearly separable sentences: label 1 sentences use words
/// [0, vocab/2), label 0 sentences use the other half.
void separable_dataset(std::size_t n, std::size_t vocab, std::uint64_t seed,
                       std::vector<std::vector<std::int32_t>>& sentences,
                       std::vector<std::int32_t>& labels) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = rng.bernoulli(0.5);
    std::vector<std::int32_t> s(6);
    for (auto& t : s) {
      const std::size_t half = vocab / 2;
      t = static_cast<std::int32_t>(pos ? rng.index(half)
                                        : half + rng.index(half));
    }
    sentences.push_back(std::move(s));
    labels.push_back(pos ? 1 : 0);
  }
}

TEST(Adam, MinimizesQuadratic) {
  std::vector<float> params = {5.0f, -3.0f};
  Adam opt(2, 0.1f);
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> grads = {2.0f * params[0], 2.0f * params[1]};
    opt.step(params, grads);
  }
  EXPECT_NEAR(params[0], 0.0f, 1e-2);
  EXPECT_NEAR(params[1], 0.0f, 1e-2);
}

TEST(Adam, SizeMismatchThrows) {
  std::vector<float> params = {1.0f};
  Adam opt(2);
  EXPECT_THROW(opt.step(params, {1.0f}), CheckError);
}

TEST(Sgd, BasicStepAndClipping) {
  std::vector<float> params = {0.0f};
  Sgd opt(0.5f, /*clip_norm=*/1.0f);
  opt.step(params, {10.0f});  // clipped to norm 1 → step = −0.5
  EXPECT_NEAR(params[0], -0.5f, 1e-6);
  Sgd unclipped(0.5f);
  params = {0.0f};
  unclipped.step(params, {10.0f});
  EXPECT_NEAR(params[0], -5.0f, 1e-6);
}

TEST(LinearBow, LearnsSeparableTask) {
  const embed::Embedding emb = random_embedding(40, 12, 1);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(300, 40, 2, sentences, labels);

  LinearBowConfig config;
  config.epochs = 25;
  config.learning_rate = 0.01f;
  const LinearBowClassifier clf(emb, sentences, labels, config);

  std::vector<std::vector<std::int32_t>> test_s;
  std::vector<std::int32_t> test_l;
  separable_dataset(200, 40, 3, test_s, test_l);
  const auto preds = clf.predict_all(test_s);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    hits += (preds[i] == test_l[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / preds.size(), 0.9);
}

TEST(LinearBow, DeterministicGivenSeeds) {
  const embed::Embedding emb = random_embedding(30, 8, 4);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(100, 30, 5, sentences, labels);
  LinearBowConfig config;
  config.epochs = 5;
  const LinearBowClassifier a(emb, sentences, labels, config);
  const LinearBowClassifier b(emb, sentences, labels, config);
  EXPECT_EQ(a.predict_all(sentences), b.predict_all(sentences));
}

TEST(LinearBow, InitSeedChangesTraining) {
  const embed::Embedding emb = random_embedding(30, 8, 6);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(100, 30, 7, sentences, labels);
  LinearBowConfig a_cfg;
  a_cfg.epochs = 2;
  LinearBowConfig b_cfg = a_cfg;
  b_cfg.init_seed = 99;
  const LinearBowClassifier a(emb, sentences, labels, a_cfg);
  const LinearBowClassifier b(emb, sentences, labels, b_cfg);
  // With few epochs the decision boundary still reflects the init.
  EXPECT_NE(a.predict_all(sentences), b.predict_all(sentences));
}

TEST(LinearBow, FineTuningMutatesOwnCopyOnly) {
  const embed::Embedding emb = random_embedding(30, 8, 8);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(80, 30, 9, sentences, labels);
  LinearBowConfig config;
  config.epochs = 3;
  config.fine_tune_embeddings = true;
  const LinearBowClassifier clf(emb, sentences, labels, config);
  EXPECT_NE(clf.embedding().data, emb.data);   // model's copy was updated
  // Caller's embedding shows the original values (copied, not referenced).
  const embed::Embedding fresh = random_embedding(30, 8, 8);
  EXPECT_EQ(emb.data, fresh.data);
}

TEST(LinearBow, EmptySentencePredictsFromBias) {
  const embed::Embedding emb = random_embedding(10, 4, 10);
  std::vector<std::vector<std::int32_t>> sentences = {{1, 2}, {3, 4}};
  std::vector<std::int32_t> labels = {0, 1};
  LinearBowConfig config;
  config.epochs = 1;
  const LinearBowClassifier clf(emb, sentences, labels, config);
  const std::int32_t p = clf.predict({});
  EXPECT_TRUE(p == 0 || p == 1);
}

TEST(TextCnn, LearnsSeparableTask) {
  const embed::Embedding emb = random_embedding(40, 10, 11);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(300, 40, 12, sentences, labels);
  TextCnnConfig config;
  config.channels = 4;
  config.epochs = 12;
  config.learning_rate = 5e-3f;
  config.dropout = 0.2f;
  const TextCnn cnn(emb, sentences, labels, config);
  std::vector<std::vector<std::int32_t>> test_s;
  std::vector<std::int32_t> test_l;
  separable_dataset(150, 40, 13, test_s, test_l);
  const auto preds = cnn.predict_all(test_s);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    hits += (preds[i] == test_l[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / preds.size(), 0.85);
}

TEST(TextCnn, HandlesSentencesShorterThanKernel) {
  const embed::Embedding emb = random_embedding(20, 6, 14);
  std::vector<std::vector<std::int32_t>> sentences = {{1}, {2, 3}, {4, 5, 6}};
  std::vector<std::int32_t> labels = {0, 1, 0};
  TextCnnConfig config;
  config.channels = 2;
  config.epochs = 2;
  const TextCnn cnn(emb, sentences, labels, config);
  EXPECT_NO_THROW(cnn.predict({7}));
}

TEST(TextCnn, DeterministicGivenSeeds) {
  const embed::Embedding emb = random_embedding(25, 6, 15);
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int32_t> labels;
  separable_dataset(60, 25, 16, sentences, labels);
  TextCnnConfig config;
  config.channels = 3;
  config.epochs = 3;
  const TextCnn a(emb, sentences, labels, config);
  const TextCnn b(emb, sentences, labels, config);
  EXPECT_EQ(a.predict_all(sentences), b.predict_all(sentences));
}

// ---------- BiLSTM ----------

BiLstmConfig tiny_bilstm_config(bool crf) {
  BiLstmConfig c;
  c.num_tags = 3;
  c.hidden = 4;
  c.epochs = 1;
  c.word_dropout = 0.0f;
  c.locked_dropout = 0.0f;
  c.use_crf = crf;
  return c;
}

TEST(BiLstm, GradientMatchesFiniteDifference) {
  const embed::Embedding emb = random_embedding(12, 5, 17);
  const std::vector<std::vector<std::int32_t>> train = {{0, 1, 2}};
  const std::vector<std::vector<std::int32_t>> tags = {{0, 1, 2}};
  for (const bool crf : {false, true}) {
    BiLstmTagger tagger(emb, train, tags, tiny_bilstm_config(crf));
    const std::vector<std::int32_t> sentence = {3, 7, 1, 5};
    const std::vector<std::int32_t> gold = {1, 0, 2, 1};
    const std::vector<float> analytic =
        tagger.example_gradient(sentence, gold, nullptr, nullptr);

    Rng rng(18);
    const float eps = 1e-3f;
    int checked = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t idx = rng.index(tagger.parameters().size());
      const float saved = tagger.parameters()[idx];
      tagger.parameters()[idx] = saved + eps;
      const double up = tagger.loss(sentence, gold);
      tagger.parameters()[idx] = saved - eps;
      const double down = tagger.loss(sentence, gold);
      tagger.parameters()[idx] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      if (std::abs(numeric) < 1e-5 && std::abs(analytic[idx]) < 1e-5) continue;
      EXPECT_NEAR(analytic[idx], numeric,
                  2e-2 * std::max(1.0, std::abs(numeric)))
          << "param " << idx << " crf=" << crf;
      ++checked;
    }
    EXPECT_GT(checked, 5);
  }
}

TEST(BiLstm, CrfLossMatchesBruteForceEnumeration) {
  const embed::Embedding emb = random_embedding(10, 4, 19);
  const std::vector<std::vector<std::int32_t>> train = {{0, 1}};
  const std::vector<std::vector<std::int32_t>> tags = {{0, 1}};
  BiLstmTagger tagger(emb, train, tags, tiny_bilstm_config(true));

  const std::vector<std::int32_t> sentence = {2, 5, 8};
  const std::vector<std::int32_t> gold = {1, 2, 0};
  const double nll = tagger.loss(sentence, gold);

  // Brute force: logZ over all 3^3 paths using the emissions + CRF params.
  // Recover path scores through loss() itself: score(y) = logZ − nll(y), so
  // Σ_y exp(score(y)) must equal exp(logZ) ⇔ Σ_y exp(−nll(y)) = 1.
  double total = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        total += std::exp(-tagger.loss(sentence, {a, b, c}));
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
  EXPECT_GT(nll, 0.0);
}

TEST(BiLstm, ViterbiMatchesBruteForceArgmax) {
  const embed::Embedding emb = random_embedding(10, 4, 20);
  const std::vector<std::vector<std::int32_t>> train = {{0, 1, 2}, {3, 4, 5}};
  const std::vector<std::vector<std::int32_t>> tags = {{0, 1, 2}, {1, 0, 2}};
  BiLstmConfig config = tiny_bilstm_config(true);
  config.epochs = 2;
  BiLstmTagger tagger(emb, train, tags, config);

  const std::vector<std::int32_t> sentence = {6, 2, 9};
  const std::vector<std::int32_t> decoded = tagger.predict(sentence);
  double best = 1e300;
  std::vector<std::int32_t> best_path;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        const double nll = tagger.loss(sentence, {a, b, c});
        if (nll < best) {
          best = nll;
          best_path = {a, b, c};
        }
      }
    }
  }
  EXPECT_EQ(decoded, best_path);
}

TEST(BiLstm, LearnsPositionalTaggingTask) {
  // Task: words < 10 get tag 1, words ≥ 10 get tag 0 — learnable from the
  // embedding alone.
  embed::Embedding emb = random_embedding(20, 6, 21);
  Rng rng(22);
  std::vector<std::vector<std::int32_t>> train, tags;
  for (int i = 0; i < 120; ++i) {
    std::vector<std::int32_t> s(5), t(5);
    for (int j = 0; j < 5; ++j) {
      s[j] = static_cast<std::int32_t>(rng.index(20));
      t[j] = s[j] < 10 ? 1 : 0;
    }
    train.push_back(std::move(s));
    tags.push_back(std::move(t));
  }
  BiLstmConfig config;
  config.num_tags = 2;
  config.hidden = 8;
  config.epochs = 4;
  config.word_dropout = 0.0f;
  config.locked_dropout = 0.0f;
  const BiLstmTagger tagger(emb, train, tags, config);

  std::size_t hits = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    std::vector<std::int32_t> s(5);
    for (auto& w : s) w = static_cast<std::int32_t>(rng.index(20));
    const auto pred = tagger.predict(s);
    for (int j = 0; j < 5; ++j) {
      hits += (pred[j] == (s[j] < 10 ? 1 : 0));
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.85);
}

TEST(BiLstm, PredictFlatConcatenatesSentences) {
  const embed::Embedding emb = random_embedding(10, 4, 23);
  const std::vector<std::vector<std::int32_t>> train = {{0, 1}};
  const std::vector<std::vector<std::int32_t>> tags = {{0, 1}};
  const BiLstmTagger tagger(emb, train, tags, tiny_bilstm_config(false));
  const auto flat = tagger.predict_flat({{1, 2, 3}, {4, 5}});
  EXPECT_EQ(flat.size(), 5u);
}

TEST(BiLstm, EmissionsShape) {
  const embed::Embedding emb = random_embedding(10, 4, 24);
  const std::vector<std::vector<std::int32_t>> train = {{0, 1}};
  const std::vector<std::vector<std::int32_t>> tags = {{0, 1}};
  const BiLstmTagger tagger(emb, train, tags, tiny_bilstm_config(false));
  const auto e = tagger.emissions({1, 2, 3, 4});
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0].size(), 3u);
}

}  // namespace
}  // namespace anchor::model
