// Tests for the results-CSV interchange and the standalone analysis stage
// (the artifact's Appendix A.7 "lightweight option").
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/report.hpp"
#include "util/rng.hpp"

namespace anchor::core {
namespace {

namespace fs = std::filesystem;

/// Grid where DI is a noisy increasing function of EIS and a noisy
/// decreasing function of memory — the regime the analysis expects.
std::vector<ConfigPoint> synthetic_grid(std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<ConfigPoint> points;
  for (const std::size_t dim : {8u, 16u, 32u}) {
    for (const int bits : {1, 4, 32}) {
      ConfigPoint p;
      p.dim = dim;
      p.bits = bits;
      const double memory = std::log2(static_cast<double>(dim) * bits);
      p.downstream_instability_pct =
          20.0 - 1.5 * memory + rng.normal(0.0, 0.3);
      p.measures[Measure::kEigenspaceInstability] =
          p.downstream_instability_pct / 25.0 + rng.normal(0.0, 0.01);
      p.measures[Measure::kOneMinusKnn] =
          p.downstream_instability_pct / 30.0 + rng.normal(0.0, 0.05);
      p.measures[Measure::kSemanticDisplacement] = rng.uniform(0.0, 1.0);
      p.measures[Measure::kPipLoss] = rng.uniform(0.0, 100.0);
      p.measures[Measure::kOneMinusEigenspaceOverlap] = rng.uniform(0.0, 1.0);
      points.push_back(std::move(p));
    }
  }
  return points;
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anchor_report_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path path(const std::string& name) const { return dir_ / name; }
  fs::path dir_;
};

TEST_F(ReportTest, CsvRoundTripPreservesEverything) {
  const std::vector<ConfigPoint> original = synthetic_grid();
  write_config_points_csv(original, path("grid.csv"));
  const std::vector<ConfigPoint> loaded =
      read_config_points_csv(path("grid.csv"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].dim, original[i].dim);
    EXPECT_EQ(loaded[i].bits, original[i].bits);
    EXPECT_NEAR(loaded[i].downstream_instability_pct,
                original[i].downstream_instability_pct, 1e-8);
    for (const Measure m : kAllMeasures) {
      EXPECT_NEAR(loaded[i].measures.at(m), original[i].measures.at(m), 1e-8);
    }
  }
}

TEST_F(ReportTest, AnalysisIdenticalBeforeAndAfterRoundTrip) {
  const std::vector<ConfigPoint> original = synthetic_grid();
  write_config_points_csv(original, path("grid.csv"));
  const GridAnalysis direct = analyze_grid(original);
  const GridAnalysis via_csv =
      analyze_grid(read_config_points_csv(path("grid.csv")));
  ASSERT_EQ(direct.measures.size(), via_csv.measures.size());
  for (std::size_t i = 0; i < direct.measures.size(); ++i) {
    EXPECT_NEAR(direct.measures[i].spearman, via_csv.measures[i].spearman,
                1e-9);
    EXPECT_NEAR(direct.measures[i].pairwise_error,
                via_csv.measures[i].pairwise_error, 1e-9);
    EXPECT_NEAR(direct.measures[i].budget_gap_pct,
                via_csv.measures[i].budget_gap_pct, 1e-9);
  }
}

TEST_F(ReportTest, AnalysisRanksTheDesignedMeasuresOnTop) {
  const GridAnalysis a = analyze_grid(synthetic_grid());
  // By construction EIS tracks DI almost perfectly; the three random
  // measures should be clearly worse on Spearman.
  const double eis_rho = a.measures[0].spearman;  // kAllMeasures[0] = EIS
  EXPECT_GT(eis_rho, 0.9);
  EXPECT_GT(eis_rho, a.measures[2].spearman);  // semantic displacement
  EXPECT_GT(eis_rho, a.measures[3].spearman);  // PIP
  EXPECT_LT(a.measures[0].pairwise_error, 0.15);
}

TEST_F(ReportTest, AnalysisMatchesDirectSelectionCalls) {
  const std::vector<ConfigPoint> grid = synthetic_grid();
  const GridAnalysis a = analyze_grid(grid);
  for (const auto& row : a.measures) {
    EXPECT_DOUBLE_EQ(row.spearman, measure_spearman(grid, row.measure));
    EXPECT_DOUBLE_EQ(row.pairwise_error,
                     pairwise_selection_error(grid, row.measure));
  }
  EXPECT_DOUBLE_EQ(
      a.high_precision_gap_pct,
      budget_selection(grid, Criterion::high_precision()).mean_abs_gap_pct);
}

TEST_F(ReportTest, WriteRejectsIncompletePoints) {
  std::vector<ConfigPoint> grid = synthetic_grid();
  grid[0].measures.erase(Measure::kPipLoss);
  EXPECT_THROW(write_config_points_csv(grid, path("bad.csv")), CheckError);
}

TEST_F(ReportTest, ReadRejectsMalformedFiles) {
  EXPECT_THROW(read_config_points_csv(path("missing.csv")), CheckError);

  std::ofstream(path("empty.csv")) << "";
  EXPECT_THROW(read_config_points_csv(path("empty.csv")), CheckError);

  std::ofstream(path("header.csv")) << "a,b,c\n1,2,3\n";
  EXPECT_THROW(read_config_points_csv(path("header.csv")), CheckError);

  write_config_points_csv(synthetic_grid(), path("short.csv"));
  std::ofstream(path("short.csv"), std::ios::app) << "8,1,2.5\n";
  EXPECT_THROW(read_config_points_csv(path("short.csv")), CheckError);

  write_config_points_csv(synthetic_grid(), path("garbage.csv"));
  std::ofstream(path("garbage.csv"), std::ios::app)
      << "8,1,abc,0.1,0.1,0.1,0.1,0.1\n";
  EXPECT_THROW(read_config_points_csv(path("garbage.csv")), CheckError);

  // Header only, no rows.
  write_config_points_csv(synthetic_grid(), path("rows.csv"));
  std::ofstream trunc(path("rows.csv"));
  trunc << "dim,bits,di_pct,eis,one_minus_knn,semantic_displacement,"
           "pip_loss,one_minus_eigenspace_overlap\n";
  trunc.close();
  EXPECT_THROW(read_config_points_csv(path("rows.csv")), CheckError);
}

}  // namespace
}  // namespace anchor::core
