// Dedicated suite for compress/pq (product quantization): codebook
// shapes, code→centroid reconstruction round-trip, distortion accounting,
// rate-matched comparison against uniform quantization, and the shared-
// codebook protocol a Wiki'17/Wiki'18 pair uses (Appendix C.2 analogue).
// PQ snapshots are the ROADMAP rung after canarying, so this pins the
// contract that storage backend will build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "util/rng.hpp"

namespace anchor::compress {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

double mse(const embed::Embedding& a, const embed::Embedding& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    const double d = static_cast<double>(a.data[i]) - b.data[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data.size());
}

TEST(Pq, CodebookShapesCodesAndReconstructionRoundTrip) {
  const auto input = random_embedding(96, 16, 5);
  PqConfig config;
  config.num_subvectors = 4;
  config.bits = 4;
  const PqResult result = pq_quantize(input, config);

  const std::size_t m = 4, sub_dim = 4, k = 16;
  ASSERT_EQ(result.codebooks.size(), m);
  for (const auto& cb : result.codebooks) {
    EXPECT_EQ(cb.size(), k * sub_dim);
  }
  ASSERT_EQ(result.codes.size(), input.vocab_size * m);
  EXPECT_EQ(result.code_bits, 4);
  EXPECT_EQ(result.bits_per_word(), m * 4u);
  ASSERT_EQ(result.embedding.vocab_size, input.vocab_size);
  ASSERT_EQ(result.embedding.dim, input.dim);

  // The reconstructed rows must be EXACTLY what the codes say: row w,
  // slice s is the codebook centroid codes[w·m + s], bit for bit. This
  // is the round-trip a future PQ snapshot backend depends on (store
  // codes, decode in copy_row).
  for (std::size_t w = 0; w < input.vocab_size; ++w) {
    for (std::size_t s = 0; s < m; ++s) {
      const std::uint32_t code = result.codes[w * m + s];
      ASSERT_LT(code, k);
      const float* centroid =
          result.codebooks[s].data() + code * sub_dim;
      const float* rec = result.embedding.row(w) + s * sub_dim;
      for (std::size_t j = 0; j < sub_dim; ++j) {
        EXPECT_EQ(rec[j], centroid[j]) << "w=" << w << " s=" << s;
      }
    }
  }

  // Reported distortion is the mean squared reconstruction error.
  EXPECT_NEAR(result.distortion, mse(input, result.embedding),
              1e-12 + 1e-9 * result.distortion);
  // Each code must also be the NEAREST centroid for its sub-vector.
  for (std::size_t w = 0; w < input.vocab_size; ++w) {
    for (std::size_t s = 0; s < m; ++s) {
      const float* sub = input.row(w) + s * sub_dim;
      const std::uint32_t assigned = result.codes[w * m + s];
      double assigned_dist = 0.0;
      for (std::size_t j = 0; j < sub_dim; ++j) {
        const double d =
            sub[j] - result.codebooks[s][assigned * sub_dim + j];
        assigned_dist += d * d;
      }
      for (std::size_t c = 0; c < k; ++c) {
        double dist = 0.0;
        for (std::size_t j = 0; j < sub_dim; ++j) {
          const double d = sub[j] - result.codebooks[s][c * sub_dim + j];
          dist += d * d;
        }
        EXPECT_GE(dist, assigned_dist - 1e-9);
      }
    }
  }
}

TEST(Pq, BeatsUniformQuantizationAtTheSameRate) {
  // Rate-matched comparison on the same rows: m=4 sub-vectors × 8 bits =
  // 32 bits/word, exactly what 2-bit uniform quantization costs at
  // dim 16. A vector quantizer with 256 centroids per 4-dim slice should
  // crush a 4-level scalar grid.
  const auto input = random_embedding(640, 16, 9);
  PqConfig pq;
  pq.num_subvectors = 4;
  pq.bits = 8;
  const PqResult coded = pq_quantize(input, pq);
  ASSERT_EQ(coded.bits_per_word(), 32u);

  QuantizeConfig uniform;
  uniform.bits = 2;
  ASSERT_EQ(bits_per_word(input.dim, uniform.bits), 32u);
  const QuantizeResult grid = uniform_quantize(input, uniform);

  const double pq_mse = coded.distortion;
  const double uniform_mse = mse(input, grid.embedding);
  EXPECT_LT(pq_mse, uniform_mse);
  // And not marginally: vector quantization at this rate is typically
  // several times better on Gaussian rows.
  EXPECT_LT(pq_mse, 0.5 * uniform_mse);

  // More code bits → monotonically better (sanity on the rate axis).
  PqConfig small = pq;
  small.bits = 2;
  EXPECT_GT(pq_quantize(input, small).distortion, pq_mse);
}

TEST(Pq, SharedCodebookOverrideReproducesPartnerGeometry) {
  // The Wiki'18 member of a pair reuses its partner's codebooks so the
  // compression itself adds no disagreement (Appendix C.2 protocol).
  const auto wiki17 = random_embedding(200, 12, 13);
  auto wiki18 = wiki17;
  Rng rng(14);
  for (auto& x : wiki18.data) {
    x += static_cast<float>(rng.normal(0.0, 0.02));
  }

  PqConfig config;
  config.num_subvectors = 3;
  config.bits = 5;
  const PqResult first = pq_quantize(wiki17, config);

  PqConfig reuse = config;
  reuse.codebooks_override = first.codebooks;
  const PqResult second = pq_quantize(wiki18, reuse);
  // The override is used verbatim — no re-training.
  ASSERT_EQ(second.codebooks.size(), first.codebooks.size());
  for (std::size_t s = 0; s < first.codebooks.size(); ++s) {
    EXPECT_EQ(second.codebooks[s], first.codebooks[s]);
  }

  // Re-coding the ORIGINAL embedding against its own codebooks is a
  // fixed point: same codes, same reconstruction.
  PqConfig self = config;
  self.codebooks_override = first.codebooks;
  const PqResult again = pq_quantize(wiki17, self);
  EXPECT_EQ(again.codes, first.codes);
  EXPECT_EQ(again.embedding.data, first.embedding.data);

  // A near-identical partner coded on shared codebooks lands on mostly
  // the same codes — the whole point of sharing them.
  std::size_t same = 0;
  for (std::size_t i = 0; i < first.codes.size(); ++i) {
    same += first.codes[i] == second.codes[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(same) /
                static_cast<double>(first.codes.size()),
            0.9);
}

TEST(Pq, DeterministicAcrossRunsAndRejectsBadShapes) {
  const auto input = random_embedding(64, 8, 21);
  PqConfig config;
  config.num_subvectors = 2;
  config.bits = 3;
  const PqResult a = pq_quantize(input, config);
  const PqResult b = pq_quantize(input, config);
  EXPECT_EQ(a.codes, b.codes);
  EXPECT_EQ(a.embedding.data, b.embedding.data);
  EXPECT_EQ(a.distortion, b.distortion);

  // m must divide dim; 2^bits must not exceed the vocabulary.
  PqConfig bad_m = config;
  bad_m.num_subvectors = 3;
  EXPECT_THROW(pq_quantize(input, bad_m), std::exception);
  PqConfig bad_k = config;
  bad_k.bits = 7;  // 128 centroids > 64 rows
  EXPECT_THROW(pq_quantize(input, bad_k), std::exception);

  // ... unless the codebooks come from an override: a fixed codebook is
  // not trained, so a slice smaller than 2^bits (one shard of a sharded
  // store encoding with shared codebooks) must encode fine.
  const auto big = random_embedding(256, 8, 22);
  PqConfig train7 = config;
  train7.bits = 7;
  const PqResult full = pq_quantize(big, train7);
  embed::Embedding tiny(4, 8);
  std::copy_n(big.data.begin(), tiny.data.size(), tiny.data.begin());
  PqConfig shard = train7;
  shard.codebooks_override = full.codebooks;
  const PqResult sliced = pq_quantize(tiny, shard);
  for (std::size_t w = 0; w < tiny.vocab_size; ++w) {
    for (std::size_t s = 0; s < shard.num_subvectors; ++s) {
      EXPECT_EQ(sliced.codes[w * shard.num_subvectors + s],
                full.codes[w * shard.num_subvectors + s]);
    }
  }
}

}  // namespace
}  // namespace anchor::compress
