// Tests for the util substrate: check macros, RNG, binary IO, artifact
// cache, and table rendering.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "la/matrix.hpp"
#include "util/cache.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace anchor {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(ANCHOR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ANCHOR_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(ANCHOR_CHECK_LT(2, 3));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(ANCHOR_CHECK(false), CheckError);
  EXPECT_THROW(ANCHOR_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(ANCHOR_CHECK_GE(1, 2), CheckError);
}

TEST(Check, MessageIncludesExpressionAndValues) {
  try {
    ANCHOR_CHECK_EQ(1, 2);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=1"), std::string::npos);
    EXPECT_NE(what.find("rhs=2"), std::string::npos);
  }
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng parent(7);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(0);  // second fork consumes parent state → differs
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(5);
  EXPECT_THROW(rng.index(0), CheckError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 9.0, 0.5);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), CheckError);
}

TEST(DiscreteSampler, MatchesCategoricalDistribution) {
  Rng rng(19);
  const std::vector<double> w = {2.0, 1.0, 1.0};
  DiscreteSampler sampler(w);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / 20000, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000, 0.25, 0.02);
}

TEST(Io, BlobRoundTripFloat) {
  const std::vector<float> v = {1.5f, -2.25f, 0.0f, 1e-20f};
  EXPECT_EQ(from_blob<float>(to_blob(v)), v);
}

TEST(Io, BlobRoundTripInt) {
  const std::vector<std::int32_t> v = {-5, 0, 7, 1 << 30};
  EXPECT_EQ(from_blob<std::int32_t>(to_blob(v)), v);
}

TEST(Io, BlobRoundTripEmpty) {
  EXPECT_TRUE(from_blob<double>(to_blob(std::vector<double>{})).empty());
}

TEST(Io, BlobTypeMismatchThrows) {
  const auto blob = to_blob(std::vector<float>{1.0f});
  EXPECT_THROW(from_blob<double>(blob), CheckError);
}

TEST(Io, TruncatedBlobThrows) {
  auto blob = to_blob(std::vector<float>{1.0f, 2.0f});
  blob.resize(blob.size() - 1);
  EXPECT_THROW(from_blob<float>(blob), CheckError);
}

TEST(Io, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Io, WriteReadBytesRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "anchor_io_test";
  std::filesystem::remove_all(dir);
  const std::vector<std::uint8_t> data = {0, 1, 255, 42};
  write_bytes(dir / "x.bin", data);
  EXPECT_EQ(read_bytes(dir / "x.bin"), data);
  std::filesystem::remove_all(dir);
}

TEST(Io, ReadMissingFileThrows) {
  EXPECT_THROW(read_bytes("/nonexistent/anchor/file.bin"), CheckError);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("anchor_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CacheTest, MissReturnsNullopt) {
  ArtifactCache cache(dir_);
  EXPECT_FALSE(cache.contains("absent"));
  EXPECT_FALSE(cache.load<float>("absent").has_value());
}

TEST_F(CacheTest, StoreThenLoad) {
  ArtifactCache cache(dir_);
  const std::vector<double> v = {3.14, -1.0};
  cache.store("key1", v);
  EXPECT_TRUE(cache.contains("key1"));
  EXPECT_EQ(cache.load<double>("key1").value(), v);
}

TEST_F(CacheTest, GetOrComputeMemoizes) {
  ArtifactCache cache(dir_);
  int calls = 0;
  auto compute = [&]() {
    ++calls;
    return std::vector<std::int32_t>{1, 2, 3};
  };
  const auto a = cache.get_or_compute<std::int32_t>("k", compute);
  const auto b = cache.get_or_compute<std::int32_t>("k", compute);
  EXPECT_EQ(a, b);
  EXPECT_EQ(calls, 1);
}

TEST_F(CacheTest, PersistsAcrossInstances) {
  {
    ArtifactCache cache(dir_);
    cache.store("persist", std::vector<float>{9.0f});
  }
  ArtifactCache reopened(dir_);
  EXPECT_EQ(reopened.load<float>("persist").value(),
            std::vector<float>{9.0f});
}

TEST_F(CacheTest, HashCollisionDetectedViaKeySidecar) {
  ArtifactCache cache(dir_);
  cache.store("honest-key", std::vector<float>{1.0f});
  // Simulate an fnv64 collision: another key hashed to the same file name,
  // so its sidecar records a different full key. The cache must refuse to
  // serve the blob rather than silently return the wrong artifact.
  std::ostringstream name;
  name << std::hex << fnv1a("honest-key") << ".key";
  std::ofstream side(dir_ / name.str(), std::ios::binary | std::ios::trunc);
  side << "colliding-key";
  side.close();
  EXPECT_THROW(cache.load<float>("honest-key"), CheckError);
  EXPECT_THROW(cache.contains("honest-key"), CheckError);
}

TEST_F(CacheTest, MissingSidecarIsAMissNotACollision) {
  ArtifactCache cache(dir_);
  cache.store("k", std::vector<float>{2.0f});
  std::ostringstream name;
  name << std::hex << fnv1a("k") << ".key";
  std::filesystem::remove(dir_ / name.str());
  EXPECT_FALSE(cache.contains("k"));
  EXPECT_FALSE(cache.load<float>("k").has_value());
}

TEST_F(CacheTest, FromEnvPrefersEnvVarAndFallsBack) {
  const auto env_dir = dir_ / "env";
  const auto fallback_dir = dir_ / "fallback";
  ::setenv("ANCHOR_CACHE_DIR", env_dir.string().c_str(), 1);
  EXPECT_EQ(ArtifactCache::from_env(fallback_dir).dir(), env_dir);
  ::setenv("ANCHOR_CACHE_DIR", "", 1);  // empty counts as unset
  EXPECT_EQ(ArtifactCache::from_env(fallback_dir).dir(), fallback_dir);
  ::unsetenv("ANCHOR_CACHE_DIR");
  EXPECT_EQ(ArtifactCache::from_env(fallback_dir).dir(), fallback_dir);
}

TEST_F(CacheTest, MatrixRoundTripsThroughStorage) {
  ArtifactCache cache(dir_);
  la::Matrix m(3, 2);
  m(0, 0) = 1.5;
  m(1, 1) = -2.25;
  m(2, 0) = 1e-12;
  cache.store("matrix/3x2", m.storage());
  const auto loaded = cache.load<double>("matrix/3x2");
  ASSERT_TRUE(loaded.has_value());
  const la::Matrix back(3, 2, *loaded);
  EXPECT_EQ(la::max_abs_diff(m, back), 0.0);
}

TEST_F(CacheTest, DistinctKeysDistinctValues) {
  ArtifactCache cache(dir_);
  cache.store("a", std::vector<std::int32_t>{1});
  cache.store("b", std::vector<std::int32_t>{2});
  EXPECT_EQ(cache.load<std::int32_t>("a").value()[0], 1);
  EXPECT_EQ(cache.load<std::int32_t>("b").value()[0], 2);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace anchor
