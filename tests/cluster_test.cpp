// cluster/ subsystem: ShardMap routing + serialization, scatter-gather
// bit-identity against a single-process store, degraded partial results
// when a backend dies mid-stream (and recovery after it returns),
// coordinated shard-by-shard rollout with rollback, and hostile-frame
// fuzz against a live router — real TCP on 127.0.0.1 throughout, in the
// net_test style.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_pool.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::cluster {
namespace {

constexpr std::size_t kVocab = 900;
constexpr std::size_t kDim = 24;

embed::Embedding random_embedding(std::uint64_t seed, std::size_t vocab,
                                  std::size_t dim) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

embed::Embedding jitter(const embed::Embedding& base, std::uint64_t seed,
                        double sigma) {
  embed::Embedding e = base;
  Rng rng(seed);
  for (auto& x : e.data) x += static_cast<float>(rng.normal(0.0, sigma));
  return e;
}

embed::Embedding slice(const embed::Embedding& full, std::size_t begin,
                       std::size_t end) {
  embed::Embedding e(end - begin, full.dim);
  std::memcpy(e.data.data(), full.data.data() + begin * full.dim,
              (end - begin) * full.dim * sizeof(float));
  return e;
}

bool identical(const serve::LookupResult& a, const serve::LookupResult& b) {
  return a.version == b.version && a.dim == b.dim && a.oov == b.oov &&
         a.vectors.size() == b.vectors.size() &&
         (a.vectors.empty() ||
          std::memcmp(a.vectors.data(), b.vectors.data(),
                      a.vectors.size() * sizeof(float)) == 0);
}

// ---- ShardMap ----------------------------------------------------------

TEST(ShardMap, RoutesSerializesAndRoundTrips) {
  const ShardMap map(7, {{"127.0.0.1", 7501, 0, 300},
                         {"127.0.0.1", 7502, 300, 301},
                         {"10.0.0.3", 7503, 301, 900}});
  EXPECT_EQ(map.num_shards(), 3u);
  EXPECT_EQ(map.total_rows(), 900u);
  EXPECT_EQ(map.version(), 7u);
  EXPECT_EQ(map.shard_of_id(0), 0u);
  EXPECT_EQ(map.shard_of_id(299), 0u);
  EXPECT_EQ(map.shard_of_id(300), 1u);  // single-row shard boundary
  EXPECT_EQ(map.shard_of_id(301), 2u);
  EXPECT_EQ(map.shard_of_id(899), 2u);
  EXPECT_EQ(map.local_id(0), 0u);
  EXPECT_EQ(map.local_id(300), 0u);
  EXPECT_EQ(map.local_id(305), 4u);
  EXPECT_THROW(map.shard_of_id(900), CheckError);

  // Word routing is a stable pure function covering every shard index.
  std::vector<bool> hit(map.num_shards(), false);
  for (int i = 0; i < 200; ++i) {
    const std::string word = "word-" + std::to_string(i);
    const std::size_t s = map.shard_of_word(word);
    ASSERT_LT(s, map.num_shards());
    EXPECT_EQ(s, map.shard_of_word(word));
    hit[s] = true;
  }
  for (const bool h : hit) EXPECT_TRUE(h);

  const std::string text = map.serialize();
  EXPECT_EQ(text, "v7,127.0.0.1:7501:0:300,127.0.0.1:7502:300:301,"
                  "10.0.0.3:7503:301:900");
  EXPECT_TRUE(ShardMap::parse(text) == map);
}

TEST(ShardMap, RejectsMalformedTopologies) {
  // Gap between ranges.
  EXPECT_THROW(ShardMap(1, {{"h", 1, 0, 10}, {"h", 2, 11, 20}}), CheckError);
  // Coverage not starting at row 0.
  EXPECT_THROW(ShardMap(1, {{"h", 1, 5, 10}}), CheckError);
  // Empty range, port 0, no shards.
  EXPECT_THROW(ShardMap(1, {{"h", 1, 0, 0}}), CheckError);
  EXPECT_THROW(ShardMap(1, {{"h", 0, 0, 10}}), CheckError);
  EXPECT_THROW(ShardMap(1, {}), CheckError);

  EXPECT_THROW(ShardMap::parse(""), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("x3,h:1:0:10"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:1:0"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:0:0:10"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:99999:0:10"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:1:0:10,h:2:11:20"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:1:zero:10"), std::runtime_error);
}

TEST(ShardMap, ReplicaSetsRoundTripAndStayV1Compatible) {
  // Two replicas on shard 1, one on shard 2: the '|' form round-trips and
  // the single-replica entry serializes exactly as the pre-replica v1
  // text (same SHARD_MAP payload on the wire).
  const ShardMap map(
      3, {ShardSpec({{"127.0.0.1", 7501}, {"127.0.0.1", 7601}}, 0, 400),
          ShardSpec("127.0.0.1", 7502, 400, 900)});
  EXPECT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.num_replicas_total(), 3u);
  EXPECT_EQ(map.shard(0).num_replicas(), 2u);
  EXPECT_EQ(map.shard(0).replica(1).port, 7601);
  EXPECT_EQ(map.shard(0).address(), "127.0.0.1:7501");  // primary label
  EXPECT_EQ(map.shard(0).address(1), "127.0.0.1:7601");

  const std::string text = map.serialize();
  EXPECT_EQ(text, "v3,127.0.0.1:7501|127.0.0.1:7601:0:400,"
                  "127.0.0.1:7502:400:900");
  EXPECT_TRUE(ShardMap::parse(text) == map);

  // Pure-v1 text (no '|') parses to all-single-replica shards, and
  // re-serializing it is byte-identical — back-compat both directions.
  const std::string v1 = "v7,127.0.0.1:7501:0:300,10.0.0.3:7503:300:900";
  const ShardMap from_v1 = ShardMap::parse(v1);
  EXPECT_EQ(from_v1.num_replicas_total(), 2u);
  for (const ShardSpec& spec : from_v1.shards()) {
    EXPECT_EQ(spec.num_replicas(), 1u);
  }
  EXPECT_EQ(from_v1.serialize(), v1);

  // Routing is replica-agnostic: the same ranges route the same rows.
  EXPECT_EQ(map.shard_of_id(399), 0u);
  EXPECT_EQ(map.shard_of_id(400), 1u);
}

TEST(ShardMap, RejectsMalformedReplicaSets) {
  // Duplicate endpoint within one replica set (hedging to your own
  // straggler is not failover).
  EXPECT_THROW(
      ShardMap(1, {ShardSpec({{"h", 1}, {"h", 1}}, 0, 10)}), CheckError);
  // Empty replica set.
  EXPECT_THROW(ShardMap(1, {ShardSpec({}, 0, 10)}), CheckError);
  // Port 0 inside a replica set.
  EXPECT_THROW(
      ShardMap(1, {ShardSpec({{"h", 1}, {"h", 0}}, 0, 10)}), CheckError);
  // Text forms: empty replica, trailing '|', duplicate replica.
  EXPECT_THROW(ShardMap::parse("v1,h:1|:0:10"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,|h:1:0:10"), std::runtime_error);
  EXPECT_THROW(ShardMap::parse("v1,h:1|h:1:0:10"), std::runtime_error);
}

// ---- hedge policy ------------------------------------------------------

TEST(HedgePolicy, DelayDerivesFromMergedQuantileWithClamps) {
  HedgePolicy::Config cfg;
  cfg.quantile = 0.99;
  cfg.multiplier = 2.0;
  cfg.min_samples = 32;
  cfg.refresh_every = 1;  // recompute on every query (test determinism)
  cfg.default_delay_us = 5000.0;
  cfg.min_delay_us = 10.0;
  cfg.max_delay_us = 1e9;
  HedgePolicy policy(2, cfg);

  // Below min_samples the default applies — an empty histogram has no
  // p99 worth trusting.
  EXPECT_DOUBLE_EQ(policy.hedge_delay_us(0), 5000.0);
  for (int i = 1; i <= 8; ++i) policy.record(0, 100.0 * i);
  EXPECT_DOUBLE_EQ(policy.hedge_delay_us(0), 5000.0);

  // Past min_samples the delay IS the histogram quantile × multiplier:
  // exactly what shard_snapshot() reports, not a separate estimate.
  for (int i = 9; i <= 200; ++i) policy.record(0, 100.0 * i);
  const double expect =
      policy.shard_snapshot(0).quantile(0.99) * cfg.multiplier;
  EXPECT_DOUBLE_EQ(policy.hedge_delay_us(0), expect);
  EXPECT_GT(policy.hedge_delay_us(0), 5000.0);  // p99 of ramp ≫ default

  // Shards are independent: shard 1 never recorded, still default.
  EXPECT_DOUBLE_EQ(policy.hedge_delay_us(1), 5000.0);

  // The clamp bounds a pathological histogram.
  HedgePolicy::Config tight = cfg;
  tight.max_delay_us = 300.0;
  HedgePolicy clamped(1, tight);
  for (int i = 0; i < 64; ++i) clamped.record(0, 1e6);
  EXPECT_DOUBLE_EQ(clamped.hedge_delay_us(0), 300.0);
}

// ---- backend fixture ---------------------------------------------------

/// One in-process anchor backend serving a row slice of shared versions.
struct Backend {
  serve::EmbeddingStore store;
  std::unique_ptr<net::Server> server;

  Backend(const std::vector<std::pair<std::string, embed::Embedding>>& versions,
          const serve::SnapshotConfig& snap, net::ServerConfig config = {}) {
    for (const auto& [name, source] : versions) {
      store.add_version(name, source, snap);
    }
    server = std::make_unique<net::Server>(store, config);
    server->start();
  }
  std::uint16_t port() const { return server->port(); }
};

serve::SnapshotConfig plain_snap() {
  serve::SnapshotConfig snap;
  snap.build_oov_table = false;  // OOV synthesis is per-process by design
  return snap;
}

/// Builds N backends over contiguous slices of `versions` and the matching
/// ShardMap (splits = boundaries including 0 and vocab).
struct Cluster {
  std::vector<std::unique_ptr<Backend>> backends;
  ShardMap map;

  Cluster(const std::vector<std::pair<std::string, embed::Embedding>>& versions,
          const std::vector<std::size_t>& splits,
          const serve::SnapshotConfig& snap) {
    std::vector<ShardSpec> specs;
    for (std::size_t s = 0; s + 1 < splits.size(); ++s) {
      std::vector<std::pair<std::string, embed::Embedding>> sliced;
      for (const auto& [name, source] : versions) {
        sliced.emplace_back(name, slice(source, splits[s], splits[s + 1]));
      }
      backends.push_back(std::make_unique<Backend>(sliced, snap));
      specs.push_back({"127.0.0.1", backends.back()->port(), splits[s],
                       splits[s + 1]});
    }
    map = ShardMap(1, std::move(specs));
  }
};

// ---- scatter-gather bit-identity ---------------------------------------

TEST(ClusterClient, ScatterGatherBitIdenticalToSingleProcess) {
  const embed::Embedding base = random_embedding(11, kVocab, kDim);
  Cluster cluster({{"v1", base}}, {0, 250, 251, 700, kVocab}, plain_snap());

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, plain_snap());
  serve::LookupService ref(reference);

  ClusterConfig cc;
  cc.map = cluster.map;
  ClusterClient client(cc);

  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::size_t> ids(1 + rng.index(96));
    for (auto& id : ids) {
      // Mostly valid ids, some past the vocabulary (OOV-zero contract).
      id = rng.index(kVocab + 20);
    }
    const serve::LookupResult got = client.lookup_ids(ids);
    const serve::LookupResult want = ref.lookup_ids(ids);
    ASSERT_TRUE(identical(got, want)) << "round " << round;
    EXPECT_FALSE(client.last_degraded());
  }
  // Word traffic: synthetic in-vocab words resolve by row range; real
  // OOV strings route to a home shard and flag identically (both sides
  // built without OOV tables, so the vectors are zero on both).
  for (int round = 0; round < 10; ++round) {
    std::vector<std::string> words;
    for (std::size_t i = 0; i < 40; ++i) {
      std::string w = rng.index(4) == 0 ? "unseen-" : "w";
      w += std::to_string(rng.index(w[0] == 'w' ? kVocab + 20 : 1000));
      words.push_back(std::move(w));
    }
    ASSERT_TRUE(identical(client.lookup_words(words), ref.lookup_words(words)))
        << "round " << round;
  }
  // Single-shard and empty edge cases.
  EXPECT_TRUE(identical(client.lookup_ids({42}), ref.lookup_ids({42})));
  EXPECT_EQ(client.lookup_ids({}).size(), 0u);

  // An ALL-OOV batch involves no shard, yet must keep the single-process
  // shape: store dim, live version, zeroed flagged rows — both on a warm
  // client (hint from earlier merges) and on a cold one (probe path).
  const std::vector<std::size_t> oov_only = {kVocab, kVocab + 7};
  EXPECT_TRUE(identical(client.lookup_ids(oov_only),
                        ref.lookup_ids(oov_only)));
  ClusterClient cold(cc);
  EXPECT_TRUE(identical(cold.lookup_ids(oov_only),
                        ref.lookup_ids(oov_only)));
}

TEST(ClusterClient, QuantizedBitIdenticalWithSharedClip) {
  const embed::Embedding base = random_embedding(13, kVocab, kDim);
  serve::SnapshotConfig q8 = plain_snap();
  q8.bits = 8;

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, q8);
  serve::LookupService ref(reference);

  // The reference snapshot's clip threshold is the shared grid; each
  // slice must quantize on it (its own rows would yield a different clip
  // and one-off code disagreements — the distributed analogue of the
  // paper's Appendix C.2 shared-threshold convention).
  serve::SnapshotConfig q8_shared = q8;
  q8_shared.clip_override = reference.snapshot("v1")->clip();
  Cluster cluster({{"v1", base}}, {0, 400, kVocab}, q8_shared);

  ClusterConfig cc;
  cc.map = cluster.map;
  ClusterClient client(cc);
  Rng rng(6);
  std::vector<std::size_t> ids(128);
  for (auto& id : ids) id = rng.index(kVocab);
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
}

TEST(ClusterClient, PqBitIdenticalWithSharedCodebooks) {
  const embed::Embedding base = random_embedding(17, kVocab, kDim);
  serve::SnapshotConfig pq = plain_snap();
  pq.pq_m = 4;
  pq.pq_bits = 6;

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, pq);
  serve::LookupService ref(reference);

  // The reference snapshot's codebooks are the shared grid; each slice
  // encodes its rows against them (training on its own rows would yield
  // different centroids and code disagreements — the PQ analogue of the
  // shared-clip convention above).
  serve::SnapshotConfig pq_shared = pq;
  pq_shared.pq_codebooks_override =
      reference.snapshot("v1")->pq_codebook_vectors();
  Cluster cluster({{"v1", base}}, {0, 400, kVocab}, pq_shared);

  ClusterConfig cc;
  cc.map = cluster.map;
  ClusterClient client(cc);
  Rng rng(18);
  std::vector<std::size_t> ids(128);
  for (auto& id : ids) id = rng.index(kVocab);
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
  EXPECT_FALSE(client.last_degraded());

  // The daemons report what they actually serve.
  const ClusterStatsReport stats = client.stats();
  EXPECT_EQ(stats.aggregate.encoding, "pq:4x6");
  ASSERT_EQ(stats.shard_encodings.size(), 2u);
  for (const std::string& enc : stats.shard_encodings) {
    EXPECT_EQ(enc, "pq:4x6");
  }
}

// ---- TOPK scatter-gather ----------------------------------------------

/// Two backends over row slices encoding with artifacts trained ONCE on
/// the full matrix (the shared-codebook deployment contract), plus the
/// single-process reference index over the concatenated rows.
struct TopKCluster {
  std::vector<std::unique_ptr<Backend>> backends;
  ShardMap map;
  serve::EmbeddingStore reference;
  std::unique_ptr<ann::IvfPqIndex> ref_index;
  ann::IvfPqArtifacts shared;

  TopKCluster(const embed::Embedding& base,
              const std::vector<std::size_t>& splits) {
    ann::AnnConfig acfg;
    shared = ann::train_ivfpq(base, acfg);
    std::vector<ShardSpec> specs;
    for (std::size_t s = 0; s + 1 < splits.size(); ++s) {
      net::ServerConfig shard_cfg;
      shard_cfg.ann.artifacts = shared;
      backends.push_back(std::make_unique<Backend>(
          std::vector<std::pair<std::string, embed::Embedding>>{
              {"v1", slice(base, splits[s], splits[s + 1])}},
          plain_snap(), shard_cfg));
      specs.push_back(
          {"127.0.0.1", backends.back()->port(), splits[s], splits[s + 1]});
    }
    map = ShardMap(1, std::move(specs));
    const auto snap = reference.add_version("v1", base, plain_snap());
    ann::AnnConfig ref_cfg;
    ref_cfg.artifacts = shared;
    ref_index = std::make_unique<ann::IvfPqIndex>(snap, ref_cfg);
  }
};

void expect_topk_identical(const ann::TopKResult& got,
                           const ann::TopKResult& want, int tag) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << "query " << tag;
  for (std::size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(got.hits[i].id, want.hits[i].id) << "query " << tag
                                               << " rank " << i;
    EXPECT_EQ(got.hits[i].exact, want.hits[i].exact) << "query " << tag;
    EXPECT_EQ(got.hits[i].adc, want.hits[i].adc) << "query " << tag;
  }
}

TEST(Router, TopKMergeBitIdenticalToSingleProcessIndex) {
  const embed::Embedding base = random_embedding(31, kVocab, kDim);
  TopKCluster fx(base, {0, 450, kVocab});
  RouterConfig rc;
  rc.map = fx.map;
  rc.probe_interval_ms = 0;
  Router router(rc);
  router.start();
  net::Client client("127.0.0.1", router.port());

  Rng rng(9);
  for (int q = 0; q < 25; ++q) {
    std::vector<float> query(kDim);
    for (auto& x : query) x = static_cast<float>(rng.normal(0.0, 1.0));
    const ann::TopKResult got = client.topk_vector(query, 10);
    const ann::TopKResult want = fx.ref_index->search(query.data(), 10);
    expect_topk_identical(got, want, q);
    EXPECT_EQ(got.version, "v1") << "query " << q;
    EXPECT_EQ(got.flags, 0) << "query " << q;
    // cells_probed sums across shards: nprobe per shard, two shards.
    EXPECT_EQ(got.cells_probed, 2 * ann::kDefaultNprobe) << "query " << q;
  }

  // By-id and by-word queries resolve the row through the scatter-gather
  // lookup path first, then search — same merged answer for row 700
  // (shard 2) whether addressed by id or synthetic word.
  serve::LookupService ref_lookup(fx.reference);
  const serve::LookupResult row = ref_lookup.lookup_ids({700});
  const ann::TopKResult want =
      fx.ref_index->search(row.vectors.data(), 10);
  expect_topk_identical(client.topk_id(700, 10), want, 700);
  expect_topk_identical(client.topk_word("w700", 10), want, 701);

  // The router counted every merged search and none was partial.
  const obs::MetricsReport report = client.metrics();
  std::uint64_t total = 0, partial = 99;
  for (const obs::MetricValue& m : report.metrics) {
    if (m.name == "anchor_router_topk_total") total = m.counter;
    if (m.name == "anchor_router_topk_partial_total") partial = m.counter;
  }
  EXPECT_EQ(total, 27u);
  EXPECT_EQ(partial, 0u);
  router.stop();
}

TEST(Router, TopKDegradedShardYieldsPartialMergedResult) {
  const embed::Embedding base = random_embedding(37, kVocab, kDim);
  TopKCluster fx(base, {0, 450, kVocab});
  RouterConfig rc;
  rc.map = fx.map;
  rc.probe_interval_ms = 0;
  rc.backend_io_timeout_ms = 500;
  Router router(rc);
  router.start();
  net::Client client("127.0.0.1", router.port());

  std::vector<float> query(kDim);
  Rng rng(4);
  for (auto& x : query) x = static_cast<float>(rng.normal(0.0, 1.0));
  EXPECT_EQ(client.topk_vector(query, 10).flags, 0);

  // Kill shard 2: merged searches must keep answering from shard 1,
  // flagged partial, every hit id inside the surviving row range.
  fx.backends[1]->server->stop();
  ann::TopKResult partial;
  for (int attempt = 0; attempt < 3; ++attempt) {
    partial = client.topk_vector(query, 10);
    if (partial.flags & ann::kTopKFlagPartial) break;
  }
  EXPECT_TRUE(partial.flags & ann::kTopKFlagPartial);
  ASSERT_FALSE(partial.hits.empty());
  for (const ann::TopKHit& h : partial.hits) {
    EXPECT_LT(h.id, 450u) << "hit from the dead shard's row range";
  }
  // And the partial answer is exactly the surviving shard's contribution:
  // bit-identical to a single-process index over rows [0, 450) built with
  // the same shared artifacts (shard 1's row_begin is 0, so global ids
  // equal local ids).
  serve::EmbeddingStore lo_store;
  ann::AnnConfig lo_cfg;
  lo_cfg.artifacts = fx.shared;
  const ann::IvfPqIndex lo_index(
      lo_store.add_version("v1", slice(base, 0, 450), plain_snap()), lo_cfg);
  expect_topk_identical(partial, lo_index.search(query.data(), 10), -1);

  const obs::MetricsReport report = client.metrics();
  for (const obs::MetricValue& m : report.metrics) {
    if (m.name == "anchor_router_topk_partial_total") {
      EXPECT_GE(m.counter, 1u);
    }
  }
  router.stop();
}

// ---- failure modes -----------------------------------------------------

TEST(ClusterClient, BackendKillYieldsDegradedPartialResultThenRecovery) {
  const embed::Embedding base = random_embedding(17, kVocab, kDim);
  Cluster cluster({{"v1", base}}, {0, 450, kVocab}, plain_snap());

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, plain_snap());
  serve::LookupService ref(reference);

  ClusterConfig cc;
  cc.map = cluster.map;
  cc.io_timeout_ms = 500;
  auto health = std::make_shared<ClusterHealth>(cc.map.num_shards());
  ClusterClient client(cc, health);

  const std::vector<std::size_t> ids = {0, 10, 449, 450, 500, kVocab - 1};
  ASSERT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));

  // Kill shard 2 mid-stream (its port closes; in-flight streams reset).
  const std::uint16_t dead_port = cluster.backends[1]->port();
  cluster.backends[1]->server->stop();

  const serve::LookupResult partial = client.lookup_ids(ids);
  EXPECT_TRUE(client.last_degraded());
  EXPECT_EQ(client.last_shard_ok()[0], 1);
  EXPECT_EQ(client.last_shard_ok()[1], 0);
  ASSERT_EQ(partial.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < 450) {
      EXPECT_EQ(partial.oov[i], 0) << "live shard row " << i;
      EXPECT_EQ(std::memcmp(partial.row(i), ref.lookup_ids({ids[i]}).row(0),
                            kDim * sizeof(float)),
                0);
    } else {
      EXPECT_EQ(partial.oov[i], serve::kLookupFlagDegraded);
      for (std::size_t d = 0; d < partial.dim; ++d) {
        EXPECT_EQ(partial.row(i)[d], 0.0f);
      }
    }
  }
  // The failure marked the shard down: the next lookup degrades without
  // paying connect/timeout again.
  EXPECT_FALSE(health->healthy(1));
  EXPECT_TRUE(client.last_degraded());

  // Recovery: a new backend process takes over the same port; once a
  // probe (here: by hand, as the router's probe loop would) marks the
  // shard back up, full results resume.
  net::ServerConfig on_same_port;
  on_same_port.port = dead_port;
  Backend revived({{"v1", slice(base, 450, kVocab)}}, plain_snap(),
                  on_same_port);
  EXPECT_TRUE(ClusterClient::probe("127.0.0.1", dead_port, 500));
  health->mark(1, true);
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
  EXPECT_FALSE(client.last_degraded());
}

/// Like Cluster, but every shard slice is served by `replicas` identical
/// backends — the replica-group fixture for failover/hedging tests.
struct ReplicatedCluster {
  std::vector<std::vector<std::unique_ptr<Backend>>> backends;  // [shard][rep]
  ShardMap map;

  ReplicatedCluster(const embed::Embedding& base,
                    const std::vector<std::size_t>& splits,
                    std::size_t replicas,
                    const net::ServerConfig& replica0_config = {}) {
    std::vector<ShardSpec> specs;
    for (std::size_t s = 0; s + 1 < splits.size(); ++s) {
      std::vector<std::pair<std::string, embed::Embedding>> sliced = {
          {"v1", slice(base, splits[s], splits[s + 1])}};
      backends.emplace_back();
      std::vector<Endpoint> eps;
      for (std::size_t r = 0; r < replicas; ++r) {
        backends.back().push_back(std::make_unique<Backend>(
            sliced, plain_snap(),
            r == 0 ? replica0_config : net::ServerConfig{}));
        eps.push_back({"127.0.0.1", backends.back().back()->port()});
      }
      specs.emplace_back(std::move(eps), splits[s], splits[s + 1]);
    }
    map = ShardMap(1, std::move(specs));
  }
};

TEST(ClusterClient, FailoverToLiveReplicaKeepsLookupsExact) {
  const embed::Embedding base = random_embedding(23, kVocab, kDim);
  ReplicatedCluster cluster(base, {0, 450, kVocab}, /*replicas=*/2);

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, plain_snap());
  serve::LookupService ref(reference);

  ClusterConfig cc;
  cc.map = cluster.map;
  cc.io_timeout_ms = 500;
  auto health = std::make_shared<ClusterHealth>(cc.map);
  auto counters = std::make_shared<ClusterCounters>();
  ClusterClient client(cc, health, nullptr, counters);

  const std::vector<std::size_t> ids = {0, 10, 449, 450, 500, kVocab - 1};
  ASSERT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));

  // Kill shard 0's replica 0 (a fresh client selects it first: the
  // round-robin rotation starts at 0 with equal loads). The next lookup
  // must fail over to replica 1 — full result, zero degraded rows.
  cluster.backends[0][0]->server->stop();
  const serve::LookupResult after = client.lookup_ids(ids);
  EXPECT_TRUE(identical(after, ref.lookup_ids(ids)));
  EXPECT_FALSE(client.last_degraded());
  EXPECT_GE(counters->failovers.load(), 1u);
  // The dead replica is marked down; the shard itself stays alive.
  EXPECT_FALSE(health->healthy(0, 0));
  EXPECT_TRUE(health->shard_alive(0));
  EXPECT_EQ(health->alive(), 2u);
  EXPECT_EQ(health->replicas_alive(), 3u);

  // Repeat lookups route straight to the survivor (no re-paying the
  // dead replica's connect failure).
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
  EXPECT_FALSE(client.last_degraded());

  // Degraded fires ONLY when the whole replica set is down: kill shard
  // 0's replica 1 too, and only shard 0's rows degrade.
  cluster.backends[0][1]->server->stop();
  const serve::LookupResult partial = client.lookup_ids(ids);
  EXPECT_TRUE(client.last_degraded());
  ASSERT_EQ(partial.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] < 450) {
      EXPECT_EQ(partial.oov[i], serve::kLookupFlagDegraded) << i;
    } else {
      EXPECT_EQ(partial.oov[i], 0) << i;
      EXPECT_EQ(std::memcmp(partial.row(i), ref.lookup_ids({ids[i]}).row(0),
                            kDim * sizeof(float)),
                0);
    }
  }
  EXPECT_FALSE(health->shard_alive(0));
  EXPECT_EQ(health->alive(), 1u);
}

TEST(ClusterClient, HedgedReadBeatsADelayInjectedStraggler) {
  const embed::Embedding base = random_embedding(29, 300, kDim);
  // Replica 0 of the single shard delays EVERY data-plane reply by 300 ms
  // (fault injection); replica 1 is clean. The hedge delay (default
  // 20 ms ≪ 300 ms) must kick in and the clean replica's reply must win.
  net::ServerConfig slow;
  slow.fault_inject = true;
  slow.faults = net::FaultConfig::parse("delay=1.0:300");
  ReplicatedCluster cluster(base, {0, 300}, /*replicas=*/2, slow);

  serve::EmbeddingStore reference;
  reference.add_version("v1", base, plain_snap());
  serve::LookupService ref(reference);

  ClusterConfig cc;
  cc.map = cluster.map;
  cc.io_timeout_ms = 2000;
  cc.hedge = true;
  auto health = std::make_shared<ClusterHealth>(cc.map);
  auto hedge = std::make_shared<HedgePolicy>(cc.map.num_shards());
  auto counters = std::make_shared<ClusterCounters>();
  ClusterClient client(cc, health, hedge, counters);

  const std::vector<std::size_t> ids = {0, 7, 150, 299};
  const auto t0 = std::chrono::steady_clock::now();
  const serve::LookupResult got = client.lookup_ids(ids);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(identical(got, ref.lookup_ids(ids)));
  EXPECT_FALSE(client.last_degraded());
  // A fresh client selects replica 0 (the straggler) first, so this
  // lookup must have hedged — and the hedge must have won.
  EXPECT_EQ(counters->hedges.load(), 1u);
  EXPECT_EQ(counters->hedge_wins.load(), 1u);
  // The winning path never waited out the 300 ms injected delay.
  EXPECT_LT(elapsed_ms, 280);

  // Keep looking up: results stay exact while the straggler's owed
  // (late) replies are drained off its connection between lookups, and
  // nobody is ever marked down — slow is not dead.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
    EXPECT_FALSE(client.last_degraded());
  }
  EXPECT_TRUE(health->healthy(0, 0));
  EXPECT_TRUE(health->healthy(0, 1));
  // Every hedge raced a 300 ms straggler against a local replica: wins
  // track hedges (the clean replica answered first each time).
  EXPECT_EQ(counters->hedge_wins.load(), counters->hedges.load());
  EXPECT_GE(counters->hedges.load(), 1u);
}

TEST(ClusterClientPool, SharesHealthHedgeAndCountersAcrossBorrowers) {
  const embed::Embedding base = random_embedding(31, 300, kDim);
  ReplicatedCluster cluster(base, {0, 300}, /*replicas=*/2);

  ClusterConfig cc;
  cc.map = cluster.map;
  auto health = std::make_shared<ClusterHealth>(cc.map);
  auto hedge = std::make_shared<HedgePolicy>(cc.map.num_shards());
  auto counters = std::make_shared<ClusterCounters>();
  ClusterClientPool pool(3, cc, health, hedge, counters);
  EXPECT_EQ(pool.size(), 3u);

  // Concurrent borrowers: more threads than slots, every lookup runs on
  // SOME slot and every RTT lands in the SHARED per-shard histogram.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const auto r = pool.with_client([&](ClusterClient& c) {
          return c.lookup_ids({1, 100, 299});
        });
        if (r.size() != 3) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // 60 lookups, one RTT record each, all merged into shard 0's histogram
  // — the "merged p99" the hedge delay derives from.
  EXPECT_EQ(hedge->samples(0), 60u);
}

TEST(Sockets, BindingAnOccupiedPortFailsFastWithAClearError) {
  // The anchor_served/--port fail-fast contract rests on this: binding a
  // port that is already LISTENing throws immediately (no hang).
  net::TcpListener taken = net::TcpListener::bind_loopback(0);
  try {
    net::TcpListener::bind_loopback(taken.port());
    FAIL() << "second bind on an occupied port must throw";
  } catch (const net::NetError& e) {
    EXPECT_NE(std::string(e.what()).find("bind"), std::string::npos);
  }
}

// ---- router ------------------------------------------------------------

struct RouterFixture {
  std::optional<Cluster> cluster;
  std::optional<Router> router;
  embed::Embedding base = random_embedding(21, kVocab, kDim);

  explicit RouterFixture(std::filesystem::path audit = {}) {
    cluster.emplace(
        std::vector<std::pair<std::string, embed::Embedding>>{{"v1", base}},
        std::vector<std::size_t>{0, 300, kVocab}, plain_snap());
    RouterConfig rc;
    rc.map = cluster->map;
    rc.probe_interval_ms = 0;  // tests drive health by hand
    rc.backend_io_timeout_ms = 1000;
    rc.rollout_poll_ms = 10;
    rc.audit_log = std::move(audit);
    router.emplace(rc);
    router->start();
  }
};

TEST(Router, DataPlaneMatchesSingleProcessAndServesControlPlane) {
  RouterFixture fx;
  serve::EmbeddingStore reference;
  reference.add_version("v1", fx.base, plain_snap());
  serve::LookupService ref(reference);

  net::Client client("127.0.0.1", fx.router->port());
  client.ping();
  EXPECT_TRUE(ShardMap::parse(client.shard_map()) == fx.cluster->map);

  Rng rng(3);
  std::vector<std::size_t> ids(64);
  for (auto& id : ids) id = rng.index(kVocab + 8);
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));
  EXPECT_TRUE(identical(client.lookup_words({"w1", "w299", "w300", "nope"}),
                        ref.lookup_words({"w1", "w299", "w300", "nope"})));

  // Aggregated stats cover both shards' services.
  const net::ServerStatsReport stats = client.stats();
  EXPECT_EQ(stats.live_version, "v1");
  EXPECT_GT(stats.service.lookups, 0u);

  // Single-shard promotes are refused with a pointer at ROLLOUT_START.
  EXPECT_THROW(client.try_promote("v1"), net::RpcError);
  EXPECT_THROW(client.canary_status(), net::RpcError);

  // Idle rollout status.
  const net::RolloutStatusReport idle = client.rollout_status();
  EXPECT_EQ(idle.state, net::RolloutState::kIdle);
  EXPECT_EQ(idle.shards.size(), fx.cluster->map.num_shards());
}

TEST(Router, AggregatedStatsMergeHistogramsNotMaxPercentiles) {
  RouterFixture fx;
  net::Client client("127.0.0.1", fx.router->port());

  // Drive traffic that lands on both shards.
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    std::vector<std::size_t> ids(8);
    for (auto& id : ids) id = rng.index(kVocab);
    client.lookup_ids(ids);
  }

  // Ask each backend directly for its histogram, then merge client-side —
  // the reference for what the router's kStats aggregation must produce.
  obs::HistogramSnapshot service_merged, batcher_merged;
  std::uint64_t service_lookups = 0;
  for (const auto& backend : fx.cluster->backends) {
    net::Client direct("127.0.0.1", backend->port());
    const net::ServerStatsReport s = direct.stats();
    service_merged.merge(s.service.latency);
    batcher_merged.merge(s.batcher.latency);
    service_lookups += s.service.lookups;
  }

  // No lookups ran between the two stats passes, so the router's merged
  // aggregate must be bit-identical to the client-side merge.
  const net::ServerStatsReport agg = client.stats();
  EXPECT_EQ(agg.service.lookups, service_lookups);
  EXPECT_EQ(agg.service.latency.count, service_merged.count);
  EXPECT_EQ(agg.service.latency.counts, service_merged.counts);
  EXPECT_EQ(agg.batcher.latency.counts, batcher_merged.counts);

  // The exported scalar percentiles are quantiles OF THE MERGED buckets
  // (the 2-shard fleet view a single process would have reported, to
  // within the documented 1/32 bucket error) — not a max over shards.
  EXPECT_EQ(agg.service.p50_latency_us, service_merged.quantile(0.5));
  EXPECT_EQ(agg.service.p99_latency_us, service_merged.quantile(0.99));
  EXPECT_EQ(agg.batcher.p50_latency_us, batcher_merged.quantile(0.5));
  EXPECT_EQ(agg.batcher.p99_latency_us, batcher_merged.quantile(0.99));
  EXPECT_GT(agg.service.latency.count, 0u);
}

TEST(Router, HeatMergeBitIdenticalToClientSideBackendMerge) {
  RouterFixture fx;
  net::Client client("127.0.0.1", fx.router->port());

  // Skewed traffic across both shards: id 7 (shard 0) dominates, id 450
  // (shard 1) is warm, plus a thin random tail.
  Rng rng(9);
  for (int i = 0; i < 30; ++i) client.lookup_id(7);
  for (int i = 0; i < 10; ++i) client.lookup_id(450);
  for (int i = 0; i < 12; ++i) client.lookup_id(rng.index(kVocab));

  // Backends record a request's window slot AFTER writing its reply
  // (error-by-default needs the send outcome), so the last lookup can be
  // observable at the client a beat before it lands in the ring — same
  // race the trace test polls away. Wait for all 52 to settle before
  // snapshotting, so both passes below see identical, quiescent state.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (std::uint64_t settled = 0; settled != 52;) {
    settled = 0;
    for (const auto& backend : fx.cluster->backends) {
      net::Client direct("127.0.0.1", backend->port());
      settled += direct.heat().windowed.requests_in(60'000'000);
    }
    if (settled == 52 || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Reference: each backend's HEAT reply lifted into global id space the
  // way ClusterClient documents it — shift the heat ranges and sketch
  // keys by the shard's row_begin — then merged in shard order.
  net::HeatReport reference;
  for (std::size_t b = 0; b < fx.cluster->backends.size(); ++b) {
    net::Client direct("127.0.0.1", fx.cluster->backends[b]->port());
    net::HeatReport shard = direct.heat();
    const std::uint64_t shift = fx.cluster->map.shard(b).row_begin;
    if (shift != 0) {
      shard.heat.shift_rows(shift);
      for (obs::HeavyHitter& e : shard.sketch.entries) e.key += shift;
    }
    reference.windowed.merge(shard.windowed);
    reference.sketch.merge(shard.sketch);
    reference.heat.merge(shard.heat);
  }

  // No data-plane traffic ran between the two passes (HEAT is control
  // plane and does not self-record), so the router's fleet merge must be
  // bit-identical to the client-side merge — the pinned merge contract.
  const net::HeatReport fleet = client.heat();
  ASSERT_EQ(fleet.windowed.slices.size(), reference.windowed.slices.size());
  EXPECT_EQ(fleet.windowed.slice_us, reference.windowed.slice_us);
  for (std::size_t i = 0; i < fleet.windowed.slices.size(); ++i) {
    EXPECT_EQ(fleet.windowed.slices[i].epoch,
              reference.windowed.slices[i].epoch);
    EXPECT_EQ(fleet.windowed.slices[i].requests,
              reference.windowed.slices[i].requests);
    EXPECT_EQ(fleet.windowed.slices[i].errors,
              reference.windowed.slices[i].errors);
    EXPECT_EQ(fleet.windowed.slices[i].latency.counts,
              reference.windowed.slices[i].latency.counts);
    EXPECT_EQ(fleet.windowed.slices[i].latency.sum_units,
              reference.windowed.slices[i].latency.sum_units);
  }
  EXPECT_EQ(fleet.sketch.total, reference.sketch.total);
  EXPECT_EQ(fleet.sketch.capacity, reference.sketch.capacity);
  ASSERT_EQ(fleet.sketch.entries.size(), reference.sketch.entries.size());
  for (std::size_t i = 0; i < fleet.sketch.entries.size(); ++i) {
    EXPECT_EQ(fleet.sketch.entries[i].key, reference.sketch.entries[i].key);
    EXPECT_EQ(fleet.sketch.entries[i].count,
              reference.sketch.entries[i].count);
    EXPECT_EQ(fleet.sketch.entries[i].error,
              reference.sketch.entries[i].error);
  }
  ASSERT_EQ(fleet.heat.ranges.size(), reference.heat.ranges.size());
  EXPECT_EQ(fleet.heat.total, reference.heat.total);
  for (std::size_t i = 0; i < fleet.heat.ranges.size(); ++i) {
    EXPECT_EQ(fleet.heat.ranges[i].row_begin,
              reference.heat.ranges[i].row_begin);
    EXPECT_EQ(fleet.heat.ranges[i].row_end,
              reference.heat.ranges[i].row_end);
    EXPECT_EQ(fleet.heat.ranges[i].buckets, reference.heat.ranges[i].buckets);
  }

  // Semantic spot checks on the fleet view: both shards' ranges appear
  // in GLOBAL id space, disjoint and contiguous, and the global hot key
  // is the one the traffic hammered.
  ASSERT_EQ(fleet.heat.ranges.size(), 2u);
  EXPECT_EQ(fleet.heat.ranges[0].row_begin, 0u);
  EXPECT_EQ(fleet.heat.ranges[0].row_end, 300u);
  EXPECT_EQ(fleet.heat.ranges[1].row_begin, 300u);
  EXPECT_EQ(fleet.heat.ranges[1].row_end, 900u);
  EXPECT_EQ(fleet.heat.total, 52u);
  const auto top = fleet.sketch.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_GE(top[0].count, 30u);
  // The windowed fleet view counts every backend-observed lookup once.
  EXPECT_EQ(fleet.windowed.requests_in(60'000'000), 52u);
}

TEST(Router, SampledTraceCoversClientRouterShardsAndBackends) {
  RouterFixture fx;
  obs::Tracer::instance().clear();
  net::Client client("127.0.0.1", fx.router->port());

  // One pinned, sampled trace on a lookup spanning both shards. Client,
  // router, and backends run in this one process, so the whole waterfall
  // lands in the shared Tracer ring.
  const obs::TraceContext pinned = obs::TraceContext::start();
  client.set_next_trace(pinned);
  client.lookup_ids({1, 2, 299, 300, 301, 899});

  // Router and backends record their spans after writing their replies,
  // so the client can observe the result a beat before the last spans
  // land in the ring — poll until the waterfall stops growing.
  std::vector<obs::SpanRecord> spans;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (std::size_t stable = 0; stable < 3;) {
    const std::size_t prev = spans.size();
    spans = obs::Tracer::instance().spans_for(pinned.trace_id);
    const bool has_recv =
        std::any_of(spans.begin(), spans.end(), [](const obs::SpanRecord& s) {
          return s.stage == obs::TraceStage::kRouterRecv;
        });
    stable = (has_recv && spans.size() == prev) ? stable + 1 : 0;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::set<obs::TraceStage> distinct;
  std::set<std::uint32_t> shards_seen;
  for (const obs::SpanRecord& s : spans) {
    distinct.insert(s.stage);
    if (s.stage == obs::TraceStage::kShardRtt) shards_seen.insert(s.detail);
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  // The acceptance bar: at least 4 distinct pipeline stages. In practice
  // the full path records client_send, router_recv, router_scatter,
  // shard_rtt, router_merge, backend_recv, batch_queue, batch_exec,
  // dequantize.
  EXPECT_GE(distinct.size(), 4u);
  EXPECT_TRUE(distinct.count(obs::TraceStage::kClientSend));
  EXPECT_TRUE(distinct.count(obs::TraceStage::kRouterRecv));
  EXPECT_TRUE(distinct.count(obs::TraceStage::kRouterScatter));
  EXPECT_TRUE(distinct.count(obs::TraceStage::kShardRtt));
  EXPECT_TRUE(distinct.count(obs::TraceStage::kRouterMerge));
  EXPECT_TRUE(distinct.count(obs::TraceStage::kBackendRecv));
  // Both involved shards contributed an RTT span.
  EXPECT_EQ(shards_seen, (std::set<std::uint32_t>{0, 1}));
  // spans_for sorts by start time; timestamps are monotone and every
  // stage starts no earlier than the request's client_send. (End times
  // are NOT nested: router/backend close their recv spans after writing
  // the reply, which races the client closing client_send.)
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().stage, obs::TraceStage::kClientSend);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }

  // Untraced requests stay untraced end to end: no new spans.
  const std::uint64_t before = obs::Tracer::instance().spans_recorded();
  client.lookup_ids({5, 400});
  EXPECT_EQ(obs::Tracer::instance().spans_recorded(), before);
}

TEST(Router, MetricsRpcExposesRouterCountersAndLatency) {
  RouterFixture fx;
  net::Client client("127.0.0.1", fx.router->port());
  client.lookup_ids({1, 2, 500});
  client.lookup_words({"w3"});

  const obs::MetricsReport report = client.metrics();
  const auto find = [&](const std::string& name) -> const obs::MetricValue* {
    for (const obs::MetricValue& m : report.metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const obs::MetricValue* lookups = find("anchor_router_lookups_total");
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(lookups->counter, 2u);
  const obs::MetricValue* degraded =
      find("anchor_router_degraded_lookups_total");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->counter, 0u);
  const obs::MetricValue* alive = find("anchor_router_shards_alive");
  ASSERT_NE(alive, nullptr);
  EXPECT_EQ(alive->gauge, 2.0);
  const obs::MetricValue* latency = find("anchor_router_lookup_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(latency->hist.count, 2u);
  const obs::MetricValue* rollout = find("anchor_router_rollout_state");
  ASSERT_NE(rollout, nullptr);
  EXPECT_EQ(rollout->gauge, 0.0);  // idle
  // The router's registry renders to Prometheus like the backend's.
  const std::string text = obs::to_prometheus(report);
  EXPECT_NE(text.find("anchor_router_lookups_total 2"), std::string::npos);
}

TEST(Router, GatedRolloutPromotesShardByShard) {
  const std::filesystem::path audit =
      std::filesystem::temp_directory_path() / "cluster_rollout_audit.csv";
  std::filesystem::remove(audit);
  RouterFixture fx(audit);
  // Register a routine refresh on every backend after the fact.
  const embed::Embedding v2 = jitter(fx.base, 31, 0.01);
  fx.cluster->backends[0]->store.add_version("v2", slice(v2, 0, 300),
                                             plain_snap());
  fx.cluster->backends[1]->store.add_version("v2", slice(v2, 300, kVocab),
                                             plain_snap());

  net::Client client("127.0.0.1", fx.router->port());
  // Seed this connection's dim/version hint with the pre-rollout state:
  // the post-rollout all-OOV check below must see v2 via a fresh probe,
  // not this cached v1.
  EXPECT_EQ(client.lookup_ids({5}).version, "v1");
  net::RolloutStatusReport st = client.rollout_start("v2", /*mode=*/0);
  EXPECT_EQ(st.candidate, "v2");
  for (int i = 0; i < 500 && !st.terminal(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = client.rollout_status();
  }
  ASSERT_EQ(st.state, net::RolloutState::kCompleted) << st.reason;
  for (const auto& shard : st.shards) {
    EXPECT_EQ(shard.state, net::ShardRolloutState::kPromoted)
        << shard.detail;
  }
  // Both backends really flipped.
  EXPECT_EQ(fx.cluster->backends[0]->store.live_version(), "v2");
  EXPECT_EQ(fx.cluster->backends[1]->store.live_version(), "v2");
  EXPECT_EQ(client.lookup_ids({5}).version, "v2");
  // Even an all-OOV batch (no shard involved) reports the post-rollout
  // version — the shape probe re-asks a shard instead of trusting a
  // pre-rollout cached hint.
  EXPECT_EQ(client.lookup_ids({kVocab + 1}).version, "v2");

  // A second rollout while idle-after-terminal is allowed; while running
  // it is refused (cheap to verify via the error path on a no-op
  // candidate that the gate instantly re-admits).
  const auto audit_rows = serve::read_audit_csv(audit);
  EXPECT_GE(audit_rows.size(), 3u);  // 2 shard rows + terminal summary
  bool saw_shard1 = false, saw_shard2 = false;
  for (const auto& row : audit_rows) {
    saw_shard1 = saw_shard1 ||
                 row.reason.find("rollout shard 1/2") != std::string::npos;
    saw_shard2 = saw_shard2 ||
                 row.reason.find("rollout shard 2/2") != std::string::npos;
  }
  EXPECT_TRUE(saw_shard1);
  EXPECT_TRUE(saw_shard2);
  std::filesystem::remove(audit);
}

TEST(Router, FailingShardStopsRolloutAndRollsBackThePromotedPrefix) {
  RouterFixture fx;
  // Shard 1 gets a routine refresh, shard 2 a scrambled one: the gate
  // admits shard 1, rejects shard 2 — the rollout must then restore
  // shard 1's incumbent rather than leave a mixed-version cluster.
  const embed::Embedding v2_good = jitter(fx.base, 41, 0.01);
  const embed::Embedding v2_bad = random_embedding(999, kVocab, kDim);
  fx.cluster->backends[0]->store.add_version("v2", slice(v2_good, 0, 300),
                                             plain_snap());
  fx.cluster->backends[1]->store.add_version("v2", slice(v2_bad, 300, kVocab),
                                             plain_snap());

  net::Client client("127.0.0.1", fx.router->port());
  net::RolloutStatusReport st = client.rollout_start("v2", /*mode=*/0);
  for (int i = 0; i < 500 && !st.terminal(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = client.rollout_status();
  }
  ASSERT_EQ(st.state, net::RolloutState::kRolledBack) << st.reason;
  EXPECT_EQ(st.shards[0].state, net::ShardRolloutState::kRolledBack)
      << st.shards[0].detail;
  EXPECT_EQ(st.shards[1].state, net::ShardRolloutState::kFailed)
      << st.shards[1].detail;
  EXPECT_EQ(fx.cluster->backends[0]->store.live_version(), "v1");
  EXPECT_EQ(fx.cluster->backends[1]->store.live_version(), "v1");
  EXPECT_EQ(client.lookup_ids({5}).version, "v1");
}

TEST(Router, CanaryModeRolloutPromotesUnderLiveTraffic) {
  // Per-shard canaries need shadow samples, which need traffic flowing
  // through the router while the rollout walks the shards.
  std::vector<std::pair<std::string, embed::Embedding>> versions;
  const embed::Embedding base = random_embedding(51, kVocab, kDim);
  versions.push_back({"v1", base});
  versions.push_back({"v2", jitter(base, 52, 0.005)});

  std::vector<ShardSpec> specs;
  std::vector<std::unique_ptr<Backend>> backends;
  const std::vector<std::size_t> splits = {0, 300, kVocab};
  for (std::size_t s = 0; s + 1 < splits.size(); ++s) {
    std::vector<std::pair<std::string, embed::Embedding>> sliced;
    for (const auto& [name, source] : versions) {
      sliced.emplace_back(name, slice(source, splits[s], splits[s + 1]));
    }
    net::ServerConfig bc;
    bc.canary.min_shadows = 8;
    bc.canary.max_shadows = 4096;
    bc.canary.promote_agreement = 0.55;
    bc.canary.rollback_agreement = 0.05;
    bc.canary.max_displacement = 0.5;
    bc.gate.max_rows = 256;
    bc.gate.knn_queries = 32;
    backends.push_back(std::make_unique<Backend>(sliced, plain_snap(), bc));
    specs.push_back({"127.0.0.1", backends.back()->port(), splits[s],
                     splits[s + 1]});
  }
  RouterConfig rc;
  rc.map = ShardMap(1, std::move(specs));
  rc.probe_interval_ms = 0;
  rc.rollout_poll_ms = 10;
  Router router(rc);
  router.start();

  net::Client control("127.0.0.1", router.port());
  control.rollout_start("v2", /*mode=*/1, /*fraction=*/0.5,
                        /*shadow_rate=*/1.0);
  // Traffic pump: batched lookups spanning both shards until terminal.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    net::Client traffic("127.0.0.1", router.port());
    Rng rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::size_t> ids(64);
      for (auto& id : ids) id = rng.index(kVocab);
      traffic.lookup_ids(ids);
    }
  });
  net::RolloutStatusReport st = control.rollout_status();
  for (int i = 0; i < 3000 && !st.terminal(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = control.rollout_status();
  }
  stop.store(true, std::memory_order_relaxed);
  pump.join();
  ASSERT_EQ(st.state, net::RolloutState::kCompleted) << st.reason;
  EXPECT_EQ(backends[0]->store.live_version(), "v2");
  EXPECT_EQ(backends[1]->store.live_version(), "v2");
  // Shard decisions happened in order: both promoted by their own canary.
  for (const auto& shard : st.shards) {
    EXPECT_EQ(shard.state, net::ShardRolloutState::kPromoted)
        << shard.detail;
  }
}

TEST(Router, HostileFramesNeverKillTheRouter) {
  RouterFixture fx;
  Rng rng(8181);
  for (int iter = 0; iter < 50; ++iter) {
    try {
      net::TcpStream raw =
          net::TcpStream::connect("127.0.0.1", fx.router->port());
      const int mode = static_cast<int>(rng.index(3));
      if (mode == 0) {
        std::vector<std::uint8_t> bytes(1 + rng.index(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.index(256));
        raw.write_all(bytes.data(), bytes.size());
      } else if (mode == 1) {
        net::WireWriter payload;
        const std::size_t len = rng.index(48);
        for (std::size_t i = 0; i < len; ++i) {
          payload.u8(static_cast<std::uint8_t>(rng.index(256)));
        }
        // All types incl. the rollout ones; never a legitimate shutdown.
        std::uint8_t type_byte =
            static_cast<std::uint8_t>(1 + rng.index(13));
        if (type_byte == static_cast<std::uint8_t>(net::MsgType::kShutdown)) {
          type_byte = 0x7E;
        }
        net::write_frame(raw, static_cast<net::MsgType>(type_byte), payload);
        net::MsgType reply_type{};
        std::vector<std::uint8_t> reply;
        try {
          (void)net::read_frame(raw, &reply_type, &reply);
        } catch (const net::NetError&) {
        } catch (const net::WireError&) {
        }
      } else {
        const std::uint32_t len =
            4 + static_cast<std::uint32_t>(16 + rng.index(1024));
        std::vector<std::uint8_t> partial;
        partial.insert(partial.end(),
                       reinterpret_cast<const std::uint8_t*>(&len),
                       reinterpret_cast<const std::uint8_t*>(&len) + 4);
        partial.push_back(net::kWireMagic);
        partial.push_back(net::kWireVersion);
        partial.push_back(static_cast<std::uint8_t>(net::MsgType::kPing));
        partial.push_back(static_cast<std::uint8_t>(rng.index(256)));
        partial.push_back(0x00);
        raw.write_all(partial.data(), partial.size());
      }
    } catch (const net::NetError&) {
      // Router hanging up mid-write is an allowed outcome.
    }
  }
  // Still healthy for well-formed clients — and the backends never saw
  // any of it (malformed frames die at the router).
  net::Client client("127.0.0.1", fx.router->port());
  client.ping();
  EXPECT_EQ(client.lookup_ids({3}).size(), 1u);
  EXPECT_FALSE(client.lookup_ids({3}).oov[0]);
}

TEST(Router, ReplicatedShardsFailOverAndExportAvailabilityCounters) {
  const embed::Embedding base = random_embedding(37, kVocab, kDim);
  ReplicatedCluster cluster(base, {0, 450, kVocab}, /*replicas=*/2);
  serve::EmbeddingStore reference;
  reference.add_version("v1", base, plain_snap());
  serve::LookupService ref(reference);

  RouterConfig rc;
  rc.map = cluster.map;
  rc.probe_interval_ms = 0;  // health driven by the data plane here
  rc.backend_io_timeout_ms = 1000;
  Router router(rc);
  router.start();

  net::Client client("127.0.0.1", router.port());
  const std::vector<std::size_t> ids = {0, 5, 449, 450, 899};
  EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)));

  // Kill one replica of shard 0: lookups through the router keep full
  // fidelity — failover, not degradation. Several lookups so multiple
  // pool slots (each with its own connections) hit the dead replica.
  const std::uint16_t dead_port = cluster.backends[0][0]->port();
  cluster.backends[0][0]->server->stop();
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(identical(client.lookup_ids(ids), ref.lookup_ids(ids)))
        << "lookup " << i << " after replica kill";
  }
  EXPECT_GE(router.counters().failovers.load(), 1u);
  EXPECT_TRUE(router.health().shard_alive(0));
  EXPECT_FALSE(router.health().healthy(0, 0));

  // The metrics plane shows the event: replicas_alive dropped to 3, the
  // per-replica gauge flipped to 0, failovers_total is nonzero — and
  // degraded_lookups_total stayed at ZERO.
  const obs::MetricsReport report = client.metrics();
  const auto find = [&](const std::string& name) -> const obs::MetricValue* {
    for (const obs::MetricValue& m : report.metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const obs::MetricValue* alive = find("anchor_router_replicas_alive");
  ASSERT_NE(alive, nullptr);
  EXPECT_EQ(alive->gauge, 3.0);
  const obs::MetricValue* degraded =
      find("anchor_router_degraded_lookups_total");
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->counter, 0u);
  const obs::MetricValue* failovers = find("anchor_router_failovers_total");
  ASSERT_NE(failovers, nullptr);
  EXPECT_GE(failovers->counter, 1u);
  const obs::MetricValue* rep_up =
      find("anchor_router_replica_up{shard=\"0\",replica=\"127.0.0.1:" +
           std::to_string(dead_port) + "\"}");
  ASSERT_NE(rep_up, nullptr);
  EXPECT_EQ(rep_up->gauge, 0.0);
  // The hedge-delay gauge renders per shard (default until min_samples).
  const obs::MetricValue* delay =
      find("anchor_router_hedge_delay_us{shard=\"0\"}");
  ASSERT_NE(delay, nullptr);
  EXPECT_GT(delay->gauge, 0.0);
}

// ---- chaos soak --------------------------------------------------------

/// Forked backend process for the chaos soak: serves one row slice with
/// the fault injector ARMED (latency spikes, swallowed replies, dropped
/// connections, truncated frames on every data-plane reply), until the
/// parent SIGKILLs it. Reports its port through `port_fd` when started
/// on an ephemeral port.
int chaos_backend_main(int port_fd, const embed::Embedding& rows,
                       std::uint16_t fixed_port, std::uint64_t seed) {
  serve::EmbeddingStore store;
  store.add_version("v1", rows, plain_snap());
  net::ServerConfig sc;
  sc.port = fixed_port;
  sc.fault_inject = true;
  sc.faults = net::FaultConfig::parse(
      "delay=0.10:15,drop=0.02,close=0.02,truncate=0.02");
  sc.fault_seed = seed;
  net::Server server(store, sc);
  server.start();
  const std::uint16_t port = server.port();
  if (port_fd >= 0) {
    if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) return 1;
    ::close(port_fd);
  }
  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.stop();
  return 0;
}

TEST(ChaosSoak, KillRestartUnderInjectedFaultsNeverDegradesOrDiverges) {
  constexpr std::size_t kCVocab = 400;
  const embed::Embedding base = random_embedding(83, kCVocab, kDim);
  serve::EmbeddingStore refstore;
  refstore.add_version("v1", base, plain_snap());
  serve::LookupService ref(refstore);

  // 2 shards × 2 replicas, every backend a SIGKILLable forked process
  // with fault injection on.
  const std::size_t splits[3] = {0, 200, kCVocab};
  struct Proc {
    pid_t pid = 0;
    std::uint16_t port = 0;
  };
  Proc procs[2][2];
  // Scope-exit reaper: a failed ASSERT_* returns out of the test body,
  // and orphaned fault-injected backends would hold the test's stdout
  // pipe open forever (ctest waits on the pipe, not just the process).
  struct Reaper {
    Proc (&procs)[2][2];
    ~Reaper() {
      for (auto& row : procs) {
        for (Proc& p : row) {
          if (p.pid > 0) {
            ::kill(p.pid, SIGKILL);
            ::waitpid(p.pid, nullptr, 0);
            p.pid = 0;
          }
        }
      }
    }
  } reaper{procs};
  const auto spawn = [&](std::size_t shard, std::size_t rep,
                         std::uint16_t fixed_port) -> bool {
    int fds[2] = {-1, -1};
    if (fixed_port == 0 && ::pipe(fds) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      if (fds[0] >= 0) ::close(fds[0]);
      ::_exit(chaos_backend_main(
          fds[1], slice(base, splits[shard], splits[shard + 1]), fixed_port,
          0x5eedULL + shard * 2 + rep));
    }
    procs[shard][rep].pid = pid;
    if (fixed_port != 0) {
      procs[shard][rep].port = fixed_port;
      return true;
    }
    ::close(fds[1]);
    std::uint16_t port = 0;
    const bool got = ::read(fds[0], &port, sizeof(port)) == sizeof(port);
    ::close(fds[0]);
    procs[shard][rep].port = port;
    return got && port != 0;
  };
  const auto wait_up = [&](std::size_t shard, std::size_t rep) -> bool {
    for (int i = 0; i < 500; ++i) {
      if (ClusterClient::probe("127.0.0.1", procs[shard][rep].port, 200)) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t r = 0; r < 2; ++r) {
      ASSERT_TRUE(spawn(b, r, 0)) << "shard " << b << " replica " << r;
      ASSERT_TRUE(wait_up(b, r)) << "shard " << b << " replica " << r;
    }
  }

  ClusterConfig cc;
  cc.map = ShardMap(
      1, {ShardSpec({{"127.0.0.1", procs[0][0].port},
                     {"127.0.0.1", procs[0][1].port}},
                    0, 200),
          ShardSpec({{"127.0.0.1", procs[1][0].port},
                     {"127.0.0.1", procs[1][1].port}},
                    200, kCVocab)});
  cc.io_timeout_ms = 1000;
  cc.max_attempts = 4;
  auto health = std::make_shared<ClusterHealth>(cc.map);
  auto hedge = std::make_shared<HedgePolicy>(cc.map.num_shards());
  auto counters = std::make_shared<ClusterCounters>();
  ClusterClient client(cc, health, hedge, counters);

  // The soak: pumped traffic, with one replica SIGKILLed every 12th
  // round and restarted ON ITS OLD PORT a few lookups later. Invariants
  // under every fault the harness injects: while each shard keeps ≥ 1
  // live replica, NO lookup ever degrades and every result is
  // bit-identical to the single-process store. The pump is inline
  // (single-threaded) so fork() never runs while another thread holds a
  // lock — the ASan-safe shape.
  Rng rng(4242);
  std::size_t kills = 0;
  for (int round = 0; round < 60; ++round) {
    // The test's stand-in for the router's probe loop: a replica marked
    // down by a transient fault (e.g. a swallowed reply on both racers)
    // gets probed back up, exactly as anchor_router would.
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t r = 0; r < 2; ++r) {
        if (procs[b][r].pid > 0 && !health->healthy(b, r) &&
            ClusterClient::probe("127.0.0.1", procs[b][r].port, 200)) {
          health->mark(b, r, true);
        }
      }
    }
    if (round > 0 && round % 12 == 0) {
      const std::size_t b = (round / 12) % 2;
      const std::size_t r = kills % 2;
      ++kills;
      ::kill(procs[b][r].pid, SIGKILL);
      ::waitpid(procs[b][r].pid, nullptr, 0);
      procs[b][r].pid = 0;
      // Pump straight through the outage: failover, never degradation.
      for (int i = 0; i < 3; ++i) {
        std::vector<std::size_t> ids(24);
        for (auto& id : ids) id = rng.index(kCVocab);
        const serve::LookupResult got = client.lookup_ids(ids);
        ASSERT_FALSE(client.last_degraded())
            << "degraded during outage, round " << round << " lookup " << i
            << " shard_ok=["
            << int(client.last_shard_ok()[0]) << ","
            << int(client.last_shard_ok()[1]) << "] health=["
            << health->healthy(0, 0) << health->healthy(0, 1) << ","
            << health->healthy(1, 0) << health->healthy(1, 1) << "]";
        ASSERT_TRUE(identical(got, ref.lookup_ids(ids)))
            << "diverged during outage, round " << round;
      }
      ASSERT_TRUE(spawn(b, r, procs[b][r].port)) << "restart failed";
      ASSERT_TRUE(wait_up(b, r)) << "restarted replica never answered";
      health->mark(b, r, true);
    }
    std::vector<std::size_t> ids(1 + rng.index(48));
    for (auto& id : ids) id = rng.index(kCVocab + 10);  // some OOV too
    const serve::LookupResult got = client.lookup_ids(ids);
    ASSERT_FALSE(client.last_degraded()) << "degraded, round " << round;
    ASSERT_TRUE(identical(got, ref.lookup_ids(ids)))
        << "diverged, round " << round;
  }
  EXPECT_EQ(kills, 4u);
  // The soak exercised the machinery it claims to: replicas died and
  // traffic moved (fault injection alone also bumps retries).
  EXPECT_GT(counters->failovers.load() + counters->retries.load(), 0u);
}

TEST(Router, ShutdownRpcStopsTheRouterAndForwardsWhenConfigured) {
  const embed::Embedding base = random_embedding(61, kVocab, kDim);
  Cluster cluster({{"v1", base}}, {0, kVocab / 2, kVocab}, plain_snap());
  RouterConfig rc;
  rc.map = cluster.map;
  rc.probe_interval_ms = 0;
  rc.forward_shutdown = true;
  Router router(rc);
  router.start();
  {
    net::Client client("127.0.0.1", router.port());
    client.shutdown_server();
  }
  for (int i = 0; i < 200 && !router.shutdown_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(router.shutdown_requested());
  router.stop();
  // The forwarded shutdown reached both backends.
  for (const auto& backend : cluster.backends) {
    for (int i = 0; i < 200 && !backend->server->shutdown_requested(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(backend->server->shutdown_requested());
  }
}

}  // namespace
}  // namespace anchor::cluster
