// util::ThreadPool — the parallelism substrate under the measure layer.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace anchor {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  for (const std::size_t n : {0u, 1u, 3u, 64u, 1000u}) {
    std::vector<std::atomic<int>> counts(n);
    pool.parallel_for(0, n, [&](std::size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForHonorsNonZeroBegin) {
  util::ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(40, 70, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 40 && i < 70) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, IndependentSlotWritesAreDeterministicAcrossPoolSizes) {
  std::vector<double> reference;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    util::ThreadPool pool(threads);
    std::vector<double> out(512);
    pool.parallel_for(0, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 - 3.0;
    });
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_EQ(reference, out) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  auto fut = pool.submit([&] {
    EXPECT_TRUE(util::ThreadPool::on_worker_thread());
    // Nested loop must complete without needing a free pool slot (the
    // worker drains the chunks itself if nobody else picks them up).
    pool.parallel_for(0, 10, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    return true;
  });
  EXPECT_TRUE(fut.get());
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, ParallelForOnSaturatedPoolDoesNotDeadlock) {
  util::ThreadPool pool(2);
  // Saturate every worker, then run a parallel_for from the caller: the
  // caller-drains design must finish the loop with no free worker at all.
  std::atomic<bool> release{false};
  auto b1 = pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
    return true;
  });
  auto b2 = pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
    return true;
  });
  std::atomic<int> done{0};
  pool.parallel_for(0, 100, [&](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 100);
  release.store(true);
  EXPECT_TRUE(b1.get());
  EXPECT_TRUE(b2.get());
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionAfterQuiescing) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  const auto loop = [&] {
    pool.parallel_for(0, 64, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 17) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(loop(), std::runtime_error);
  // The loop quiesced before rethrowing: all chunks ran except the tail of
  // the one that threw (no helper is left touching freed state — ASan
  // covers the use-after-free half of this contract).
  EXPECT_GE(ran.load(), 18);
  EXPECT_LE(ran.load(), 64);
}

TEST(ThreadPool, GlobalPoolResizes) {
  util::set_global_pool_threads(3);
  EXPECT_EQ(util::global_pool_threads(), 3u);
  util::set_global_pool_threads(0);  // back to default sizing
  EXPECT_GE(util::global_pool_threads(), 1u);
}

}  // namespace
}  // namespace anchor
