// Tests for prediction-churn stabilization in the linear BOW model
// (Fard et al., 2016): λ = 0 reproduces plain training, churn to the anchor
// model falls as λ grows, and the API rejects inconsistent inputs.
#include <gtest/gtest.h>

#include "core/instability.hpp"
#include "model/linear_bow.hpp"
#include "tasks/sentiment.hpp"
#include "text/latent_space.hpp"
#include "util/rng.hpp"

namespace anchor::model {
namespace {

struct Fixture {
  text::LatentSpace space;
  tasks::TextClassificationDataset ds;
  embed::Embedding old_embedding;  // "last month's" embedding
  embed::Embedding new_embedding;  // retrained, drifted

  static Fixture make() {
    text::LatentSpaceConfig lsc;
    lsc.vocab_size = 200;
    lsc.latent_dim = 8;
    lsc.seed = 23;
    text::LatentSpace space(lsc);
    tasks::SentimentTaskConfig tc;
    tc.train_size = 600;
    tc.val_size = 100;
    tc.test_size = 400;
    tasks::TextClassificationDataset ds = tasks::make_sentiment_task(space, tc);

    // Two noisy views of the ground-truth vectors stand in for the
    // Wiki'17/Wiki'18 embedding pair; enough to create genuine churn.
    Rng rng(5);
    embed::Embedding old_e =
        embed::Embedding::from_matrix(space.word_vectors());
    embed::Embedding new_e = old_e;
    for (auto& x : old_e.data) x += static_cast<float>(rng.normal(0.0, 0.25));
    for (auto& x : new_e.data) x += static_cast<float>(rng.normal(0.0, 0.25));
    return {std::move(space), std::move(ds), std::move(old_e),
            std::move(new_e)};
  }
};

double churn(const LinearBowClassifier& a, const LinearBowClassifier& b,
             const std::vector<std::vector<std::int32_t>>& test) {
  return core::prediction_disagreement_pct(a.predict_all(test),
                                           b.predict_all(test));
}

double accuracy(const LinearBowClassifier& m,
                const std::vector<std::vector<std::int32_t>>& test,
                const std::vector<std::int32_t>& labels) {
  const auto preds = m.predict_all(test);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == labels[i] ? 1 : 0;
  }
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(preds.size());
}

TEST(Stabilizer, ProbabilitiesAreValidDistributions) {
  const Fixture f = Fixture::make();
  LinearBowConfig mc;
  const LinearBowClassifier m(f.old_embedding, f.ds.train_sentences,
                              f.ds.train_labels, mc);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto p = m.probabilities(f.ds.test_sentences[i]);
    ASSERT_EQ(p.size(), 2u);
    double sum = 0.0;
    for (const float v : p) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    // argmax of probabilities must agree with predict().
    EXPECT_EQ(m.predict(f.ds.test_sentences[i]),
              p[1] > p[0] ? 1 : 0);
  }
}

TEST(Stabilizer, LambdaZeroWithoutAnchorMatchesPlainTraining) {
  const Fixture f = Fixture::make();
  LinearBowConfig mc;
  const LinearBowClassifier plain(f.new_embedding, f.ds.train_sentences,
                                  f.ds.train_labels, mc);
  mc.stabilization_lambda = 0.0f;
  const LinearBowClassifier zero(f.new_embedding, f.ds.train_sentences,
                                 f.ds.train_labels, mc, nullptr);
  EXPECT_EQ(plain.predict_all(f.ds.test_sentences),
            zero.predict_all(f.ds.test_sentences));
}

TEST(Stabilizer, ChurnDecreasesWithLambda) {
  const Fixture f = Fixture::make();
  LinearBowConfig mc;
  const LinearBowClassifier old_model(f.old_embedding, f.ds.train_sentences,
                                      f.ds.train_labels, mc);
  const auto anchor = old_model.probabilities_all(f.ds.train_sentences);

  std::vector<double> churns;
  for (const float lambda : {0.0f, 0.5f, 0.9f}) {
    LinearBowConfig sc = mc;
    sc.stabilization_lambda = lambda;
    const LinearBowClassifier next(
        f.new_embedding, f.ds.train_sentences, f.ds.train_labels, sc,
        lambda > 0.0f ? &anchor : nullptr);
    churns.push_back(churn(old_model, next, f.ds.test_sentences));
  }
  EXPECT_LT(churns[2], churns[0])
      << "strong stabilization must reduce churn vs plain retraining";
  EXPECT_LE(churns[1], churns[0] + 0.5)
      << "moderate stabilization must not increase churn";
}

TEST(Stabilizer, StrongStabilizationKeepsUsableAccuracy) {
  const Fixture f = Fixture::make();
  LinearBowConfig mc;
  const LinearBowClassifier old_model(f.old_embedding, f.ds.train_sentences,
                                      f.ds.train_labels, mc);
  const auto anchor = old_model.probabilities_all(f.ds.train_sentences);

  LinearBowConfig sc = mc;
  sc.stabilization_lambda = 0.5f;
  const LinearBowClassifier stabilized(f.new_embedding, f.ds.train_sentences,
                                       f.ds.train_labels, sc, &anchor);
  const LinearBowClassifier plain(f.new_embedding, f.ds.train_sentences,
                                  f.ds.train_labels, mc);
  const double acc_plain =
      accuracy(plain, f.ds.test_sentences, f.ds.test_labels);
  const double acc_stab =
      accuracy(stabilized, f.ds.test_sentences, f.ds.test_labels);
  EXPECT_GT(acc_stab, 55.0);
  EXPECT_GT(acc_stab, acc_plain - 10.0)
      << "λ=0.5 must not collapse accuracy";
}

TEST(Stabilizer, RejectsInconsistentInputs) {
  const Fixture f = Fixture::make();
  LinearBowConfig mc;
  mc.stabilization_lambda = 0.5f;
  // Missing anchor with lambda > 0.
  EXPECT_THROW(LinearBowClassifier(f.new_embedding, f.ds.train_sentences,
                                   f.ds.train_labels, mc, nullptr),
               CheckError);
  // Anchor supplied with lambda == 0.
  mc.stabilization_lambda = 0.0f;
  const std::vector<std::vector<float>> anchor(f.ds.train_sentences.size(),
                                               {0.5f, 0.5f});
  EXPECT_THROW(LinearBowClassifier(f.new_embedding, f.ds.train_sentences,
                                   f.ds.train_labels, mc, &anchor),
               CheckError);
  // Wrong anchor size.
  mc.stabilization_lambda = 0.5f;
  const std::vector<std::vector<float>> short_anchor(3, {0.5f, 0.5f});
  EXPECT_THROW(LinearBowClassifier(f.new_embedding, f.ds.train_sentences,
                                   f.ds.train_labels, mc, &short_anchor),
               CheckError);
  // Out-of-range lambda.
  mc.stabilization_lambda = 1.5f;
  EXPECT_THROW(LinearBowClassifier(f.new_embedding, f.ds.train_sentences,
                                   f.ds.train_labels, mc, &anchor),
               CheckError);
}

}  // namespace
}  // namespace anchor::model
