// Tests for the embedding algorithms: CBOW, GloVe, MC, fastText-subword.
// Training quality is asserted structurally: embeddings must recover the
// latent topic structure (same-topic words more similar than cross-topic).
#include <gtest/gtest.h>

#include <cmath>

#include "embed/negative_sampling.hpp"
#include "embed/trainer.hpp"
#include "text/cooc.hpp"
#include "util/rng.hpp"

namespace anchor::embed {
namespace {

text::LatentSpace test_space() {
  text::LatentSpaceConfig c;
  c.vocab_size = 150;
  c.latent_dim = 8;
  c.num_topics = 5;
  c.seed = 21;
  return text::LatentSpace(c);
}

text::Corpus test_corpus(const text::LatentSpace& space) {
  text::CorpusConfig c;
  c.num_documents = 250;
  c.sentences_per_document = 3;
  c.tokens_per_sentence = 12;
  c.seed = 4;
  return text::generate_corpus(space, c);
}

/// Average cosine similarity among same-topic pairs minus cross-topic pairs,
/// over moderately frequent words. Positive = topic structure recovered.
double topic_separation(const Embedding& e, const text::LatentSpace& space) {
  double same = 0.0, cross = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  const std::size_t lo = 5, hi = 80;  // skip stopword-like head
  for (std::size_t a = lo; a < hi; ++a) {
    for (std::size_t b = a + 1; b < hi; ++b) {
      const double cs = e.cosine(a, b);
      if (space.word_topics()[a] == space.word_topics()[b]) {
        same += cs;
        ++same_n;
      } else {
        cross += cs;
        ++cross_n;
      }
    }
  }
  return same / static_cast<double>(same_n) -
         cross / static_cast<double>(cross_n);
}

TEST(Embedding, MatrixRoundTrip) {
  Embedding e(3, 2);
  e.row(1)[0] = 1.5f;
  e.row(2)[1] = -2.0f;
  const Embedding back = Embedding::from_matrix(e.to_matrix());
  EXPECT_EQ(back.data, e.data);
  EXPECT_EQ(back.vocab_size, 3u);
  EXPECT_EQ(back.dim, 2u);
}

TEST(Embedding, CosineOracle) {
  Embedding e(3, 2);
  e.row(0)[0] = 1.0f;
  e.row(1)[0] = 2.0f;            // parallel to row 0
  e.row(2)[1] = 1.0f;            // orthogonal to row 0
  EXPECT_NEAR(e.cosine(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(e.cosine(0, 2), 0.0, 1e-6);
}

TEST(Embedding, CosineZeroRowIsZero) {
  Embedding e(2, 2);
  e.row(0)[0] = 1.0f;
  EXPECT_DOUBLE_EQ(e.cosine(0, 1), 0.0);
}

TEST(Embedding, AlgoNames) {
  EXPECT_EQ(algo_name(Algo::kCbow), "CBOW");
  EXPECT_EQ(algo_name(Algo::kGloVe), "GloVe");
  EXPECT_EQ(algo_name(Algo::kMc), "MC");
  EXPECT_EQ(algo_name(Algo::kFastText), "FT-SG");
}

TEST(UnigramTable, SamplesProportionalToSmoothedCounts) {
  const std::vector<std::int64_t> counts = {1000, 100, 0};
  UnigramTable table(counts, 0.75, 1u << 16);
  Rng rng(1);
  int hits[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++hits[table.sample(rng)];
  EXPECT_EQ(hits[2], 0);  // zero-count word never drawn
  const double ratio = static_cast<double>(hits[0]) / hits[1];
  // Expected ratio = (1000/100)^0.75 ≈ 5.62.
  EXPECT_NEAR(ratio, std::pow(10.0, 0.75), 1.2);
}

TEST(Sigmoid, ValuesAndClamping) {
  EXPECT_NEAR(sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6);
  EXPECT_GT(sigmoid(1.0f), sigmoid(-1.0f));
}

struct AlgoCase {
  Algo algo;
  double min_separation;
};

class EmbeddingAlgoTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(EmbeddingAlgoTest, RecoversTopicStructure) {
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  TrainOptions opts;
  opts.dim = 16;
  opts.seed = 1;
  const Embedding e = train_embedding(corpus, GetParam().algo, opts);
  EXPECT_EQ(e.vocab_size, space.vocab_size());
  EXPECT_EQ(e.dim, 16u);
  for (const float v : e.data) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(topic_separation(e, space), GetParam().min_separation);
}

TEST_P(EmbeddingAlgoTest, DeterministicGivenSeed) {
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  TrainOptions opts;
  opts.dim = 8;
  opts.seed = 7;
  const Embedding a = train_embedding(corpus, GetParam().algo, opts);
  const Embedding b = train_embedding(corpus, GetParam().algo, opts);
  EXPECT_EQ(a.data, b.data);
}

TEST_P(EmbeddingAlgoTest, SeedChangesResult) {
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  TrainOptions a_opts;
  a_opts.dim = 8;
  a_opts.seed = 1;
  TrainOptions b_opts = a_opts;
  b_opts.seed = 2;
  const Embedding a = train_embedding(corpus, GetParam().algo, a_opts);
  const Embedding b = train_embedding(corpus, GetParam().algo, b_opts);
  EXPECT_NE(a.data, b.data);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, EmbeddingAlgoTest,
    ::testing::Values(AlgoCase{Algo::kCbow, 0.05},
                      AlgoCase{Algo::kGloVe, 0.05},
                      AlgoCase{Algo::kMc, 0.05},
                      AlgoCase{Algo::kFastText, 0.03}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      std::string name = algo_name(info.param.algo);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Mc, ApproximatesPpmiBetterThanInit) {
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  text::CoocConfig cc;
  cc.distance_weighting = false;
  const text::CoocMatrix a = text::ppmi(count_cooccurrences(corpus, cc));

  McConfig config;
  config.dim = 16;
  config.seed = 3;
  const Embedding trained = train_mc(a, config);

  McConfig no_train = config;
  no_train.epochs = 1;
  no_train.learning_rate = 0.0f;
  const Embedding init = train_mc(a, no_train);

  auto loss = [&](const Embedding& e) {
    double acc = 0.0;
    for (const auto& cell : a.entries) {
      const float* xi = e.row(static_cast<std::size_t>(cell.row));
      const float* xj = e.row(static_cast<std::size_t>(cell.col));
      double dot = 0.0;
      for (std::size_t k = 0; k < e.dim; ++k) dot += static_cast<double>(xi[k]) * xj[k];
      acc += (dot - cell.value) * (dot - cell.value);
    }
    return acc / static_cast<double>(a.entries.size());
  };
  EXPECT_LT(loss(trained), 0.5 * loss(init));
}

TEST(Glove, FitsLogCooccurrence) {
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  const text::CoocMatrix cooc =
      count_cooccurrences(corpus, text::CoocConfig{});

  GloveConfig config;
  config.dim = 16;
  config.seed = 3;
  const Embedding e = train_glove(cooc, config);

  // Frequent pairs should have larger dot products than absent pairs: check
  // correlation between dot(Xi,Xj) and log count over observed cells vs a
  // shuffled control.
  double corr_num = 0.0;
  double sum_dot = 0.0, sum_log = 0.0, sum_dot2 = 0.0, sum_log2 = 0.0;
  const std::size_t n = std::min<std::size_t>(cooc.entries.size(), 3000);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cell = cooc.entries[i];
    const float* xi = e.row(static_cast<std::size_t>(cell.row));
    const float* xj = e.row(static_cast<std::size_t>(cell.col));
    double dot = 0.0;
    for (std::size_t k = 0; k < e.dim; ++k) dot += static_cast<double>(xi[k]) * xj[k];
    const double lv = std::log(cell.value);
    corr_num += dot * lv;
    sum_dot += dot;
    sum_log += lv;
    sum_dot2 += dot * dot;
    sum_log2 += lv * lv;
  }
  const double nn = static_cast<double>(n);
  const double cov = corr_num / nn - (sum_dot / nn) * (sum_log / nn);
  const double var_d = sum_dot2 / nn - (sum_dot / nn) * (sum_dot / nn);
  const double var_l = sum_log2 / nn - (sum_log / nn) * (sum_log / nn);
  const double corr = cov / std::sqrt(var_d * var_l);
  EXPECT_GT(corr, 0.3);
}

TEST(FastText, NgramBucketsDeterministicAndBounded) {
  FastTextConfig config;
  config.bucket_count = 1024;
  const auto a = word_ngram_buckets("w0042", config);
  const auto b = word_ngram_buckets("w0042", config);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  for (const auto bucket : a) EXPECT_LT(bucket, 1024u);
}

TEST(FastText, SharedSubstringsShareBuckets) {
  FastTextConfig config;
  // "w0042" and "w0043" share the n-grams of their common prefix.
  const auto a = word_ngram_buckets("w0042", config);
  const auto b = word_ngram_buckets("w0043", config);
  std::size_t shared = 0;
  for (const auto x : a) {
    for (const auto y : b) shared += (x == y);
  }
  EXPECT_GT(shared, 0u);
}

TEST(FastText, ShortWordHasFewerNgramsThanLong) {
  FastTextConfig config;
  EXPECT_LT(word_ngram_buckets("ab", config).size(),
            word_ngram_buckets("abcdefgh", config).size());
}

TEST(Trainer, EpochScaleReducesWork) {
  // Structural check: epoch_scale is honored (result differs from default).
  const text::LatentSpace space = test_space();
  const text::Corpus corpus = test_corpus(space);
  TrainOptions full;
  full.dim = 8;
  full.seed = 1;
  TrainOptions quick = full;
  quick.epoch_scale = 0.2;
  const Embedding a = train_embedding(corpus, Algo::kCbow, full);
  const Embedding b = train_embedding(corpus, Algo::kCbow, quick);
  EXPECT_NE(a.data, b.data);
}

}  // namespace
}  // namespace anchor::embed
