// Tests for the extension embedding algorithms: skip-gram negative sampling
// and PPMI-SVD. Both must produce usable semantic structure on a corpus with
// planted word clusters, behave deterministically given the seed, and plug
// into the unified trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "embed/ppmi_svd.hpp"
#include "embed/sgns.hpp"
#include "embed/trainer.hpp"
#include "text/cooc.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"

namespace anchor::embed {
namespace {

/// Small corpus whose latent space plants topical word clusters; words that
/// share a topic co-occur far more often than cross-topic pairs.
text::Corpus tiny_corpus(std::uint64_t seed = 1) {
  text::LatentSpaceConfig lsc;
  lsc.vocab_size = 120;
  lsc.latent_dim = 6;
  lsc.num_topics = 4;
  lsc.seed = 11;
  const text::LatentSpace space(lsc);
  text::CorpusConfig cc;
  cc.num_documents = 150;
  cc.sentences_per_document = 3;
  cc.tokens_per_sentence = 12;
  cc.seed = seed;
  return text::generate_corpus(space, cc);
}

/// Mean within-sentence-cohort cosine minus random-pair cosine: positive
/// when the embedding has learned co-occurrence structure.
double semantic_signal(const Embedding& e, const text::Corpus& corpus) {
  double within = 0.0;
  std::size_t within_n = 0;
  for (std::size_t s = 0; s < std::min<std::size_t>(corpus.sentences.size(), 60);
       ++s) {
    const auto& sent = corpus.sentences[s];
    for (std::size_t i = 0; i + 1 < sent.size(); i += 2) {
      within += e.cosine(static_cast<std::size_t>(sent[i]),
                         static_cast<std::size_t>(sent[i + 1]));
      ++within_n;
    }
  }
  double random = 0.0;
  std::size_t random_n = 0;
  for (std::size_t a = 0; a < e.vocab_size; a += 7) {
    for (std::size_t b = a + 31; b < e.vocab_size; b += 37) {
      random += e.cosine(a, b);
      ++random_n;
    }
  }
  return within / static_cast<double>(within_n) -
         random / static_cast<double>(random_n);
}

TEST(Sgns, ShapesAndDeterminism) {
  const text::Corpus corpus = tiny_corpus();
  SgnsConfig config;
  config.dim = 12;
  config.epochs = 2;
  config.seed = 5;
  const Embedding a = train_sgns(corpus, config);
  const Embedding b = train_sgns(corpus, config);
  EXPECT_EQ(a.vocab_size, corpus.vocab_size);
  EXPECT_EQ(a.dim, 12u);
  EXPECT_EQ(a.data, b.data) << "same seed must give bit-identical output";
}

TEST(Sgns, DifferentSeedsDiffer) {
  const text::Corpus corpus = tiny_corpus();
  SgnsConfig config;
  config.dim = 12;
  config.epochs = 1;
  config.seed = 5;
  const Embedding a = train_sgns(corpus, config);
  config.seed = 6;
  const Embedding b = train_sgns(corpus, config);
  EXPECT_NE(a.data, b.data);
}

TEST(Sgns, LearnsCooccurrenceStructure) {
  const text::Corpus corpus = tiny_corpus();
  SgnsConfig config;
  config.dim = 16;
  config.epochs = 8;
  const Embedding e = train_sgns(corpus, config);
  EXPECT_GT(semantic_signal(e, corpus), 0.05)
      << "within-sentence words should be more similar than random pairs";
}

TEST(Sgns, RejectsZeroDimension) {
  const text::Corpus corpus = tiny_corpus();
  SgnsConfig config;
  config.dim = 0;
  EXPECT_THROW(train_sgns(corpus, config), CheckError);
}

TEST(PpmiSvd, ShapesAndDeterminism) {
  const text::Corpus corpus = tiny_corpus();
  const text::CoocMatrix a =
      text::ppmi(text::count_cooccurrences(corpus, {}));
  PpmiSvdConfig config;
  config.dim = 10;
  const Embedding x = train_ppmi_svd(a, config);
  const Embedding y = train_ppmi_svd(a, config);
  EXPECT_EQ(x.vocab_size, corpus.vocab_size);
  EXPECT_EQ(x.dim, 10u);
  EXPECT_EQ(x.data, y.data);
}

TEST(PpmiSvd, ColumnsAreEigenvalueOrdered) {
  const text::Corpus corpus = tiny_corpus();
  const text::CoocMatrix a =
      text::ppmi(text::count_cooccurrences(corpus, {}));
  PpmiSvdConfig config;
  config.dim = 8;
  const Embedding x = train_ppmi_svd(a, config);
  // Column norms are λ^p (orthonormal eigenvector scaled), so they must be
  // non-increasing left to right.
  std::vector<double> norms(8, 0.0);
  for (std::size_t w = 0; w < x.vocab_size; ++w) {
    for (std::size_t j = 0; j < 8; ++j) {
      norms[j] += static_cast<double>(x.row(w)[j]) * x.row(w)[j];
    }
  }
  for (std::size_t j = 1; j < 8; ++j) {
    EXPECT_LE(norms[j], norms[j - 1] * (1.0 + 1e-9)) << "column " << j;
  }
}

TEST(PpmiSvd, GramApproximatesPpmi) {
  // With dim close to the effective rank, X·Xᵀ (p=0.5 ⇒ X·Xᵀ = U·Λ·Uᵀ)
  // should capture most of the PPMI matrix's spectral mass.
  const text::Corpus corpus = tiny_corpus();
  const text::CoocMatrix a =
      text::ppmi(text::count_cooccurrences(corpus, {}));
  PpmiSvdConfig config;
  config.dim = 40;
  const Embedding x = train_ppmi_svd(a, config);

  // Compare Frobenius mass of the reconstruction against the full matrix on
  // the stored cells.
  double recon_dot = 0.0, full_sq = 0.0;
  for (const auto& cell : a.entries) {
    const float* ri = x.row(static_cast<std::size_t>(cell.row));
    const float* rj = x.row(static_cast<std::size_t>(cell.col));
    double dot = 0.0;
    for (std::size_t j = 0; j < x.dim; ++j) {
      dot += static_cast<double>(ri[j]) * rj[j];
    }
    recon_dot += dot * cell.value;
    full_sq += cell.value * cell.value;
  }
  // ⟨X·Xᵀ, A⟩ / ‖A‖² is the captured spectral fraction (≤ 1 for PSD parts).
  EXPECT_GT(recon_dot / full_sq, 0.5);
}

TEST(PpmiSvd, LearnsCooccurrenceStructure) {
  const text::Corpus corpus = tiny_corpus();
  const text::CoocMatrix a =
      text::ppmi(text::count_cooccurrences(corpus, {}));
  PpmiSvdConfig config;
  config.dim = 16;
  const Embedding e = train_ppmi_svd(a, config);
  EXPECT_GT(semantic_signal(e, corpus), 0.05);
}

TEST(PpmiSvd, RejectsDimNotBelowVocab) {
  const text::Corpus corpus = tiny_corpus();
  const text::CoocMatrix a =
      text::ppmi(text::count_cooccurrences(corpus, {}));
  PpmiSvdConfig config;
  config.dim = corpus.vocab_size;
  EXPECT_THROW(train_ppmi_svd(a, config), CheckError);
}

TEST(Trainer, DispatchesSgnsAndPpmiSvd) {
  const text::Corpus corpus = tiny_corpus();
  TrainOptions options;
  options.dim = 8;
  options.epoch_scale = 0.4;
  const Embedding sgns = train_embedding(corpus, Algo::kSgns, options);
  const Embedding svd = train_embedding(corpus, Algo::kPpmiSvd, options);
  EXPECT_EQ(sgns.dim, 8u);
  EXPECT_EQ(svd.dim, 8u);
  EXPECT_EQ(sgns.vocab_size, corpus.vocab_size);
  EXPECT_EQ(svd.vocab_size, corpus.vocab_size);
}

TEST(Trainer, NewAlgosHaveNames) {
  EXPECT_EQ(algo_name(Algo::kSgns), "SGNS");
  EXPECT_EQ(algo_name(Algo::kPpmiSvd), "PPMI-SVD");
}

class SgnsDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SgnsDims, OutputDimMatchesConfig) {
  const text::Corpus corpus = tiny_corpus();
  SgnsConfig config;
  config.dim = GetParam();
  config.epochs = 1;
  const Embedding e = train_sgns(corpus, config);
  EXPECT_EQ(e.dim, GetParam());
  for (const float v : e.data) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Dims, SgnsDims,
                         ::testing::Values<std::size_t>(4, 8, 16, 32));

}  // namespace
}  // namespace anchor::embed
