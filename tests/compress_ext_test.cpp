// Tests for the extension compressors: scalar k-means quantization and
// product quantization. Both must (a) respect their code-width budget,
// (b) beat-or-match uniform quantization's distortion at the same bits,
// (c) support the shared-codebook protocol between a pair of embeddings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "compress/kmeans.hpp"
#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "util/rng.hpp"

namespace anchor::compress {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  embed::Embedding e(vocab, dim);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 0.3));
  return e;
}

double mse(const embed::Embedding& a, const embed::Embedding& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    const double d = static_cast<double>(a.data[i]) - b.data[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data.size());
}

// --- scalar k-means ---

TEST(KmeansQuantize, FullPrecisionIsPassthrough) {
  const embed::Embedding e = random_embedding(40, 8, 1);
  KmeansConfig config;
  config.bits = 32;
  const KmeansResult r = kmeans_quantize(e, config);
  EXPECT_EQ(r.embedding.data, e.data);
}

TEST(KmeansQuantize, RespectsLevelBudget) {
  const embed::Embedding e = random_embedding(100, 16, 2);
  for (const int bits : {1, 2, 4}) {
    KmeansConfig config;
    config.bits = bits;
    const KmeansResult r = kmeans_quantize(e, config);
    std::set<float> levels(r.embedding.data.begin(), r.embedding.data.end());
    EXPECT_LE(levels.size(), std::size_t{1} << bits) << "bits=" << bits;
    for (const float v : r.embedding.data) {
      EXPECT_TRUE(std::binary_search(r.codebook.begin(), r.codebook.end(), v));
    }
  }
}

TEST(KmeansQuantize, DistortionDecreasesWithBits) {
  const embed::Embedding e = random_embedding(200, 16, 3);
  double prev = 1e300;
  for (const int bits : {1, 2, 4, 8}) {
    KmeansConfig config;
    config.bits = bits;
    const KmeansResult r = kmeans_quantize(e, config);
    EXPECT_LT(r.distortion, prev) << "bits=" << bits;
    EXPECT_NEAR(r.distortion, mse(e, r.embedding), 1e-12);
    prev = r.distortion;
  }
}

TEST(KmeansQuantize, AtMostUniformDistortionOnGaussianData) {
  // Lloyd's algorithm optimizes exactly the distortion uniform quantization
  // approximates; on Gaussian entries it must not lose.
  const embed::Embedding e = random_embedding(300, 32, 4);
  for (const int bits : {2, 4}) {
    KmeansConfig kc;
    kc.bits = bits;
    const KmeansResult km = kmeans_quantize(e, kc);
    QuantizeConfig uc;
    uc.bits = bits;
    const QuantizeResult un = uniform_quantize(e, uc);
    EXPECT_LE(km.distortion, mse(e, un.embedding) * 1.02) << "bits=" << bits;
  }
}

TEST(KmeansQuantize, CodebookOverrideIsUsedVerbatim) {
  const embed::Embedding e = random_embedding(50, 8, 5);
  KmeansConfig learn;
  learn.bits = 2;
  const KmeansResult first = kmeans_quantize(e, learn);

  const embed::Embedding e2 = random_embedding(50, 8, 6);
  KmeansConfig reuse;
  reuse.bits = 2;
  reuse.codebook_override = first.codebook;
  const KmeansResult second = kmeans_quantize(e2, reuse);
  EXPECT_EQ(second.codebook, first.codebook);
  for (const float v : second.embedding.data) {
    EXPECT_TRUE(std::binary_search(first.codebook.begin(),
                                   first.codebook.end(), v));
  }
}

TEST(KmeansQuantize, RejectsBadConfigs) {
  const embed::Embedding e = random_embedding(10, 4, 7);
  KmeansConfig config;
  config.bits = 0;
  EXPECT_THROW(kmeans_quantize(e, config), CheckError);
  config.bits = 2;
  config.codebook_override = {0.1f, 0.2f};  // needs 4 entries for 2 bits
  EXPECT_THROW(kmeans_quantize(e, config), CheckError);
  config.codebook_override = {0.3f, 0.2f, 0.4f, 0.5f};  // unsorted
  EXPECT_THROW(kmeans_quantize(e, config), CheckError);
}

TEST(KmeansQuantize, DeterministicAcrossRuns) {
  const embed::Embedding e = random_embedding(80, 8, 8);
  KmeansConfig config;
  config.bits = 3;
  const KmeansResult a = kmeans_quantize(e, config);
  const KmeansResult b = kmeans_quantize(e, config);
  EXPECT_EQ(a.embedding.data, b.embedding.data);
  EXPECT_EQ(a.codebook, b.codebook);
}

// --- product quantization ---

TEST(PqQuantize, ShapesAndCodeRange) {
  const embed::Embedding e = random_embedding(60, 16, 9);
  PqConfig config;
  config.num_subvectors = 4;
  config.bits = 3;
  const PqResult r = pq_quantize(e, config);
  EXPECT_EQ(r.embedding.vocab_size, 60u);
  EXPECT_EQ(r.embedding.dim, 16u);
  EXPECT_EQ(r.codes.size(), 60u * 4u);
  for (const std::uint32_t c : r.codes) EXPECT_LT(c, 8u);
  EXPECT_EQ(r.codebooks.size(), 4u);
  EXPECT_EQ(r.bits_per_word(), 12u);  // m·b = 4·3
}

TEST(PqQuantize, ReconstructionUsesAssignedCentroids) {
  const embed::Embedding e = random_embedding(30, 8, 10);
  PqConfig config;
  config.num_subvectors = 2;
  config.bits = 2;
  const PqResult r = pq_quantize(e, config);
  const std::size_t sub_dim = 4;
  for (std::size_t w = 0; w < 30; ++w) {
    for (std::size_t s = 0; s < 2; ++s) {
      const std::uint32_t code = r.codes[w * 2 + s];
      const float* centroid = r.codebooks[s].data() + code * sub_dim;
      for (std::size_t j = 0; j < sub_dim; ++j) {
        EXPECT_EQ(r.embedding.row(w)[s * sub_dim + j], centroid[j]);
      }
    }
  }
}

TEST(PqQuantize, DistortionDecreasesWithBits) {
  const embed::Embedding e = random_embedding(150, 16, 11);
  double prev = 1e300;
  for (const int bits : {1, 2, 4, 6}) {
    PqConfig config;
    config.num_subvectors = 4;
    config.bits = bits;
    const PqResult r = pq_quantize(e, config);
    EXPECT_LE(r.distortion, prev * (1.0 + 1e-9)) << "bits=" << bits;
    prev = r.distortion;
  }
}

TEST(PqQuantize, MoreSubvectorsReduceDistortionAtFixedCodeWidth) {
  const embed::Embedding e = random_embedding(150, 16, 12);
  PqConfig coarse;
  coarse.num_subvectors = 2;
  coarse.bits = 4;
  PqConfig fine;
  fine.num_subvectors = 8;
  fine.bits = 4;
  EXPECT_LE(pq_quantize(e, fine).distortion,
            pq_quantize(e, coarse).distortion * 1.05);
}

TEST(PqQuantize, CodebookOverrideSharedBetweenPair) {
  const embed::Embedding e17 = random_embedding(40, 8, 13);
  const embed::Embedding e18 = random_embedding(40, 8, 14);
  PqConfig learn;
  learn.num_subvectors = 2;
  learn.bits = 2;
  const PqResult first = pq_quantize(e17, learn);

  PqConfig reuse = learn;
  reuse.codebooks_override = first.codebooks;
  const PqResult second = pq_quantize(e18, reuse);
  EXPECT_EQ(second.codebooks, first.codebooks);
}

TEST(PqQuantize, RejectsBadConfigs) {
  const embed::Embedding e = random_embedding(10, 6, 15);
  PqConfig config;
  config.num_subvectors = 4;  // does not divide dim=6
  config.bits = 2;
  EXPECT_THROW(pq_quantize(e, config), CheckError);
  config.num_subvectors = 0;
  EXPECT_THROW(pq_quantize(e, config), CheckError);
  config.num_subvectors = 2;
  config.bits = 0;
  EXPECT_THROW(pq_quantize(e, config), CheckError);
  config.bits = 6;  // 64 centroids > 10-word vocabulary
  EXPECT_THROW(pq_quantize(e, config), CheckError);
}

TEST(PqQuantize, DeterministicAcrossRuns) {
  const embed::Embedding e = random_embedding(50, 8, 16);
  PqConfig config;
  config.num_subvectors = 2;
  config.bits = 3;
  const PqResult a = pq_quantize(e, config);
  const PqResult b = pq_quantize(e, config);
  EXPECT_EQ(a.embedding.data, b.embedding.data);
  EXPECT_EQ(a.codes, b.codes);
}

class PqBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(PqBitsSweep, AllEntriesFiniteAndCoded) {
  // Vocabulary comfortably above 2^8 so every sweep point is legal.
  const embed::Embedding e = random_embedding(300, 16, 17);
  PqConfig config;
  config.num_subvectors = 4;
  config.bits = GetParam();
  const PqResult r = pq_quantize(e, config);
  for (const float v : r.embedding.data) EXPECT_TRUE(std::isfinite(v));
  for (const std::uint32_t c : r.codes) {
    EXPECT_LT(c, std::uint32_t{1} << GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, PqBitsSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace anchor::compress
