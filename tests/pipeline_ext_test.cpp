// Pipeline integration tests for the extension embedding algorithms (SGNS,
// PPMI-SVD): cache-key separation from the main trio, end-to-end
// instability and measures, and deterministic re-reads from the cache.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "pipeline/pipeline.hpp"

namespace anchor::pipeline {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig c;
  c.vocab = 200;
  c.latent_dim = 6;
  c.num_topics = 6;
  c.num_documents = 150;
  c.dims = {8, 16};
  c.precisions = {1, 32};
  c.seeds = {1};
  c.reference_dim = 16;
  c.knn_queries = 60;
  c.sentiment_scale_train = 400;
  c.ner_train = 80;
  c.ner_test = 50;
  c.ner_hidden = 6;
  c.ner_epochs = 2;
  c.epoch_scale = 0.5;
  return c;
}

class PipelineExtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("anchor_pipeline_ext_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    pipe_ = std::make_unique<Pipeline>(tiny_config(), dir_.string());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::unique_ptr<Pipeline> pipe_;
};

TEST_F(PipelineExtTest, ExtensionAlgosProduceDistinctEmbeddings) {
  const auto sgns = pipe_->raw_embedding(Year::k17, embed::Algo::kSgns, 8, 1);
  const auto svd = pipe_->raw_embedding(Year::k17, embed::Algo::kPpmiSvd, 8, 1);
  const auto cbow = pipe_->raw_embedding(Year::k17, embed::Algo::kCbow, 8, 1);
  EXPECT_EQ(sgns.dim, 8u);
  EXPECT_EQ(svd.dim, 8u);
  EXPECT_NE(sgns.data, cbow.data) << "cache keys must separate algorithms";
  EXPECT_NE(svd.data, cbow.data);
  EXPECT_NE(sgns.data, svd.data);
}

TEST_F(PipelineExtTest, CachedReReadIsIdentical) {
  const auto first = pipe_->raw_embedding(Year::k18, embed::Algo::kSgns, 8, 1);
  const auto second =
      pipe_->raw_embedding(Year::k18, embed::Algo::kSgns, 8, 1);
  EXPECT_EQ(first.data, second.data);

  // A fresh pipeline over the same cache dir must read the same artifact.
  Pipeline other(tiny_config(), dir_.string());
  EXPECT_EQ(other.raw_embedding(Year::k18, embed::Algo::kSgns, 8, 1).data,
            first.data);
}

TEST_F(PipelineExtTest, EndToEndInstabilityInRange) {
  for (const auto algo : {embed::Algo::kSgns, embed::Algo::kPpmiSvd}) {
    const double di = pipe_->downstream_instability("sst2", algo, 8, 32, 1);
    EXPECT_GE(di, 0.0) << embed::algo_name(algo);
    EXPECT_LE(di, 100.0) << embed::algo_name(algo);
  }
}

TEST_F(PipelineExtTest, MeasuresOrientedForExtensionAlgos) {
  for (const auto algo : {embed::Algo::kSgns, embed::Algo::kPpmiSvd}) {
    const auto m = pipe_->measures(algo, 8, 1, 1);
    for (const double v : m) {
      EXPECT_TRUE(std::isfinite(v)) << embed::algo_name(algo);
    }
    // EIS and 1−kNN live in [0, ~2] and [0, 1]; coarse sanity bounds.
    EXPECT_GE(m[0], 0.0);
    EXPECT_GE(m[1], 0.0);
    EXPECT_LE(m[1], 1.0);
  }
}

TEST_F(PipelineExtTest, PpmiSvdPairAlignsLikeOtherAlgos) {
  const auto [x17, x18] = pipe_->aligned_pair(embed::Algo::kPpmiSvd, 8, 1);
  EXPECT_EQ(x17.vocab_size, x18.vocab_size);
  EXPECT_EQ(x17.dim, x18.dim);
  // Alignment must not be a no-op: the aligned pair should be closer in
  // Frobenius distance than the raw pair.
  const auto raw17 = pipe_->raw_embedding(Year::k17, embed::Algo::kPpmiSvd, 8, 1);
  const auto raw18 = pipe_->raw_embedding(Year::k18, embed::Algo::kPpmiSvd, 8, 1);
  auto dist = [](const embed::Embedding& a, const embed::Embedding& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.data.size(); ++i) {
      const double d = static_cast<double>(a.data[i]) - b.data[i];
      acc += d * d;
    }
    return acc;
  };
  EXPECT_LE(dist(x17, x18), dist(raw17, raw18) + 1e-9);
}

}  // namespace
}  // namespace anchor::pipeline
