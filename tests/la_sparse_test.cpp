// Tests for the CSR sparse matrix and the top-k subspace eigensolver:
// assembly semantics (duplicates, empty rows), product agreement with the
// dense oracle, and eigenpair recovery against the dense Jacobi solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "la/eigen.hpp"
#include "la/sparse.hpp"
#include "la/subspace.hpp"
#include "util/rng.hpp"

namespace anchor::la {
namespace {

/// Random symmetric matrix with a controlled spectral gap: A = V·diag(λ)·Vᵀ
/// where V comes from orthonormalizing a Gaussian block.
Matrix planted_symmetric(std::size_t n, const std::vector<double>& lambdas,
                         std::uint64_t seed) {
  Rng rng(seed);
  Matrix v(n, n);
  for (double& x : v.storage()) x = rng.normal();
  orthonormalize_columns(v);
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < lambdas.size(); ++k) {
        acc += v(i, k) * lambdas[k] * v(j, k);
      }
      a(i, j) = acc;
    }
  }
  return a;
}

std::vector<SparseEntry> dense_to_triplets(const Matrix& a) {
  std::vector<SparseEntry> out;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != 0.0) {
        out.push_back({static_cast<std::int32_t>(i),
                       static_cast<std::int32_t>(j), a(i, j)});
      }
    }
  }
  return out;
}

TEST(SparseMatrix, EmptyMatrixHasZeroProducts) {
  const SparseMatrix m = SparseMatrix::from_triplets(3, {});
  EXPECT_EQ(m.nnz(), 0u);
  const std::vector<double> y = m.multiply(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(y, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_EQ(m.inf_norm(), 0.0);
}

TEST(SparseMatrix, DuplicateTripletsAreSummed) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(SparseMatrix, RejectsOutOfRangeIndices) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, {{0, 2, 1.0}}), CheckError);
  EXPECT_THROW(SparseMatrix::from_triplets(2, {{2, 0, 1.0}}), CheckError);
}

TEST(SparseMatrix, MatvecMatchesDense) {
  Rng rng(3);
  Matrix dense(7, 7, 0.0);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (rng.bernoulli(0.4)) {
        const double v = rng.normal();
        dense(i, j) = v;
        dense(j, i) = v;
      }
    }
  }
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(7, dense_to_triplets(dense));
  std::vector<double> x(7);
  for (double& v : x) v = rng.normal();

  const std::vector<double> y_sparse = sparse.multiply(x);
  const std::vector<double> y_dense = matvec(dense, x);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
  }
  EXPECT_LT(max_abs_diff(sparse.to_dense(), dense), 1e-15);
}

TEST(SparseMatrix, MatmatMatchesDense) {
  Rng rng(4);
  Matrix dense(6, 6, 0.0);
  for (std::size_t i = 0; i < 6; ++i) {
    dense(i, i) = rng.normal();
    if (i + 1 < 6) {
      const double v = rng.normal();
      dense(i, i + 1) = v;
      dense(i + 1, i) = v;
    }
  }
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(6, dense_to_triplets(dense));
  Matrix x(6, 3);
  for (double& v : x.storage()) v = rng.normal();

  EXPECT_LT(max_abs_diff(sparse.multiply(x), matmul(dense, x)), 1e-12);
}

TEST(SparseMatrix, InfNormIsMaxAbsRowSum) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, {{0, 0, -4.0}, {0, 2, 1.0}, {2, 1, 2.0}});
  EXPECT_DOUBLE_EQ(m.inf_norm(), 5.0);
}

TEST(Orthonormalize, ProducesOrthonormalColumns) {
  Rng rng(5);
  Matrix x(20, 6);
  for (double& v : x.storage()) v = rng.normal();
  orthonormalize_columns(x);
  const Matrix g = gram(x);
  EXPECT_LT(max_abs_diff(g, Matrix::identity(6)), 1e-10);
}

TEST(Orthonormalize, RepairsRankDeficientInput) {
  Matrix x(10, 3);
  for (std::size_t r = 0; r < 10; ++r) {
    x(r, 0) = 1.0;
    x(r, 1) = 2.0;  // colinear with column 0
    x(r, 2) = static_cast<double>(r);
  }
  orthonormalize_columns(x);
  const Matrix g = gram(x);
  EXPECT_LT(max_abs_diff(g, Matrix::identity(3)), 1e-10)
      << "collapsed column must be refilled with an orthogonal direction";
}

TEST(TopEigs, RecoversPlantedSpectrum) {
  const std::vector<double> lambdas = {9.0, 5.0, 2.0, 0.5, 0.1};
  const Matrix a = planted_symmetric(30, lambdas, 6);
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(30, dense_to_triplets(a));

  const TopEigsResult r = top_eigs(sparse, 3);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 9.0, 1e-6);
  EXPECT_NEAR(r.values[1], 5.0, 1e-6);
  EXPECT_NEAR(r.values[2], 2.0, 1e-6);

  // Residual check: ‖A·v − λ·v‖ small for each returned pair.
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<double> v(30);
    for (std::size_t i = 0; i < 30; ++i) v[i] = r.vectors(i, j);
    const std::vector<double> av = sparse.multiply(v);
    double residual = 0.0;
    for (std::size_t i = 0; i < 30; ++i) {
      residual += (av[i] - r.values[j] * v[i]) * (av[i] - r.values[j] * v[i]);
    }
    EXPECT_LT(std::sqrt(residual), 1e-5);
  }
}

TEST(TopEigs, VectorsAreOrthonormal) {
  const Matrix a = planted_symmetric(25, {4.0, 3.0, 2.0, 1.0}, 7);
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(25, dense_to_triplets(a));
  const TopEigsResult r = top_eigs(sparse, 4);
  EXPECT_LT(max_abs_diff(gram(r.vectors), Matrix::identity(4)), 1e-8);
}

TEST(TopEigs, MatchesDenseJacobiOnRandomPsdMatrix) {
  Rng rng(8);
  Matrix b(15, 15);
  for (double& v : b.storage()) v = rng.normal();
  const Matrix a = gram(b);  // PSD with generic spectrum
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(15, dense_to_triplets(a));

  const EigenResult dense = eigen_symmetric(a);
  const TopEigsResult sub = top_eigs(sparse, 5);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(sub.values[j], dense.values[j],
                1e-7 * std::max(1.0, dense.values[0]));
  }
}

TEST(TopEigs, FunctorInterfaceSupportsImplicitOperators) {
  // A = 2·I implicitly; every Ritz value must be 2.
  const auto apply = [](const Matrix& x) { return scale(x, 2.0); };
  const TopEigsResult r = top_eigs(apply, 12, 3);
  for (const double v : r.values) EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(TopEigs, RejectsInvalidK) {
  const auto apply = [](const Matrix& x) { return x; };
  EXPECT_THROW(top_eigs(apply, 5, 0), CheckError);
  EXPECT_THROW(top_eigs(apply, 5, 6), CheckError);
}

class TopEigsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopEigsSweep, ResidualsSmallAcrossK) {
  const std::size_t k = GetParam();
  const Matrix a =
      planted_symmetric(40, {8.0, 6.5, 5.0, 3.5, 2.0, 1.0, 0.5, 0.25}, 9);
  const SparseMatrix sparse =
      SparseMatrix::from_triplets(40, dense_to_triplets(a));
  const TopEigsResult r = top_eigs(sparse, k);
  ASSERT_EQ(r.vectors.cols(), k);
  const Matrix av = sparse.multiply(r.vectors);
  for (std::size_t j = 0; j < k; ++j) {
    double residual = 0.0;
    for (std::size_t i = 0; i < 40; ++i) {
      const double d = av(i, j) - r.values[j] * r.vectors(i, j);
      residual += d * d;
    }
    EXPECT_LT(std::sqrt(residual), 1e-5) << "k=" << k << " column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopEigsSweep,
                         ::testing::Values<std::size_t>(1, 2, 4, 6, 8));

}  // namespace
}  // namespace anchor::la
