// Online canarying: deterministic routing, CanaryStats bounds math, the
// two-phase promote/rollback state machine driven by real in-process
// traffic, operator abort, audit-trail rows, and the Procrustes-aligned
// ingestion path that keeps rotation-only drift from tripping the
// displacement rollback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "la/svd.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::serve {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

embed::Embedding perturbed(const embed::Embedding& e, double scale,
                           std::uint64_t seed) {
  embed::Embedding out = e;
  Rng rng(seed);
  for (auto& x : out.data) x += static_cast<float>(rng.normal(0.0, scale));
  return out;
}

/// e · Q for a random orthogonal Q (left singular vectors of a random
/// d×d matrix): identical neighbor structure, every coordinate moved.
embed::Embedding rotated(const embed::Embedding& e, std::uint64_t seed) {
  la::Matrix noise(e.dim, e.dim);
  Rng rng(seed);
  for (auto& x : noise.storage()) x = rng.normal(0.0, 1.0);
  const la::Matrix q = la::svd(noise).u;
  embed::Embedding out(e.vocab_size, e.dim);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    const float* src = e.row(w);
    float* dst = out.row(w);
    for (std::size_t j = 0; j < e.dim; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < e.dim; ++k) acc += src[k] * q(k, j);
      dst[j] = static_cast<float>(acc);
    }
  }
  return out;
}

/// A gate whose offline phase admits anything — these tests exercise the
/// ONLINE phase; the offline gate has its own suite in serve_test.
GateConfig permissive_gate(const std::filesystem::path& audit = {}) {
  GateConfig g;
  g.eis_warn = g.eis_reject = 100.0;
  g.knn_warn = g.knn_reject = 100.0;
  g.max_rows = 256;
  g.knn_queries = 32;
  g.audit_log = audit;
  return g;
}

CanaryConfig fast_canary() {
  CanaryConfig c;
  c.fraction = 0.5;
  c.shadow_rate = 0.5;
  c.min_shadows = 32;
  c.probe_rows = 64;
  return c;
}

/// Drives random-id batches through the router until it reaches a
/// terminal state (or the iteration budget trips).
void pump(CanaryRouter& router, std::size_t vocab, std::uint64_t seed,
          int max_iters = 400, std::size_t batch = 16) {
  Rng rng(seed);
  LookupResult result;
  for (int i = 0; i < max_iters && router.active(); ++i) {
    std::vector<std::size_t> ids(batch);
    for (auto& id : ids) id = rng.index(vocab);
    router.lookup_ids_into(ids, &result);
  }
}

struct TempAudit {
  std::filesystem::path path;
  TempAudit() {
    path = std::filesystem::temp_directory_path() /
           ("canary_test_audit_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".csv");
    std::filesystem::remove(path);
  }
  ~TempAudit() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

// ---- routing determinism ----------------------------------------------

TEST(CanaryRouting, DeterministicForAFixedKeySetAndFractional) {
  EmbeddingStore store;
  const auto base = random_embedding(400, 16, 3);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.01, 4));
  LookupService service(store);
  AsyncLookupService async(service);

  CanaryConfig config = fast_canary();
  config.fraction = 0.25;
  DeploymentGate gate(permissive_gate());
  const auto a = gate.try_promote(store, "v2", async, config);
  const auto b = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  std::size_t candidate_routed = 0;
  for (std::size_t key = 0; key < 20000; ++key) {
    // Same (seed, fraction, key) → same route, on every router instance.
    EXPECT_EQ(a->routes_to_candidate(key), b->routes_to_candidate(key));
    EXPECT_EQ(a->shadows_key(key), b->shadows_key(key));
    if (a->routes_to_candidate(key)) ++candidate_routed;
  }
  const double observed =
      static_cast<double>(candidate_routed) / 20000.0;
  EXPECT_NEAR(observed, 0.25, 0.02);

  // Word routing is deterministic too.
  EXPECT_EQ(a->routes_to_candidate(std::string("w17")),
            b->routes_to_candidate(std::string("w17")));
  a->abort();
  b->abort();
}

// ---- CanaryStats -------------------------------------------------------

TEST(CanaryStats, MeansCountersAndHoeffdingBounds) {
  CanaryStats stats;
  stats.record_candidate(10);
  stats.record_incumbent(30);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    stats.record_shadow(0.8, 0.1, i % 2 == 0 ? 4.0 : -2.0);
  }
  const CanaryStatsSnapshot s = stats.snapshot(0.99);
  EXPECT_EQ(s.candidate_lookups, 10u);
  EXPECT_EQ(s.incumbent_lookups, 30u);
  EXPECT_EQ(s.shadows, 100u);
  EXPECT_NEAR(s.mean_agreement, 0.8, 1e-5);
  EXPECT_NEAR(s.mean_displacement, 0.1, 1e-5);
  EXPECT_NEAR(s.mean_latency_delta_us, 1.0, 1e-5);
  const double half = std::sqrt(std::log(2.0 / 0.01) / (2.0 * n));
  EXPECT_NEAR(s.agreement_lower, 0.8 - half, 1e-5);
  EXPECT_NEAR(s.agreement_upper, 0.8 + half, 1e-5);
  // Medians come from a log-bucketed histogram: the estimate is the
  // bucket's lower bound, at most 1/32 below the true value.
  EXPECT_NEAR(s.p50_agreement, 0.8, 0.8 / 32.0);
  EXPECT_LE(s.p50_agreement, 0.8);
  EXPECT_FALSE(s.summary().empty());

  // Bounds clamp to the agreement range.
  CanaryStats extreme;
  extreme.record_shadow(1.0, 0.0, 0.0);
  const CanaryStatsSnapshot e = extreme.snapshot(0.99);
  EXPECT_EQ(e.agreement_upper, 1.0);
  EXPECT_GE(e.agreement_lower, 0.0);
}

// ---- two-phase state machine ------------------------------------------

TEST(Canary, GoodCandidateAutoPromotesOnOnlineAgreement) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(500, 24, 7);
  store.add_version("v1", base);
  store.add_version("v2-good", perturbed(base, 0.01, 8));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate(audit.path));

  GateReport offline;
  const auto router =
      gate.try_promote(store, "v2-good", async, fast_canary(), &offline);
  ASSERT_NE(router, nullptr);
  EXPECT_NE(offline.decision, GateDecision::kReject);
  EXPECT_EQ(store.live_version(), "v1");  // phase 2 owns the flip
  EXPECT_TRUE(router->active());

  pump(*router, 500, 21);
  EXPECT_EQ(router->state(), CanaryState::kPromoted);
  EXPECT_EQ(store.live_version(), "v2-good");
  const CanaryStatsSnapshot s = router->stats();
  EXPECT_GE(s.shadows, 32u);
  EXPECT_GE(s.agreement_lower, 0.70);
  EXPECT_LE(s.mean_displacement, 0.25);
  EXPECT_NE(router->decision_reason().find("canary promote"),
            std::string::npos);

  // Audit trail: the phase-1 hand-off row plus the online decision row.
  const auto rows = read_audit_csv(audit.path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].reason.find("canary started"), std::string::npos);
  EXPECT_FALSE(rows[0].promoted);
  EXPECT_TRUE(rows[1].promoted);
  EXPECT_NE(rows[1].reason.find("canary promote"), std::string::npos);
  EXPECT_EQ(rows[1].rows_compared, s.shadows);

  // Terminal routers forward everything to the (now candidate) live
  // version.
  LookupResult after;
  router->lookup_ids_into({1, 2, 3}, &after);
  EXPECT_EQ(after.version, "v2-good");
}

TEST(Canary, CorruptedCandidateAutoRollsBackOnOnlineAgreement) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(500, 24, 9);
  store.add_version("v1", base);
  // An independently seeded space: the permissive offline gate admits it,
  // the online agreement (chance-level top-k overlap) must not.
  store.add_version("v3-bad", random_embedding(500, 24, 1234));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate(audit.path));

  const auto router = gate.try_promote(store, "v3-bad", async, fast_canary());
  ASSERT_NE(router, nullptr);
  pump(*router, 500, 22);
  EXPECT_EQ(router->state(), CanaryState::kRolledBack);
  EXPECT_EQ(store.live_version(), "v1");  // incumbent never left
  const CanaryStatsSnapshot s = router->stats();
  EXPECT_GE(s.shadows, 32u);
  EXPECT_LE(s.mean_agreement, 0.4);
  EXPECT_NE(router->decision_reason().find("canary rollback"),
            std::string::npos);

  const auto rows = read_audit_csv(audit.path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[1].promoted);
  EXPECT_NE(rows[1].reason.find("canary rollback"), std::string::npos);

  // Lookups after the rollback serve the incumbent.
  LookupResult after;
  router->lookup_ids_into({1, 2, 3}, &after);
  EXPECT_EQ(after.version, "v1");
}

TEST(Canary, OfflineRejectNeverTakesTraffic) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(300, 16, 11);
  store.add_version("v1", base);
  store.add_version("v3-bad", random_embedding(300, 16, 999));
  LookupService service(store);
  AsyncLookupService async(service);
  GateConfig strict;  // default thresholds reject an unrelated space
  strict.max_rows = 256;
  strict.knn_queries = 32;
  strict.audit_log = audit.path;
  DeploymentGate gate(strict);

  GateReport offline;
  const auto router =
      gate.try_promote(store, "v3-bad", async, fast_canary(), &offline);
  EXPECT_EQ(router, nullptr);
  EXPECT_EQ(offline.decision, GateDecision::kReject);
  EXPECT_EQ(store.live_version(), "v1");
  const auto rows = read_audit_csv(audit.path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].reason.find("canary not started"), std::string::npos);
}

TEST(Canary, AlreadyLiveCandidateShortCircuits) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(100, 8, 1));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate());
  GateReport offline;
  EXPECT_EQ(gate.try_promote(store, "v1", async, fast_canary(), &offline),
            nullptr);
  EXPECT_EQ(offline.decision, GateDecision::kAdmit);
  EXPECT_NE(offline.reason.find("already live"), std::string::npos);
  EXPECT_THROW(gate.try_promote(store, "no-such", async, fast_canary()),
               std::exception);
}

TEST(Canary, AbortKeepsTheIncumbentAndStopsRouting) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(400, 16, 13);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.01, 14));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate(audit.path));

  CanaryConfig config = fast_canary();
  config.min_shadows = 100000;  // no auto-decision during this test
  const auto router = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(router, nullptr);
  pump(*router, 400, 23, /*max_iters=*/20);
  EXPECT_TRUE(router->active());
  EXPECT_GT(router->stats().candidate_lookups, 0u);

  router->abort();
  EXPECT_EQ(router->state(), CanaryState::kAborted);
  EXPECT_EQ(store.live_version(), "v1");
  router->abort();  // idempotent
  EXPECT_EQ(router->state(), CanaryState::kAborted);

  const auto rows = read_audit_csv(audit.path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[1].reason.find("canary aborted"), std::string::npos);

  LookupResult after;
  router->lookup_ids_into({0, 1}, &after);
  EXPECT_EQ(after.version, "v1");
}

TEST(CanaryStats, WorstKeysTrackTopDisplacementOutliersDeduplicated) {
  CanaryStats stats;
  // 20 distinct keys with displacement key/100: the worst 8 must survive.
  for (std::uint64_t key = 0; key < 20; ++key) {
    stats.record_shadow(0.9, static_cast<double>(key) / 100.0, 0.0, key);
  }
  CanaryStatsSnapshot s = stats.snapshot(0.99);
  ASSERT_EQ(s.worst_keys.size(), 8u);
  for (std::size_t i = 0; i < s.worst_keys.size(); ++i) {
    EXPECT_EQ(s.worst_keys[i].key, 19 - i);  // sorted worst-first
    if (i > 0) {
      EXPECT_GE(s.worst_keys[i - 1].displacement,
                s.worst_keys[i].displacement);
    }
  }
  // A repeat observation of a tracked key keeps its MAX, no duplicate.
  stats.record_shadow(0.9, 0.05, 0.0, 19);
  stats.record_shadow(0.9, 0.99, 0.0, 18);
  s = stats.snapshot(0.99);
  ASSERT_EQ(s.worst_keys.size(), 8u);
  EXPECT_EQ(s.worst_keys[0].key, 18u);
  EXPECT_NEAR(s.worst_keys[0].displacement, 0.99, 1e-9);
  std::size_t seen19 = 0;
  for (const auto& w : s.worst_keys) {
    if (w.key == 19) {
      ++seen19;
      EXPECT_NEAR(w.displacement, 0.19, 1e-9);  // max, not latest
    }
  }
  EXPECT_EQ(seen19, 1u);
  // Keyless samples (word traffic) feed the aggregates, never the heap.
  stats.record_shadow(0.9, 2.0, 0.0);
  EXPECT_EQ(stats.snapshot(0.99).worst_keys[0].key, 18u);
  // The decision path's snapshot skips the heap copy entirely.
  EXPECT_TRUE(stats.snapshot(0.99, /*with_medians=*/false).worst_keys.empty());
  // And the status summary names the outliers.
  EXPECT_NE(s.summary().find("worst_keys="), std::string::npos);
}

TEST(Canary, WorstKeysSurfaceInStatusAndAuditTrail) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(400, 16, 43);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.05, 44));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate(audit.path));

  CanaryConfig config = fast_canary();
  config.min_shadows = 100000;  // keep it running; we abort below
  const auto router = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(router, nullptr);
  pump(*router, 400, 45, /*max_iters=*/60);
  ASSERT_GT(router->stats().shadows, 0u);
  ASSERT_FALSE(router->stats().worst_keys.empty());
  // Every reported outlier is a real row id of shadowed traffic.
  for (const auto& w : router->stats().worst_keys) {
    EXPECT_LT(w.key, 400u);
    EXPECT_TRUE(router->routes_to_candidate(
        static_cast<std::size_t>(w.key)));
    EXPECT_TRUE(router->shadows_key(static_cast<std::size_t>(w.key)));
  }
  router->abort();
  const auto rows = read_audit_csv(audit.path);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_NE(rows.back().reason.find("worst_keys="), std::string::npos);
}

TEST(Canary, DrainAbortFinishesInFlightShadowsAndReportsScoredStatus) {
  TempAudit audit;
  EmbeddingStore store;
  const auto base = random_embedding(400, 16, 53);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.01, 54));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate(audit.path));

  CanaryConfig config = fast_canary();
  config.min_shadows = 100000;  // the operator decides, not the bounds
  const auto router = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(router, nullptr);
  pump(*router, 400, 55, /*max_iters=*/40);
  const std::uint64_t shadows_before = router->stats().shadows;
  ASSERT_GT(shadows_before, 0u);

  router->abort(/*drain=*/true);
  EXPECT_EQ(router->state(), CanaryState::kAborted);
  EXPECT_EQ(store.live_version(), "v1");
  // The terminal reason is the final scored status of a drained abort.
  EXPECT_NE(router->decision_reason().find("(drained)"), std::string::npos);
  EXPECT_NE(router->decision_reason().find("shadows="), std::string::npos);
  EXPECT_GE(router->stats().shadows, shadows_before);

  // Post-drain traffic routes to the live store and scores nothing new.
  LookupResult after;
  router->lookup_ids_into({0, 1, 2, 3}, &after);
  EXPECT_EQ(after.version, "v1");
  const std::uint64_t frozen = router->stats().shadows;
  router->lookup_ids_into({4, 5, 6, 7}, &after);
  EXPECT_EQ(router->stats().shadows, frozen);

  const auto rows = read_audit_csv(audit.path);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_NE(rows.back().reason.find("drained"), std::string::npos);
}

TEST(Canary, DrainAbortWaitsForConcurrentRoutedLookups) {
  // Abort(drain) from one thread while another thread is mid-pump: the
  // drained abort must observe a quiesced router (inflight == 0) and the
  // final state must be terminal with the incumbent live — under TSan-ish
  // stress this is the race the inflight counter exists for.
  EmbeddingStore store;
  const auto base = random_embedding(400, 16, 63);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.01, 64));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate());

  CanaryConfig config = fast_canary();
  config.min_shadows = 100000;
  const auto router = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(router, nullptr);

  std::atomic<bool> stop{false};
  std::thread pump_thread([&] {
    Rng rng(65);
    LookupResult result;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::size_t> ids(16);
      for (auto& id : ids) id = rng.index(400);
      router->lookup_ids_into(ids, &result);
    }
  });
  // Let some traffic flow, then drain-abort concurrently with the pump.
  while (router->stats().candidate_lookups < 64) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  router->abort(/*drain=*/true);
  EXPECT_EQ(router->state(), CanaryState::kAborted);
  stop.store(true, std::memory_order_relaxed);
  pump_thread.join();
  EXPECT_EQ(store.live_version(), "v1");
}

TEST(Canary, WordTrafficShadowsAndMergesInRequestOrder) {
  EmbeddingStore store;
  const auto base = random_embedding(300, 16, 17);
  store.add_version("v1", base);
  store.add_version("v2", perturbed(base, 0.01, 18));
  LookupService service(store);
  AsyncLookupService async(service);
  DeploymentGate gate(permissive_gate());

  CanaryConfig config = fast_canary();
  config.min_shadows = 100000;  // keep it running for the whole test
  const auto router = gate.try_promote(store, "v2", async, config);
  ASSERT_NE(router, nullptr);

  const LookupService direct(store);
  std::vector<std::string> words = {"w1", "w2", "w250", "unseen-word",
                                    "w7",  "w0", "w299", "another-unseen"};
  LookupResult merged;
  router->lookup_words_into(words, &merged);
  const LookupResult expected_inc = direct.lookup_words(words);
  ASSERT_EQ(merged.size(), words.size());
  EXPECT_EQ(merged.dim, expected_inc.dim);

  // Row-for-row: incumbent-routed words match the incumbent service
  // bit-identically; candidate-routed in-vocab words must differ from the
  // incumbent (different snapshot) — merge order is preserved either way.
  const LookupService cand_direct(
      store, {.pin_snapshot = store.snapshot("v2")});
  const LookupResult expected_cand = cand_direct.lookup_words(words);
  for (std::size_t i = 0; i < words.size(); ++i) {
    const float* got = merged.row(i);
    const float* want = router->routes_to_candidate(words[i])
                            ? expected_cand.row(i)
                            : expected_inc.row(i);
    for (std::size_t j = 0; j < merged.dim; ++j) {
      EXPECT_EQ(got[j], want[j]) << "row " << i << " col " << j;
    }
  }
  EXPECT_EQ(merged.oov, expected_inc.oov);
  router->abort();
}

// ---- Procrustes-aligned ingestion -------------------------------------

TEST(CanaryAlignment, RotationRollsBackUnalignedButPromotesAligned) {
  const auto base = random_embedding(400, 16, 19);
  const auto spun = rotated(base, 20);

  // Unaligned: neighbor structure is identical (rotation-invariant), so
  // agreement is perfect — but every coordinate moved, so the
  // displacement budget rolls it back.
  {
    EmbeddingStore store;
    store.add_version("v1", base);
    store.add_version("v2-rot", spun);
    EXPECT_FALSE(store.snapshot("v2-rot")->aligned_to_incumbent());
    LookupService service(store);
    AsyncLookupService async(service);
    DeploymentGate gate(permissive_gate());
    const auto router =
        gate.try_promote(store, "v2-rot", async, fast_canary());
    ASSERT_NE(router, nullptr);
    pump(*router, 400, 24);
    EXPECT_EQ(router->state(), CanaryState::kRolledBack);
    EXPECT_NE(router->decision_reason().find("displacement"),
              std::string::npos);
    EXPECT_GE(router->stats().mean_agreement, 0.9);  // structure was fine
    EXPECT_EQ(store.live_version(), "v1");
  }

  // Aligned at ingestion: the same rotated rows come back into the
  // incumbent's coordinates, displacement collapses, and the canary
  // promotes — the false reject the ROADMAP's warm-start rung is about.
  {
    EmbeddingStore store;
    store.add_version("v1", base);
    SnapshotConfig aligned;
    aligned.align_to_live = true;
    store.add_version("v2-rot", spun, aligned);
    EXPECT_TRUE(store.snapshot("v2-rot")->aligned_to_incumbent());
    LookupService service(store);
    AsyncLookupService async(service);
    DeploymentGate gate(permissive_gate());
    const auto router =
        gate.try_promote(store, "v2-rot", async, fast_canary());
    ASSERT_NE(router, nullptr);
    pump(*router, 400, 25);
    EXPECT_EQ(router->state(), CanaryState::kPromoted);
    EXPECT_LE(router->stats().mean_displacement, 0.01);
    EXPECT_EQ(store.live_version(), "v2-rot");
  }
}

TEST(CanaryAlignment, PinnedLookupServiceIgnoresHotSwaps) {
  EmbeddingStore store;
  const auto base = random_embedding(60, 8, 26);
  store.add_version("a", base);
  store.add_version("b", perturbed(base, 0.5, 27));
  const LookupService pinned(store, {.pin_snapshot = store.snapshot("b")});
  store.set_live("a");
  const LookupResult r = pinned.lookup_ids({0, 1});
  EXPECT_EQ(r.version, "b");  // pin wins over live
}

}  // namespace
}  // namespace anchor::serve
