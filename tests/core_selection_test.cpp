// Tests for dimension–precision selection: pairwise error rates, the
// memory-budget oracle gap, and the naive high/low-precision baselines.
#include <gtest/gtest.h>

#include "core/selection.hpp"

namespace anchor::core {
namespace {

ConfigPoint make_point(std::size_t dim, int bits, double di, double eis,
                       double knn_dist) {
  ConfigPoint p;
  p.dim = dim;
  p.bits = bits;
  p.downstream_instability_pct = di;
  p.measures[Measure::kEigenspaceInstability] = eis;
  p.measures[Measure::kOneMinusKnn] = knn_dist;
  p.measures[Measure::kSemanticDisplacement] = eis;
  p.measures[Measure::kPipLoss] = eis;
  p.measures[Measure::kOneMinusEigenspaceOverlap] = eis;
  return p;
}

TEST(PairwiseSelection, PerfectMeasureHasZeroError) {
  std::vector<ConfigPoint> points;
  for (int i = 0; i < 5; ++i) {
    const double di = 10.0 - i;
    points.push_back(make_point(8u << i, 32, di, di / 100.0, di / 50.0));
  }
  EXPECT_DOUBLE_EQ(
      pairwise_selection_error(points, Measure::kEigenspaceInstability), 0.0);
}

TEST(PairwiseSelection, InvertedMeasureHasFullError) {
  std::vector<ConfigPoint> points;
  for (int i = 0; i < 4; ++i) {
    const double di = 5.0 + i;
    points.push_back(make_point(8, 32, di, /*eis=*/-di, di));
  }
  EXPECT_DOUBLE_EQ(
      pairwise_selection_error(points, Measure::kEigenspaceInstability), 1.0);
}

TEST(PairwiseSelection, EqualDiPairsAreNeverWrong) {
  std::vector<ConfigPoint> points = {
      make_point(8, 32, 5.0, 0.1, 0.1),
      make_point(16, 16, 5.0, 0.9, 0.9),  // measure disagrees but DI is tied
  };
  EXPECT_DOUBLE_EQ(
      pairwise_selection_error(points, Measure::kEigenspaceInstability), 0.0);
}

TEST(PairwiseSelection, MeasureTieScoresHalf) {
  std::vector<ConfigPoint> points = {
      make_point(8, 32, 5.0, 0.5, 0.5),
      make_point(16, 16, 7.0, 0.5, 0.5),
  };
  EXPECT_DOUBLE_EQ(
      pairwise_selection_error(points, Measure::kEigenspaceInstability), 0.5);
}

TEST(PairwiseSelection, MissingMeasureThrows) {
  std::vector<ConfigPoint> points(2);
  points[0].downstream_instability_pct = 1.0;
  points[1].downstream_instability_pct = 2.0;
  EXPECT_THROW(
      pairwise_selection_error(points, Measure::kEigenspaceInstability),
      CheckError);
}

TEST(PairwiseWorstCase, ReportsLargestWrongGap) {
  std::vector<ConfigPoint> points = {
      make_point(8, 32, 2.0, 0.9, 0.9),   // measure says unstable, actually best
      make_point(16, 16, 10.0, 0.1, 0.1),  // measure says stable, actually worst
      make_point(32, 8, 5.0, 0.5, 0.5),
  };
  // Worst wrong pick: choosing DI=10 over DI=2 → gap 8.
  EXPECT_DOUBLE_EQ(
      pairwise_worst_case_error(points, Measure::kEigenspaceInstability), 8.0);
}

TEST(PairwiseWorstCase, ZeroForPerfectMeasure) {
  std::vector<ConfigPoint> points;
  for (int i = 0; i < 4; ++i) {
    points.push_back(make_point(8, 32, 3.0 + i, 0.1 * i, 0.1 * i));
  }
  EXPECT_DOUBLE_EQ(
      pairwise_worst_case_error(points, Measure::kEigenspaceInstability), 0.0);
}

// Budget grid: memory 256 bits/word reachable as (8,32), (16,16), (32,8).
std::vector<ConfigPoint> budget_grid() {
  return {
      make_point(8, 32, 6.0, 0.30, 0.30),   // budget 256
      make_point(16, 16, 4.0, 0.10, 0.25),  // budget 256 — oracle
      make_point(32, 8, 5.0, 0.20, 0.10),   // budget 256
      make_point(64, 8, 3.0, 0.05, 0.05),   // budget 512 (alone — skipped)
  };
}

TEST(BudgetSelection, MeasurePicksItsArgmin) {
  const auto points = budget_grid();
  // EIS picks (16,16): gap to oracle = 0.
  const BudgetSelectionResult eis =
      budget_selection(points, Criterion::of(Measure::kEigenspaceInstability));
  EXPECT_EQ(eis.num_budgets, 1u);
  EXPECT_DOUBLE_EQ(eis.mean_abs_gap_pct, 0.0);
  // 1−kNN picks (32,8) with DI 5: gap = 1.
  const BudgetSelectionResult knn =
      budget_selection(points, Criterion::of(Measure::kOneMinusKnn));
  EXPECT_DOUBLE_EQ(knn.mean_abs_gap_pct, 1.0);
  EXPECT_DOUBLE_EQ(knn.worst_abs_gap_pct, 1.0);
}

TEST(BudgetSelection, HighAndLowPrecisionBaselines) {
  const auto points = budget_grid();
  // High precision picks (8,32): DI 6 → gap 2.
  const BudgetSelectionResult hi =
      budget_selection(points, Criterion::high_precision());
  EXPECT_DOUBLE_EQ(hi.mean_abs_gap_pct, 2.0);
  // Low precision picks (32,8): DI 5 → gap 1.
  const BudgetSelectionResult lo =
      budget_selection(points, Criterion::low_precision());
  EXPECT_DOUBLE_EQ(lo.mean_abs_gap_pct, 1.0);
}

TEST(BudgetSelection, AveragesAcrossBudgets) {
  auto points = budget_grid();
  // Add a second contested budget (512): (16,32) vs (64,8).
  points.push_back(make_point(16, 32, 9.0, 0.9, 0.9));
  // EIS: budget 256 gap 0; budget 512 picks (64,8) DI 3 gap 0 → mean 0.
  const BudgetSelectionResult r =
      budget_selection(points, Criterion::of(Measure::kEigenspaceInstability));
  EXPECT_EQ(r.num_budgets, 2u);
  EXPECT_DOUBLE_EQ(r.mean_abs_gap_pct, 0.0);
}

TEST(BudgetSelection, ThrowsWhenNoContestedBudget) {
  std::vector<ConfigPoint> points = {make_point(8, 32, 1.0, 0.1, 0.1),
                                     make_point(16, 32, 2.0, 0.2, 0.2)};
  EXPECT_THROW(
      budget_selection(points, Criterion::of(Measure::kEigenspaceInstability)),
      CheckError);
}

TEST(CriterionNames, Distinct) {
  EXPECT_EQ(Criterion::high_precision().name(), "High Precision");
  EXPECT_EQ(Criterion::low_precision().name(), "Low Precision");
  EXPECT_EQ(Criterion::of(Measure::kPipLoss).name(), "PIP Loss");
}

TEST(MeasureSpearman, PerfectAndInverted) {
  std::vector<ConfigPoint> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back(
        make_point(8, 32, 1.0 + i, 0.1 * i, /*knn_dist=*/0.5 - 0.05 * i));
  }
  EXPECT_NEAR(measure_spearman(points, Measure::kEigenspaceInstability), 1.0,
              1e-12);
  EXPECT_NEAR(measure_spearman(points, Measure::kOneMinusKnn), -1.0, 1e-12);
}

}  // namespace
}  // namespace anchor::core
