// Tests for the load & drift telemetry plane: the windowed (rolling-rate)
// stats ring with its merge contract and SLO burn-rate monitor, the
// Space-Saving heavy-hitter sketch with its documented error bound, the
// per-id-range heat map, and the continuous drift probe against a pinned
// reference panel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "embed/embedding.hpp"
#include "obs/drift_probe.hpp"
#include "obs/heavy_hitters.hpp"
#include "obs/metrics.hpp"
#include "obs/windowed.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::obs {
namespace {

// A fixed base time far from epoch 0 so trailing windows never clamp.
constexpr std::uint64_t kT0 = 1'700'000'000'000'000ull;

void expect_slices_equal(const WindowedSnapshot& a, const WindowedSnapshot& b) {
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t i = 0; i < a.slices.size(); ++i) {
    EXPECT_EQ(a.slices[i].epoch, b.slices[i].epoch) << "slice " << i;
    EXPECT_EQ(a.slices[i].requests, b.slices[i].requests) << "slice " << i;
    EXPECT_EQ(a.slices[i].errors, b.slices[i].errors) << "slice " << i;
    EXPECT_EQ(a.slices[i].latency.counts, b.slices[i].latency.counts)
        << "slice " << i;
    EXPECT_EQ(a.slices[i].latency.count, b.slices[i].latency.count);
    EXPECT_EQ(a.slices[i].latency.sum_units, b.slices[i].latency.sum_units);
  }
}

// ---- WindowedStats -----------------------------------------------------

TEST(Windowed, TrailingWindowsSeeOnlyRecentSlices) {
  WindowedConfig cfg;
  cfg.slice_us = 1'000'000;  // 1 s slices
  cfg.num_slices = 16;
  WindowedStats w(cfg);
  // 5 requests 30 s ago, 10 requests 3 s ago, 2 requests now.
  w.record_many_at(kT0 - 30'000'000, 100.0, 5, 1);
  w.record_many_at(kT0 - 3'000'000, 200.0, 10, 0);
  w.record_many_at(kT0, 400.0, 2, 0);
  const WindowedSnapshot s = w.snapshot_at(kT0);
  // The 30 s-old slice fell out of the 16-slice ring horizon entirely.
  EXPECT_EQ(s.requests_in(10'000'000), 12u);
  EXPECT_EQ(s.requests_in(60'000'000), 12u);
  EXPECT_EQ(s.errors_in(60'000'000), 0u);
  // 2-second window: only the "now" slice overlaps (plus edge slices by
  // design; 3 s ago is outside a 2 s trailing window).
  EXPECT_EQ(s.requests_in(1'500'000), 2u);
  EXPECT_NEAR(s.qps(10'000'000), 1.2, 1e-12);
  EXPECT_EQ(s.latency_in(10'000'000).count, 12u);
}

TEST(Windowed, RingReusesSlotsAfterAFullRotation) {
  WindowedConfig cfg;
  cfg.slice_us = 1'000'000;
  cfg.num_slices = 4;
  WindowedStats w(cfg);
  w.record_many_at(kT0, 50.0, 7, 0);
  // One full ring later the same slot holds the new epoch; the old slice
  // is gone from the snapshot even with a generous window.
  const std::uint64_t later = kT0 + cfg.slice_us * cfg.num_slices;
  w.record_many_at(later, 60.0, 3, 0);
  const WindowedSnapshot s = w.snapshot_at(later);
  ASSERT_EQ(s.slices.size(), 1u);
  EXPECT_EQ(s.slices[0].epoch, later / cfg.slice_us);
  EXPECT_EQ(s.requests_in(3'600'000'000ull), 3u);
}

TEST(Windowed, MergeEqualsSingleRecorderBitIdentical) {
  WindowedConfig cfg;
  cfg.slice_us = 1'000'000;
  cfg.num_slices = 16;
  WindowedStats a(cfg), b(cfg), all(cfg);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t t = kT0 - (rng.next_u64() % 12) * 1'000'000;
    const double latency = 10.0 + static_cast<double>(rng.next_u64() % 5000);
    const bool err = rng.next_u64() % 16 == 0;
    (i % 2 == 0 ? a : b).record_many_at(t, latency, 1, err ? 1 : 0);
    all.record_many_at(t, latency, 1, err ? 1 : 0);
  }
  WindowedSnapshot left = a.snapshot_at(kT0);
  left.merge(b.snapshot_at(kT0));
  const WindowedSnapshot reference = all.snapshot_at(kT0);
  expect_slices_equal(left, reference);
  // Opposite merge order is bit-identical (commutativity), and the
  // derived rates agree exactly.
  WindowedSnapshot right = b.snapshot_at(kT0);
  right.merge(a.snapshot_at(kT0));
  expect_slices_equal(right, reference);
  EXPECT_EQ(left.requests_in(10'000'000), reference.requests_in(10'000'000));
  EXPECT_EQ(left.latency_in(60'000'000).sum_units,
            reference.latency_in(60'000'000).sum_units);
}

TEST(Windowed, MergeRejectsSliceWidthMismatchButAdoptsIntoEmpty) {
  WindowedConfig fine;
  fine.slice_us = 1'000'000;
  WindowedConfig coarse;
  coarse.slice_us = 5'000'000;
  WindowedStats a(fine), b(coarse);
  a.record_many_at(kT0, 10.0, 1, 0);
  b.record_many_at(kT0, 10.0, 1, 0);
  WindowedSnapshot sa = a.snapshot_at(kT0);
  EXPECT_THROW(sa.merge(b.snapshot_at(kT0)), std::runtime_error);
  // An empty accumulator (the router's starting point) adopts the first
  // snapshot's slice width instead of throwing.
  WindowedSnapshot acc;
  acc.merge(b.snapshot_at(kT0));
  EXPECT_EQ(acc.slice_us, coarse.slice_us);
  EXPECT_EQ(acc.requests_in(60'000'000), 1u);
}

TEST(Windowed, UnsampledRequestsCountWithoutFakeLatency) {
  WindowedConfig cfg;
  cfg.slice_us = 1'000'000;
  WindowedStats w(cfg);
  w.record_many_at(kT0, -1.0, 100, 2);  // record_unsampled's path
  w.record_many_at(kT0, 50.0, 1, 0);
  const WindowedSnapshot s = w.snapshot_at(kT0);
  EXPECT_EQ(s.requests_in(10'000'000), 101u);
  EXPECT_EQ(s.errors_in(10'000'000), 2u);
  // Only the sampled request reached the histogram — no fake zeroes
  // dragging the quantiles down.
  EXPECT_EQ(s.latency_in(10'000'000).count, 1u);
  EXPECT_EQ(s.latency_in(10'000'000).quantile(0.5), 50.0);
}

TEST(Windowed, ConcurrentRecordersNeverLoseRequests) {
  WindowedConfig cfg;
  cfg.slice_us = 1000;  // 1 ms slices: rotations happen during the test
  cfg.num_slices = 64;
  WindowedStats w(cfg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) {
        w.record(static_cast<double>(i % 300), i % 100 == 0);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // 64 × 1 ms of history comfortably covers the burst; every record must
  // be present (rotation resets only strictly-older epochs).
  const WindowedSnapshot s = w.snapshot();
  EXPECT_EQ(s.requests_in(3'600'000'000ull),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- count_over + SloMonitor -------------------------------------------

TEST(Windowed, CountOverCountsBucketsAtOrAboveThreshold) {
  LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(64.0);   // exact bucket bound
  for (int i = 0; i < 5; ++i) h.record(2048.0);  // exact bucket bound
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(count_over(s, 64.0), 15u);
  // Resolution is one log bucket: 65 shares 64's bucket, so the bucket's
  // population still counts (the documented overcount). A threshold in a
  // strictly higher bucket excludes it.
  EXPECT_EQ(count_over(s, 65.0), 15u);
  EXPECT_EQ(count_over(s, 128.0), 5u);
  EXPECT_EQ(count_over(s, 2048.0), 5u);
  EXPECT_EQ(count_over(s, 4096.0), 0u);
  EXPECT_EQ(count_over(HistogramSnapshot{}, 1.0), 0u);
}

TEST(Slo, BurnRatesAndAlertStates) {
  WindowedConfig cfg;
  cfg.slice_us = 1'000'000;
  cfg.num_slices = 80;  // ring must cover the 60 s long window
  SloConfig slo;
  slo.p99_target_us = 1000.0;
  slo.error_budget = 0.01;
  const SloMonitor monitor(slo);

  // Healthy: everything fast, no errors → burn 0, alert 0.
  WindowedStats healthy(cfg);
  healthy.record_many_at(kT0, 100.0, 1000, 0);
  SloState st = monitor.evaluate(healthy.snapshot_at(kT0));
  EXPECT_EQ(st.alert, 0);
  EXPECT_EQ(st.short_burn, 0.0);
  EXPECT_EQ(st.long_burn, 0.0);

  // 2% of requests breach the latency target: burn 2 in both windows →
  // warn (≥ 1) but not page (< 10).
  WindowedStats warm(cfg);
  warm.record_many_at(kT0, 100.0, 980, 0);
  warm.record_many_at(kT0, 5000.0, 20, 0);
  st = monitor.evaluate(warm.snapshot_at(kT0));
  EXPECT_EQ(st.alert, 1);
  EXPECT_NEAR(st.short_burn, 2.0, 1e-9);
  EXPECT_NEAR(st.long_burn, 2.0, 1e-9);

  // Hard outage: every request errors → burn 100 → page.
  WindowedStats dead(cfg);
  dead.record_many_at(kT0, 100.0, 500, 500);
  st = monitor.evaluate(dead.snapshot_at(kT0));
  EXPECT_EQ(st.alert, 2);
  EXPECT_NEAR(st.short_burn, 100.0, 1e-9);

  // A spike ONLY in the short window does not page: the long window has
  // 60 s of older healthy traffic diluting it below the page threshold.
  WindowedStats spiky(cfg);
  spiky.record_many_at(kT0 - 40'000'000, 100.0, 100'000, 0);
  spiky.record_many_at(kT0, 100.0, 100, 100);
  st = monitor.evaluate(spiky.snapshot_at(kT0));
  EXPECT_GE(st.short_burn, 10.0);
  EXPECT_LT(st.long_burn, 10.0);
  EXPECT_LT(st.alert, 2);
}

// ---- SpaceSavingSketch -------------------------------------------------

TEST(Sketch, ErrorBoundAndHeavyHitterRecovery) {
  SpaceSavingSketch::Config cfg;
  cfg.capacity = 64;
  cfg.stripes = 1;  // single stripe: the textbook N/capacity bound applies
  SpaceSavingSketch sketch(cfg);

  constexpr std::uint64_t kHeavy = 16;
  constexpr std::uint64_t kHeavyCount = 500;
  Rng rng(23);
  std::vector<std::uint64_t> offers;
  for (std::uint64_t k = 0; k < kHeavy; ++k) {
    for (std::uint64_t i = 0; i < kHeavyCount; ++i) offers.push_back(k);
  }
  for (std::uint64_t i = 0; i < 6400; ++i) {
    offers.push_back(1000 + rng.next_u64() % 3200);  // long noise tail
  }
  std::shuffle(offers.begin(), offers.end(), std::mt19937_64(7));
  for (const std::uint64_t k : offers) sketch.offer(k);

  const SketchSnapshot s = sketch.snapshot();
  EXPECT_EQ(s.total, offers.size());
  EXPECT_EQ(s.capacity, 64u);
  const std::uint64_t bound = s.total / s.capacity;  // N / capacity
  for (const HeavyHitter& e : s.entries) {
    EXPECT_LE(e.error, bound) << "key " << e.key;
    EXPECT_LE(e.count, s.total);
  }
  // Every true heavy hitter (count 500 > bound) must be present, with an
  // estimate in [true, true + error], and must dominate the top-16.
  const auto top = s.top(kHeavy);
  ASSERT_EQ(top.size(), kHeavy);
  for (const HeavyHitter& e : top) {
    EXPECT_LT(e.key, kHeavy) << "noise key in the top-" << kHeavy;
    EXPECT_GE(e.count, kHeavyCount);
    EXPECT_LE(e.count - e.error, kHeavyCount);
  }
}

TEST(Sketch, MergeIsCommutativeAssociativeBitIdentical) {
  SpaceSavingSketch::Config cfg;
  cfg.capacity = 32;
  cfg.stripes = 4;
  SpaceSavingSketch s1(cfg), s2(cfg), s3(cfg);
  Rng rng(31);
  for (int i = 0; i < 4000; ++i) {
    s1.offer(rng.next_u64() % 50);
    s2.offer(rng.next_u64() % 80);
    s3.offer(rng.next_u64() % 20, 1 + rng.next_u64() % 3);
  }
  // (1 ⊕ 2) ⊕ 3  vs  3 ⊕ (2 ⊕ 1)
  SketchSnapshot left = s1.snapshot();
  left.merge(s2.snapshot());
  left.merge(s3.snapshot());
  SketchSnapshot inner = s2.snapshot();
  inner.merge(s1.snapshot());
  SketchSnapshot right = s3.snapshot();
  right.merge(inner);
  EXPECT_EQ(left.total, right.total);
  EXPECT_EQ(left.capacity, right.capacity);
  ASSERT_EQ(left.entries.size(), right.entries.size());
  for (std::size_t i = 0; i < left.entries.size(); ++i) {
    EXPECT_EQ(left.entries[i].key, right.entries[i].key) << "entry " << i;
    EXPECT_EQ(left.entries[i].count, right.entries[i].count);
    EXPECT_EQ(left.entries[i].error, right.entries[i].error);
  }
  // Canonical order: count descending, key ascending on ties.
  for (std::size_t i = 1; i < left.entries.size(); ++i) {
    const HeavyHitter& prev = left.entries[i - 1];
    const HeavyHitter& cur = left.entries[i];
    EXPECT_TRUE(prev.count > cur.count ||
                (prev.count == cur.count && prev.key < cur.key))
        << "entry " << i;
  }
  // Merging an empty snapshot is the identity.
  SketchSnapshot id = left;
  id.merge(SketchSnapshot{});
  EXPECT_EQ(id.entries.size(), left.entries.size());
  EXPECT_EQ(id.total, left.total);
  EXPECT_EQ(id.capacity, left.capacity);
}

// ---- RangeHeatMap ------------------------------------------------------

TEST(Heat, MergeEqualsSingleRecorder) {
  RangeHeatMap::Config cfg;
  cfg.row_begin = 0;
  cfg.row_end = 1000;
  cfg.buckets = 16;
  RangeHeatMap a(cfg), b(cfg), all(cfg);
  Rng rng(41);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t id = rng.next_u64() % 1000;
    (i % 2 == 0 ? a : b).record(id);
    all.record(id);
  }
  HeatMapSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HeatMapSnapshot reference = all.snapshot();
  EXPECT_EQ(merged.total, reference.total);
  ASSERT_EQ(merged.ranges.size(), 1u);
  ASSERT_EQ(reference.ranges.size(), 1u);
  EXPECT_EQ(merged.ranges[0].row_begin, 0u);
  EXPECT_EQ(merged.ranges[0].row_end, 1000u);
  EXPECT_EQ(merged.ranges[0].buckets, reference.ranges[0].buckets);
}

TEST(Heat, ShiftRowsLiftsDisjointShardsIntoGlobalSpace) {
  RangeHeatMap::Config lo;
  lo.row_begin = 0;
  lo.row_end = 100;
  lo.buckets = 4;
  RangeHeatMap shard0(lo), shard1(lo);  // both record in LOCAL id space
  shard0.record(10, 5);
  shard1.record(10, 7);

  HeatMapSnapshot s0 = shard0.snapshot();
  HeatMapSnapshot s1 = shard1.snapshot();
  s1.shift_rows(100);  // shard 1 owns global rows [100, 200)
  HeatMapSnapshot fleet = s0;
  fleet.merge(s1);
  ASSERT_EQ(fleet.ranges.size(), 2u);
  EXPECT_EQ(fleet.ranges[0].row_begin, 0u);
  EXPECT_EQ(fleet.ranges[1].row_begin, 100u);
  EXPECT_EQ(fleet.ranges[1].row_end, 200u);
  EXPECT_EQ(fleet.total, 12u);
  EXPECT_EQ(fleet.range_total(50), 5u);
  EXPECT_EQ(fleet.range_total(150), 7u);
  EXPECT_EQ(fleet.range_total(999), 0u);  // uncovered global row
}

TEST(Heat, OutOfRangeIdsClampToEdgeBuckets) {
  RangeHeatMap::Config cfg;
  cfg.row_begin = 100;
  cfg.row_end = 200;
  cfg.buckets = 10;
  RangeHeatMap heat(cfg);
  heat.record(5);     // below the range → first bucket
  heat.record(9999);  // above the range → last bucket
  heat.record(150);
  const HeatMapSnapshot s = heat.snapshot();
  ASSERT_EQ(s.ranges.size(), 1u);
  EXPECT_EQ(s.ranges[0].buckets.front(), 1u);
  EXPECT_EQ(s.ranges[0].buckets.back(), 1u);
  EXPECT_EQ(s.total, 3u);
}

TEST(Heat, MergeRejectsMismatchedBucketFanout) {
  RangeHeatMap::Config a;
  a.row_end = 100;
  a.buckets = 4;
  RangeHeatMap::Config b = a;
  b.buckets = 8;
  RangeHeatMap ha(a), hb(b);
  ha.record(1);
  hb.record(1);
  HeatMapSnapshot sa = ha.snapshot();
  EXPECT_THROW(sa.merge(hb.snapshot()), std::runtime_error);
}

// ---- KeyLoadRecorder ---------------------------------------------------

TEST(KeyLoad, RecorderFeedsBothSketchAndHeat) {
  SpaceSavingSketch::Config sc;
  sc.capacity = 16;
  sc.stripes = 1;
  RangeHeatMap::Config hc;
  hc.row_end = 64;
  hc.buckets = 8;
  KeyLoadRecorder rec(sc, hc);
  const std::size_t ids[] = {3, 3, 3, 40};
  rec.record_ids(ids, 4);
  const SketchSnapshot s = rec.sketch.snapshot();
  EXPECT_EQ(s.total, 4u);
  ASSERT_FALSE(s.entries.empty());
  EXPECT_EQ(s.entries[0].key, 3u);
  EXPECT_EQ(s.entries[0].count, 3u);
  EXPECT_EQ(rec.heat.snapshot().total, 4u);
  EXPECT_EQ(rec.heat.snapshot().range_total(3), 4u);
}

// ---- DriftProbe --------------------------------------------------------

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) {
    x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return e;
}

TEST(Drift, SameSnapshotScoresPerfectAgreement) {
  serve::EmbeddingStore store;
  store.add_version("v1", random_embedding(64, 8, 5));
  DriftProbeConfig cfg;
  cfg.probe_rows = 32;
  cfg.knn_k = 4;
  DriftProbe probe(store, cfg);
  EXPECT_EQ(probe.reference_version(), "v1");
  const DriftSample s = probe.run_once();
  EXPECT_TRUE(s.same_snapshot);
  EXPECT_EQ(s.topk_agreement, 1.0);
  EXPECT_NEAR(s.displacement_p95, 0.0, 1e-9);  // 1 − cos: float epsilon
  EXPECT_EQ(s.probes, 32u);
}

TEST(Drift, ScrambledSnapshotSwapMovesTheGauges) {
  const embed::Embedding base = random_embedding(64, 8, 6);
  serve::EmbeddingStore store;
  store.add_version("v1", base);

  DriftProbeConfig cfg;
  cfg.probe_rows = 48;
  cfg.knn_k = 4;
  DriftProbe probe(store, cfg);
  MetricsRegistry registry;
  probe.register_metrics(registry);
  probe.run_once();
  const auto gauge_of = [&](const std::string& name) {
    for (const MetricValue& m : registry.snapshot().metrics) {
      if (m.name == name) return m.gauge;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  };
  EXPECT_EQ(gauge_of("anchor_drift_topk_agreement"), 1.0);
  EXPECT_NEAR(gauge_of("anchor_drift_displacement_p95"), 0.0, 1e-9);

  // Swap in a row-scrambled snapshot: every probe row now holds some
  // other row's vector, so per-row cosine collapses and the own-space
  // neighborhoods shuffle. The continuous probe must see it immediately.
  embed::Embedding scrambled = base;
  const std::size_t dim = base.dim;
  const std::size_t vocab = base.vocab_size;
  for (std::size_t r = 0; r < vocab; ++r) {
    const std::size_t src = (r + vocab / 2) % vocab;
    for (std::size_t d = 0; d < dim; ++d) {
      scrambled.data[r * dim + d] = base.data[src * dim + d];
    }
  }
  store.add_version("v2", scrambled);
  store.set_live("v2");

  const DriftSample after = probe.run_once();
  EXPECT_FALSE(after.same_snapshot);
  EXPECT_EQ(after.live_version, "v2");
  EXPECT_LT(after.topk_agreement, 0.5);
  EXPECT_GT(after.displacement_p95, 0.5);
  EXPECT_EQ(gauge_of("anchor_drift_topk_agreement"), after.topk_agreement);
  EXPECT_EQ(gauge_of("anchor_drift_displacement_p95"),
            after.displacement_p95);
  ASSERT_NE(after.topk_agreement, 1.0);
}

TEST(Drift, PureRotationScoresAsNoDrift) {
  // A 2-D 90° rotation: all pairwise geometry is preserved, so the
  // own-space top-k agreement must stay 1.0 even though every individual
  // vector moved (displacement is large). This is what separates the
  // agreement gauge from the displacement gauge.
  const std::size_t vocab = 40;
  embed::Embedding base = random_embedding(vocab, 2, 9);
  embed::Embedding rotated(vocab, 2);
  for (std::size_t r = 0; r < vocab; ++r) {
    const float x = base.data[r * 2], y = base.data[r * 2 + 1];
    rotated.data[r * 2] = -y;
    rotated.data[r * 2 + 1] = x;
  }
  serve::EmbeddingStore store;
  store.add_version("v1", base);
  DriftProbeConfig cfg;
  cfg.probe_rows = 24;
  cfg.knn_k = 3;
  DriftProbe probe(store, cfg);
  store.add_version("v2", rotated);
  store.set_live("v2");
  const DriftSample s = probe.run_once();
  EXPECT_FALSE(s.same_snapshot);
  EXPECT_EQ(s.topk_agreement, 1.0);
  EXPECT_GT(s.displacement_p95, 0.5);  // 90°: 1 − cos = 1
}

TEST(Drift, EmptyStoreIsInert) {
  serve::EmbeddingStore store;
  DriftProbeConfig cfg;
  cfg.interval_ms = 1;  // even with a period, no reference → no thread
  DriftProbe probe(store, cfg);
  probe.start();
  const DriftSample s = probe.run_once();
  EXPECT_EQ(s.probes, 0u);
  probe.stop();
}

}  // namespace
}  // namespace anchor::obs
