// Tests for the TinyElmo bidirectional LSTM language model: gradient
// correctness against central finite differences, encoding semantics,
// pretraining progress, and feature extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "ctx/elmo.hpp"
#include "util/rng.hpp"

namespace anchor::ctx {
namespace {

text::Corpus tiny_corpus(std::size_t vocab = 30, std::size_t sentences = 40,
                         std::uint64_t seed = 3) {
  Rng rng(seed);
  text::Corpus corpus;
  corpus.vocab_size = vocab;
  corpus.word_counts.assign(vocab, 0);
  for (std::size_t s = 0; s < sentences; ++s) {
    std::vector<std::int32_t> sent;
    // Mildly predictable sequences (random walk over ids) so the LM can
    // beat the uniform baseline.
    std::int32_t w = static_cast<std::int32_t>(rng.index(vocab));
    for (std::size_t t = 0; t < 8; ++t) {
      sent.push_back(w);
      ++corpus.word_counts[static_cast<std::size_t>(w)];
      w = static_cast<std::int32_t>(
          (w + 1 + static_cast<std::int32_t>(rng.index(3))) %
          static_cast<std::int32_t>(vocab));
    }
    corpus.sentences.push_back(std::move(sent));
  }
  return corpus;
}

TEST(TinyElmo, GradientMatchesFiniteDifferences) {
  TinyElmoConfig config;
  config.embed_dim = 4;
  config.hidden = 3;
  config.seed = 5;
  TinyElmo elmo(12, config);
  const std::vector<std::int32_t> sentence = {3, 7, 1, 7, 0};

  const std::vector<float> analytic = elmo.lm_gradient(sentence);
  ASSERT_EQ(analytic.size(), elmo.parameters().size());

  // Probe a spread of parameters: embeddings, both directions' gate
  // weights, biases, and softmax heads.
  Rng rng(11);
  const float eps = 1e-3f;
  std::size_t checked = 0;
  for (std::size_t trial = 0; trial < 120; ++trial) {
    const std::size_t p = rng.index(elmo.parameters().size());
    const float saved = elmo.parameters()[p];
    elmo.parameters()[p] = saved + eps;
    const double up = elmo.lm_loss(sentence);
    elmo.parameters()[p] = saved - eps;
    const double down = elmo.lm_loss(sentence);
    elmo.parameters()[p] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[p], numeric,
                1e-3 * std::max(1.0, std::abs(numeric)) + 2e-4)
        << "parameter index " << p;
    ++checked;
  }
  EXPECT_EQ(checked, 120u);
}

TEST(TinyElmo, ShortSentencesHaveZeroLossAndGradient) {
  TinyElmoConfig config;
  config.embed_dim = 4;
  config.hidden = 3;
  TinyElmo elmo(10, config);
  EXPECT_EQ(elmo.lm_loss({5}), 0.0);
  EXPECT_EQ(elmo.lm_loss({}), 0.0);
  const std::vector<float> grad = elmo.lm_gradient({5});
  for (const float g : grad) EXPECT_EQ(g, 0.0f);
}

TEST(TinyElmo, PretrainingReducesLmLoss) {
  const text::Corpus corpus = tiny_corpus();
  TinyElmoConfig config;
  config.embed_dim = 8;
  config.hidden = 8;
  config.epochs = 10;
  config.learning_rate = 0.5f;
  TinyElmo elmo(corpus.vocab_size, config);

  double before = 0.0, after = 0.0;
  for (const auto& s : corpus.sentences) before += elmo.lm_loss(s);
  elmo.pretrain(corpus);
  for (const auto& s : corpus.sentences) after += elmo.lm_loss(s);
  EXPECT_LT(after, before * 0.7)
      << "bidirectional LM loss must fall by ≥30% over pretraining";
  // Must also beat the uniform-prediction baseline log(vocab).
  EXPECT_LT(after / static_cast<double>(corpus.sentences.size()),
            std::log(static_cast<double>(corpus.vocab_size)));
}

TEST(TinyElmo, EncodeShapesAndPoolingConsistency) {
  TinyElmoConfig config;
  config.embed_dim = 4;
  config.hidden = 5;
  TinyElmo elmo(10, config);
  const std::vector<std::int32_t> sentence = {1, 2, 3};
  const std::vector<float> states = elmo.encode(sentence);
  ASSERT_EQ(states.size(), 3u * 10u);  // T × 2·hidden
  const std::vector<float> pooled = elmo.features(sentence);
  ASSERT_EQ(pooled.size(), 10u);
  for (std::size_t j = 0; j < 10; ++j) {
    const float mean =
        (states[j] + states[10 + j] + states[20 + j]) / 3.0f;
    EXPECT_NEAR(pooled[j], mean, 1e-6f);
  }
}

TEST(TinyElmo, ContextSensitivity) {
  // The same token in different contexts must receive different states —
  // the defining property of a contextual encoder.
  const text::Corpus corpus = tiny_corpus();
  TinyElmoConfig config;
  config.embed_dim = 8;
  config.hidden = 8;
  config.epochs = 2;
  TinyElmo elmo(corpus.vocab_size, config);
  elmo.pretrain(corpus);

  const std::vector<std::int32_t> a = {1, 2, 5, 9, 4};
  const std::vector<std::int32_t> b = {8, 0, 5, 3, 7};
  const std::vector<float> sa = elmo.encode(a);
  const std::vector<float> sb = elmo.encode(b);
  // Token 5 sits at position 2 in both; compare its 2h-state.
  const std::size_t fd = elmo.feature_dim();
  double diff = 0.0;
  for (std::size_t j = 0; j < fd; ++j) {
    diff += std::abs(sa[2 * fd + j] - sb[2 * fd + j]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TinyElmo, BackwardDirectionSeesRightContext) {
  // Changing only the *suffix* of a sentence must change the backward half
  // of an earlier token's state but not its forward half.
  TinyElmoConfig config;
  config.embed_dim = 6;
  config.hidden = 4;
  TinyElmo elmo(12, config);
  const std::vector<std::int32_t> a = {1, 2, 3, 4};
  const std::vector<std::int32_t> b = {1, 2, 3, 9};
  const std::vector<float> sa = elmo.encode(a);
  const std::vector<float> sb = elmo.encode(b);
  const std::size_t h = config.hidden;
  const std::size_t fd = 2 * h;
  for (std::size_t j = 0; j < h; ++j) {
    EXPECT_FLOAT_EQ(sa[0 * fd + j], sb[0 * fd + j])
        << "forward state at t=0 must ignore the future";
  }
  double bwd_diff = 0.0;
  for (std::size_t j = 0; j < h; ++j) {
    bwd_diff += std::abs(sa[0 * fd + h + j] - sb[0 * fd + h + j]);
  }
  EXPECT_GT(bwd_diff, 1e-6) << "backward state at t=0 must see the future";
}

TEST(TinyElmo, DeterministicGivenSeed) {
  const text::Corpus corpus = tiny_corpus();
  TinyElmoConfig config;
  config.epochs = 1;
  TinyElmo a(corpus.vocab_size, config);
  TinyElmo b(corpus.vocab_size, config);
  a.pretrain(corpus);
  b.pretrain(corpus);
  EXPECT_EQ(a.parameters(), b.parameters());
}

TEST(TinyElmo, RejectsDegenerateConfigs) {
  EXPECT_THROW(TinyElmo(1, {}), CheckError);
  TinyElmoConfig config;
  config.hidden = 0;
  EXPECT_THROW(TinyElmo(10, config), CheckError);
}

}  // namespace
}  // namespace anchor::ctx
