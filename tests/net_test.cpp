// net/ subsystem: wire codecs, frame robustness, and an in-process
// client/server loopback exercising every RPC — real TCP sockets on
// 127.0.0.1, with the server's accept loop and batcher running on their
// own threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/demo_store.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::net {
namespace {

// ---- codecs ------------------------------------------------------------

TEST(Wire, PrimitiveRoundTripAndBoundsChecks) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");
  w.str("");

  WireReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  r.expect_done();

  WireReader truncated(w.buffer().data(), 3);
  truncated.u8();
  EXPECT_THROW(truncated.u32(), WireError);

  // A string length pointing past the payload must throw, not overread.
  WireWriter bad;
  bad.u32(1000);
  WireReader bad_reader(bad.buffer());
  EXPECT_THROW(bad_reader.str(), WireError);
}

TEST(Wire, LookupResultRoundTripsThroughSliceEncoding) {
  serve::LookupResult result;
  result.dim = 3;
  result.version = "v42";
  result.vectors = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  result.oov = {0, 1, 0};

  WireWriter w;
  encode_lookup_result(result, &w);
  WireReader r(w.buffer());
  const serve::LookupResult back = decode_lookup_result(&r);
  r.expect_done();
  EXPECT_EQ(back.version, "v42");
  EXPECT_EQ(back.dim, 3u);
  EXPECT_EQ(back.vectors, result.vectors);
  EXPECT_EQ(back.oov, result.oov);

  // Middle slice only.
  WireWriter ws;
  encode_lookup_result_slice(result, 1, 2, &ws);
  WireReader rs(ws.buffer());
  const serve::LookupResult mid = decode_lookup_result(&rs);
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid.vectors, (std::vector<float>{4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(mid.oov, (std::vector<std::uint8_t>{1, 0}));

  // A row count the payload cannot hold must throw BEFORE allocating —
  // including at dim == 0, where the n·dim guard alone would pass and
  // oov.resize(n) would ask for 4 GiB from a 13-byte frame.
  WireWriter hostile;
  hostile.str("");
  hostile.u32(0xFFFFFFFFu);  // n
  hostile.u32(0);            // dim
  WireReader hostile_reader(hostile.buffer());
  EXPECT_THROW(decode_lookup_result(&hostile_reader), WireError);
}

TEST(Wire, GateReportAndStatsRoundTrip) {
  serve::GateReport report;
  report.old_version = "a";
  report.new_version = "b";
  report.decision = serve::GateDecision::kWarn;
  report.promoted = true;
  report.eis = 0.125;
  report.one_minus_knn = 0.5;
  report.rows_compared = 2048;
  report.reason = "eis=0.125 (warn)";

  WireWriter w;
  encode_gate_report(report, &w);
  WireReader r(w.buffer());
  const serve::GateReport back = decode_gate_report(&r);
  r.expect_done();
  EXPECT_EQ(back.old_version, "a");
  EXPECT_EQ(back.new_version, "b");
  EXPECT_EQ(back.decision, serve::GateDecision::kWarn);
  EXPECT_TRUE(back.promoted);
  EXPECT_EQ(back.eis, 0.125);
  EXPECT_EQ(back.one_minus_knn, 0.5);
  EXPECT_EQ(back.rows_compared, 2048u);
  EXPECT_EQ(back.reason, "eis=0.125 (warn)");

  ServerStatsReport stats;
  stats.live_version = "live";
  stats.service.lookups = 7;
  stats.service.qps = 123.5;
  stats.batcher.batches = 3;
  stats.batcher.p99_latency_us = 42.0;
  stats.encoding = "pq:4x8";
  WireWriter sw;
  encode_server_stats(stats, &sw);
  WireReader sr(sw.buffer());
  const ServerStatsReport sback = decode_server_stats(&sr);
  sr.expect_done();
  EXPECT_EQ(sback.live_version, "live");
  EXPECT_EQ(sback.service.lookups, 7u);
  EXPECT_EQ(sback.service.qps, 123.5);
  EXPECT_EQ(sback.batcher.batches, 3u);
  EXPECT_EQ(sback.batcher.p99_latency_us, 42.0);
  EXPECT_EQ(sback.encoding, "pq:4x8");

  // A v3 peer's reply stops after the batcher snapshot; the trailing
  // encoding field must decode as absent (empty), not throw.
  WireWriter v3;
  v3.str(stats.live_version);
  encode_stats_snapshot(stats.service, &v3);
  encode_stats_snapshot(stats.batcher, &v3);
  WireReader v3r(v3.buffer());
  const ServerStatsReport old_peer = decode_server_stats(&v3r);
  v3r.expect_done();
  EXPECT_EQ(old_peer.live_version, "live");
  EXPECT_EQ(old_peer.batcher.batches, 3u);
  EXPECT_EQ(old_peer.encoding, "");

  // Corrupt decision codes must not cast into the enum silently.
  WireWriter cw;
  cw.str("a");
  cw.str("b");
  cw.u8(9);  // not a GateDecision
  WireReader cr(cw.buffer());
  EXPECT_THROW(decode_gate_report(&cr), WireError);
}

TEST(Wire, CanaryStatusRoundTrip) {
  CanaryStatusReport status;
  status.state = serve::CanaryState::kRunning;
  status.incumbent = "v1";
  status.candidate = "v2";
  status.fraction = 0.25;
  status.shadow_rate = 0.5;
  status.offline.old_version = "v1";
  status.offline.new_version = "v2";
  status.offline.decision = serve::GateDecision::kWarn;
  status.offline.eis = 0.07;
  status.online.candidate_lookups = 100;
  status.online.shadows = 42;
  status.online.mean_agreement = 0.9;
  status.online.agreement_lower = 0.8;
  status.online.agreement_upper = 1.0;
  status.online.mean_displacement = 0.01;
  status.online.mean_latency_delta_us = 3.5;
  status.online.worst_keys = {{123, 0.75}, {7, 0.5}};
  status.reason = "still watching";

  WireWriter w;
  encode_canary_status(status, &w);
  WireReader r(w.buffer());
  const CanaryStatusReport back = decode_canary_status(&r);
  r.expect_done();
  EXPECT_EQ(back.state, serve::CanaryState::kRunning);
  EXPECT_EQ(back.incumbent, "v1");
  EXPECT_EQ(back.candidate, "v2");
  EXPECT_EQ(back.fraction, 0.25);
  EXPECT_EQ(back.shadow_rate, 0.5);
  EXPECT_EQ(back.offline.decision, serve::GateDecision::kWarn);
  EXPECT_EQ(back.offline.eis, 0.07);
  EXPECT_EQ(back.online.shadows, 42u);
  EXPECT_EQ(back.online.mean_agreement, 0.9);
  ASSERT_EQ(back.online.worst_keys.size(), 2u);
  EXPECT_EQ(back.online.worst_keys[0].key, 123u);
  EXPECT_EQ(back.online.worst_keys[0].displacement, 0.75);
  EXPECT_EQ(back.online.worst_keys[1].key, 7u);
  EXPECT_EQ(back.reason, "still watching");

  // An out-of-range state byte must throw, not cast silently.
  WireWriter bad;
  bad.u8(42);
  WireReader bad_reader(bad.buffer());
  EXPECT_THROW(decode_canary_status(&bad_reader), WireError);

  // A worst-key count the payload cannot hold must throw pre-allocation.
  WireWriter hostile;
  serve::CanaryStatsSnapshot empty;
  encode_canary_stats(empty, &hostile);
  std::vector<std::uint8_t> bytes = hostile.buffer();
  bytes[bytes.size() - 1] = 0xFF;  // worst-key count → huge
  bytes[bytes.size() - 2] = 0xFF;
  WireReader hostile_reader(bytes.data(), bytes.size());
  EXPECT_THROW(decode_canary_stats(&hostile_reader), WireError);
}

TEST(Wire, RolloutStatusRoundTrip) {
  RolloutStatusReport st;
  st.state = RolloutState::kRolledBack;
  st.candidate = "v9";
  st.mode = 1;
  st.map_version = 12;
  st.shards = {{ShardRolloutState::kRolledBack, "reverted to v1"},
               {ShardRolloutState::kFailed, "gate rejected"},
               {ShardRolloutState::kPending, ""}};
  st.reason = "shard 2/3 refused";

  WireWriter w;
  encode_rollout_status(st, &w);
  WireReader r(w.buffer());
  const RolloutStatusReport back = decode_rollout_status(&r);
  r.expect_done();
  EXPECT_EQ(back.state, RolloutState::kRolledBack);
  EXPECT_TRUE(back.terminal());
  EXPECT_EQ(back.candidate, "v9");
  EXPECT_EQ(back.mode, 1);
  EXPECT_EQ(back.map_version, 12u);
  ASSERT_EQ(back.shards.size(), 3u);
  EXPECT_EQ(back.shards[0].state, ShardRolloutState::kRolledBack);
  EXPECT_EQ(back.shards[0].detail, "reverted to v1");
  EXPECT_EQ(back.shards[1].state, ShardRolloutState::kFailed);
  EXPECT_EQ(back.shards[2].state, ShardRolloutState::kPending);
  EXPECT_EQ(back.reason, "shard 2/3 refused");

  // Bad state bytes throw; so does a shard count beyond the payload.
  WireWriter bad;
  bad.u8(99);
  WireReader bad_reader(bad.buffer());
  EXPECT_THROW(decode_rollout_status(&bad_reader), WireError);
}

TEST(Wire, HistogramCodecRoundTripsSparsely) {
  obs::LogHistogram h;
  h.record(3.0);
  h.record(100.0);
  h.record_n(250.5, 7);
  const obs::HistogramSnapshot s = h.snapshot();

  WireWriter w;
  encode_histogram(s, &w);
  // Sparse on the wire: 3 occupied buckets, nowhere near the dense
  // kNumBuckets × 8 bytes.
  EXPECT_LT(w.buffer().size(), 100u);
  WireReader r(w.buffer());
  const obs::HistogramSnapshot back = decode_histogram(&r);
  r.expect_done();
  EXPECT_EQ(back.count, s.count);
  EXPECT_EQ(back.sum_units, s.sum_units);
  EXPECT_EQ(back.min_units, s.min_units);
  EXPECT_EQ(back.max_units, s.max_units);
  EXPECT_EQ(back.counts, s.counts);
  EXPECT_EQ(back.quantile(0.99), s.quantile(0.99));

  // Empty histograms cost 36 bytes and decode back to empty.
  WireWriter we;
  encode_histogram(obs::HistogramSnapshot{}, &we);
  WireReader re(we.buffer());
  EXPECT_EQ(decode_histogram(&re).count, 0u);

  // Hostile: a nonzero-bucket count the payload cannot hold must throw
  // before allocating.
  WireWriter hostile;
  for (int i = 0; i < 4; ++i) hostile.u64(1);
  hostile.u32(0xFFFFFFFFu);
  WireReader hostile_reader(hostile.buffer());
  EXPECT_THROW(decode_histogram(&hostile_reader), WireError);

  // Hostile: a bucket index past kNumBuckets must throw, not scribble.
  WireWriter oob;
  for (int i = 0; i < 4; ++i) oob.u64(1);
  oob.u32(1);
  oob.u16(60000);
  oob.u64(1);
  WireReader oob_reader(oob.buffer());
  EXPECT_THROW(decode_histogram(&oob_reader), WireError);
}

TEST(Wire, MetricsReportRoundTrip) {
  obs::MetricsReport m;
  obs::MetricValue c;
  c.kind = obs::MetricKind::kCounter;
  c.name = "x_requests_total";
  c.help = "requests";
  c.counter = 42;
  obs::MetricValue g;
  g.kind = obs::MetricKind::kGauge;
  g.name = "x_depth";
  g.gauge = 2.5;
  obs::MetricValue hist;
  hist.kind = obs::MetricKind::kHistogram;
  hist.name = "x_latency_us";
  obs::LogHistogram lh;
  lh.record(5.0);
  lh.record(80.0);
  hist.hist = lh.snapshot();
  m.metrics = {c, g, hist};

  WireWriter w;
  encode_metrics_report(m, &w);
  WireReader r(w.buffer());
  const obs::MetricsReport back = decode_metrics_report(&r);
  r.expect_done();
  ASSERT_EQ(back.metrics.size(), 3u);
  EXPECT_EQ(back.metrics[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(back.metrics[0].name, "x_requests_total");
  EXPECT_EQ(back.metrics[0].help, "requests");
  EXPECT_EQ(back.metrics[0].counter, 42u);
  EXPECT_EQ(back.metrics[1].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(back.metrics[1].gauge, 2.5);
  EXPECT_EQ(back.metrics[2].kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(back.metrics[2].hist.count, 2u);
  EXPECT_EQ(back.metrics[2].hist.counts, hist.hist.counts);

  // A bad metric kind byte throws.
  WireWriter bad;
  bad.u32(1);
  bad.u8(9);  // no such kind
  WireReader bad_reader(bad.buffer());
  EXPECT_THROW(decode_metrics_report(&bad_reader), WireError);
}

TEST(Wire, TopKRequestAndResultRoundTrip) {
  for (const std::uint8_t kind :
       {kTopKKindId, kTopKKindWord, kTopKKindVector}) {
    TopKRequest req;
    req.k = 7;
    req.nprobe = 12;
    req.rerank = 96;
    req.mode = kTopKModeCandidates;
    req.kind = kind;
    req.id = 123456789ull;
    req.word = "w42";
    req.vector = {1.5f, -2.25f, 0.0f};
    WireWriter w;
    encode_topk_request(req, &w);
    WireReader r(w.buffer());
    const TopKRequest back = decode_topk_request(&r);
    r.expect_done();
    EXPECT_EQ(back.k, req.k);
    EXPECT_EQ(back.nprobe, req.nprobe);
    EXPECT_EQ(back.rerank, req.rerank);
    EXPECT_EQ(back.mode, req.mode);
    EXPECT_EQ(back.kind, kind);
    if (kind == kTopKKindId) EXPECT_EQ(back.id, req.id);
    if (kind == kTopKKindWord) EXPECT_EQ(back.word, req.word);
    if (kind == kTopKKindVector) EXPECT_EQ(back.vector, req.vector);
  }

  ann::TopKResult result;
  result.version = "v7";
  result.cells_probed = 16;
  result.shortlist = 64;
  result.flags = ann::kTopKFlagPartial;
  result.hits = {{11, 0.5f, 0.625f}, {900, 1.75f, 1.5f}};
  WireWriter w;
  encode_topk_result(result, &w);
  WireReader r(w.buffer());
  const ann::TopKResult back = decode_topk_result(&r);
  r.expect_done();
  EXPECT_EQ(back.version, "v7");
  EXPECT_EQ(back.cells_probed, 16u);
  EXPECT_EQ(back.shortlist, 64u);
  EXPECT_EQ(back.flags, ann::kTopKFlagPartial);
  ASSERT_EQ(back.hits.size(), 2u);
  EXPECT_EQ(back.hits[0].id, 11u);
  EXPECT_EQ(back.hits[0].exact, 0.5f);
  EXPECT_EQ(back.hits[0].adc, 0.625f);
  EXPECT_EQ(back.hits[1].id, 900u);

  // Guarded decodes: a bad mode/kind byte and an overrun hit count throw
  // instead of allocating or reading past the payload.
  {
    TopKRequest bad;
    bad.mode = 9;
    WireWriter bw;
    encode_topk_request(bad, &bw);
    WireReader br(bw.buffer());
    EXPECT_THROW(decode_topk_request(&br), WireError);
  }
  {
    // The encoder refuses an unknown kind outright; hand-craft the bytes
    // to prove the decoder guards too.
    TopKRequest bad;
    EXPECT_THROW(
        {
          WireWriter bw;
          bad.kind = 7;
          encode_topk_request(bad, &bw);
        },
        WireError);
    WireWriter bw;
    bw.u32(10);
    bw.u32(0);
    bw.u32(0);
    bw.u8(kTopKModeFinal);
    bw.u8(7);  // no such kind
    WireReader br(bw.buffer());
    EXPECT_THROW(decode_topk_request(&br), WireError);
  }
  {
    WireWriter bw;
    bw.str("v");
    bw.u32(1);
    bw.u32(1);
    bw.u8(0);
    bw.u32(1000000);  // claims a million hits, carries none
    WireReader br(bw.buffer());
    EXPECT_THROW(decode_topk_result(&br), WireError);
  }
}

TEST(Wire, HeatReportRoundTripsBitIdentically) {
  obs::WindowedConfig wcfg;
  wcfg.slice_us = 1'000'000;
  obs::WindowedStats stats(wcfg);
  constexpr std::uint64_t kNow = 1'700'000'000'000'000ull;
  stats.record_many_at(kNow - 2'000'000, 120.0, 9, 1);
  stats.record_many_at(kNow, 80.0, 4, 0);
  obs::SpaceSavingSketch::Config scfg;
  scfg.capacity = 8;
  scfg.stripes = 1;
  obs::RangeHeatMap::Config hcfg;
  hcfg.row_end = 100;
  hcfg.buckets = 4;
  obs::KeyLoadRecorder load(scfg, hcfg);
  for (int i = 0; i < 50; ++i) load.record(7);
  load.record(93, 3);

  HeatReport report;
  report.windowed = stats.snapshot_at(kNow);
  report.sketch = load.sketch.snapshot();
  report.heat = load.heat.snapshot();

  WireWriter w;
  encode_heat_report(report, &w);
  WireReader r(w.buffer());
  const HeatReport back = decode_heat_report(&r);
  r.expect_done();
  ASSERT_EQ(back.windowed.slices.size(), 2u);
  EXPECT_EQ(back.windowed.slice_us, report.windowed.slice_us);
  EXPECT_EQ(back.windowed.now_us, kNow);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.windowed.slices[i].epoch, report.windowed.slices[i].epoch);
    EXPECT_EQ(back.windowed.slices[i].requests,
              report.windowed.slices[i].requests);
    EXPECT_EQ(back.windowed.slices[i].errors,
              report.windowed.slices[i].errors);
    EXPECT_EQ(back.windowed.slices[i].latency.counts,
              report.windowed.slices[i].latency.counts);
  }
  EXPECT_EQ(back.sketch.capacity, 8u);
  EXPECT_EQ(back.sketch.total, 53u);
  ASSERT_EQ(back.sketch.entries.size(), report.sketch.entries.size());
  EXPECT_EQ(back.sketch.entries[0].key, 7u);
  EXPECT_EQ(back.sketch.entries[0].count, 50u);
  ASSERT_EQ(back.heat.ranges.size(), 1u);
  EXPECT_EQ(back.heat.total, 53u);
  EXPECT_EQ(back.heat.ranges[0].buckets, report.heat.ranges[0].buckets);
}

TEST(Wire, HeatCodecsRejectHostileFrames) {
  // Windowed: slice count the payload cannot hold.
  {
    WireWriter w;
    w.u64(1'000'000);  // slice_us
    w.u64(0);          // now_us
    w.u32(0xFFFFFFFFu);
    WireReader r(w.buffer());
    EXPECT_THROW(decode_windowed_snapshot(&r), WireError);
  }
  // Windowed: nonzero slices with a zero slice width are nonsense.
  {
    WireWriter w;
    w.u64(0);
    w.u64(0);
    w.u32(1);
    WireReader r(w.buffer());
    EXPECT_THROW(decode_windowed_snapshot(&r), WireError);
  }
  // Windowed: duplicate epochs would double-count in a merge.
  {
    WireWriter w;
    w.u64(1'000'000);
    w.u64(5'000'000);
    w.u32(2);
    for (int i = 0; i < 2; ++i) {
      w.u64(3);  // same epoch twice
      w.u64(1);
      w.u64(0);
      encode_histogram(obs::HistogramSnapshot{}, &w);
    }
    WireReader r(w.buffer());
    EXPECT_THROW(decode_windowed_snapshot(&r), WireError);
  }
  // Sketch: entry count exceeding the payload must throw pre-allocation.
  {
    WireWriter w;
    w.u64(8);
    w.u64(100);
    w.u32(0xFFFFFFFFu);
    WireReader r(w.buffer());
    EXPECT_THROW(decode_sketch_snapshot(&r), WireError);
  }
  // Heat: inverted range bounds.
  {
    WireWriter w;
    w.u64(1);   // total
    w.u64(0);   // elapsed
    w.u32(1);   // one range
    w.u64(50);  // row_begin
    w.u64(10);  // row_end < row_begin
    w.u32(0);
    WireReader r(w.buffer());
    EXPECT_THROW(decode_heat_map(&r), WireError);
  }
  // Heat: bucket count exceeding the payload.
  {
    WireWriter w;
    w.u64(1);
    w.u64(0);
    w.u32(1);
    w.u64(0);
    w.u64(10);
    w.u32(0xFFFFFFFFu);
    WireReader r(w.buffer());
    EXPECT_THROW(decode_heat_map(&r), WireError);
  }
  // Truncations of a valid frame never crash: throw or (rarely) decode a
  // shorter valid prefix — same contract as the other codec fuzz tests.
  WireWriter valid;
  obs::WindowedConfig wcfg;
  obs::WindowedStats stats(wcfg);
  stats.record(10.0, false);
  HeatReport report;
  report.windowed = stats.snapshot();
  encode_heat_report(report, &valid);
  for (std::size_t cut = 0; cut < valid.buffer().size(); ++cut) {
    std::vector<std::uint8_t> trunc(valid.buffer().begin(),
                                    valid.buffer().begin() + cut);
    WireReader r(trunc);
    try {
      decode_heat_report(&r);
    } catch (const WireError&) {
    }
  }
}

TEST(Wire, TraceExtensionRoundTripsOverLoopback) {
  TcpListener listener = TcpListener::bind_loopback(0);
  TcpStream sender = TcpStream::connect("127.0.0.1", listener.port());
  TcpStream receiver = listener.accept(2000);
  ASSERT_TRUE(receiver.valid());

  const obs::TraceContext ctx = obs::TraceContext::start();
  WireWriter body;
  body.u32(7);
  write_frame(sender, MsgType::kPing, body, ctx);

  MsgType type{};
  std::vector<std::uint8_t> payload;
  obs::TraceContext got;
  ASSERT_TRUE(read_frame(receiver, &type, &payload, &got));
  EXPECT_EQ(type, MsgType::kPing);
  EXPECT_EQ(got.trace_id, ctx.trace_id);
  EXPECT_EQ(got.span_id, ctx.span_id);
  EXPECT_EQ(got.flags, ctx.flags);
  WireReader r(payload);
  EXPECT_EQ(r.u32(), 7u);
  r.expect_done();

  // An untraced frame resets the out-context (no stale trace leaks into
  // the next request on the connection).
  write_frame(sender, MsgType::kPing, body);
  ASSERT_TRUE(read_frame(receiver, &type, &payload, &got));
  EXPECT_FALSE(got.valid());

  // Reading WITHOUT a trace out-param skips the extension and still
  // yields the payload (old call sites stay correct).
  write_frame(sender, MsgType::kPing, body, ctx);
  ASSERT_TRUE(read_frame(receiver, &type, &payload));
  WireReader r2(payload);
  EXPECT_EQ(r2.u32(), 7u);

  // Forward compatibility: a frame whose ext_len exceeds the 17 trace
  // bytes (a future extension) — the trace decodes, the extra bytes are
  // skipped, the payload follows intact.
  {
    const std::uint8_t ext_len = 20;
    const std::uint32_t len = 4u + ext_len + 1u;
    std::vector<std::uint8_t> frame;
    frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&len),
                 reinterpret_cast<const std::uint8_t*>(&len) + 4);
    frame.push_back(kWireMagic);
    frame.push_back(kWireVersion);
    frame.push_back(static_cast<std::uint8_t>(MsgType::kPing));
    frame.push_back(ext_len);
    std::uint64_t tid = 0x1122334455667788ull;
    std::uint64_t sid = 0x99AABBCCDDEEFF00ull;
    frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&tid),
                 reinterpret_cast<const std::uint8_t*>(&tid) + 8);
    frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&sid),
                 reinterpret_cast<const std::uint8_t*>(&sid) + 8);
    frame.push_back(obs::TraceContext::kSampled);
    frame.push_back(0xDE);  // 3 future-extension bytes
    frame.push_back(0xAD);
    frame.push_back(0xBF);
    frame.push_back(0x5A);  // 1 payload byte
    sender.write_all(frame.data(), frame.size());

    ASSERT_TRUE(read_frame(receiver, &type, &payload, &got));
    EXPECT_EQ(got.trace_id, tid);
    EXPECT_EQ(got.span_id, sid);
    EXPECT_TRUE(got.sampled());
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], 0x5A);
  }

  // Hostile: ext_len larger than the declared frame throws WireError on
  // the reader side.
  {
    const std::uint32_t len = 4u + 1u;
    std::vector<std::uint8_t> frame;
    frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&len),
                 reinterpret_cast<const std::uint8_t*>(&len) + 4);
    frame.push_back(kWireMagic);
    frame.push_back(kWireVersion);
    frame.push_back(static_cast<std::uint8_t>(MsgType::kPing));
    frame.push_back(200);  // ext_len > len - 4
    frame.push_back(0x00);
    sender.write_all(frame.data(), frame.size());
    EXPECT_THROW(read_frame(receiver, &type, &payload, &got), WireError);
  }
}

// ---- decoder fuzz ------------------------------------------------------
//
// The decoders face attacker-controlled bytes; under fuzzed input every
// outcome must be "decoded cleanly" or "threw WireError" — never a crash,
// an overread (ASan job), or a length-driven huge allocation.

template <typename Decoder>
void fuzz_decoder(const Decoder& decode, std::uint64_t seed) {
  Rng rng(seed);
  for (int iter = 0; iter < 800; ++iter) {
    const std::size_t len = rng.index(96);
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.index(256));
    }
    // Bias some bytes toward small values so length-prefixed fields
    // occasionally parse a few levels deep instead of throwing at the
    // first u32.
    if (len >= 4 && rng.bernoulli(0.5)) {
      payload[1] = payload[2] = payload[3] = 0;
    }
    try {
      WireReader reader(payload);
      (void)decode(&reader);
    } catch (const WireError&) {
      // expected for malformed input
    }
  }
}

TEST(WireFuzz, RandomPayloadsNeverCrashTheDecoders) {
  fuzz_decoder([](WireReader* r) { return decode_lookup_result(r); }, 91);
  fuzz_decoder([](WireReader* r) { return decode_gate_report(r); }, 92);
  fuzz_decoder([](WireReader* r) { return decode_server_stats(r); }, 93);
  fuzz_decoder([](WireReader* r) { return decode_canary_status(r); }, 94);
  fuzz_decoder([](WireReader* r) { return decode_rollout_status(r); }, 95);
  fuzz_decoder([](WireReader* r) { return decode_topk_request(r); }, 96);
  fuzz_decoder([](WireReader* r) { return decode_topk_result(r); }, 97);
}

TEST(WireFuzz, TruncatedAndBitFlippedLookupResultsDecodeOrThrowCleanly) {
  serve::LookupResult result;
  result.dim = 6;
  result.version = "v-fuzz";
  for (int i = 0; i < 5 * 6; ++i) {
    result.vectors.push_back(static_cast<float>(i) * 0.5f);
  }
  result.oov = {0, 1, 0, 0, 1};
  WireWriter w;
  encode_lookup_result(result, &w);
  const std::vector<std::uint8_t>& valid = w.buffer();

  // Every truncation prefix: decode must throw WireError or succeed on
  // a consistent prefix — never read past the buffer.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    try {
      WireReader reader(valid.data(), cut);
      (void)decode_lookup_result(&reader);
    } catch (const WireError&) {
    }
  }

  // Random single-bit flips over the whole payload.
  Rng rng(95);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> flipped = valid;
    const std::size_t byte = rng.index(flipped.size());
    flipped[byte] ^= static_cast<std::uint8_t>(1u << rng.index(8));
    try {
      WireReader reader(flipped);
      const serve::LookupResult back = decode_lookup_result(&reader);
      // When it does decode, the sizes must be internally consistent
      // (the guarded resize path).
      EXPECT_EQ(back.vectors.size(), back.size() * back.dim);
    } catch (const WireError&) {
    }
  }
}

// ---- loopback RPC ------------------------------------------------------

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::DemoStoreConfig demo;
    demo.vocab = 600;
    demo.dim = 32;
    serve::add_demo_versions(store_, demo);
    server_ = std::make_unique<Server>(store_, ServerConfig{});
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  serve::EmbeddingStore store_;
  std::unique_ptr<Server> server_;
};

TEST_F(RpcTest, LookupsMatchInProcessService) {
  Client client("127.0.0.1", server_->port());
  client.ping();

  const serve::LookupService direct(store_);
  const std::vector<std::size_t> ids = {0, 3, 599, 600, 17};
  const serve::LookupResult remote = client.lookup_ids(ids);
  const serve::LookupResult local = direct.lookup_ids(ids);
  ASSERT_EQ(remote.size(), local.size());
  EXPECT_EQ(remote.version, local.version);
  EXPECT_EQ(remote.dim, local.dim);
  EXPECT_EQ(remote.oov, local.oov);
  EXPECT_EQ(remote.vectors, local.vectors);

  const std::vector<std::string> words = {"w5", "never-seen-word"};
  const serve::LookupResult remote_words = client.lookup_words(words);
  const serve::LookupResult local_words = direct.lookup_words(words);
  EXPECT_EQ(remote_words.oov, local_words.oov);
  EXPECT_EQ(remote_words.vectors, local_words.vectors);

  const serve::LookupResult empty = client.lookup_ids({});
  EXPECT_EQ(empty.size(), 0u);
}

TEST_F(RpcTest, ConcurrentClientsCoalesceAndAgree) {
  constexpr int kClients = 4;
  constexpr int kLookups = 50;
  const serve::LookupService direct(store_);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client("127.0.0.1", server_->port());
      Rng rng(7 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kLookups; ++i) {
        const std::size_t id = rng.index(600);
        const serve::LookupResult remote = client.lookup_id(id);
        const serve::LookupResult local = direct.lookup_ids({id});
        if (remote.vectors != local.vectors) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // All traffic flowed through the server's batcher.
  EXPECT_EQ(server_->async().stats().snapshot().lookups,
            static_cast<std::uint64_t>(kClients * kLookups));
}

TEST_F(RpcTest, TryPromoteGatesOverRpc) {
  Client client("127.0.0.1", server_->port());
  EXPECT_EQ(client.stats().live_version, "v1");

  const serve::GateReport bad = client.try_promote("v3-bad");
  EXPECT_EQ(bad.decision, serve::GateDecision::kReject);
  EXPECT_FALSE(bad.promoted);
  EXPECT_EQ(client.stats().live_version, "v1");

  const serve::GateReport good = client.try_promote("v2-good");
  EXPECT_TRUE(good.promoted);
  EXPECT_EQ(client.stats().live_version, "v2-good");
  // Lookups follow the swap.
  EXPECT_EQ(client.lookup_id(0).version, "v2-good");

  EXPECT_THROW(client.try_promote("no-such-version"), RpcError);
  // The connection survives an error reply.
  client.ping();
}

TEST_F(RpcTest, StatsReflectServedTraffic) {
  Client client("127.0.0.1", server_->port());
  client.lookup_ids({1, 2, 3});
  client.lookup_id(4);
  const ServerStatsReport stats = client.stats();
  EXPECT_EQ(stats.live_version, "v1");
  EXPECT_EQ(stats.encoding, "fp32");  // the daemon reports real row storage
  EXPECT_EQ(stats.batcher.lookups, 4u);
  EXPECT_GE(stats.service.lookups, 4u);
  EXPECT_GT(stats.batcher.batches, 0u);
  // The stats snapshot now carries the full latency histogram (one
  // sample per batch), and the scalar percentiles agree with it.
  EXPECT_EQ(stats.batcher.latency.count, stats.batcher.batches);
  EXPECT_EQ(stats.batcher.p50_latency_us,
            stats.batcher.latency.quantile(0.5));
}

TEST_F(RpcTest, HeatRpcReportsWindowedLoadTopKeysAndHeat) {
  Client client("127.0.0.1", server_->port());
  // Skewed traffic: id 7 dominates, everything else is a thin tail.
  for (int i = 0; i < 40; ++i) client.lookup_id(7);
  client.lookup_ids({1, 2, 3, 7, 7});

  const HeatReport report = client.heat();
  // Windowed: every data-plane RPC recorded exactly once (41 lookups);
  // the HEAT RPC itself is control-plane and does not self-record.
  EXPECT_EQ(report.windowed.requests_in(60'000'000), 41u);
  EXPECT_EQ(report.windowed.errors_in(60'000'000), 0u);
  EXPECT_EQ(report.windowed.latency_in(60'000'000).count, 41u);
  EXPECT_GT(report.windowed.qps(60'000'000), 0.0);

  // Sketch: id 7 is the top key with an exact count (no evictions at
  // this scale), and the totals agree with the keys resolved (45).
  EXPECT_EQ(report.sketch.total, 45u);
  const auto top = report.sketch.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_EQ(top[0].count, 42u);

  // Heat map: covers the demo vocab, same total, and the bucket holding
  // id 7 carries the bulk of it.
  ASSERT_EQ(report.heat.ranges.size(), 1u);
  EXPECT_EQ(report.heat.ranges[0].row_begin, 0u);
  EXPECT_EQ(report.heat.ranges[0].row_end, 600u);
  EXPECT_EQ(report.heat.total, 45u);
  EXPECT_EQ(report.heat.range_total(7), 45u);

  // A second snapshot only grows — the recorders are cumulative.
  client.lookup_id(9);
  const HeatReport later = client.heat();
  EXPECT_EQ(later.sketch.total, 46u);
  EXPECT_EQ(later.windowed.requests_in(60'000'000), 42u);
}

TEST_F(RpcTest, MetricsRpcExposesTheServerRegistry) {
  Client client("127.0.0.1", server_->port());
  client.lookup_ids({1, 2, 3});
  const obs::MetricsReport report = client.metrics();
  ASSERT_FALSE(report.metrics.empty());
  const auto find = [&](const std::string& name) -> const obs::MetricValue* {
    for (const obs::MetricValue& m : report.metrics) {
      if (m.name.rfind(name, 0) == 0) return &m;
    }
    return nullptr;
  };
  const obs::MetricValue* lookups = find("anchor_lookup_requests_total");
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(lookups->counter, 3u);
  const obs::MetricValue* version = find("anchor_live_version_info");
  ASSERT_NE(version, nullptr);
  EXPECT_NE(version->name.find("version=\"v1\""), std::string::npos);
  const obs::MetricValue* latency = find("anchor_service_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, obs::MetricKind::kHistogram);
  EXPECT_GE(latency->hist.count, 1u);
  // The same report renders to Prometheus text without falling over.
  const std::string text = obs::to_prometheus(report);
  EXPECT_NE(text.find("anchor_lookup_requests_total 3"), std::string::npos);
}

TEST_F(RpcTest, TopKOverLoopbackMatchesInProcessIndex) {
  Client client("127.0.0.1", server_->port());

  // In-process oracle: the same snapshot and the same default AnnConfig
  // build bit-identically to the server's lazily-built index.
  const ann::IvfPqIndex oracle(store_.live(), ServerConfig{}.ann);
  const serve::LookupService direct(store_);
  const serve::LookupResult row = direct.lookup_ids({5});
  ASSERT_EQ(row.oov[0], 0);
  const ann::TopKResult want = oracle.search(row.vectors.data(), 10);

  const ann::TopKResult by_id = client.topk_id(5, 10);
  ASSERT_EQ(by_id.hits.size(), want.hits.size());
  EXPECT_EQ(by_id.version, store_.live_version());
  for (std::size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(by_id.hits[i].id, want.hits[i].id) << "rank " << i;
    EXPECT_EQ(by_id.hits[i].exact, want.hits[i].exact);
    EXPECT_EQ(by_id.hits[i].adc, want.hits[i].adc);
  }
  // The demo store maps word "w5" to row 5: same query, same answer.
  const ann::TopKResult by_word = client.topk_word("w5", 10);
  ASSERT_EQ(by_word.hits.size(), want.hits.size());
  EXPECT_EQ(by_word.hits[0].id, want.hits[0].id);

  // Raw-vector kind, and candidates mode through the raw request form.
  const std::vector<float> query(row.vectors.begin(), row.vectors.end());
  const ann::TopKResult by_vec = client.topk_vector(query, 10);
  EXPECT_EQ(by_vec.hits[0].id, want.hits[0].id);
  TopKRequest creq;
  creq.kind = kTopKKindVector;
  creq.mode = kTopKModeCandidates;
  creq.vector = query;
  creq.nprobe = 4;
  creq.rerank = 32;
  const ann::TopKResult cands = client.topk(creq);
  EXPECT_EQ(cands.shortlist, cands.hits.size());
  ASSERT_FALSE(cands.hits.empty());
  for (std::size_t i = 1; i < cands.hits.size(); ++i) {
    EXPECT_LE(cands.hits[i - 1].adc, cands.hits[i].adc);  // (adc, id) order
  }

  // A wrong-dimension raw vector answers an error frame, not a hangup.
  EXPECT_THROW(client.topk_vector({1.0f, 2.0f}, 5), RpcError);
  client.ping();  // connection still usable

  // Observability: the request counter counted the four successful
  // searches and the TOPK histograms recorded them.
  const obs::MetricsReport report = client.metrics();
  const auto find = [&](const std::string& name) -> const obs::MetricValue* {
    for (const obs::MetricValue& m : report.metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const obs::MetricValue* total = find("anchor_topk_requests_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->counter, 4u);
  const obs::MetricValue* cells = find("anchor_topk_cells_probed");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(cells->hist.count, 4u);
}

TEST_F(RpcTest, SampledTopKRecordsTheTopkTraceStage) {
  obs::Tracer::instance().clear();
  Client client("127.0.0.1", server_->port());
  const obs::TraceContext pinned = obs::TraceContext::start();
  client.set_next_trace(pinned);
  client.topk_id(3, 5);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool has_topk = false;
  while (!has_topk && std::chrono::steady_clock::now() < deadline) {
    const auto spans = obs::Tracer::instance().spans_for(pinned.trace_id);
    has_topk =
        std::any_of(spans.begin(), spans.end(), [](const obs::SpanRecord& s) {
          return s.stage == obs::TraceStage::kTopkSearch;
        });
    if (!has_topk) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(has_topk) << "no topk span recorded for the pinned trace";
  EXPECT_EQ(obs::trace_stage_name(obs::TraceStage::kTopkSearch),
            std::string("topk"));
}

TEST_F(RpcTest, SampledLookupTracesEveryBackendStage) {
  obs::Tracer::instance().clear();
  Client client("127.0.0.1", server_->port());
  const obs::TraceContext pinned = obs::TraceContext::start();
  client.set_next_trace(pinned);
  client.lookup_ids({1, 2, 3});
  EXPECT_EQ(client.last_trace().trace_id, pinned.trace_id);

  // Client and server share one in-process Tracer, so the whole span
  // waterfall is visible here: client_send wraps backend_recv wraps the
  // batcher stages. The server closes backend_recv after writing the
  // reply, which races the client past this point — poll until the
  // waterfall stops growing.
  std::vector<obs::SpanRecord> spans;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (std::size_t stable = 0; stable < 3;) {
    const std::size_t prev = spans.size();
    spans = obs::Tracer::instance().spans_for(pinned.trace_id);
    const bool has_recv =
        std::any_of(spans.begin(), spans.end(), [](const obs::SpanRecord& s) {
          return s.stage == obs::TraceStage::kBackendRecv;
        });
    stable = (has_recv && spans.size() == prev) ? stable + 1 : 0;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<obs::TraceStage> stages;
  for (const obs::SpanRecord& s : spans) stages.push_back(s.stage);
  const auto has = [&](obs::TraceStage st) {
    return std::find(stages.begin(), stages.end(), st) != stages.end();
  };
  EXPECT_TRUE(has(obs::TraceStage::kClientSend));
  EXPECT_TRUE(has(obs::TraceStage::kBackendRecv));
  EXPECT_TRUE(has(obs::TraceStage::kBatchQueue));
  EXPECT_TRUE(has(obs::TraceStage::kBatchExec));
  EXPECT_TRUE(has(obs::TraceStage::kDequantize));
  // Monotone and well-formed: sorted by start, every span closed.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LE(spans[i].start_ns, spans[i].end_ns);
    if (i > 0) EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }

  // The next request is untraced again (set_next_trace is one-shot).
  client.lookup_ids({4});
  EXPECT_FALSE(client.last_trace().valid());

  // An unsampled server sees unsampled requests: no new spans.
  const std::uint64_t before = obs::Tracer::instance().spans_recorded();
  client.lookup_ids({5, 6});
  EXPECT_EQ(obs::Tracer::instance().spans_recorded(), before);
}

TEST_F(RpcTest, MalformedFramesCloseTheConnection) {
  // Bad magic byte: the server must drop the connection without replying.
  {
    TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
    const std::uint32_t len = 4;
    std::uint8_t frame[8];
    std::memcpy(frame, &len, 4);
    frame[4] = 0x00;  // wrong magic
    frame[5] = kWireVersion;
    frame[6] = static_cast<std::uint8_t>(MsgType::kPing);
    frame[7] = 0;  // ext_len
    raw.write_all(frame, sizeof(frame));
    std::uint8_t byte;
    EXPECT_FALSE(raw.read_exact_or_eof(&byte, 1));  // clean EOF
  }
  // Oversized declared length: same treatment, before any allocation.
  {
    TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
    const std::uint32_t len = kMaxFrameBytes + 1;
    raw.write_all(&len, sizeof(len));
    std::uint8_t byte;
    EXPECT_FALSE(raw.read_exact_or_eof(&byte, 1));
  }
  // The server is still healthy for well-formed clients.
  Client client("127.0.0.1", server_->port());
  client.ping();
}

TEST_F(RpcTest, UnknownRequestTypeAnswersError) {
  TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
  WireWriter empty;
  write_frame(raw, static_cast<MsgType>(0x55), empty);
  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(raw, &type, &payload));
  EXPECT_EQ(type, MsgType::kError);
}

TEST_F(RpcTest, FuzzedFramesNeverKillTheServer) {
  // Seeded garbage thrown at a LIVE server: raw byte soup, well-framed
  // random payloads under every request type, truncated and bit-flipped
  // frames. Per connection the server may answer (reply or error frame)
  // or hang up — but it must survive all of it and keep serving
  // well-formed clients (and the whole test runs under ASan in CI).
  Rng rng(4242);
  for (int iter = 0; iter < 60; ++iter) {
    try {
      TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
      const int mode = static_cast<int>(rng.index(3));
      if (mode == 0) {
        // Raw byte soup — usually an invalid frame header.
        std::vector<std::uint8_t> bytes(1 + rng.index(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.index(256));
        raw.write_all(bytes.data(), bytes.size());
      } else if (mode == 1) {
        // Valid framing, random payload, random (mostly valid) type.
        WireWriter payload;
        const std::size_t len = rng.index(48);
        for (std::size_t i = 0; i < len; ++i) {
          payload.u8(static_cast<std::uint8_t>(rng.index(256)));
        }
        // Never draw kShutdown: an empty-payload draw would be a
        // LEGITIMATE shutdown request and kill the server mid-fuzz.
        // (Covers the router-only types 0x0A–0x0D too: a plain backend
        // answers them with an error frame like any unknown type.)
        std::uint8_t type_byte =
            static_cast<std::uint8_t>(1 + rng.index(13));
        if (type_byte == static_cast<std::uint8_t>(MsgType::kShutdown)) {
          type_byte = 0x7E;  // unused type → error frame
        }
        write_frame(raw, static_cast<MsgType>(type_byte), payload);
        MsgType reply_type{};
        std::vector<std::uint8_t> reply;
        try {
          (void)read_frame(raw, &reply_type, &reply);
        } catch (const NetError&) {
          // server hung up on us — acceptable for malformed payloads
        } catch (const WireError&) {
        }
      } else {
        // Declared length bigger than what we send, then hang up:
        // mid-frame EOF on the server side.
        const std::uint32_t len = 4 + static_cast<std::uint32_t>(
                                          16 + rng.index(1024));
        std::vector<std::uint8_t> partial;
        partial.insert(partial.end(),
                       reinterpret_cast<const std::uint8_t*>(&len),
                       reinterpret_cast<const std::uint8_t*>(&len) + 4);
        partial.push_back(kWireMagic);
        partial.push_back(kWireVersion);
        partial.push_back(static_cast<std::uint8_t>(MsgType::kPing));
        // Random ext_len byte: sometimes valid, sometimes exceeding the
        // declared frame — both must be survivable.
        partial.push_back(static_cast<std::uint8_t>(rng.index(256)));
        partial.push_back(0x00);  // 1 of the remaining bytes, then EOF
        raw.write_all(partial.data(), partial.size());
      }
    } catch (const NetError&) {
      // Connection refused/reset mid-write is fine — the server closing
      // early is one of the allowed outcomes.
    }
  }
  // The server took 60 hostile connections and still serves.
  Client client("127.0.0.1", server_->port());
  client.ping();
  EXPECT_EQ(client.lookup_id(3).size(), 1u);
}

TEST_F(RpcTest, ForcedPromoteBypassesTheGateAndIsAudited) {
  Client client("127.0.0.1", server_->port());
  // The gate rejects v3-bad outright...
  const serve::GateReport gated = client.try_promote("v3-bad");
  EXPECT_EQ(gated.decision, serve::GateDecision::kReject);
  EXPECT_FALSE(gated.promoted);
  // ...but a forced promote (the cluster rollback path) flips it anyway,
  // with an honest reason instead of fabricated measures.
  const serve::GateReport forced = client.try_promote("v3-bad", true);
  EXPECT_TRUE(forced.promoted);
  EXPECT_EQ(forced.old_version, "v1");
  EXPECT_NE(forced.reason.find("forced promote"), std::string::npos);
  EXPECT_EQ(client.lookup_id(0).version, "v3-bad");
  // Unknown versions still error; force is not a creation operator.
  EXPECT_THROW(client.try_promote("no-such-version", true), RpcError);
  // Restore v1 for any later test using this fixture instance.
  EXPECT_TRUE(client.try_promote("v1", true).promoted);
}

TEST_F(RpcTest, CanaryLifecycleOverRpc) {
  Client client("127.0.0.1", server_->port());
  EXPECT_EQ(client.canary_status().state, serve::CanaryState::kNone);

  // The strict default gate bounces the botched candidate offline —
  // phase 2 never starts and no traffic is ever routed to it.
  const CanaryStatusReport rejected = client.canary_start("v3-bad");
  EXPECT_EQ(rejected.state, serve::CanaryState::kOfflineRejected);
  EXPECT_EQ(rejected.offline.decision, serve::GateDecision::kReject);
  EXPECT_EQ(client.stats().live_version, "v1");
  EXPECT_EQ(client.canary_status().state,
            serve::CanaryState::kOfflineRejected);

  // Unknown candidates error without disturbing anything.
  EXPECT_THROW(client.canary_start("no-such-version"), RpcError);

  // The routine refresh starts phase 2; a second start is refused while
  // it runs.
  const CanaryStatusReport started =
      client.canary_start("v2-good", 0.5, 0.5);
  ASSERT_EQ(started.state, serve::CanaryState::kRunning);
  EXPECT_EQ(started.fraction, 0.5);
  EXPECT_EQ(started.shadow_rate, 0.5);
  EXPECT_NE(started.offline.decision, serve::GateDecision::kReject);
  EXPECT_EQ(client.stats().live_version, "v1");  // not flipped yet
  EXPECT_THROW(client.canary_start("v2-good"), RpcError);

  // Drive traffic; the server auto-promotes once the agreement bound
  // clears (min_shadows = 64 on the default config).
  Rng rng(31);
  CanaryStatusReport status = started;
  for (int iter = 0;
       iter < 400 && status.state == serve::CanaryState::kRunning; ++iter) {
    std::vector<std::size_t> ids(16);
    for (auto& id : ids) id = rng.index(600);
    client.lookup_ids(ids);
    if (iter % 4 == 3) status = client.canary_status();
  }
  status = client.canary_status();
  EXPECT_EQ(status.state, serve::CanaryState::kPromoted);
  EXPECT_GE(status.online.shadows, 64u);
  EXPECT_GE(status.online.agreement_lower, 0.70);
  EXPECT_EQ(client.stats().live_version, "v2-good");
  EXPECT_EQ(client.lookup_id(0).version, "v2-good");

  // A fresh canary (v1 as candidate against the new incumbent) can be
  // aborted by the operator; the incumbent stays live.
  const CanaryStatusReport second = client.canary_start("v1", 0.25, 0.25);
  ASSERT_EQ(second.state, serve::CanaryState::kRunning);
  // While it runs, an OFFLINE promote is refused too — it would flip the
  // incumbent out from under the router mid-measurement.
  EXPECT_THROW(client.try_promote("v1"), RpcError);
  EXPECT_EQ(client.stats().live_version, "v2-good");
  // Drained abort: the reply is the final scored status (the reason
  // names the drain so the audit trail distinguishes it).
  const CanaryStatusReport aborted = client.canary_abort(/*drain=*/true);
  EXPECT_EQ(aborted.state, serve::CanaryState::kAborted);
  EXPECT_NE(aborted.reason.find("(drained)"), std::string::npos);
  EXPECT_EQ(client.stats().live_version, "v2-good");
  // Abort with nothing running is a no-op status read.
  EXPECT_EQ(client.canary_abort().state, serve::CanaryState::kAborted);
}

TEST_F(RpcTest, CanaryRoutedLookupsMatchTheRightVersionPerKey) {
  Client client("127.0.0.1", server_->port());
  // Keep the canary running for the whole test: tiny shadow sample, huge
  // decision floor comes from the server default (min_shadows=64) — use
  // shadow_rate small enough that 64 is never reached here.
  const CanaryStatusReport started =
      client.canary_start("v2-good", 0.5, 0.01);
  ASSERT_EQ(started.state, serve::CanaryState::kRunning);

  const serve::LookupService direct_inc(store_);
  const serve::LookupService direct_cand(
      store_, {.pin_snapshot = store_.snapshot("v2-good")});
  const auto router = server_->canary();
  ASSERT_NE(router, nullptr);

  std::vector<std::size_t> ids = {0, 1, 2, 3, 4, 5, 6, 7,
                                  100, 200, 300, 400, 599};
  const std::uint64_t batcher_before = client.stats().batcher.lookups;
  const serve::LookupResult merged = client.lookup_ids(ids);
  // The Stats RPC must keep covering ALL keys while the canary routes
  // part of them to its own candidate stack (shared counters).
  EXPECT_GE(client.stats().batcher.lookups - batcher_before, ids.size());
  const serve::LookupResult inc = direct_inc.lookup_ids(ids);
  const serve::LookupResult cand = direct_cand.lookup_ids(ids);
  ASSERT_EQ(merged.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::LookupResult& want =
        router->routes_to_candidate(ids[i]) ? cand : inc;
    for (std::size_t j = 0; j < merged.dim; ++j) {
      EXPECT_EQ(merged.row(i)[j], want.row(i)[j])
          << "key " << ids[i] << " col " << j;
    }
  }
  client.canary_abort();
}

TEST(RpcShutdown, ShutdownFrameStopsTheServer) {
  serve::EmbeddingStore store;
  serve::DemoStoreConfig demo;
  demo.vocab = 200;
  demo.dim = 16;
  demo.build_oov_table = false;
  serve::add_demo_versions(store, demo);
  Server server(store, ServerConfig{});
  server.start();
  {
    Client client("127.0.0.1", server.port());
    client.ping();
    EXPECT_FALSE(server.shutdown_requested());
    client.shutdown_server();
  }
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();  // joins promptly because the accept loop already quit
}

TEST(Sockets, ConnectToClosedPortThrows) {
  // Bind-then-close to obtain a port that is very likely unused.
  std::uint16_t port;
  {
    TcpListener listener = TcpListener::bind_loopback(0);
    port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", port), NetError);
}

TEST(Sockets, RpcDeadlineUnwedgesAClientOfAHungServer) {
  // A server that accepts and then goes silent is the failure mode a
  // connect-time check can never catch; only the per-recv deadline does.
  TcpListener listener = TcpListener::bind_loopback(0);
  std::atomic<bool> done{false};
  std::thread hung([&] {
    TcpStream stream = listener.accept(5000);  // never replies
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  Client client("127.0.0.1", listener.port(), /*rpc_timeout_ms=*/200);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(client.ping(), NetError);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_LT(waited, 5000);  // the deadline fired, not a hang
  done.store(true);
  hung.join();
}

// ---- fault injection ---------------------------------------------------

TEST(FaultConfigCodec, ParsesSerializesAndRejectsMalformedClauses) {
  const FaultConfig none = FaultConfig::parse("");
  EXPECT_FALSE(none.any());
  EXPECT_EQ(none.serialize(), "");

  const FaultConfig cfg =
      FaultConfig::parse("delay=0.25:50,drop=0.05,close=0.1,truncate=1");
  EXPECT_EQ(cfg.delay_prob, 0.25);
  EXPECT_EQ(cfg.delay_ms, 50);
  EXPECT_EQ(cfg.drop_prob, 0.05);
  EXPECT_EQ(cfg.close_prob, 0.1);
  EXPECT_EQ(cfg.truncate_prob, 1.0);
  EXPECT_TRUE(cfg.any());
  // The text form round-trips through serialize — the FAULT_SET reply
  // echoes exactly what took effect.
  EXPECT_TRUE(FaultConfig::parse(cfg.serialize()) == cfg);

  EXPECT_THROW(FaultConfig::parse("drop=1.5"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("drop=-0.1"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("drop=abc"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("drop"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("delay=0.5"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("delay=0.5:-3"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("delay=0.5:90000"), std::runtime_error);
  EXPECT_THROW(FaultConfig::parse("frob=0.1"), std::runtime_error);
}

TEST_F(RpcTest, FaultSetRefusedWhenTheServerIsNotArmed) {
  // The RpcTest server runs a default config: fault injection unarmed.
  // A production daemon must not be remotely perturbable.
  Client client("127.0.0.1", server_->port());
  EXPECT_THROW(client.fault_set("drop=1"), RpcError);
  // The refusal is an Error frame, not a connection fault: the same
  // connection keeps serving lookups.
  EXPECT_EQ(client.lookup_ids({1, 2}).size(), 2u);
}

TEST(FaultInjection, ArmedServerPerturbsLookupsButNeverControlTraffic) {
  serve::EmbeddingStore store;
  serve::DemoStoreConfig demo;
  demo.vocab = 100;
  demo.dim = 8;
  demo.build_oov_table = false;
  serve::add_demo_versions(store, demo);
  ServerConfig sc;
  sc.fault_inject = true;  // armed at startup; no faults until FAULT_SET
  Server server(store, sc);
  server.start();

  Client setter("127.0.0.1", server.port());
  EXPECT_EQ(setter.lookup_ids({5}).size(), 1u);  // armed but quiescent
  EXPECT_EQ(setter.fault_set("close=1"), "close=1");
  {
    // Every data-plane reply now closes the connection mid-exchange...
    Client victim("127.0.0.1", server.port(), /*rpc_timeout_ms=*/2000);
    EXPECT_THROW(victim.lookup_ids({1}), NetError);
  }
  // ...while control traffic stays reliable on fresh connections: the
  // chaos harness can still orchestrate the cluster it is breaking.
  Client control("127.0.0.1", server.port());
  control.ping();
  (void)control.stats();

  // Truncated replies look well-formed up front; the client must treat
  // the short read as a transport error, never decode a prefix.
  EXPECT_EQ(control.fault_set("truncate=1"), "truncate=1");
  {
    Client victim("127.0.0.1", server.port(), /*rpc_timeout_ms=*/2000);
    EXPECT_THROW(victim.lookup_ids({1}), std::runtime_error);
  }

  // Swallowed replies wedge the connection; the rpc deadline bounds it.
  EXPECT_EQ(control.fault_set("drop=1"), "drop=1");
  {
    Client victim("127.0.0.1", server.port(), /*rpc_timeout_ms=*/300);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(victim.lookup_ids({1}), NetError);
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(waited, 5000);
  }

  // FAULT_SET "" clears every fault: the data plane heals in place.
  EXPECT_EQ(control.fault_set(""), "");
  EXPECT_EQ(control.lookup_ids({3}).size(), 1u);
  server.stop();
}

}  // namespace
}  // namespace anchor::net
