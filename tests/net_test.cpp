// net/ subsystem: wire codecs, frame robustness, and an in-process
// client/server loopback exercising every RPC — real TCP sockets on
// 127.0.0.1, with the server's accept loop and batcher running on their
// own threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/demo_store.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::net {
namespace {

// ---- codecs ------------------------------------------------------------

TEST(Wire, PrimitiveRoundTripAndBoundsChecks) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");
  w.str("");

  WireReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  r.expect_done();

  WireReader truncated(w.buffer().data(), 3);
  truncated.u8();
  EXPECT_THROW(truncated.u32(), WireError);

  // A string length pointing past the payload must throw, not overread.
  WireWriter bad;
  bad.u32(1000);
  WireReader bad_reader(bad.buffer());
  EXPECT_THROW(bad_reader.str(), WireError);
}

TEST(Wire, LookupResultRoundTripsThroughSliceEncoding) {
  serve::LookupResult result;
  result.dim = 3;
  result.version = "v42";
  result.vectors = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  result.oov = {0, 1, 0};

  WireWriter w;
  encode_lookup_result(result, &w);
  WireReader r(w.buffer());
  const serve::LookupResult back = decode_lookup_result(&r);
  r.expect_done();
  EXPECT_EQ(back.version, "v42");
  EXPECT_EQ(back.dim, 3u);
  EXPECT_EQ(back.vectors, result.vectors);
  EXPECT_EQ(back.oov, result.oov);

  // Middle slice only.
  WireWriter ws;
  encode_lookup_result_slice(result, 1, 2, &ws);
  WireReader rs(ws.buffer());
  const serve::LookupResult mid = decode_lookup_result(&rs);
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid.vectors, (std::vector<float>{4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(mid.oov, (std::vector<std::uint8_t>{1, 0}));

  // A row count the payload cannot hold must throw BEFORE allocating —
  // including at dim == 0, where the n·dim guard alone would pass and
  // oov.resize(n) would ask for 4 GiB from a 13-byte frame.
  WireWriter hostile;
  hostile.str("");
  hostile.u32(0xFFFFFFFFu);  // n
  hostile.u32(0);            // dim
  WireReader hostile_reader(hostile.buffer());
  EXPECT_THROW(decode_lookup_result(&hostile_reader), WireError);
}

TEST(Wire, GateReportAndStatsRoundTrip) {
  serve::GateReport report;
  report.old_version = "a";
  report.new_version = "b";
  report.decision = serve::GateDecision::kWarn;
  report.promoted = true;
  report.eis = 0.125;
  report.one_minus_knn = 0.5;
  report.rows_compared = 2048;
  report.reason = "eis=0.125 (warn)";

  WireWriter w;
  encode_gate_report(report, &w);
  WireReader r(w.buffer());
  const serve::GateReport back = decode_gate_report(&r);
  r.expect_done();
  EXPECT_EQ(back.old_version, "a");
  EXPECT_EQ(back.new_version, "b");
  EXPECT_EQ(back.decision, serve::GateDecision::kWarn);
  EXPECT_TRUE(back.promoted);
  EXPECT_EQ(back.eis, 0.125);
  EXPECT_EQ(back.one_minus_knn, 0.5);
  EXPECT_EQ(back.rows_compared, 2048u);
  EXPECT_EQ(back.reason, "eis=0.125 (warn)");

  ServerStatsReport stats;
  stats.live_version = "live";
  stats.service.lookups = 7;
  stats.service.qps = 123.5;
  stats.batcher.batches = 3;
  stats.batcher.p99_latency_us = 42.0;
  WireWriter sw;
  encode_server_stats(stats, &sw);
  WireReader sr(sw.buffer());
  const ServerStatsReport sback = decode_server_stats(&sr);
  sr.expect_done();
  EXPECT_EQ(sback.live_version, "live");
  EXPECT_EQ(sback.service.lookups, 7u);
  EXPECT_EQ(sback.service.qps, 123.5);
  EXPECT_EQ(sback.batcher.batches, 3u);
  EXPECT_EQ(sback.batcher.p99_latency_us, 42.0);

  // Corrupt decision codes must not cast into the enum silently.
  WireWriter cw;
  cw.str("a");
  cw.str("b");
  cw.u8(9);  // not a GateDecision
  WireReader cr(cw.buffer());
  EXPECT_THROW(decode_gate_report(&cr), WireError);
}

// ---- loopback RPC ------------------------------------------------------

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::DemoStoreConfig demo;
    demo.vocab = 600;
    demo.dim = 32;
    serve::add_demo_versions(store_, demo);
    server_ = std::make_unique<Server>(store_, ServerConfig{});
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  serve::EmbeddingStore store_;
  std::unique_ptr<Server> server_;
};

TEST_F(RpcTest, LookupsMatchInProcessService) {
  Client client("127.0.0.1", server_->port());
  client.ping();

  const serve::LookupService direct(store_);
  const std::vector<std::size_t> ids = {0, 3, 599, 600, 17};
  const serve::LookupResult remote = client.lookup_ids(ids);
  const serve::LookupResult local = direct.lookup_ids(ids);
  ASSERT_EQ(remote.size(), local.size());
  EXPECT_EQ(remote.version, local.version);
  EXPECT_EQ(remote.dim, local.dim);
  EXPECT_EQ(remote.oov, local.oov);
  EXPECT_EQ(remote.vectors, local.vectors);

  const std::vector<std::string> words = {"w5", "never-seen-word"};
  const serve::LookupResult remote_words = client.lookup_words(words);
  const serve::LookupResult local_words = direct.lookup_words(words);
  EXPECT_EQ(remote_words.oov, local_words.oov);
  EXPECT_EQ(remote_words.vectors, local_words.vectors);

  const serve::LookupResult empty = client.lookup_ids({});
  EXPECT_EQ(empty.size(), 0u);
}

TEST_F(RpcTest, ConcurrentClientsCoalesceAndAgree) {
  constexpr int kClients = 4;
  constexpr int kLookups = 50;
  const serve::LookupService direct(store_);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client("127.0.0.1", server_->port());
      Rng rng(7 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kLookups; ++i) {
        const std::size_t id = rng.index(600);
        const serve::LookupResult remote = client.lookup_id(id);
        const serve::LookupResult local = direct.lookup_ids({id});
        if (remote.vectors != local.vectors) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // All traffic flowed through the server's batcher.
  EXPECT_EQ(server_->async().stats().snapshot().lookups,
            static_cast<std::uint64_t>(kClients * kLookups));
}

TEST_F(RpcTest, TryPromoteGatesOverRpc) {
  Client client("127.0.0.1", server_->port());
  EXPECT_EQ(client.stats().live_version, "v1");

  const serve::GateReport bad = client.try_promote("v3-bad");
  EXPECT_EQ(bad.decision, serve::GateDecision::kReject);
  EXPECT_FALSE(bad.promoted);
  EXPECT_EQ(client.stats().live_version, "v1");

  const serve::GateReport good = client.try_promote("v2-good");
  EXPECT_TRUE(good.promoted);
  EXPECT_EQ(client.stats().live_version, "v2-good");
  // Lookups follow the swap.
  EXPECT_EQ(client.lookup_id(0).version, "v2-good");

  EXPECT_THROW(client.try_promote("no-such-version"), RpcError);
  // The connection survives an error reply.
  client.ping();
}

TEST_F(RpcTest, StatsReflectServedTraffic) {
  Client client("127.0.0.1", server_->port());
  client.lookup_ids({1, 2, 3});
  client.lookup_id(4);
  const ServerStatsReport stats = client.stats();
  EXPECT_EQ(stats.live_version, "v1");
  EXPECT_EQ(stats.batcher.lookups, 4u);
  EXPECT_GE(stats.service.lookups, 4u);
  EXPECT_GT(stats.batcher.batches, 0u);
}

TEST_F(RpcTest, MalformedFramesCloseTheConnection) {
  // Bad magic byte: the server must drop the connection without replying.
  {
    TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
    const std::uint32_t len = 3;
    std::uint8_t frame[7];
    std::memcpy(frame, &len, 4);
    frame[4] = 0x00;  // wrong magic
    frame[5] = kWireVersion;
    frame[6] = static_cast<std::uint8_t>(MsgType::kPing);
    raw.write_all(frame, sizeof(frame));
    std::uint8_t byte;
    EXPECT_FALSE(raw.read_exact_or_eof(&byte, 1));  // clean EOF
  }
  // Oversized declared length: same treatment, before any allocation.
  {
    TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
    const std::uint32_t len = kMaxFrameBytes + 1;
    raw.write_all(&len, sizeof(len));
    std::uint8_t byte;
    EXPECT_FALSE(raw.read_exact_or_eof(&byte, 1));
  }
  // The server is still healthy for well-formed clients.
  Client client("127.0.0.1", server_->port());
  client.ping();
}

TEST_F(RpcTest, UnknownRequestTypeAnswersError) {
  TcpStream raw = TcpStream::connect("127.0.0.1", server_->port());
  WireWriter empty;
  write_frame(raw, static_cast<MsgType>(0x55), empty);
  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(raw, &type, &payload));
  EXPECT_EQ(type, MsgType::kError);
}

TEST(RpcShutdown, ShutdownFrameStopsTheServer) {
  serve::EmbeddingStore store;
  serve::DemoStoreConfig demo;
  demo.vocab = 200;
  demo.dim = 16;
  demo.build_oov_table = false;
  serve::add_demo_versions(store, demo);
  Server server(store, ServerConfig{});
  server.start();
  {
    Client client("127.0.0.1", server.port());
    client.ping();
    EXPECT_FALSE(server.shutdown_requested());
    client.shutdown_server();
  }
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();  // joins promptly because the accept loop already quit
}

TEST(Sockets, ConnectToClosedPortThrows) {
  // Bind-then-close to obtain a port that is very likely unused.
  std::uint16_t port;
  {
    TcpListener listener = TcpListener::bind_loopback(0);
    port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", port), NetError);
}

}  // namespace
}  // namespace anchor::net
