// Tests for the text substrate: latent space, corpus generator,
// co-occurrence counting, and PPMI.
#include <gtest/gtest.h>

#include <cmath>

#include "text/cooc.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"

namespace anchor::text {
namespace {

LatentSpaceConfig small_space_config() {
  LatentSpaceConfig c;
  c.vocab_size = 120;
  c.latent_dim = 8;
  c.num_topics = 6;
  c.seed = 3;
  return c;
}

TEST(LatentSpace, ShapesMatchConfig) {
  const LatentSpace s(small_space_config());
  EXPECT_EQ(s.word_vectors().rows(), 120u);
  EXPECT_EQ(s.word_vectors().cols(), 8u);
  EXPECT_EQ(s.topic_centers().rows(), 6u);
  EXPECT_EQ(s.word_topics().size(), 120u);
  EXPECT_EQ(s.unigram_prior().size(), 120u);
}

TEST(LatentSpace, DeterministicGivenSeed) {
  const LatentSpace a(small_space_config());
  const LatentSpace b(small_space_config());
  EXPECT_EQ(a.word_vectors().storage(), b.word_vectors().storage());
}

TEST(LatentSpace, ZipfPriorIsDecreasing) {
  const LatentSpace s(small_space_config());
  for (std::size_t w = 1; w < s.vocab_size(); ++w) {
    EXPECT_GT(s.unigram_prior()[w - 1], s.unigram_prior()[w]);
  }
}

TEST(LatentSpace, DriftPerturbsVectorsProportionally) {
  const LatentSpace base(small_space_config());
  const LatentSpace small = base.drifted(0.01, 5);
  const LatentSpace large = base.drifted(0.5, 5);
  double small_delta = 0.0, large_delta = 0.0;
  for (std::size_t i = 0; i < base.word_vectors().size(); ++i) {
    small_delta += std::abs(small.word_vectors().storage()[i] -
                            base.word_vectors().storage()[i]);
    large_delta += std::abs(large.word_vectors().storage()[i] -
                            base.word_vectors().storage()[i]);
  }
  EXPECT_GT(small_delta, 0.0);
  EXPECT_GT(large_delta, 10.0 * small_delta);
}

TEST(LatentSpace, ZeroDriftIsIdentityOnStructure) {
  const LatentSpace base(small_space_config());
  const LatentSpace same = base.drifted(0.0, 5, 0.02);
  EXPECT_EQ(base.word_vectors().storage(), same.word_vectors().storage());
  EXPECT_DOUBLE_EQ(same.doc_fraction_delta(), 0.02);
  EXPECT_DOUBLE_EQ(base.doc_fraction_delta(), 0.0);
}

CorpusConfig small_corpus_config() {
  CorpusConfig c;
  c.num_documents = 60;
  c.sentences_per_document = 3;
  c.tokens_per_sentence = 10;
  c.seed = 2;
  return c;
}

TEST(Corpus, CountsConsistentWithSentences) {
  const LatentSpace space(small_space_config());
  const Corpus corpus = generate_corpus(space, small_corpus_config());
  EXPECT_EQ(corpus.sentences.size(), 60u * 3u);
  EXPECT_EQ(corpus.total_tokens(), 60 * 3 * 10);
  std::int64_t total = 0;
  for (const auto c : corpus.word_counts) total += c;
  EXPECT_EQ(total, corpus.total_tokens());
  for (const auto& s : corpus.sentences) {
    for (const auto t : s) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<std::int32_t>(corpus.vocab_size));
    }
  }
}

TEST(Corpus, DeterministicGivenSeeds) {
  const LatentSpace space(small_space_config());
  const Corpus a = generate_corpus(space, small_corpus_config());
  const Corpus b = generate_corpus(space, small_corpus_config());
  EXPECT_EQ(a.sentences, b.sentences);
}

TEST(Corpus, ExtraDocFractionAppendsDocuments) {
  LatentSpaceConfig sc = small_space_config();
  const LatentSpace base(sc);
  const LatentSpace next = base.drifted(0.0, 9, 0.10);
  const CorpusConfig cc = small_corpus_config();
  const Corpus c17 = generate_corpus(base, cc);
  const Corpus c18 = generate_corpus(next, cc);
  EXPECT_EQ(c18.sentences.size(), c17.sentences.size() + 6 * 3);
  // Zero drift + same doc stream ⇒ the shared prefix is identical.
  for (std::size_t i = 0; i < c17.sentences.size(); ++i) {
    EXPECT_EQ(c17.sentences[i], c18.sentences[i]);
  }
}

TEST(Corpus, DriftChangesSomeTokensButNotAll) {
  const LatentSpace base(small_space_config());
  const LatentSpace next = base.drifted(0.05, 9, 0.0);
  const CorpusConfig cc = small_corpus_config();
  const Corpus c17 = generate_corpus(base, cc);
  const Corpus c18 = generate_corpus(next, cc);
  ASSERT_EQ(c17.sentences.size(), c18.sentences.size());
  std::size_t same = 0, total = 0;
  for (std::size_t i = 0; i < c17.sentences.size(); ++i) {
    for (std::size_t j = 0; j < c17.sentences[i].size(); ++j) {
      same += (c17.sentences[i][j] == c18.sentences[i][j]);
      ++total;
    }
  }
  const double frac_same = static_cast<double>(same) / total;
  EXPECT_GT(frac_same, 0.3);  // small drift: corpora mostly overlap
  EXPECT_LT(frac_same, 0.999);  // but not identical
}

TEST(Corpus, ZipfHeadDominates) {
  const LatentSpace space(small_space_config());
  const Corpus corpus = generate_corpus(space, small_corpus_config());
  std::int64_t head = 0;
  for (std::size_t w = 0; w < 12; ++w) head += corpus.word_counts[w];
  EXPECT_GT(head, corpus.total_tokens() / 5);
}

TEST(Corpus, WordStringFormat) {
  EXPECT_EQ(Corpus::word_string(7), "w0007");
  EXPECT_EQ(Corpus::word_string(1234), "w1234");
}

TEST(Cooc, HandCountedTinyCorpus) {
  Corpus corpus;
  corpus.vocab_size = 3;
  corpus.sentences = {{0, 1, 2}};
  corpus.word_counts = {1, 1, 1};
  CoocConfig cc;
  cc.window = 1;
  cc.distance_weighting = false;
  const CoocMatrix m = count_cooccurrences(corpus, cc);
  // Pairs within window 1: (0,1), (1,2); symmetric ⇒ 4 cells.
  EXPECT_EQ(m.nnz(), 4u);
  double v01 = 0.0, v02 = 0.0;
  for (const auto& e : m.entries) {
    if (e.row == 0 && e.col == 1) v01 = e.value;
    if (e.row == 0 && e.col == 2) v02 = e.value;
  }
  EXPECT_DOUBLE_EQ(v01, 1.0);
  EXPECT_DOUBLE_EQ(v02, 0.0);
  EXPECT_DOUBLE_EQ(m.total, 4.0);
}

TEST(Cooc, DistanceWeightingHalvesFarPairs) {
  Corpus corpus;
  corpus.vocab_size = 3;
  corpus.sentences = {{0, 1, 2}};
  corpus.word_counts = {1, 1, 1};
  CoocConfig cc;
  cc.window = 2;
  cc.distance_weighting = true;
  const CoocMatrix m = count_cooccurrences(corpus, cc);
  double v02 = 0.0;
  for (const auto& e : m.entries) {
    if (e.row == 0 && e.col == 2) v02 = e.value;
  }
  EXPECT_DOUBLE_EQ(v02, 0.5);  // distance 2 ⇒ weight 1/2
}

TEST(Cooc, SymmetricAndSorted) {
  const LatentSpace space(small_space_config());
  const Corpus corpus = generate_corpus(space, small_corpus_config());
  const CoocMatrix m = count_cooccurrences(corpus, CoocConfig{});
  // Row sums total twice... the grand total counts both triangles.
  double sum = 0.0;
  for (const double r : m.row_sums) sum += r;
  EXPECT_NEAR(sum, m.total, 1e-9);
  for (std::size_t i = 1; i < m.entries.size(); ++i) {
    const auto& a = m.entries[i - 1];
    const auto& b = m.entries[i];
    EXPECT_TRUE(a.row < b.row || (a.row == b.row && a.col < b.col));
  }
}

TEST(Ppmi, HandComputedValue) {
  // Two cells, symmetric: total = 2, each p = 1/2, marginals p0 = p1 = 1/2
  // (from row_sums 1,1). PMI = log(0.5 / 0.25) = log 2 > 0.
  CoocMatrix cooc;
  cooc.vocab_size = 2;
  cooc.entries = {{0, 1, 1.0}, {1, 0, 1.0}};
  cooc.row_sums = {1.0, 1.0};
  cooc.total = 2.0;
  const CoocMatrix p = ppmi(cooc);
  ASSERT_EQ(p.nnz(), 2u);
  EXPECT_NEAR(p.entries[0].value, std::log(2.0), 1e-12);
}

TEST(Ppmi, DropsNegativeCells) {
  // Independent-ish cell: p(0,1) = p(0)·p(1) exactly ⇒ PMI = 0 ⇒ dropped.
  CoocMatrix cooc;
  cooc.vocab_size = 2;
  cooc.entries = {{0, 0, 2.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 2.0}};
  cooc.row_sums = {4.0, 4.0};
  cooc.total = 8.0;
  const CoocMatrix p = ppmi(cooc);
  EXPECT_EQ(p.nnz(), 0u);
}

TEST(Ppmi, AllValuesPositive) {
  const LatentSpace space(small_space_config());
  const Corpus corpus = generate_corpus(space, small_corpus_config());
  CoocConfig cc;
  cc.distance_weighting = false;
  const CoocMatrix p = ppmi(count_cooccurrences(corpus, cc));
  EXPECT_GT(p.nnz(), 0u);
  for (const auto& e : p.entries) EXPECT_GT(e.value, 0.0);
}

}  // namespace
}  // namespace anchor::text
