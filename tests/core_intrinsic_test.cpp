// Tests for the intrinsic evaluation module: the ground-truth embedding must
// score perfectly, trained embeddings must clearly beat random ones, and
// aggressive quantization must cost quality.
#include <gtest/gtest.h>

#include "compress/quantize.hpp"
#include "core/intrinsic.hpp"
#include "embed/trainer.hpp"
#include "text/corpus.hpp"
#include "util/rng.hpp"

namespace anchor::core {
namespace {

struct Fixture {
  text::LatentSpace space;
  text::Corpus corpus;

  static Fixture make() {
    text::LatentSpaceConfig lsc;
    lsc.vocab_size = 150;
    lsc.latent_dim = 8;
    lsc.num_topics = 5;
    lsc.seed = 13;
    text::LatentSpace space(lsc);
    text::CorpusConfig cc;
    cc.num_documents = 250;
    cc.seed = 2;
    text::Corpus corpus = text::generate_corpus(space, cc);
    return {std::move(space), std::move(corpus)};
  }

  embed::Embedding ground_truth() const {
    return embed::Embedding::from_matrix(space.word_vectors());
  }

  embed::Embedding random_embedding(std::size_t dim,
                                    std::uint64_t seed) const {
    Rng rng(seed);
    embed::Embedding e(space.vocab_size(), dim);
    for (auto& x : e.data) x = static_cast<float>(rng.normal());
    return e;
  }
};

TEST(Intrinsic, GroundTruthEmbeddingScoresPerfectSimilarity) {
  const Fixture f = Fixture::make();
  const double score = word_similarity_score(f.ground_truth(), f.space);
  EXPECT_GT(score, 0.999);
}

TEST(Intrinsic, GroundTruthEmbeddingSolvesAnalogies) {
  const Fixture f = Fixture::make();
  IntrinsicConfig config;
  config.num_analogies = 100;
  const AnalogyResult r = analogy_accuracy(f.ground_truth(), f.space, config);
  EXPECT_GT(r.num_evaluated, 80u);
  EXPECT_GT(r.accuracy, 0.999);
}

TEST(Intrinsic, TrainedBeatsRandomOnSimilarity) {
  const Fixture f = Fixture::make();
  embed::TrainOptions options;
  options.dim = 16;
  const embed::Embedding trained =
      embed::train_embedding(f.corpus, embed::Algo::kMc, options);
  const double trained_score = word_similarity_score(trained, f.space);
  const double random_score =
      word_similarity_score(f.random_embedding(16, 9), f.space);
  EXPECT_GT(trained_score, 0.25);
  EXPECT_GT(trained_score, random_score + 0.2);
}

TEST(Intrinsic, TrainedBeatsRandomOnAnalogies) {
  const Fixture f = Fixture::make();
  embed::TrainOptions options;
  options.dim = 16;
  const embed::Embedding trained =
      embed::train_embedding(f.corpus, embed::Algo::kMc, options);
  IntrinsicConfig config;
  config.num_analogies = 150;
  config.analogy_top_k = 5;
  const double trained_acc =
      analogy_accuracy(trained, f.space, config).accuracy;
  const double random_acc =
      analogy_accuracy(f.random_embedding(16, 9), f.space, config).accuracy;
  EXPECT_GT(trained_acc, random_acc);
}

TEST(Intrinsic, OneBitQuantizationCostsSimilarityQuality) {
  const Fixture f = Fixture::make();
  embed::TrainOptions options;
  options.dim = 16;
  const embed::Embedding trained =
      embed::train_embedding(f.corpus, embed::Algo::kMc, options);
  compress::QuantizeConfig qc;
  qc.bits = 1;
  const embed::Embedding crushed =
      compress::uniform_quantize(trained, qc).embedding;
  EXPECT_LT(word_similarity_score(crushed, f.space),
            word_similarity_score(trained, f.space) + 1e-9);
}

TEST(Intrinsic, DeterministicGivenSeed) {
  const Fixture f = Fixture::make();
  const embed::Embedding gt = f.ground_truth();
  EXPECT_EQ(word_similarity_score(gt, f.space),
            word_similarity_score(gt, f.space));
  IntrinsicConfig a, b;
  a.seed = b.seed = 77;
  EXPECT_EQ(analogy_accuracy(gt, f.space, a).accuracy,
            analogy_accuracy(gt, f.space, b).accuracy);
}

TEST(Intrinsic, RejectsVocabMismatch) {
  const Fixture f = Fixture::make();
  const embed::Embedding wrong(f.space.vocab_size() + 1, 8);
  EXPECT_THROW(word_similarity_score(wrong, f.space), CheckError);
  EXPECT_THROW(analogy_accuracy(wrong, f.space), CheckError);
}

}  // namespace
}  // namespace anchor::core
