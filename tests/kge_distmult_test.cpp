// Tests for the DistMult extension: score orientation, learnability on the
// synthetic graph, interoperability with the generic KGE evaluation, and
// the shared-quantization protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "kge/distmult.hpp"
#include "kge/kge_eval.hpp"

namespace anchor::kge {
namespace {

KgDataset small_graph(std::uint64_t seed = 21) {
  KgConfig config;
  config.num_entities = 80;
  config.num_relations = 6;
  config.latent_dim = 6;
  config.train_triplets = 1200;
  config.valid_triplets = 80;
  config.test_triplets = 120;
  config.seed = seed;
  return generate_kg(config);
}

DistMultModel quick_model(const KgDataset& data, std::uint64_t seed = 1) {
  DistMultConfig config;
  config.dim = 12;
  config.max_epochs = 40;
  config.eval_every = 10;
  config.seed = seed;
  return train_distmult(data, config);
}

TEST(DistMult, ScoreIsNegatedTrilinearProduct) {
  DistMultModel m;
  m.entities = embed::Embedding(3, 2);
  m.relations = embed::Embedding(1, 2);
  m.entities.row(0)[0] = 1.0f;
  m.entities.row(0)[1] = 2.0f;
  m.entities.row(2)[0] = 3.0f;
  m.entities.row(2)[1] = -1.0f;
  m.relations.row(0)[0] = 0.5f;
  m.relations.row(0)[1] = 4.0f;
  // s = 1·0.5·3 + 2·4·(−1) = 1.5 − 8 = −6.5; score = +6.5.
  EXPECT_NEAR(m.score({0, 0, 2}), 6.5, 1e-6);
}

TEST(DistMult, TrainingIsDeterministic) {
  const KgDataset data = small_graph();
  const DistMultModel a = quick_model(data);
  const DistMultModel b = quick_model(data);
  EXPECT_EQ(a.entities.data, b.entities.data);
  EXPECT_EQ(a.relations.data, b.relations.data);
}

TEST(DistMult, RanksTrueTriplesAboveRandom) {
  const KgDataset data = small_graph();
  const DistMultModel model = quick_model(data);
  const LinkPredictionResult lp = link_prediction(model, data.test);
  // Random ranking would give a mean rank of ~num_entities/2 = 40. DistMult
  // is symmetric in (head, tail), so it cannot fully fit the generator's
  // *translation* structure the way TransE does — we require clearly better
  // than chance, not TransE-level ranks.
  EXPECT_LT(lp.mean_rank, 36.0);
}

TEST(DistMult, BeatsMarginOnHeldOutClassification) {
  const KgDataset data = small_graph();
  const DistMultModel model = quick_model(data);
  const LabeledTriplets valid =
      make_classification_set(data.valid, data.num_entities, 77);
  const LabeledTriplets test =
      make_classification_set(data.test, data.num_entities, 78);
  const std::vector<double> thresholds =
      tune_thresholds(model, valid, data.num_relations);
  const std::vector<std::int32_t> preds =
      classify_triplets(model, test.triplets, thresholds);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == test.labels[i] ? 1 : 0;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(preds.size());
  // See RanksTrueTriplesAboveRandom: the translation-structured graph caps
  // the symmetric model's fit; above-chance with margin is the requirement.
  EXPECT_GT(accuracy, 0.55) << "must beat coin-flip by a clear margin";
}

TEST(DistMult, QuantizeModelSharedClipMatchesTransEProtocol) {
  const KgDataset full = small_graph();
  const KgDataset sub = subsample_train(full, 0.05, 5);
  const DistMultModel m17 = quick_model(sub);
  const DistMultModel m18 = quick_model(full);

  const DistMultModel q18_shared = quantize_model(m18, 4, &m17);
  const DistMultModel q18_own = quantize_model(m18, 4);
  // Shared clip must quantize onto m17's grid; with its own clip the grid
  // generally differs.
  EXPECT_NE(q18_shared.entities.data, q18_own.entities.data);

  const DistMultModel q32 = quantize_model(m18, 32);
  EXPECT_EQ(q32.entities.data, m18.entities.data) << "32-bit is passthrough";
}

TEST(DistMult, QuantizationDegradesGracefully) {
  const KgDataset data = small_graph();
  const DistMultModel model = quick_model(data);
  const LinkPredictionResult full = link_prediction(model, data.test);
  const DistMultModel q8 = quantize_model(model, 8);
  const LinkPredictionResult coarse = link_prediction(q8, data.test);
  // 8-bit quantization should barely move the mean rank.
  EXPECT_NEAR(coarse.mean_rank, full.mean_rank, 0.25 * full.mean_rank + 2.0);
}

TEST(GenericEval, ScoreFnAgreesWithModelOverloads) {
  const KgDataset data = small_graph();
  const DistMultModel model = quick_model(data);
  const ScoreFn fn = [&model](const Triplet& t) { return model.score(t); };

  const LinkPredictionResult via_model = link_prediction(model, data.test);
  const LinkPredictionResult via_fn =
      link_prediction(fn, data.num_entities, data.test);
  EXPECT_EQ(via_model.ranks, via_fn.ranks);
  EXPECT_DOUBLE_EQ(via_model.mean_rank, via_fn.mean_rank);
}

TEST(DistMult, StabilityImprovesWithPrecisionOnAverage) {
  // Smoke-level shape check of the §6.1 claim for the extension model:
  // 1-bit models must disagree more than 16-bit models on triplet
  // classification between the FB15K / FB15K-95 analogs.
  const KgDataset full = small_graph();
  const KgDataset sub = subsample_train(full, 0.05, 5);
  const DistMultModel m17 = quick_model(sub);
  const DistMultModel m18 = quick_model(full);

  const LabeledTriplets valid =
      make_classification_set(sub.valid, sub.num_entities, 91);
  const LabeledTriplets test =
      make_classification_set(sub.test, sub.num_entities, 92);

  auto disagreement = [&](int bits) {
    const DistMultModel q17 = quantize_model(m17, bits);
    const DistMultModel q18 = quantize_model(m18, bits, &m17);
    const std::vector<double> thresholds =
        tune_thresholds(q17, valid, sub.num_relations);
    const std::vector<std::int32_t> p17 =
        classify_triplets(q17, test.triplets, thresholds);
    const std::vector<std::int32_t> p18 =
        classify_triplets(q18, test.triplets, thresholds);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < p17.size(); ++i) {
      diff += p17[i] != p18[i] ? 1 : 0;
    }
    return static_cast<double>(diff) / static_cast<double>(p17.size());
  };

  EXPECT_GE(disagreement(1), disagreement(16) - 0.02)
      << "1-bit disagreement should not be clearly below 16-bit";
}

}  // namespace
}  // namespace anchor::kge
