// Tests for the linear-algebra substrate: matrix kernels against closed-form
// oracles, eigensolver/SVD invariants (property-style TEST_P sweeps),
// Procrustes planted-rotation recovery, least squares, and statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen.hpp"
#include "la/lstsq.hpp"
#include "la/matrix.hpp"
#include "la/procrustes.hpp"
#include "la/stats.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace anchor::la {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double scale = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& x : m.storage()) x = rng.normal(0.0, scale);
  return m;
}

Matrix random_orthogonal(std::size_t n, std::uint64_t seed) {
  // QR-free: take left singular vectors of a random square matrix.
  return left_singular_vectors(random_matrix(n, n, seed));
}

TEST(Matrix, IndexingAndIdentity) {
  Matrix m = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m(3, 0), CheckError);
}

TEST(Matrix, MatmulHandOracle) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), CheckError);
}

TEST(Matrix, AtBMatchesExplicitTranspose) {
  const Matrix a = random_matrix(7, 3, 1);
  const Matrix b = random_matrix(7, 4, 2);
  EXPECT_LT(max_abs_diff(matmul_at_b(a, b), matmul(transpose(a), b)), 1e-12);
}

TEST(Matrix, ABtMatchesExplicitTranspose) {
  const Matrix a = random_matrix(5, 3, 3);
  const Matrix b = random_matrix(6, 3, 4);
  EXPECT_LT(max_abs_diff(matmul_a_bt(a, b), matmul(a, transpose(b))), 1e-12);
}

TEST(Matrix, GramIsSymmetric) {
  const Matrix g = gram(random_matrix(8, 4, 5));
  EXPECT_LT(max_abs_diff(g, transpose(g)), 1e-12);
}

TEST(Matrix, FrobeniusNormOracle) {
  Matrix m(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_norm_sq(m), 25.0);
}

TEST(Matrix, TraceAndArithmetic) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(trace(a), 5.0);
  EXPECT_DOUBLE_EQ(add(a, b)(1, 1), 44.0);
  EXPECT_DOUBLE_EQ(subtract(b, a)(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(scale(a, 2.0)(1, 0), 6.0);
}

TEST(Matrix, MatvecOracle) {
  Matrix m(2, 3, {1, 0, 2, 0, 1, -1});
  const std::vector<double> y = matvec(m, {1, 2, 3});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix m(3, 3, 0.0);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const EigenResult e = eigen_symmetric(m);
  EXPECT_NEAR(e.values[0], 5.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2, {2, 1, 1, 2});
  const EigenResult e = eigen_symmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/√2 up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Eigen, RejectsNonSymmetric) {
  Matrix m(2, 2, {1, 5, 0, 1});
  EXPECT_THROW(eigen_symmetric(m), CheckError);
}

class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, ReconstructionAndOrthogonality) {
  const std::size_t n = GetParam();
  const Matrix base = random_matrix(n, n, 100 + n);
  const Matrix sym = scale(add(base, transpose(base)), 0.5);
  const EigenResult e = eigen_symmetric(sym);

  // VᵀV = I.
  EXPECT_LT(max_abs_diff(gram(e.vectors), Matrix::identity(n)), 1e-9);
  // V·diag(λ)·Vᵀ reconstructs the input.
  Matrix vl = e.vectors;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) vl(i, j) *= e.values[j];
  }
  EXPECT_LT(max_abs_diff(matmul_a_bt(vl, e.vectors), sym), 1e-8);
  // Sorted descending.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(Svd, KnownDiagonal) {
  Matrix m(3, 2, {3, 0, 0, 2, 0, 0});
  const SvdResult s = svd(m);
  EXPECT_NEAR(s.singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(s.singular_values[1], 2.0, 1e-10);
}

class SvdProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdProperty, ThinSvdInvariants) {
  const auto [n, d] = GetParam();
  const Matrix x = random_matrix(n, d, 7 * n + d);
  const SvdResult s = svd(x);
  const std::size_t r = std::min(n, d);
  ASSERT_EQ(s.u.rows(), n);
  ASSERT_EQ(s.u.cols(), r);
  ASSERT_EQ(s.v.rows(), d);
  ASSERT_EQ(s.v.cols(), r);

  // UᵀU = I, VᵀV = I.
  EXPECT_LT(max_abs_diff(gram(s.u), Matrix::identity(r)), 1e-8);
  EXPECT_LT(max_abs_diff(gram(s.v), Matrix::identity(r)), 1e-8);
  // U·S·Vᵀ = X.
  Matrix us = s.u;
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t i = 0; i < n; ++i) us(i, j) *= s.singular_values[j];
  }
  EXPECT_LT(max_abs_diff(matmul_a_bt(us, s.v), x), 1e-7);
  // Non-negative, descending.
  for (std::size_t i = 0; i < r; ++i) {
    EXPECT_GE(s.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_GE(s.singular_values[i - 1], s.singular_values[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{5, 5},
                      std::pair<std::size_t, std::size_t>{20, 4},
                      std::pair<std::size_t, std::size_t>{4, 20},
                      std::pair<std::size_t, std::size_t>{50, 8},
                      std::pair<std::size_t, std::size_t>{1, 3},
                      std::pair<std::size_t, std::size_t>{3, 1}));

TEST(Svd, RankDeficientStillOrthonormal) {
  // Rank-1 matrix: u-completion must still deliver orthonormal U.
  Matrix x(6, 3, 0.0);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    x(i, 1) = 2.0 * static_cast<double>(i + 1);
    x(i, 2) = -1.0 * static_cast<double>(i + 1);
  }
  const SvdResult s = svd(x);
  EXPECT_EQ(s.rank(), 1u);
  EXPECT_LT(max_abs_diff(gram(s.u), Matrix::identity(3)), 1e-8);
}

TEST(Procrustes, RecoversPlantedRotation) {
  const Matrix b = random_matrix(30, 5, 42);
  const Matrix omega = random_orthogonal(5, 43);
  const Matrix a = matmul(b, omega);
  const Matrix recovered = procrustes_rotation(a, b);
  EXPECT_LT(max_abs_diff(recovered, omega), 1e-8);
  EXPECT_LT(max_abs_diff(procrustes_align(a, b), a), 1e-8);
}

TEST(Procrustes, ResultIsOrthogonal) {
  const Matrix a = random_matrix(20, 4, 1);
  const Matrix b = random_matrix(20, 4, 2);
  const Matrix r = procrustes_rotation(a, b);
  EXPECT_LT(max_abs_diff(gram(r), Matrix::identity(4)), 1e-9);
}

TEST(Procrustes, AlignmentNeverIncreasesDistance) {
  const Matrix a = random_matrix(25, 6, 9);
  const Matrix b = random_matrix(25, 6, 10);
  const double before = frobenius_norm(subtract(a, b));
  const double after = frobenius_norm(subtract(a, procrustes_align(a, b)));
  EXPECT_LE(after, before + 1e-12);
}

TEST(Cholesky, KnownFactor) {
  Matrix a(2, 2, {4, 2, 2, 5});
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), 2.0, 1e-12);
  EXPECT_LT(max_abs_diff(matmul_a_bt(l, l), a), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, −1
  EXPECT_THROW(cholesky(a), CheckError);
}

TEST(SolveSpd, RecoversKnownSolution) {
  Matrix a(3, 3, {4, 1, 0, 1, 3, 1, 0, 1, 2});
  const std::vector<double> x_true = {1.0, -2.0, 3.0};
  const std::vector<double> b = matvec(a, x_true);
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Lstsq, ExactSystemRecovered) {
  const Matrix x = random_matrix(40, 5, 77);
  Rng rng(78);
  std::vector<double> w_true(5);
  for (auto& w : w_true) w = rng.normal();
  const std::vector<double> y = matvec(x, w_true);
  const std::vector<double> w = lstsq(x, y);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(w[i], w_true[i], 1e-6);
}

TEST(Lstsq, PredictionsEqualProjectionOntoLeftSingularSpace) {
  // Footnote 7 of the paper: ŷ = X(XᵀX)⁻¹Xᵀy = U·Uᵀ·y.
  const Matrix x = random_matrix(30, 4, 55);
  Rng rng(56);
  std::vector<double> y(30);
  for (auto& v : y) v = rng.normal();
  const std::vector<double> pred = lstsq_predictions(x, y);
  const Matrix u = left_singular_vectors(x);
  std::vector<double> z(u.cols(), 0.0);
  for (std::size_t i = 0; i < u.rows(); ++i) {
    for (std::size_t j = 0; j < u.cols(); ++j) z[j] += u(i, j) * y[i];
  }
  for (std::size_t i = 0; i < u.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < u.cols(); ++j) acc += u(i, j) * z[j];
    EXPECT_NEAR(pred[i], acc, 1e-6);
  }
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> r = ranks_with_ties({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  // Spearman is rank-based: any monotone transform gives exactly 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, SpearmanAntitone) {
  EXPECT_NEAR(spearman({1, 2, 3}, {9, 4, 1}), -1.0, 1e-12);
}

TEST(Stats, TrendFitRecoversPlantedSlope) {
  // Two tasks with different intercepts, shared slope −1.3 (the paper's
  // rule-of-thumb shape), plus small noise.
  Rng rng(99);
  std::vector<TrendPoint> points;
  for (std::size_t task = 0; task < 2; ++task) {
    const double intercept = task == 0 ? 20.0 : 12.0;
    for (double m = 3; m <= 10; m += 0.5) {
      TrendPoint p;
      p.task_id = task;
      p.log2_x = m;
      p.disagreement_pct = intercept - 1.3 * m + rng.normal(0.0, 0.05);
      points.push_back(p);
    }
  }
  const TrendFit fit = fit_shared_slope(points);
  EXPECT_NEAR(fit.slope, -1.3, 0.05);
  ASSERT_EQ(fit.intercepts.size(), 2u);
  EXPECT_NEAR(fit.intercepts[0], 20.0, 0.3);
  EXPECT_NEAR(fit.intercepts[1], 12.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Stats, TrendFitExactWithoutNoise) {
  std::vector<TrendPoint> points;
  for (double m = 1; m <= 5; ++m) {
    points.push_back({0, m, 10.0 - 2.0 * m});
  }
  const TrendFit fit = fit_shared_slope(points);
  EXPECT_NEAR(fit.slope, -2.0, 1e-6);
  EXPECT_NEAR(fit.intercepts[0], 10.0, 1e-5);
}

}  // namespace
}  // namespace anchor::la
