// Tests for the TinyBert contextual encoder: shape/determinism invariants,
// finite-difference gradient validation across all parameter blocks, and
// masked-LM learnability.
#include <gtest/gtest.h>

#include <cmath>

#include "ctx/tiny_bert.hpp"
#include "util/rng.hpp"

namespace anchor::ctx {
namespace {

TinyBertConfig tiny_config() {
  TinyBertConfig c;
  c.dim = 8;
  c.layers = 2;
  c.heads = 2;
  c.ffn_mult = 2;
  c.max_len = 16;
  c.seed = 3;
  return c;
}

text::Corpus tiny_corpus(std::size_t vocab, std::size_t sentences,
                         std::uint64_t seed) {
  text::LatentSpaceConfig sc;
  sc.vocab_size = vocab;
  sc.latent_dim = 6;
  sc.num_topics = 4;
  sc.seed = seed;
  const text::LatentSpace space(sc);
  text::CorpusConfig cc;
  cc.num_documents = sentences / 2;
  cc.sentences_per_document = 2;
  cc.tokens_per_sentence = 10;
  cc.seed = seed + 1;
  return generate_corpus(space, cc);
}

TEST(TinyBert, RejectsIndivisibleHeads) {
  TinyBertConfig c = tiny_config();
  c.dim = 9;  // not divisible by 2 heads
  EXPECT_THROW(TinyBert(50, c), CheckError);
}

TEST(TinyBert, EncodeShapes) {
  const TinyBert bert(50, tiny_config());
  const std::vector<std::int32_t> sentence = {1, 2, 3, 4, 5};
  const std::vector<float> h = bert.encode(sentence);
  EXPECT_EQ(h.size(), 5u * 8u);
  const std::vector<float> f = bert.features(sentence);
  EXPECT_EQ(f.size(), 8u);
  for (const float v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(TinyBert, TruncatesAtMaxLen) {
  TinyBertConfig c = tiny_config();
  c.max_len = 4;
  const TinyBert bert(50, c);
  std::vector<std::int32_t> sentence(10, 1);
  EXPECT_EQ(bert.encode(sentence).size(), 4u * 8u);
}

TEST(TinyBert, DeterministicGivenSeed) {
  const TinyBert a(50, tiny_config());
  const TinyBert b(50, tiny_config());
  EXPECT_EQ(a.parameters(), b.parameters());
  EXPECT_EQ(a.features({1, 2, 3}), b.features({1, 2, 3}));
}

TEST(TinyBert, ContextChangesRepresentation) {
  // The same token in different contexts must get different vectors — the
  // defining property of a contextual encoder.
  const TinyBert bert(50, tiny_config());
  const std::vector<float> a = bert.encode({7, 1, 2});
  const std::vector<float> b = bert.encode({7, 30, 40});
  double diff = 0.0;
  for (std::size_t j = 0; j < 8; ++j) diff += std::abs(a[j] - b[j]);
  EXPECT_GT(diff, 1e-4);
}

TEST(TinyBert, MaskingChangesLoss) {
  const TinyBert bert(50, tiny_config());
  const std::vector<std::int32_t> sentence = {1, 2, 3, 4, 5, 6};
  const double l1 = bert.mlm_loss(sentence, {0});
  const double l2 = bert.mlm_loss(sentence, {0, 3});
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_TRUE(std::isfinite(l2));
  EXPECT_NE(l1, l2);
}

TEST(TinyBert, GradientMatchesFiniteDifference) {
  TinyBert bert(20, tiny_config());
  const std::vector<std::int32_t> sentence = {1, 5, 2, 9, 3};
  const std::vector<std::size_t> masked = {1, 3};
  const std::vector<float> analytic = bert.mlm_gradient(sentence, masked);
  ASSERT_EQ(analytic.size(), bert.parameters().size());

  Rng rng(7);
  const float eps = 1e-2f;
  int checked = 0;
  for (int trial = 0; trial < 120 && checked < 25; ++trial) {
    const std::size_t idx = rng.index(bert.parameters().size());
    const float saved = bert.parameters()[idx];
    bert.parameters()[idx] = saved + eps;
    const double up = bert.mlm_loss(sentence, masked);
    bert.parameters()[idx] = saved - eps;
    const double down = bert.mlm_loss(sentence, masked);
    bert.parameters()[idx] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    if (std::abs(numeric) < 1e-4 && std::abs(analytic[idx]) < 1e-4) continue;
    EXPECT_NEAR(analytic[idx], numeric,
                5e-2 * std::max(0.05, std::abs(numeric)))
        << "param index " << idx;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(TinyBert, GradientZeroForUntouchedTokenRows) {
  const TinyBert bert(30, tiny_config());
  const std::vector<std::int32_t> sentence = {1, 2, 3};
  const std::vector<float> g = bert.mlm_gradient(sentence, {1});
  // Token 25 never appears: its embedding-row gradient must be exactly 0.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(g[25 * 8 + j], 0.0f);
  }
}

TEST(TinyBert, PretrainingReducesMlmLoss) {
  const text::Corpus corpus = tiny_corpus(40, 120, 11);
  TinyBertConfig config = tiny_config();
  config.epochs = 2;
  config.learning_rate = 3e-3f;
  TinyBert bert(corpus.vocab_size, config);

  // Held-out probe: average loss over fixed sentences/masks.
  auto probe = [&](const TinyBert& model) {
    double total = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
      total += model.mlm_loss(corpus.sentences[i], {2, 5});
    }
    return total / 20.0;
  };
  const double before = probe(bert);
  bert.pretrain(corpus);
  const double after = probe(bert);
  EXPECT_LT(after, before - 0.1);
}

TEST(TinyBert, CorpusDriftChangesPretrainedFeatures) {
  // Two encoders pretrained on slightly different corpora diverge — the
  // stimulus behind the paper's Figure 11 instability.
  const text::Corpus c17 = tiny_corpus(40, 100, 21);
  const text::Corpus c18 = tiny_corpus(40, 100, 22);
  TinyBertConfig config = tiny_config();
  config.epochs = 1;
  TinyBert a(40, config), b(40, config);
  a.pretrain(c17);
  b.pretrain(c18);
  const std::vector<float> fa = a.features({1, 2, 3, 4});
  const std::vector<float> fb = b.features({1, 2, 3, 4});
  double diff = 0.0;
  for (std::size_t j = 0; j < fa.size(); ++j) diff += std::abs(fa[j] - fb[j]);
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace anchor::ctx
