// Tests for the POS tagging task: structural validity, context-dependence
// of ambiguous words, learnability by the BiLSTM tagger, and the
// all-token instability semantics (contrast with NER's entity mask).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/instability.hpp"
#include "model/bilstm.hpp"
#include "tasks/pos.hpp"
#include "util/rng.hpp"

namespace anchor::tasks {
namespace {

text::LatentSpace small_space() {
  text::LatentSpaceConfig lsc;
  lsc.vocab_size = 250;
  lsc.latent_dim = 8;
  lsc.num_topics = 8;
  lsc.seed = 41;
  return text::LatentSpace(lsc);
}

PosTaskConfig small_config() {
  PosTaskConfig c;
  c.train_size = 300;
  c.test_size = 150;
  c.sentence_length = 10;
  return c;
}

TEST(PosTask, StructureIsValid) {
  const auto space = small_space();
  const SequenceTaggingDataset ds = make_pos_task(space, small_config());
  EXPECT_EQ(ds.name, "pos");
  EXPECT_EQ(ds.num_tags, kNumPosTags);
  ASSERT_EQ(ds.train_sentences.size(), 300u);
  ASSERT_EQ(ds.test_sentences.size(), 150u);
  for (std::size_t i = 0; i < ds.train_sentences.size(); ++i) {
    ASSERT_EQ(ds.train_sentences[i].size(), ds.train_tags[i].size());
    for (const std::int32_t w : ds.train_sentences[i]) {
      EXPECT_GE(w, 0);
      EXPECT_LT(static_cast<std::size_t>(w), space.vocab_size());
    }
    for (const std::int32_t t : ds.train_tags[i]) {
      EXPECT_GE(t, 0);
      EXPECT_LT(static_cast<std::size_t>(t), kNumPosTags);
    }
  }
}

TEST(PosTask, DeterministicGivenSeed) {
  const auto space = small_space();
  const SequenceTaggingDataset a = make_pos_task(space, small_config());
  const SequenceTaggingDataset b = make_pos_task(space, small_config());
  EXPECT_EQ(a.train_sentences, b.train_sentences);
  EXPECT_EQ(a.train_tags, b.train_tags);
}

TEST(PosTask, AllTagsAppear) {
  const auto space = small_space();
  const SequenceTaggingDataset ds = make_pos_task(space, small_config());
  std::map<std::int32_t, std::size_t> histogram;
  for (const auto& tags : ds.train_tags) {
    for (const std::int32_t t : tags) ++histogram[t];
  }
  EXPECT_EQ(histogram.size(), kNumPosTags);
  for (const auto& [tag, count] : histogram) {
    EXPECT_GT(count, 50u) << "tag " << tag << " too rare to learn";
  }
}

TEST(PosTask, AmbiguousWordsCarryMultipleTags) {
  const auto space = small_space();
  PosTaskConfig config = small_config();
  config.ambiguous_fraction = 0.4;
  config.tag_noise = 0.0;  // isolate genuine ambiguity from label noise
  const SequenceTaggingDataset ds = make_pos_task(space, config);
  std::map<std::int32_t, std::set<std::int32_t>> tags_of_word;
  for (std::size_t i = 0; i < ds.train_sentences.size(); ++i) {
    for (std::size_t t = 0; t < ds.train_sentences[i].size(); ++t) {
      tags_of_word[ds.train_sentences[i][t]].insert(ds.train_tags[i][t]);
    }
  }
  std::size_t multi = 0;
  for (const auto& [w, tags] : tags_of_word) {
    if (tags.size() > 1) ++multi;
  }
  EXPECT_GT(multi, tags_of_word.size() / 10)
      << "a visible fraction of words must be genuinely ambiguous";
}

TEST(PosTask, ZeroAmbiguityMakesTagsAFunctionOfTheWord) {
  const auto space = small_space();
  PosTaskConfig config = small_config();
  config.ambiguous_fraction = 0.0;
  config.tag_noise = 0.0;
  const SequenceTaggingDataset ds = make_pos_task(space, config);
  std::map<std::int32_t, std::int32_t> tag_of_word;
  for (std::size_t i = 0; i < ds.train_sentences.size(); ++i) {
    for (std::size_t t = 0; t < ds.train_sentences[i].size(); ++t) {
      const auto [it, inserted] = tag_of_word.emplace(
          ds.train_sentences[i][t], ds.train_tags[i][t]);
      if (!inserted) {
        EXPECT_EQ(it->second, ds.train_tags[i][t])
            << "word " << ds.train_sentences[i][t]
            << " must have a unique tag without ambiguity";
      }
    }
  }
}

TEST(PosTask, BiLstmLearnsItAboveChance) {
  const auto space = small_space();
  const SequenceTaggingDataset ds = make_pos_task(space, small_config());
  const embed::Embedding ground_truth =
      embed::Embedding::from_matrix(space.word_vectors());

  model::BiLstmConfig mc;
  mc.num_tags = kNumPosTags;
  mc.hidden = 10;
  mc.epochs = 3;
  mc.word_dropout = 0.0f;
  mc.locked_dropout = 0.0f;
  const model::BiLstmTagger tagger(ground_truth, ds.train_sentences,
                                   ds.train_tags, mc);
  const auto preds = tagger.predict_flat(ds.test_sentences);
  const auto gold = ds.flat_test_gold();
  ASSERT_EQ(preds.size(), gold.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == gold[i] ? 1 : 0;
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(preds.size());
  EXPECT_GT(acc, 1.5 / static_cast<double>(kNumPosTags))
      << "tagger must clearly beat the 1/num_tags chance level";
}

}  // namespace
}  // namespace anchor::tasks
