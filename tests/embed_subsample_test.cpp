// Tests for word2vec-style frequent-word subsampling: the survival formula,
// its monotonicity in frequency, the filter semantics, and the trainer
// integration (off by default = bit-identical to pre-subsampling output).
#include <gtest/gtest.h>

#include <cmath>

#include "embed/cbow.hpp"
#include "embed/negative_sampling.hpp"
#include "embed/sgns.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"
#include "util/rng.hpp"

namespace anchor::embed {
namespace {

text::Corpus zipf_corpus(std::uint64_t seed = 4) {
  text::LatentSpaceConfig lsc;
  lsc.vocab_size = 100;
  lsc.latent_dim = 6;
  lsc.seed = 9;
  const text::LatentSpace space(lsc);
  text::CorpusConfig cc;
  cc.num_documents = 120;
  cc.seed = seed;
  return text::generate_corpus(space, cc);
}

TEST(Subsampler, DisabledKeepsEverything) {
  const std::vector<std::int64_t> counts = {1000, 100, 10, 1};
  const FrequentWordSubsampler sub(counts, 0.0);
  Rng rng(1);
  for (std::int32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(sub.keep_probability(w), 1.0);
    EXPECT_TRUE(sub.keep(w, rng));
  }
  const std::vector<std::int32_t> sentence = {0, 1, 2, 3, 0, 0};
  EXPECT_EQ(sub.filter(sentence, rng), sentence);
}

TEST(Subsampler, SurvivalMatchesWord2vecFormula) {
  const std::vector<std::int64_t> counts = {9000, 900, 90, 10};
  const double sample = 1e-2;
  const FrequentWordSubsampler sub(counts, sample);
  const double total = 10000.0;
  for (std::int32_t w = 0; w < 4; ++w) {
    const double f = static_cast<double>(counts[w]);
    const double expected = std::min(
        1.0, (std::sqrt(f / (sample * total)) + 1.0) * sample * total / f);
    EXPECT_NEAR(sub.keep_probability(w), expected, 1e-12) << "word " << w;
  }
}

TEST(Subsampler, KeepProbabilityDecreasesWithFrequency) {
  const std::vector<std::int64_t> counts = {50000, 5000, 500, 50, 5};
  const FrequentWordSubsampler sub(counts, 1e-3);
  for (std::int32_t w = 1; w < 5; ++w) {
    EXPECT_GE(sub.keep_probability(w), sub.keep_probability(w - 1));
  }
  // Rare enough words must always survive.
  EXPECT_EQ(sub.keep_probability(4), 1.0);
  // The most frequent word must actually be at risk.
  EXPECT_LT(sub.keep_probability(0), 1.0);
}

TEST(Subsampler, FilterDropsFrequentTokensAtExpectedRate) {
  const std::vector<std::int64_t> counts = {100000, 10};
  const FrequentWordSubsampler sub(counts, 1e-4);
  Rng rng(7);
  const std::vector<std::int32_t> frequent(10000, 0);
  const std::vector<std::int32_t> kept = sub.filter(frequent, rng);
  const double expected = sub.keep_probability(0);
  const double observed =
      static_cast<double>(kept.size()) / static_cast<double>(frequent.size());
  EXPECT_NEAR(observed, expected, 0.02);
}

TEST(Subsampler, ZeroCountWordsAreKept) {
  const std::vector<std::int64_t> counts = {100, 0, 100};
  const FrequentWordSubsampler sub(counts, 1e-3);
  EXPECT_EQ(sub.keep_probability(1), 1.0);
}

TEST(Subsampler, TrainersOffByDefaultAndDeterministicWhenOn) {
  const text::Corpus corpus = zipf_corpus();
  // subsample = 0 (default) must be the exact no-subsampling code path.
  CbowConfig off;
  off.dim = 8;
  off.epochs = 1;
  const Embedding baseline = train_cbow(corpus, off);
  CbowConfig explicit_off = off;
  explicit_off.subsample = 0.0;
  EXPECT_EQ(train_cbow(corpus, explicit_off).data, baseline.data);

  // With subsampling on: still deterministic, still finite, and different
  // from the baseline (tokens were dropped).
  CbowConfig on = off;
  on.subsample = 1e-3;
  const Embedding a = train_cbow(corpus, on);
  const Embedding b = train_cbow(corpus, on);
  EXPECT_EQ(a.data, b.data);
  EXPECT_NE(a.data, baseline.data);
  for (const float v : a.data) EXPECT_TRUE(std::isfinite(v));

  SgnsConfig son;
  son.dim = 8;
  son.epochs = 1;
  son.subsample = 1e-3;
  const Embedding sa = train_sgns(corpus, son);
  const Embedding sb = train_sgns(corpus, son);
  EXPECT_EQ(sa.data, sb.data);
}

class SubsampleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SubsampleSweep, MoreAggressiveThresholdDropsMoreTokens) {
  const text::Corpus corpus = zipf_corpus();
  const FrequentWordSubsampler sub(corpus.word_counts, GetParam());
  Rng rng(3);
  std::size_t kept = 0, total = 0;
  for (const auto& sentence : corpus.sentences) {
    kept += sub.filter(sentence, rng).size();
    total += sentence.size();
  }
  // Record into a static to compare across the ordered params.
  static double prev_rate = 1.1;
  const double rate = static_cast<double>(kept) / static_cast<double>(total);
  EXPECT_LE(rate, prev_rate + 1e-9)
      << "smaller sample thresholds must drop at least as many tokens";
  prev_rate = rate;
}

// Ordered most-permissive to most-aggressive.
INSTANTIATE_TEST_SUITE_P(Thresholds, SubsampleSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace anchor::embed
