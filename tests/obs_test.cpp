// Tests for the observability plane: log-bucketed mergeable histograms
// (bucket math, quantile error bound, exact merges), the metrics registry
// with its Prometheus/text renderings, the trace ring + slow-request log,
// and the Prometheus HTTP scrape endpoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/metrics_http.hpp"
#include "net/socket.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace anchor::obs {
namespace {

// ---- LogHistogram bucket math ------------------------------------------

TEST(LogHistogram, BucketIndexIsMonotoneAndCoversUnitsRange) {
  // Every unit value maps into range, indices never decrease, and each
  // bucket's lower bound round-trips through bucket_index.
  std::size_t prev = 0;
  for (std::uint64_t u = 0; u < 4096; ++u) {
    const std::size_t idx = LogHistogram::bucket_index(u);
    ASSERT_LT(idx, LogHistogram::kNumBuckets);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
  for (std::size_t idx = 0; idx < LogHistogram::kNumBuckets; ++idx) {
    const std::uint64_t lower = LogHistogram::bucket_lower_units(idx);
    if (lower > LogHistogram::kMaxUnits) break;
    EXPECT_EQ(LogHistogram::bucket_index(lower), idx) << "idx=" << idx;
    // The last unit inside the bucket still maps to it.
    const std::uint64_t width = LogHistogram::bucket_width_units(idx);
    const std::uint64_t last = lower + width - 1;
    if (last <= LogHistogram::kMaxUnits) {
      EXPECT_EQ(LogHistogram::bucket_index(last), idx) << "idx=" << idx;
    }
  }
}

TEST(LogHistogram, BucketWidthRespectsRelativeErrorBound) {
  // The documented contract: every bucket spans at most 1/32 of its
  // lower bound (beyond the exact linear region).
  for (std::size_t idx = 0; idx < LogHistogram::kNumBuckets; ++idx) {
    const std::uint64_t lower = LogHistogram::bucket_lower_units(idx);
    if (lower > LogHistogram::kMaxUnits) break;
    if (lower < LogHistogram::kSubBuckets) continue;  // exact region
    const double width =
        static_cast<double>(LogHistogram::bucket_width_units(idx));
    EXPECT_LE(width / static_cast<double>(lower),
              LogHistogram::kMaxRelativeError + 1e-12)
        << "idx=" << idx;
  }
}

TEST(LogHistogram, RoundValuesAreExact) {
  // Values whose scaled units have ≤ 6 significant bits sit exactly on a
  // bucket lower bound: recording them and asking for any quantile gives
  // them back bit-exactly.
  for (const double v : {0.0, 1.0, 3.0, 6.0, 7.0, 10.0, 20.0, 50.0, 100.0,
                         200.0, 448.0}) {
    LogHistogram h;
    h.record(v);
    EXPECT_EQ(h.quantile(0.5), v) << "v=" << v;
  }
}

TEST(LogHistogram, QuantileHonorsDocumentedErrorBound) {
  LogHistogram h;
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Latency-shaped: lognormal-ish spread over ~4 orders of magnitude.
    const double v = std::exp(rng.normal(4.0, 1.5));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double est = h.quantile(q);
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double truth = values[rank == 0 ? 0 : rank - 1];
    // est is the bucket lower bound: truth ∈ [est, est·(1+1/32)), plus
    // the half-unit rounding of record().
    EXPECT_LE(est, truth + 1.0 / LogHistogram::kUnitScale) << "q=" << q;
    EXPECT_GE(est * (1.0 + LogHistogram::kMaxRelativeError),
              truth * (1.0 - 1e-9))
        << "q=" << q;
  }
}

TEST(LogHistogram, AggregatesTrackCountSumMinMax) {
  LogHistogram h;
  h.record(5.0);
  h.record(100.0);
  h.record_n(20.0, 3);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.mean(), (5.0 + 100.0 + 3 * 20.0) / 5.0, 1e-9);
}

TEST(LogHistogram, ResetZeroesEverything) {
  LogHistogram h;
  h.record(42.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(7.0);
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_EQ(h.quantile(0.5), 7.0);
}

// ---- merges ------------------------------------------------------------

TEST(LogHistogram, MergeEqualsSingleRecorderBitIdentical) {
  // The tentpole property: two shards' histograms merged == one process
  // recording all traffic, bucket for bucket.
  LogHistogram a, b, all;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(rng.normal(3.0, 1.0));
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot reference = all.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum_units, reference.sum_units);
  EXPECT_EQ(merged.min_units, reference.min_units);
  EXPECT_EQ(merged.max_units, reference.max_units);
  EXPECT_EQ(merged.counts, reference.counts);
}

TEST(LogHistogram, MergeIsCommutativeAndAssociative) {
  LogHistogram h1, h2, h3;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    h1.record(std::exp(rng.normal(2.0, 1.0)));
    h2.record(std::exp(rng.normal(4.0, 0.5)));
    h3.record(std::exp(rng.normal(6.0, 2.0)));
  }
  // (1 ⊕ 2) ⊕ 3
  HistogramSnapshot left = h1.snapshot();
  left.merge(h2.snapshot());
  left.merge(h3.snapshot());
  // 3 ⊕ (2 ⊕ 1)
  HistogramSnapshot inner = h2.snapshot();
  inner.merge(h1.snapshot());
  HistogramSnapshot right = h3.snapshot();
  right.merge(inner);
  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_units, right.sum_units);
  EXPECT_EQ(left.min_units, right.min_units);
  EXPECT_EQ(left.max_units, right.max_units);
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h;
  h.record(33.0);
  HistogramSnapshot s = h.snapshot();
  s.merge(HistogramSnapshot{});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.quantile(0.5), 33.0);
  HistogramSnapshot empty;
  empty.merge(h.snapshot());
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.quantile(0.5), 33.0);
}

TEST(LogHistogram, ConcurrentRecordersNeverLoseCounts) {
  LogHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>((t * 37 + i) % 1000));
      }
    });
  }
  // Concurrent snapshots must stay internally sane (count covers the
  // buckets seen so far) while writers hammer the buckets.
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot s = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : s.counts) bucket_total += c;
    EXPECT_LE(bucket_total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : h.snapshot().counts) bucket_total += c;
  EXPECT_EQ(bucket_total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- MetricsRegistry ---------------------------------------------------

TEST(Metrics, OwnedCountersGaugesHistograms) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test_requests_total", "requests");
  c.inc();
  c.inc(4);
  reg.gauge("test_depth", "queue depth").set(3.5);
  reg.histogram("test_latency_us", "latency").record(100.0);
  // create-or-get returns the same instance.
  EXPECT_EQ(&reg.counter("test_requests_total"), &c);

  const MetricsReport report = reg.snapshot();
  ASSERT_EQ(report.metrics.size(), 3u);
  // Sorted by name: depth, latency, requests.
  EXPECT_EQ(report.metrics[0].name, "test_depth");
  EXPECT_EQ(report.metrics[0].kind, MetricKind::kGauge);
  EXPECT_EQ(report.metrics[0].gauge, 3.5);
  EXPECT_EQ(report.metrics[1].name, "test_latency_us");
  EXPECT_EQ(report.metrics[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(report.metrics[1].hist.count, 1u);
  EXPECT_EQ(report.metrics[2].name, "test_requests_total");
  EXPECT_EQ(report.metrics[2].counter, 5u);
}

TEST(Metrics, BridgedCollectorsAndHistogramProvidersRunAtSnapshot) {
  MetricsRegistry reg;
  std::uint64_t source = 0;
  reg.on_collect([&source](MetricsRegistry& r) {
    r.counter("bridged_total", "from elsewhere").set(source);
  });
  LogHistogram live;
  reg.register_histogram("bridged_latency_us", "live histogram",
                         [&live] { return live.snapshot(); });
  source = 7;
  live.record(50.0);
  const MetricsReport report = reg.snapshot();
  ASSERT_EQ(report.metrics.size(), 2u);
  EXPECT_EQ(report.metrics[0].name, "bridged_latency_us");
  EXPECT_EQ(report.metrics[0].hist.count, 1u);
  EXPECT_EQ(report.metrics[1].counter, 7u);
  // A collector that itself registers metrics must not deadlock (the
  // registry runs collectors without holding its lock).
  reg.on_collect([](MetricsRegistry& r) {
    r.gauge("collector_added", "registered during collect").set(1.0);
  });
  EXPECT_EQ(reg.snapshot().metrics.size(), 3u);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("app_requests_total", "Total requests").inc(12);
  reg.gauge("app_live_version_info{version=\"v2\"}", "Live version").set(1.0);
  LogHistogram& h = reg.histogram("app_latency_us", "Latency");
  h.record(3.0);
  h.record(100.0);
  const std::string text = to_prometheus(reg.snapshot());

  EXPECT_NE(text.find("# HELP app_requests_total Total requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("app_requests_total 12"), std::string::npos);
  // Labeled series pass through with the label set intact.
  EXPECT_NE(text.find("app_live_version_info{version=\"v2\"} 1"),
            std::string::npos);
  // Histograms: cumulative buckets ending in +Inf, plus _count.
  EXPECT_NE(text.find("app_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_latency_us histogram"), std::string::npos);

  // Cumulative monotonicity across the rendered bucket series.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("app_latency_us_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t v = std::stoull(line.substr(space + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_EQ(prev, 2u);  // +Inf bucket == count

  // The human-readable rendering covers every metric too.
  const std::string human = to_text(reg.snapshot());
  EXPECT_NE(human.find("app_requests_total"), std::string::npos);
  EXPECT_NE(human.find("app_latency_us"), std::string::npos);
}

TEST(Metrics, LabelValueEscapingNeutralizesHostileStrings) {
  // A version string is external input; unescaped, `ev"} 1` would close
  // the label set early and forge a series in the scrape.
  EXPECT_EQ(escape_label_value("plain-v2"), "plain-v2");
  EXPECT_EQ(escape_label_value("ev\"} 1"), "ev\\\"} 1");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(escape_label_value("a\\\"b\nc"), "a\\\\\\\"b\\nc");

  // End to end: a hostile version renders as ONE well-formed series whose
  // label value still contains no raw quote or newline.
  MetricsRegistry reg;
  const std::string hostile = "ev\"} 1\ninjected_metric 42";
  reg.gauge("app_live_version_info{version=\"" +
                escape_label_value(hostile) + "\"}",
            "Live version")
      .set(1.0);
  const std::string text = to_prometheus(reg.snapshot());
  // No raw newline ever lands in front of the injected name — it cannot
  // start a line of its own.
  EXPECT_EQ(text.find("\ninjected_metric"), std::string::npos);
  EXPECT_NE(text.find("version=\"ev\\\"} 1\\ninjected_metric 42\"} 1"),
            std::string::npos);
}

TEST(Metrics, HelpTextEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.counter("esc_total", "line one\nline \\two").inc();
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP esc_total line one\\nline \\\\two"),
            std::string::npos);
  // The exposition stays line-structured: exactly one HELP line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<std::ptrdiff_t>(3));  // HELP + TYPE + value
}

// ---- Tracer ------------------------------------------------------------

TEST(Trace, ContextChildKeepsTraceIdFreshSpanId) {
  const TraceContext root = TraceContext::start();
  EXPECT_TRUE(root.valid());
  EXPECT_TRUE(root.sampled());
  const TraceContext c = root.child();
  EXPECT_EQ(c.trace_id, root.trace_id);
  EXPECT_NE(c.span_id, root.span_id);
  EXPECT_TRUE(c.sampled());
  EXPECT_FALSE(TraceContext{}.valid());
}

TEST(Trace, RecordAndScanSortedByStartTime) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  const TraceContext ctx = TraceContext::start();
  const std::uint64_t t0 = Tracer::now_ns();
  tracer.record(ctx, TraceStage::kRouterMerge, t0 + 200, t0 + 300);
  tracer.record(ctx, TraceStage::kClientSend, t0, t0 + 400);
  tracer.record(ctx, TraceStage::kShardRtt, t0 + 50, t0 + 150,
                /*detail=*/3);
  // Another trace's spans do not leak into the scan.
  tracer.record(TraceContext::start(), TraceStage::kClientSend, t0, t0 + 1);

  const std::vector<SpanRecord> spans = tracer.spans_for(ctx.trace_id);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].stage, TraceStage::kClientSend);
  EXPECT_EQ(spans[1].stage, TraceStage::kShardRtt);
  EXPECT_EQ(spans[1].detail, 3u);
  EXPECT_EQ(spans[2].stage, TraceStage::kRouterMerge);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].start_ns, spans[2].start_ns);
}

TEST(Trace, UnsampledContextsRecordNothing) {
  Tracer& tracer = Tracer::instance();
  // spans_recorded is a lifetime cursor (clear() empties the ring, not
  // the counter) — compare against the baseline.
  const std::uint64_t before = tracer.spans_recorded();
  TraceContext unsampled = TraceContext::start(/*sampled=*/false);
  tracer.record(unsampled, TraceStage::kClientSend, 0, 1);
  tracer.record(TraceContext{}, TraceStage::kClientSend, 0, 1);
  EXPECT_EQ(tracer.spans_recorded(), before);
}

TEST(Trace, ScopeInstallsAndRestoresCurrent) {
  EXPECT_FALSE(Tracer::current().valid());
  const TraceContext ctx = TraceContext::start();
  {
    Tracer::Scope scope(ctx);
    EXPECT_EQ(Tracer::current().trace_id, ctx.trace_id);
    {
      const TraceContext inner = TraceContext::start();
      Tracer::Scope nested(inner);
      EXPECT_EQ(Tracer::current().trace_id, inner.trace_id);
    }
    EXPECT_EQ(Tracer::current().trace_id, ctx.trace_id);
  }
  EXPECT_FALSE(Tracer::current().valid());
}

TEST(Trace, SlowLogWritesOneJsonlLinePerSlowRequest) {
  const std::filesystem::path log =
      std::filesystem::temp_directory_path() / "anchor_obs_slow_test.jsonl";
  std::filesystem::remove(log);

  Tracer& tracer = Tracer::instance();
  tracer.clear();
  TracerConfig config;
  config.slow_log_path = log.string();
  config.slow_threshold_us = 100.0;
  tracer.configure(config);

  const TraceContext slow = TraceContext::start();
  const std::uint64_t t0 = Tracer::now_ns();
  tracer.record(slow, TraceStage::kBatchExec, t0, t0 + 150'000);
  tracer.finish_request(slow, t0, t0 + 200'000);  // 200 µs ≥ threshold

  const TraceContext fast = TraceContext::start();
  tracer.finish_request(fast, t0, t0 + 10'000);  // 10 µs < threshold

  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"trace\""), std::string::npos);
    EXPECT_NE(line.find("batch_exec"), std::string::npos);
  }
  EXPECT_EQ(lines, 1u);  // the fast request logged nothing

  tracer.configure(TracerConfig{});  // detach the file for other tests
  std::filesystem::remove(log);
}

TEST(Trace, SlowLogRotatesAtTheSizeCapBoundary) {
  const std::filesystem::path log =
      std::filesystem::temp_directory_path() / "anchor_obs_rotate_test.jsonl";
  const std::filesystem::path rotated = log.string() + ".1";
  std::filesystem::remove(log);
  std::filesystem::remove(rotated);

  Tracer& tracer = Tracer::instance();
  tracer.clear();
  TracerConfig config;
  config.slow_log_path = log.string();
  config.slow_threshold_us = 0.0;  // every sampled request logs

  // Measure one line's size with rotation disabled, then pin the cap so
  // the SECOND line is exactly one byte over it: the boundary case.
  config.slow_log_max_bytes = 0;
  tracer.configure(config);
  const std::uint64_t t0 = Tracer::now_ns();
  tracer.finish_request(TraceContext::start(), t0, t0 + 150'000);
  const std::uintmax_t line_size = std::filesystem::file_size(log);
  ASSERT_GT(line_size, 0u);

  config.slow_log_max_bytes = 2 * line_size - 1;
  tracer.configure(config);
  tracer.finish_request(TraceContext::start(), t0, t0 + 150'000);
  // Still under the cap after line two? No: 2·size > cap → the first
  // file rotated to .1 and the live file holds exactly the new line.
  ASSERT_TRUE(std::filesystem::exists(rotated));
  EXPECT_EQ(std::filesystem::file_size(rotated), line_size);
  EXPECT_EQ(std::filesystem::file_size(log), line_size);

  // One more line fits the live file (2·size − 1 allows it? no — the
  // check is size + line > cap → size·2 > 2·size − 1 rotates again),
  // exercising repeated rotation: .1 is overwritten, never .2.
  tracer.finish_request(TraceContext::start(), t0, t0 + 150'000);
  EXPECT_EQ(std::filesystem::file_size(rotated), line_size);
  EXPECT_EQ(std::filesystem::file_size(log), line_size);
  EXPECT_FALSE(std::filesystem::exists(log.string() + ".2"));
  // Disk usage stays ≤ 2× the cap by construction: live + one .1 file.

  tracer.configure(TracerConfig{});
  std::filesystem::remove(log);
  std::filesystem::remove(rotated);
}

TEST(Trace, SlowLogCapZeroNeverRotates) {
  const std::filesystem::path log =
      std::filesystem::temp_directory_path() / "anchor_obs_norotate_test.jsonl";
  std::filesystem::remove(log);
  std::filesystem::remove(log.string() + ".1");

  Tracer& tracer = Tracer::instance();
  tracer.clear();
  TracerConfig config;
  config.slow_log_path = log.string();
  config.slow_threshold_us = 0.0;
  config.slow_log_max_bytes = 0;  // unbounded
  tracer.configure(config);
  const std::uint64_t t0 = Tracer::now_ns();
  for (int i = 0; i < 5; ++i) {
    tracer.finish_request(TraceContext::start(), t0, t0 + 150'000);
  }
  EXPECT_FALSE(std::filesystem::exists(log.string() + ".1"));
  std::ifstream in(log);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 5u);

  tracer.configure(TracerConfig{});
  std::filesystem::remove(log);
}

TEST(Trace, StageNamesAreStable) {
  EXPECT_STREQ(trace_stage_name(TraceStage::kClientSend), "client_send");
  EXPECT_STREQ(trace_stage_name(TraceStage::kRouterScatter),
               "router_scatter");
  EXPECT_STREQ(trace_stage_name(TraceStage::kDequantize), "dequantize");
}

// ---- Prometheus HTTP endpoint ------------------------------------------

TEST(MetricsHttp, ServesPrometheusTextToARawGet) {
  MetricsRegistry reg;
  reg.counter("scrape_requests_total", "hits").inc(3);
  net::MetricsHttpServer http(
      0, [&reg] { return to_prometheus(reg.snapshot()); });
  http.start();

  net::TcpStream conn = net::TcpStream::connect("127.0.0.1", http.port());
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  conn.write_all(request.data(), request.size());
  std::string response;
  char buf[512];
  try {
    for (;;) {
      conn.read_exact(buf, 1);
      response.push_back(buf[0]);
    }
  } catch (const net::NetError&) {
    // EOF: the exporter closes after one response.
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("scrape_requests_total 3"), std::string::npos);

  // HEAD gets the same status and headers — including the Content-Length
  // the GET carried — but no body (RFC 9110 §9.3.2).
  const std::size_t body_at = response.find("\r\n\r\n") + 4;
  const std::string get_body = response.substr(body_at);
  net::TcpStream head_conn =
      net::TcpStream::connect("127.0.0.1", http.port());
  const std::string head_request =
      "HEAD /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  head_conn.write_all(head_request.data(), head_request.size());
  std::string head_response;
  try {
    for (;;) {
      head_conn.read_exact(buf, 1);
      head_response.push_back(buf[0]);
    }
  } catch (const net::NetError&) {
  }
  EXPECT_NE(head_response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(head_response.find(
                "Content-Length: " + std::to_string(get_body.size())),
            std::string::npos);
  // The response ends at the header terminator: zero body bytes.
  EXPECT_EQ(head_response.find("scrape_requests_total"), std::string::npos);
  EXPECT_TRUE(head_response.size() >= 4 &&
              head_response.compare(head_response.size() - 4, 4,
                                    "\r\n\r\n") == 0);
  http.stop();
}

}  // namespace
}  // namespace anchor::obs
