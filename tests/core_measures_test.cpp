// Tests for the embedding distance measures — including the paper's central
// theoretical claims:
//   • the efficient eigenspace instability computation (Appendix B.1)
//     matches the Definition-2 formula evaluated with an explicit Σ;
//   • Proposition 1: EI_Σ(X, X̃) equals the (normalized) expected squared
//     disagreement of linear regression models trained on X and X̃.
#include <gtest/gtest.h>

#include <cmath>

#include "core/instability.hpp"
#include "core/measures.hpp"
#include "core/theory.hpp"
#include "la/procrustes.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace anchor::core {
namespace {

la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (auto& x : m.storage()) x = rng.normal();
  return m;
}

la::Matrix random_orthogonal(std::size_t n, std::uint64_t seed) {
  return la::left_singular_vectors(random_matrix(n, n, seed));
}

la::Matrix perturbed(const la::Matrix& m, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix out = m;
  for (auto& x : out.storage()) x += rng.normal(0.0, sigma);
  return out;
}

// ---------- k-NN measure ----------

TEST(Knn, IdenticalEmbeddingsScoreOne) {
  const la::Matrix x = random_matrix(50, 6, 1);
  EXPECT_DOUBLE_EQ(knn_measure(x, x, 5, 50, 7), 1.0);
}

TEST(Knn, UnrelatedEmbeddingsScoreLow) {
  const la::Matrix x = random_matrix(120, 8, 2);
  const la::Matrix y = random_matrix(120, 8, 3);
  EXPECT_LT(knn_measure(x, y, 5, 120, 7), 0.3);
}

TEST(Knn, InvariantToRotation) {
  // Cosine neighborhoods are rotation-invariant.
  const la::Matrix x = random_matrix(60, 5, 4);
  const la::Matrix y = la::matmul(x, random_orthogonal(5, 5));
  EXPECT_DOUBLE_EQ(knn_measure(x, y, 5, 60, 7), 1.0);
}

TEST(Knn, SmallPerturbationScoresBetweenExtremes) {
  const la::Matrix x = random_matrix(100, 6, 6);
  const la::Matrix y = perturbed(x, 0.15, 7);
  const double s = knn_measure(x, y, 5, 100, 7);
  EXPECT_GT(s, 0.4);
  EXPECT_LT(s, 1.0);
}

TEST(Knn, MorePerturbationLowerScore) {
  const la::Matrix x = random_matrix(100, 6, 8);
  const double s_small = knn_measure(x, perturbed(x, 0.05, 9), 5, 100, 7);
  const double s_large = knn_measure(x, perturbed(x, 0.8, 9), 5, 100, 7);
  EXPECT_GT(s_small, s_large);
}

TEST(Knn, DeterministicGivenSeed) {
  const la::Matrix x = random_matrix(80, 6, 10);
  const la::Matrix y = perturbed(x, 0.2, 11);
  EXPECT_DOUBLE_EQ(knn_measure(x, y, 5, 40, 7), knn_measure(x, y, 5, 40, 7));
}

// ---------- semantic displacement ----------

TEST(SemanticDisplacement, ZeroUnderPureRotation) {
  const la::Matrix x = random_matrix(60, 5, 12);
  const la::Matrix y = la::matmul(x, random_orthogonal(5, 13));
  EXPECT_NEAR(semantic_displacement(x, y), 0.0, 1e-8);
}

TEST(SemanticDisplacement, GrowsWithPerturbation) {
  const la::Matrix x = random_matrix(60, 5, 14);
  const double small = semantic_displacement(x, perturbed(x, 0.05, 15));
  const double large = semantic_displacement(x, perturbed(x, 0.5, 15));
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

// ---------- PIP loss ----------

TEST(PipLoss, ZeroOnSelf) {
  const la::Matrix x = random_matrix(40, 6, 16);
  EXPECT_NEAR(pip_loss(x, x), 0.0, 1e-8);
}

TEST(PipLoss, TrickMatchesNaiveComputation) {
  // ‖XXᵀ − YYᵀ‖F computed directly on the n×n matrices.
  for (const std::uint64_t seed : {17u, 18u, 19u}) {
    const la::Matrix x = random_matrix(25, 4, seed);
    const la::Matrix y = random_matrix(25, 7, seed + 100);
    const la::Matrix naive =
        la::subtract(la::matmul_a_bt(x, x), la::matmul_a_bt(y, y));
    EXPECT_NEAR(pip_loss(x, y), la::frobenius_norm(naive), 1e-8);
  }
}

TEST(PipLoss, InvariantToRotation) {
  const la::Matrix x = random_matrix(30, 5, 20);
  const la::Matrix y = la::matmul(x, random_orthogonal(5, 21));
  EXPECT_NEAR(pip_loss(x, y), 0.0, 1e-7);
}

TEST(PipLoss, SymmetricInArguments) {
  const la::Matrix x = random_matrix(30, 4, 22);
  const la::Matrix y = random_matrix(30, 6, 23);
  EXPECT_NEAR(pip_loss(x, y), pip_loss(y, x), 1e-8);
}

// ---------- eigenspace overlap ----------

TEST(EigenspaceOverlap, OneOnSelf) {
  const la::Matrix x = random_matrix(40, 5, 24);
  EXPECT_NEAR(eigenspace_overlap(x, x), 1.0, 1e-8);
}

TEST(EigenspaceOverlap, InvariantToRightMultiplication) {
  // Column space is unchanged by any invertible right factor.
  const la::Matrix x = random_matrix(40, 5, 25);
  const la::Matrix y = la::matmul(x, random_orthogonal(5, 26));
  EXPECT_NEAR(eigenspace_overlap(x, y), 1.0, 1e-8);
}

TEST(EigenspaceOverlap, DisjointSubspacesScoreZero) {
  // X lives on coordinates 0–2, Y on coordinates 3–5 of R^6.
  la::Matrix x(6, 2, 0.0), y(6, 2, 0.0);
  x(0, 0) = 1.0;
  x(1, 1) = 1.0;
  y(3, 0) = 1.0;
  y(4, 1) = 1.0;
  EXPECT_NEAR(eigenspace_overlap(x, y), 0.0, 1e-10);
}

TEST(EigenspaceOverlap, NestedSubspaceNormalizedByLargerDim) {
  // Y spans a 2-dim subspace of X's 4-dim span ⇒ overlap = 2/4.
  const la::Matrix base = random_matrix(30, 4, 27);
  la::Matrix y(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    y(i, 0) = base(i, 0);
    y(i, 1) = base(i, 1);
  }
  EXPECT_NEAR(eigenspace_overlap(base, y), 0.5, 1e-8);
}

// ---------- eigenspace instability ----------

struct EisCase {
  std::size_t n, d, k;
  double alpha;
};

class EisAgainstNaive : public ::testing::TestWithParam<EisCase> {};

TEST_P(EisAgainstNaive, FastFormulaMatchesExplicitSigma) {
  const auto [n, d, k, alpha] = GetParam();
  const la::Matrix x = random_matrix(n, d, 30 + n);
  const la::Matrix x_tilde = random_matrix(n, k, 31 + n);
  const la::Matrix e = random_matrix(n, 6, 32 + n);
  const la::Matrix e_tilde = perturbed(e, 0.2, 33);

  const EisContext ctx = EisContext::build(e, e_tilde, alpha);
  const double fast = eigenspace_instability_of(x, x_tilde, ctx);

  const la::Matrix sigma = build_sigma_naive(e, e_tilde, alpha);
  const double naive = eigenspace_instability_naive(x, x_tilde, sigma);
  EXPECT_NEAR(fast, naive, 1e-6 * std::max(1.0, std::abs(naive)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EisAgainstNaive,
    ::testing::Values(EisCase{20, 4, 4, 1.0}, EisCase{20, 4, 7, 1.0},
                      EisCase{35, 8, 3, 2.0}, EisCase{35, 8, 8, 3.0},
                      EisCase{16, 5, 5, 0.0}, EisCase{40, 10, 6, 3.0}));

TEST(Eis, ZeroWhenSpansIdentical) {
  const la::Matrix x = random_matrix(30, 5, 40);
  const la::Matrix y = la::matmul(x, random_orthogonal(5, 41));
  const la::Matrix e = random_matrix(30, 5, 42);
  const EisContext ctx = EisContext::build(e, perturbed(e, 0.1, 43), 1.0);
  EXPECT_NEAR(eigenspace_instability_of(x, y, ctx), 0.0, 1e-8);
}

TEST(Eis, SymmetricInXAndXTilde) {
  const la::Matrix x = random_matrix(30, 4, 44);
  const la::Matrix y = random_matrix(30, 6, 45);
  const la::Matrix e = random_matrix(30, 5, 46);
  const EisContext ctx = EisContext::build(e, perturbed(e, 0.1, 47), 2.0);
  EXPECT_NEAR(eigenspace_instability_of(x, y, ctx),
              eigenspace_instability_of(y, x, ctx), 1e-8);
}

TEST(Eis, BoundedZeroOne) {
  for (const std::uint64_t seed : {50u, 51u, 52u, 53u}) {
    const la::Matrix x = random_matrix(25, 4, seed);
    const la::Matrix y = random_matrix(25, 5, seed + 10);
    const la::Matrix e = random_matrix(25, 6, seed + 20);
    const EisContext ctx = EisContext::build(e, perturbed(e, 0.3, 1), 3.0);
    const double v = eigenspace_instability_of(x, y, ctx);
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(Eis, OneForOrthogonalComplementarySubspaces) {
  // U spans coords 0–1, Ũ spans coords 2–3, Σ supported on their union.
  la::Matrix x(4, 2, 0.0), y(4, 2, 0.0);
  x(0, 0) = 1.0;
  x(1, 1) = 1.0;
  y(2, 0) = 1.0;
  y(3, 1) = 1.0;
  // E = identity basis ⇒ Σ = 2·I with α = 0... use explicit Σ via naive.
  const la::Matrix sigma = la::Matrix::identity(4);
  EXPECT_NEAR(eigenspace_instability_naive(x, y, sigma), 1.0, 1e-10);
}

TEST(Eis, GrowsWithPerturbation) {
  const la::Matrix x = random_matrix(40, 6, 60);
  const la::Matrix e = random_matrix(40, 8, 61);
  const EisContext ctx = EisContext::build(e, perturbed(e, 0.1, 62), 3.0);
  const double small =
      eigenspace_instability_of(x, perturbed(x, 0.05, 63), ctx);
  const double large =
      eigenspace_instability_of(x, perturbed(x, 1.0, 63), ctx);
  EXPECT_GT(large, small);
}

// ---------- Proposition 1 ----------

TEST(Proposition1, LinearModelPredictionsAreProjection) {
  const la::Matrix x = random_matrix(25, 4, 70);
  const la::Matrix u = la::left_singular_vectors(x);
  Rng rng(71);
  std::vector<double> y(25);
  for (auto& v : y) v = rng.normal();
  // U·Uᵀ·y is idempotent: applying twice changes nothing.
  const auto once = linear_model_predictions(u, y);
  const auto twice = linear_model_predictions(u, once);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-9);
  }
}

TEST(Proposition1, EisEqualsMonteCarloDisagreement) {
  // The central identity: EI_Σ(X, X̃) = E‖UUᵀy − ŨŨᵀy‖² / E‖y‖² with
  // y ~ N(0, Σ). Monte-Carlo with many samples, moderate tolerance.
  const la::Matrix x = random_matrix(30, 5, 72);
  const la::Matrix x_tilde = perturbed(x, 0.4, 73);
  const la::Matrix e = random_matrix(30, 6, 74);
  const la::Matrix e_tilde = perturbed(e, 0.2, 75);
  const double alpha = 1.0;

  const EisContext ctx = EisContext::build(e, e_tilde, alpha);
  const double eis = eigenspace_instability_of(x, x_tilde, ctx);

  const la::Matrix f = sigma_factor(e, e_tilde, alpha);
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(x_tilde);
  const double mc = expected_disagreement_mc(u, ut, f, 4000, 76);
  EXPECT_NEAR(mc, eis, 0.05 * std::max(eis, 0.01));
}

TEST(Proposition1, SigmaFactorReproducesSigma) {
  const la::Matrix e = random_matrix(15, 4, 80);
  const la::Matrix e_tilde = perturbed(e, 0.3, 81);
  const la::Matrix f = sigma_factor(e, e_tilde, 2.0);
  const la::Matrix sigma = build_sigma_naive(e, e_tilde, 2.0);
  EXPECT_LT(la::max_abs_diff(la::matmul_a_bt(f, f), sigma), 1e-7);
}

TEST(Proposition1, DisagreementSampleMatchesDefinition) {
  const la::Matrix x = random_matrix(20, 3, 82);
  const la::Matrix y_emb = random_matrix(20, 4, 83);
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(y_emb);
  Rng rng(84);
  std::vector<double> label(20);
  for (auto& v : label) v = rng.normal();
  const auto pa = linear_model_predictions(u, label);
  const auto pb = linear_model_predictions(ut, label);
  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < label.size(); ++i) {
    num += (pa[i] - pb[i]) * (pa[i] - pb[i]);
    denom += label[i] * label[i];
  }
  EXPECT_NEAR(disagreement_sample(u, ut, label), num / denom, 1e-12);
}

// ---------- downstream instability helpers ----------

TEST(Instability, DisagreementPct) {
  EXPECT_DOUBLE_EQ(prediction_disagreement_pct({1, 0, 1, 0}, {1, 0, 1, 0}),
                   0.0);
  EXPECT_DOUBLE_EQ(prediction_disagreement_pct({1, 0, 1, 0}, {0, 1, 0, 1}),
                   100.0);
  EXPECT_DOUBLE_EQ(prediction_disagreement_pct({1, 0, 1, 0}, {1, 0, 0, 0}),
                   25.0);
}

TEST(Instability, MaskedDisagreementIgnoresUnmasked) {
  const std::vector<std::int32_t> a = {1, 2, 3, 4};
  const std::vector<std::int32_t> b = {9, 2, 9, 4};
  EXPECT_DOUBLE_EQ(masked_disagreement_pct(a, b, {0, 1, 1, 1}),
                   100.0 / 3.0);
  EXPECT_THROW(masked_disagreement_pct(a, b, {0, 0, 0, 0}), CheckError);
}

TEST(Instability, AccuracyPct) {
  EXPECT_DOUBLE_EQ(accuracy_pct({1, 1, 0}, {1, 0, 0}), 100.0 * 2.0 / 3.0);
}

TEST(Instability, MicroF1IgnoresOClass) {
  // gold:  O  1  2  1 ; pred: O  1  1  O
  // tp = 1 (pos 1), fp = 1 (pos 2 wrong type), fn = 2 (pos 2 counted? ...)
  //   pos2: pred 1 gold 2 → fp and fn; pos3: pred O gold 1 → fn.
  const std::vector<std::int32_t> gold = {0, 1, 2, 1};
  const std::vector<std::int32_t> pred = {0, 1, 1, 0};
  // tp=1, fp=1, fn=2 → F1 = 2·1/(2+1+2) = 0.4.
  EXPECT_NEAR(micro_f1_pct(pred, gold, 0), 40.0, 1e-9);
}

TEST(Instability, MicroF1PerfectAndEmpty) {
  EXPECT_DOUBLE_EQ(micro_f1_pct({1, 2, 0}, {1, 2, 0}, 0), 100.0);
  EXPECT_DOUBLE_EQ(micro_f1_pct({0, 0}, {0, 0}, 0), 0.0);
}

TEST(MeasureNames, AllDistinct) {
  std::set<std::string> names;
  for (const Measure m : kAllMeasures) names.insert(measure_name(m));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace anchor::core
