// Tests for the command-line argument parser used by the tools/ binaries.
#include <gtest/gtest.h>

#include "util/argparse.hpp"
#include "util/check.hpp"

namespace anchor {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_option("dim", "dimension", "32")
      .add_option("out", "output", "", /*required=*/true)
      .add_option("rate", "learning rate", "0.5")
      .add_flag("verbose", "talk more")
      .add_positional("input", "input file");
  return p;
}

TEST(ArgParser, ParsesSeparateAndInlineValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(p.parse({"file.txt", "--dim", "64", "--out=o.txt"}))
      << p.error();
  EXPECT_EQ(p.get("input"), "file.txt");
  EXPECT_EQ(p.get_int("dim"), 64);
  EXPECT_EQ(p.get("out"), "o.txt");
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);  // default preserved
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, FlagsAreBooleansWithoutValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(p.parse({"in", "--out", "o", "--verbose"}));
  EXPECT_TRUE(p.get_flag("verbose"));

  ArgParser q = make_parser();
  EXPECT_FALSE(q.parse({"in", "--out", "o", "--verbose=yes"}));
  EXPECT_NE(q.error().find("does not take a value"), std::string::npos);
}

TEST(ArgParser, MissingRequiredOptionFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"in"}));
  EXPECT_NE(p.error().find("--out"), std::string::npos);
}

TEST(ArgParser, MissingRequiredPositionalFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"--out", "o"}));
  EXPECT_NE(p.error().find("<input>"), std::string::npos);
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"in", "--out", "o", "--bogus", "1"}));
  EXPECT_NE(p.error().find("--bogus"), std::string::npos);
}

TEST(ArgParser, ExtraPositionalFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"in", "extra", "--out", "o"}));
  EXPECT_NE(p.error().find("unexpected argument"), std::string::npos);
}

TEST(ArgParser, DanglingValueOptionFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"in", "--out"}));
  EXPECT_NE(p.error().find("expects a value"), std::string::npos);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make_parser();
  EXPECT_FALSE(p.parse({"--help"}));
  EXPECT_TRUE(p.help_requested());
  EXPECT_TRUE(p.error().empty());
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--dim"), std::string::npos);
  EXPECT_NE(usage.find("<input>"), std::string::npos);
  EXPECT_NE(usage.find("(default: 32)"), std::string::npos);
}

TEST(ArgParser, TypedAccessorsValidate) {
  ArgParser p = make_parser();
  ASSERT_TRUE(p.parse({"in", "--out", "o", "--dim", "abc"}));
  EXPECT_THROW(p.get_int("dim"), CheckError);
  EXPECT_THROW(p.get("nonexistent"), CheckError);
}

TEST(ArgParser, HasReflectsPresence) {
  ArgParser p = make_parser();
  ASSERT_TRUE(p.parse({"in", "--out", "o"}));
  EXPECT_TRUE(p.has("out"));
  EXPECT_FALSE(p.has("rate"));  // only a default, never seen
  EXPECT_TRUE(p.has("input"));
}

TEST(ArgParser, NegativeNumbersParseAsValues) {
  ArgParser p("prog", "t");
  p.add_option("offset", "signed value", "0");
  ASSERT_TRUE(p.parse({"--offset", "-12"}));
  EXPECT_EQ(p.get_int("offset"), -12);
  ArgParser q("prog", "t");
  q.add_option("rate", "signed value", "0");
  ASSERT_TRUE(q.parse({"--rate=-0.25"}));
  EXPECT_DOUBLE_EQ(q.get_double("rate"), -0.25);
}

TEST(ArgParser, DuplicateDeclarationIsACodingError) {
  ArgParser p("prog", "t");
  p.add_option("x", "first");
  EXPECT_THROW(p.add_option("x", "again"), CheckError);
  EXPECT_THROW(p.add_flag("x", "again"), CheckError);
}

TEST(ArgParser, OptionalPositionalMayBeOmitted) {
  ArgParser p("prog", "t");
  p.add_positional("a", "first");
  p.add_positional("b", "second", /*required=*/false);
  ASSERT_TRUE(p.parse({"one"}));
  EXPECT_EQ(p.get("a"), "one");
  EXPECT_FALSE(p.has("b"));
}

}  // namespace
}  // namespace anchor
