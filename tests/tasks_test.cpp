// Tests for the synthetic downstream tasks: learnability from the latent
// ground truth, determinism, profile distinctness, and NER structure.
#include <gtest/gtest.h>

#include "model/linear_bow.hpp"
#include "tasks/ner.hpp"
#include "tasks/sentiment.hpp"

namespace anchor::tasks {
namespace {

text::LatentSpace task_space() {
  text::LatentSpaceConfig c;
  c.vocab_size = 400;
  c.latent_dim = 12;
  c.num_topics = 8;
  c.seed = 33;
  return text::LatentSpace(c);
}

SentimentTaskConfig small_sentiment() {
  SentimentTaskConfig c;
  c.train_size = 400;
  c.val_size = 80;
  c.test_size = 150;
  return c;
}

TEST(Sentiment, SplitSizesMatchConfig) {
  const auto ds = make_sentiment_task(task_space(), small_sentiment());
  EXPECT_EQ(ds.train_sentences.size(), 400u);
  EXPECT_EQ(ds.train_labels.size(), 400u);
  EXPECT_EQ(ds.val_sentences.size(), 80u);
  EXPECT_EQ(ds.test_sentences.size(), 150u);
  for (const auto& s : ds.train_sentences) {
    EXPECT_EQ(s.size(), small_sentiment().sentence_length);
  }
}

TEST(Sentiment, LabelsRoughlyBalanced) {
  const auto ds = make_sentiment_task(task_space(), small_sentiment());
  std::size_t pos = 0;
  for (const auto l : ds.train_labels) pos += l;
  const double frac = static_cast<double>(pos) / ds.train_labels.size();
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(Sentiment, DeterministicGivenSeed) {
  const text::LatentSpace space = task_space();
  const auto a = make_sentiment_task(space, small_sentiment());
  const auto b = make_sentiment_task(space, small_sentiment());
  EXPECT_EQ(a.train_sentences, b.train_sentences);
  EXPECT_EQ(a.train_labels, b.train_labels);
}

TEST(Sentiment, LearnableFromGroundTruthVectors) {
  // A linear model over the *true* latent vectors must solve the task well —
  // this is the learnability guarantee the whole pipeline rests on.
  const text::LatentSpace space = task_space();
  SentimentTaskConfig config = small_sentiment();
  config.train_size = 800;
  const auto ds = make_sentiment_task(space, config);

  embed::Embedding truth(space.vocab_size(), space.latent_dim());
  for (std::size_t w = 0; w < space.vocab_size(); ++w) {
    for (std::size_t j = 0; j < space.latent_dim(); ++j) {
      truth.row(w)[j] = static_cast<float>(space.word_vectors()(w, j));
    }
  }
  model::LinearBowConfig mc;
  mc.epochs = 40;
  const model::LinearBowClassifier clf(truth, ds.train_sentences,
                                       ds.train_labels, mc);
  const auto preds = clf.predict_all(ds.test_sentences);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    hits += (preds[i] == ds.test_labels[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / preds.size(), 0.8);
}

TEST(Sentiment, ProfilesAreDistinctAndComplete) {
  ASSERT_EQ(sentiment_task_names().size(), 4u);
  std::set<std::uint64_t> seeds;
  for (const auto& name : sentiment_task_names()) {
    const SentimentTaskConfig c = sentiment_profile(name);
    EXPECT_EQ(c.name, name);
    seeds.insert(c.seed);
  }
  EXPECT_EQ(seeds.size(), 4u);  // distinct θ per task
  // Subj is configured easier (stabler) than MR, matching the paper.
  EXPECT_GT(sentiment_profile("subj").polarity_strength,
            sentiment_profile("mr").polarity_strength);
  EXPECT_LT(sentiment_profile("subj").label_noise,
            sentiment_profile("mr").label_noise);
  EXPECT_LT(sentiment_profile("mpqa").sentence_length,
            sentiment_profile("sst2").sentence_length);
}

TEST(Sentiment, UnknownProfileThrows) {
  EXPECT_THROW(sentiment_profile("imdb"), CheckError);
}

NerTaskConfig small_ner() {
  NerTaskConfig c;
  c.train_size = 150;
  c.test_size = 80;
  c.gazetteer_size = 40;
  return c;
}

TEST(Ner, DatasetShapesAndTagRange) {
  const auto ds = make_ner_task(task_space(), small_ner());
  EXPECT_EQ(ds.train_sentences.size(), 150u);
  EXPECT_EQ(ds.test_sentences.size(), 80u);
  for (std::size_t i = 0; i < ds.train_sentences.size(); ++i) {
    ASSERT_EQ(ds.train_sentences[i].size(), ds.train_tags[i].size());
    for (const auto t : ds.train_tags[i]) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<std::int32_t>(kNumNerTags));
    }
  }
}

TEST(Ner, ContainsAllEntityTypes) {
  const auto ds = make_ner_task(task_space(), small_ner());
  std::set<std::int32_t> seen;
  for (const auto& tags : ds.train_tags) {
    for (const auto t : tags) seen.insert(t);
  }
  EXPECT_EQ(seen.size(), kNumNerTags);
}

TEST(Ner, EntityMaskMatchesGoldTags) {
  const auto ds = make_ner_task(task_space(), small_ner());
  const auto gold = ds.flat_test_gold();
  const auto mask = ds.flat_test_entity_mask();
  ASSERT_EQ(gold.size(), mask.size());
  std::size_t entities = 0;
  for (std::size_t i = 0; i < gold.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, gold[i] != kTagO);
    entities += mask[i];
  }
  // Entities exist but are a minority of tokens.
  EXPECT_GT(entities, gold.size() / 20);
  EXPECT_LT(entities, gold.size() / 2);
}

TEST(Ner, DeterministicGivenSeed) {
  const text::LatentSpace space = task_space();
  const auto a = make_ner_task(space, small_ner());
  const auto b = make_ner_task(space, small_ner());
  EXPECT_EQ(a.train_sentences, b.train_sentences);
  EXPECT_EQ(a.train_tags, b.train_tags);
}

TEST(Ner, GazetteerWordsMostlyTaggedConsistently) {
  // A given non-O word id should (almost) always carry the same entity type
  // — gazetteers are disjoint by construction, up to tag noise.
  NerTaskConfig config = small_ner();
  config.tag_noise = 0.0;
  const auto ds = make_ner_task(task_space(), config);
  std::map<std::int32_t, std::set<std::int32_t>> word_tags;
  for (std::size_t i = 0; i < ds.train_sentences.size(); ++i) {
    for (std::size_t j = 0; j < ds.train_sentences[i].size(); ++j) {
      if (ds.train_tags[i][j] != kTagO) {
        word_tags[ds.train_sentences[i][j]].insert(ds.train_tags[i][j]);
      }
    }
  }
  for (const auto& [word, tags] : word_tags) {
    EXPECT_EQ(tags.size(), 1u) << "word " << word << " has multiple types";
  }
}

TEST(Ner, RequiresEnoughTopics) {
  text::LatentSpaceConfig c;
  c.vocab_size = 50;
  c.latent_dim = 4;
  c.num_topics = 2;  // fewer than 4 entity types
  const text::LatentSpace space(c);
  EXPECT_THROW(make_ner_task(space, small_ner()), CheckError);
}

}  // namespace
}  // namespace anchor::tasks
