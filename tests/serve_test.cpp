// Tests for the serving subsystem: snapshot encoding/sharding, versioned
// store semantics, thread-safe cached lookup, hot swap under concurrency,
// and the instability-gated promotion path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "embed/io.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace anchor::serve {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) {
    x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return e;
}

embed::Embedding perturbed(const embed::Embedding& e, double scale,
                           std::uint64_t seed) {
  embed::Embedding out = e;
  Rng rng(seed);
  for (auto& x : out.data) {
    x += static_cast<float>(rng.normal(0.0, scale));
  }
  return out;
}

// ---- EmbeddingSnapshot -------------------------------------------------

TEST(Snapshot, Fp32RoundTripsRowsAcrossShardCounts) {
  const auto e = random_embedding(37, 8, 1);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}, std::size_t{64}}) {
    SnapshotConfig config;
    config.num_shards = shards;
    config.build_oov_table = false;
    EmbeddingSnapshot snap("v1", e, config, 1);
    std::vector<float> row(e.dim);
    for (std::size_t w = 0; w < e.vocab_size; ++w) {
      snap.copy_row(w, row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_FLOAT_EQ(row[j], e.row(w)[j]) << "shards=" << shards;
      }
    }
  }
}

TEST(Snapshot, QuantizedRowsMatchCompressQuantizeGrid) {
  const auto e = random_embedding(25, 6, 2);
  for (const int bits : {1, 2, 4, 8}) {
    SnapshotConfig config;
    config.bits = bits;
    config.build_oov_table = false;
    EmbeddingSnapshot snap("q", e, config, 1);

    compress::QuantizeConfig qc;
    qc.bits = bits;
    const auto reference = compress::uniform_quantize(e, qc);
    EXPECT_FLOAT_EQ(snap.clip(), reference.clip);

    std::vector<float> row(e.dim);
    for (std::size_t w = 0; w < e.vocab_size; ++w) {
      snap.copy_row(w, row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_FLOAT_EQ(row[j], reference.embedding.row(w)[j])
            << "bits=" << bits << " w=" << w << " j=" << j;
      }
    }
  }
}

TEST(Snapshot, CopyRowsMatchesPerRowCopyInAnyOrder) {
  const auto e = random_embedding(41, 13, 26);
  for (const int bits : {4, 8, 32}) {
    SnapshotConfig config;
    config.bits = bits;
    config.num_shards = 5;
    config.build_oov_table = false;
    EmbeddingSnapshot snap("v1", e, config, 1);

    // Scattered, duplicated, unsorted ids — the shape a lookup batch takes.
    const std::vector<std::size_t> ids = {40, 0, 7, 7, 13, 39, 1, 0};
    std::vector<float> batched(ids.size() * e.dim);
    snap.copy_rows(ids.data(), ids.size(), batched.data());
    std::vector<float> row(e.dim);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      snap.copy_row(ids[i], row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_EQ(batched[i * e.dim + j], row[j])
            << "bits=" << bits << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Snapshot, ToMatrixBlockExportMatchesCopyRow) {
  // dim 13 and 5 shards hit both the sub-byte packing tail and an uneven
  // rows-per-shard split in the blocked (per-shard dequantize) export path.
  const auto e = random_embedding(23, 13, 27);
  for (const int bits : {1, 2, 4, 8, 32}) {
    SnapshotConfig config;
    config.bits = bits;
    config.num_shards = 5;
    config.build_oov_table = false;
    EmbeddingSnapshot snap("v1", e, config, 1);
    for (const std::size_t max_rows : {std::size_t{0}, std::size_t{1},
                                       std::size_t{17}, std::size_t{23}}) {
      const la::Matrix m = snap.to_matrix(max_rows);
      const std::size_t rows = max_rows == 0 ? e.vocab_size : max_rows;
      ASSERT_EQ(m.rows(), rows);
      std::vector<float> row(e.dim);
      for (std::size_t w = 0; w < rows; ++w) {
        snap.copy_row(w, row.data());
        for (std::size_t j = 0; j < e.dim; ++j) {
          EXPECT_EQ(m(w, j), static_cast<double>(row[j]))
              << "bits=" << bits << " max_rows=" << max_rows << " w=" << w;
        }
      }
    }
  }
}

TEST(Snapshot, QuantizedStorageIsSmaller) {
  const auto e = random_embedding(64, 32, 3);
  SnapshotConfig fp32;
  fp32.build_oov_table = false;
  SnapshotConfig q8 = fp32;
  q8.bits = 8;
  SnapshotConfig q4 = fp32;
  q4.bits = 4;
  const std::size_t full = EmbeddingSnapshot("a", e, fp32, 1).memory_bytes();
  EXPECT_EQ(EmbeddingSnapshot("b", e, q8, 2).memory_bytes(), full / 4);
  EXPECT_EQ(EmbeddingSnapshot("c", e, q4, 3).memory_bytes(), full / 8);
}

TEST(Snapshot, ClipOverrideIsHonored) {
  const auto e = random_embedding(10, 4, 4);
  SnapshotConfig config;
  config.bits = 8;
  config.clip_override = 0.5f;
  config.build_oov_table = false;
  EmbeddingSnapshot snap("v", e, config, 1);
  EXPECT_FLOAT_EQ(snap.clip(), 0.5f);
  std::vector<float> row(e.dim);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    snap.copy_row(w, row.data());
    for (std::size_t j = 0; j < e.dim; ++j) {
      EXPECT_LE(std::abs(row[j]), 0.5f + 1e-6f);
    }
  }
}

// ---- product-quantized snapshots ---------------------------------------

TEST(Snapshot, PqRowsMatchCompressPqReferenceAcrossShardCounts) {
  // Odd vocab, odd sub-dim (21/3 = 7): the snapshot's fused decode must
  // reproduce compress::pq_quantize's reconstruction bit-for-bit at every
  // shard count — same training entry point, same defaults, pure centroid
  // copies on both sides.
  const auto e = random_embedding(157, 21, 50);
  compress::PqConfig pc;
  pc.num_subvectors = 3;
  pc.bits = 4;
  const auto reference = compress::pq_quantize(e, pc);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    SnapshotConfig config;
    config.pq_m = 3;
    config.pq_bits = 4;
    config.num_shards = shards;
    config.build_oov_table = false;
    EmbeddingSnapshot snap("pq", e, config, 1);
    EXPECT_TRUE(snap.is_pq());
    EXPECT_EQ(snap.encoding(), "pq:3x4");
    std::vector<float> row(e.dim);
    for (std::size_t w = 0; w < e.vocab_size; ++w) {
      snap.copy_row(w, row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_EQ(row[j], reference.embedding.row(w)[j])
            << "shards=" << shards << " w=" << w << " j=" << j;
      }
    }
    // Fused batch decode and the matrix view agree with the row path.
    const std::vector<std::size_t> ids = {0, 5, 5, 156, 31};
    std::vector<float> batch(ids.size() * e.dim);
    snap.copy_rows(ids.data(), ids.size(), batch.data());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      snap.copy_row(ids[i], row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_EQ(batch[i * e.dim + j], row[j]) << "shards=" << shards;
      }
    }
    const la::Matrix mtx = snap.to_matrix(0);
    ASSERT_EQ(mtx.rows(), e.vocab_size);
    for (std::size_t w = 0; w < e.vocab_size; ++w) {
      snap.copy_row(w, row.data());
      for (std::size_t j = 0; j < e.dim; ++j) {
        EXPECT_EQ(mtx(w, j), static_cast<double>(row[j]))
            << "shards=" << shards;
      }
    }
  }
}

TEST(Snapshot, PqSharedCodebooksAreAFixedPointAcrossShardCounts) {
  // The deployment contract behind cluster scatter-gather: a second store
  // encoding the same rows against the FIRST store's codebooks (any shard
  // count) yields byte-identical codes, hence bit-identical decodes.
  const auto e = random_embedding(200, 24, 51);
  SnapshotConfig trained;
  trained.pq_m = 4;
  trained.pq_bits = 5;
  trained.num_shards = 1;
  trained.build_oov_table = false;
  EmbeddingSnapshot a("a", e, trained, 1);

  SnapshotConfig shared = trained;
  shared.num_shards = 5;
  shared.pq_codebooks_override = a.pq_codebook_vectors();
  EmbeddingSnapshot b("b", e, shared, 2);

  std::vector<float> ra(e.dim), rb(e.dim);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    a.copy_row(w, ra.data());
    b.copy_row(w, rb.data());
    for (std::size_t j = 0; j < e.dim; ++j) {
      EXPECT_EQ(ra[j], rb[j]) << "w=" << w << " j=" << j;
    }
    EXPECT_EQ(std::memcmp(a.pq_row_codes(w), b.pq_row_codes(w),
                          trained.pq_m), 0) << "w=" << w;
  }
}

TEST(Snapshot, PqStorageBeatsInt8ByAtLeast3x) {
  const auto e = random_embedding(1024, 32, 52);
  SnapshotConfig pq;
  pq.pq_m = 4;
  pq.pq_bits = 4;
  pq.build_oov_table = false;
  const EmbeddingSnapshot coded("pq", e, pq, 1);
  // Exact accounting: one byte per code per row, plus the shared flat
  // codebooks (m × 2^bits × sub_dim floats).
  EXPECT_EQ(coded.memory_bytes(),
            e.vocab_size * pq.pq_m + 4u * 16u * 8u * sizeof(float));

  SnapshotConfig q8;
  q8.bits = 8;
  q8.build_oov_table = false;
  const EmbeddingSnapshot int8("q8", e, q8, 2);
  EXPECT_GT(int8.memory_bytes(), 3u * coded.memory_bytes());
}

TEST(Snapshot, MemoryBytesIncludesOovTable) {
  // Regression pin: memory_bytes() used to count row storage only, so a
  // snapshot with an OOV table (4096 bucket vectors + counts) under-
  // reported its resident footprint by bucket_count·dim floats.
  const auto e = random_embedding(30, 8, 53);
  SnapshotConfig bare;
  bare.build_oov_table = false;
  SnapshotConfig with_oov;
  with_oov.build_oov_table = true;
  const std::size_t without = EmbeddingSnapshot("a", e, bare, 1).memory_bytes();
  const std::size_t with =
      EmbeddingSnapshot("b", e, with_oov, 2).memory_bytes();
  const std::size_t buckets = 1u << 12;
  EXPECT_EQ(with - without,
            buckets * e.dim * sizeof(float) + buckets * sizeof(std::uint32_t));
}

TEST(Snapshot, PqConfigValidationRejectsContradictions) {
  const auto e = random_embedding(64, 12, 54);
  SnapshotConfig bad;
  bad.build_oov_table = false;

  bad.pq_m = 4;
  bad.bits = 8;  // PQ replaces uniform quantization, not stacks on it
  EXPECT_THROW(EmbeddingSnapshot("v", e, bad, 1), CheckError);

  bad.bits = 32;
  bad.pq_m = 5;  // must divide dim=12
  EXPECT_THROW(EmbeddingSnapshot("v", e, bad, 1), CheckError);

  bad.pq_m = 4;
  bad.pq_bits = 9;  // codes are one byte each
  EXPECT_THROW(EmbeddingSnapshot("v", e, bad, 1), CheckError);

  SnapshotConfig orphan;
  orphan.build_oov_table = false;
  orphan.pq_codebooks_override = {{0.0f}};  // override without pq mode
  EXPECT_THROW(EmbeddingSnapshot("v", e, orphan, 1), CheckError);
}

TEST(Store, ClipOverrideRejectedUnlessUniformQuantized) {
  // A clip threshold on an fp32 or PQ snapshot is a config contradiction
  // (nothing ever clips); silently accepting it hid mis-rolled deploys.
  const auto e = random_embedding(64, 12, 55);
  SnapshotConfig fp32;
  fp32.clip_override = 0.5f;
  fp32.build_oov_table = false;
  EXPECT_THROW(EmbeddingSnapshot("v", e, fp32, 1), CheckError);

  SnapshotConfig pq = fp32;
  pq.pq_m = 4;
  EXPECT_THROW(EmbeddingSnapshot("v", e, pq, 1), CheckError);

  EmbeddingStore store;
  EXPECT_THROW(
      store.add_version("v", e, {.clip_override = 0.5f,
                                 .build_oov_table = false}),
      CheckError);
  store.add_version("v", e, {.bits = 8, .clip_override = 0.5f,
                             .build_oov_table = false});  // still fine
}

TEST(Snapshot, ToMatrixSubsamplesRows) {
  const auto e = random_embedding(20, 5, 5);
  SnapshotConfig config;
  config.build_oov_table = false;
  EmbeddingSnapshot snap("v", e, config, 1);
  const la::Matrix m = snap.to_matrix(7);
  ASSERT_EQ(m.rows(), 7u);
  ASSERT_EQ(m.cols(), 5u);
  for (std::size_t w = 0; w < 7; ++w) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(m(w, j), static_cast<double>(e.row(w)[j]));
    }
  }
}

TEST(Snapshot, OovSynthesisUsesSharedNgrams) {
  const auto e = random_embedding(50, 8, 6);
  SnapshotConfig config;  // build_oov_table defaults to true
  EmbeddingSnapshot snap("v", e, config, 1);
  ASSERT_TRUE(snap.has_oov_table());

  // "w00zz" is out of vocabulary but shares the "<w0"/"w00" prefix n-grams
  // with every in-vocab synthetic id, so synthesis must find support.
  std::vector<float> vec(e.dim, -1.0f);
  EXPECT_TRUE(snap.synthesize_oov("w00zz", vec.data()));
  double norm = 0.0;
  for (const float x : vec) norm += static_cast<double>(x) * x;
  EXPECT_GT(norm, 0.0);
}

TEST(Snapshot, OovSynthesisWithoutTableZeroesOutput) {
  const auto e = random_embedding(10, 4, 7);
  SnapshotConfig config;
  config.build_oov_table = false;
  EmbeddingSnapshot snap("v", e, config, 1);
  std::vector<float> vec(e.dim, -1.0f);
  EXPECT_FALSE(snap.synthesize_oov("w00zz", vec.data()));
  for (const float x : vec) EXPECT_EQ(x, 0.0f);
}

// ---- EmbeddingStore ----------------------------------------------------

TEST(Store, FirstVersionBecomesLive) {
  EmbeddingStore store;
  EXPECT_EQ(store.live(), nullptr);
  store.add_version("2017-01", random_embedding(10, 4, 8));
  store.add_version("2017-02", random_embedding(10, 4, 9));
  EXPECT_EQ(store.live_version(), "2017-01");
  EXPECT_EQ(store.versions().size(), 2u);
}

TEST(Store, SetLiveSwitchesAndRemoveLiveThrows) {
  EmbeddingStore store;
  store.add_version("a", random_embedding(10, 4, 10));
  store.add_version("b", random_embedding(10, 4, 11));
  store.set_live("b");
  EXPECT_EQ(store.live_version(), "b");
  EXPECT_THROW(store.remove_version("b"), CheckError);
  store.remove_version("a");
  EXPECT_FALSE(store.has_version("a"));
}

TEST(Store, VersionIdsWithCsvMetacharactersAreRejected) {
  EmbeddingStore store;
  const auto e = random_embedding(5, 2, 41);
  EXPECT_THROW(store.add_version("", e), CheckError);
  EXPECT_THROW(store.add_version("a,b", e), CheckError);
  EXPECT_THROW(store.add_version("a\nb", e), CheckError);
}

TEST(Lookup, OverlongNumericWordTakesOovPathNotWraparound) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(10, 4, 42));
  LookupService service(store);
  // 2^64 + 1 would wrap a naive accumulator to row 1; it must be OOV.
  const LookupResult r = service.lookup_words({"w18446744073709551617"});
  EXPECT_EQ(r.oov[0], 1);
}

TEST(Store, SetLiveUnknownVersionThrows) {
  EmbeddingStore store;
  store.add_version("a", random_embedding(5, 2, 12));
  EXPECT_THROW(store.set_live("nope"), CheckError);
}

TEST(Store, SnapshotEpochsAreUnique) {
  EmbeddingStore store;
  const auto s1 = store.add_version("a", random_embedding(5, 2, 13));
  const auto s2 = store.add_version("b", random_embedding(5, 2, 14));
  const auto s3 = store.add_version("a", random_embedding(5, 2, 15));
  EXPECT_NE(s1->epoch(), s2->epoch());
  EXPECT_NE(s2->epoch(), s3->epoch());
  EXPECT_NE(s1->epoch(), s3->epoch());
}

TEST(Store, RemoveVersionRefusesLiveNameAfterReregister) {
  EmbeddingStore store;
  store.add_version("v", random_embedding(5, 2, 48));  // live (old snapshot)
  store.add_version("v", random_embedding(5, 2, 49));  // same name, new snap
  // The registry entry is not the live snapshot, but erasing it would leave
  // the store serving a version id it no longer knows.
  EXPECT_THROW(store.remove_version("v"), CheckError);
  EXPECT_TRUE(store.has_version("v"));
}

TEST(Store, RemoveVersionRefusesPinnedSnapshotUntilReleased) {
  // Regression pin: remove_version only guarded the live version, so a
  // snapshot pinned outside the registry (canary pin_snapshot, AnnService
  // index cache, an in-flight reader) could lose its version mid-use.
  EmbeddingStore store;
  store.add_version("a", random_embedding(5, 2, 56));  // live
  store.add_version("b", random_embedding(5, 2, 57));
  SnapshotPtr pinned = store.snapshot("b");
  EXPECT_THROW(store.remove_version("b"), CheckError);
  EXPECT_TRUE(store.has_version("b"));  // refusal left the registry intact
  pinned.reset();
  store.remove_version("b");
  EXPECT_FALSE(store.has_version("b"));
}

TEST(Store, SetLiveSnapshotRefusesReplacedSnapshot) {
  EmbeddingStore store;
  const auto gated = store.add_version("v", random_embedding(5, 2, 45));
  // A concurrent ingest replaces "v" after the gate captured `gated`.
  store.add_version("v", random_embedding(5, 2, 46));
  EXPECT_FALSE(store.set_live_snapshot(gated));
  EXPECT_EQ(store.live()->epoch(), gated->epoch());  // live unchanged
  EXPECT_TRUE(store.set_live_snapshot(store.snapshot("v")));
}

TEST(Snapshot, NanEntriesQuantizeAsZeroNotUb) {
  embed::Embedding e = random_embedding(4, 4, 47);
  e.row(1)[2] = std::nanf("");
  SnapshotConfig config;
  config.bits = 8;
  config.build_oov_table = false;
  EmbeddingSnapshot snap("v", e, config, 1);
  std::vector<float> row(e.dim);
  snap.copy_row(1, row.data());
  // The NaN entry lands on the grid point nearest 0, not garbage.
  EXPECT_TRUE(std::isfinite(row[2]));
  EXPECT_NEAR(row[2], 0.0f, snap.clip() / 100.0f);
}

TEST(Store, LoadVersionFromDisk) {
  const auto e = random_embedding(12, 6, 16);
  const auto path = std::filesystem::temp_directory_path() /
                    "anchor_serve_store_test.txt";
  embed::save_text(e, path);
  EmbeddingStore store;
  const auto snap = store.load_version("disk", path);
  std::filesystem::remove(path);
  ASSERT_EQ(snap->vocab_size(), e.vocab_size);
  std::vector<float> row(e.dim);
  snap->copy_row(3, row.data());
  for (std::size_t j = 0; j < e.dim; ++j) {
    EXPECT_NEAR(row[j], e.row(3)[j], 1e-5f);
  }
}

TEST(Store, TotalMemoryCountsAllVersions) {
  EmbeddingStore store;
  store.add_version("a", random_embedding(16, 8, 17),
                    {.bits = 32, .build_oov_table = false});
  const std::size_t one = store.total_memory_bytes();
  store.add_version("b", random_embedding(16, 8, 18),
                    {.bits = 8, .build_oov_table = false});
  EXPECT_EQ(store.total_memory_bytes(), one + one / 4);
}

// ---- LookupService -----------------------------------------------------

TEST(Lookup, BatchedIdsMatchSnapshotRows) {
  EmbeddingStore store;
  const auto e = random_embedding(30, 8, 19);
  store.add_version("v1", e);
  LookupService service(store);

  const std::vector<std::size_t> ids = {0, 7, 7, 29, 13};
  const LookupResult result = service.lookup_ids(ids);
  EXPECT_EQ(result.version, "v1");
  ASSERT_EQ(result.dim, e.dim);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(result.oov[i], 0);
    for (std::size_t j = 0; j < e.dim; ++j) {
      EXPECT_FLOAT_EQ(result.row(i)[j], e.row(ids[i])[j]);
    }
  }
}

TEST(Lookup, OutOfRangeIdsAreZeroedAndFlagged) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(5, 4, 20));
  LookupService service(store);
  const LookupResult result = service.lookup_ids({2, 100});
  EXPECT_EQ(result.oov[0], 0);
  EXPECT_EQ(result.oov[1], 1);
  for (std::size_t j = 0; j < result.dim; ++j) {
    EXPECT_EQ(result.row(1)[j], 0.0f);
  }
  EXPECT_EQ(service.stats().snapshot().oov_fallbacks, 1u);
}

TEST(Lookup, EmptyStoreThrows) {
  EmbeddingStore store;
  LookupService service(store);
  EXPECT_THROW(service.lookup_ids({0}), CheckError);
}

TEST(Lookup, RepeatedRowsHitTheCache) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(20, 8, 21),
                    {.bits = 8, .build_oov_table = false});
  LookupService service(store);
  service.lookup_ids({3, 3, 3, 3});
  const auto stats = service.stats().snapshot();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_GT(stats.cache_hit_rate(), 0.7);
}

TEST(Lookup, CachedBatchEqualsUncachedBatch) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(60, 13, 28),
                    {.bits = 8, .build_oov_table = false});
  LookupService cached(store, {.cache_rows_per_shard = 4});
  LookupService uncached(store, {.cache_rows_per_shard = 0});
  Rng rng(29);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::size_t> ids(37);
    for (auto& id : ids) id = rng.index(60);
    ids[3] = ids[11];  // in-batch duplicate
    const auto a = cached.lookup_ids(ids);
    const auto b = uncached.lookup_ids(ids);
    ASSERT_EQ(a.vectors.size(), b.vectors.size());
    for (std::size_t i = 0; i < a.vectors.size(); ++i) {
      EXPECT_EQ(a.vectors[i], b.vectors[i]) << "round=" << round << " i=" << i;
    }
  }
  // The tiny 4-rows-per-shard capacity forces constant eviction/recycling
  // above; the cache must still have answered something.
  EXPECT_GT(cached.stats().snapshot().cache_hits, 0u);
}

TEST(Lookup, DuplicateRowsInOneBatchMissOnlyOnce) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(20, 8, 30),
                    {.bits = 8, .build_oov_table = false});
  LookupService service(store);
  const auto r = service.lookup_ids({7, 7, 2, 7, 2});
  const auto stats = service.stats().snapshot();
  EXPECT_EQ(stats.cache_misses, 2u);  // rows 7 and 2
  EXPECT_EQ(stats.cache_hits, 3u);    // the three repeats
  for (std::size_t j = 0; j < r.dim; ++j) {
    EXPECT_EQ(r.row(0)[j], r.row(1)[j]);
    EXPECT_EQ(r.row(0)[j], r.row(3)[j]);
    EXPECT_EQ(r.row(2)[j], r.row(4)[j]);
  }
}

TEST(Lookup, CacheDisabledRecordsNothing) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(20, 8, 22),
                    {.bits = 8, .build_oov_table = false});
  LookupService service(store, {.cache_rows_per_shard = 0});
  service.lookup_ids({3, 3, 3});
  const auto stats = service.stats().snapshot();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_EQ(stats.lookups, 3u);
}

TEST(Lookup, Fp32SnapshotsBypassTheCache) {
  EmbeddingStore store;
  store.add_version("v1", random_embedding(20, 8, 22));  // fp32
  LookupService service(store);  // caching enabled
  service.lookup_ids({3, 3, 3});
  const auto stats = service.stats().snapshot();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(Lookup, PqSnapshotsUseTheCacheAndStayBitIdentical) {
  // Unlike fp32 (raw memcpy, cache is pure overhead), PQ rows pay a real
  // decode on every miss, so they flow through the row cache — and hits
  // must be byte-identical to misses since both come from pq_decode_rows
  // over the same codes.
  EmbeddingStore store;
  store.add_version("v1", random_embedding(60, 16, 58),
                    {.pq_m = 4, .pq_bits = 4, .build_oov_table = false});
  LookupService cached(store, {.cache_rows_per_shard = 4});
  LookupService uncached(store, {.cache_rows_per_shard = 0});
  Rng rng(59);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::size_t> ids(31);
    for (auto& id : ids) id = rng.index(60);
    ids[2] = ids[17];  // in-batch duplicate
    const auto a = cached.lookup_ids(ids);
    const auto b = uncached.lookup_ids(ids);
    ASSERT_EQ(a.vectors.size(), b.vectors.size());
    for (std::size_t i = 0; i < a.vectors.size(); ++i) {
      EXPECT_EQ(a.vectors[i], b.vectors[i]) << "round=" << round << " i=" << i;
    }
  }
  const auto stats = cached.stats().snapshot();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

TEST(Lookup, HotSwapServesNewVersionNotStaleCache) {
  EmbeddingStore store;
  const auto e1 = random_embedding(10, 4, 23);
  const auto e2 = random_embedding(10, 4, 24);
  store.add_version("v1", e1);
  store.add_version("v2", e2);
  LookupService service(store);

  service.lookup_ids({5, 5});  // warm the cache with v1's row 5
  store.set_live("v2");
  const LookupResult result = service.lookup_ids({5});
  EXPECT_EQ(result.version, "v2");
  for (std::size_t j = 0; j < result.dim; ++j) {
    EXPECT_FLOAT_EQ(result.row(0)[j], e2.row(5)[j]);
  }
}

TEST(Lookup, WordsResolveInVocabAndSynthesizeOov) {
  EmbeddingStore store;
  const auto e = random_embedding(50, 8, 25);
  store.add_version("v1", e);  // OOV table on by default
  LookupService service(store);

  const LookupResult result = service.lookup_words({"w0003", "w00zz"});
  EXPECT_EQ(result.oov[0], 0);
  for (std::size_t j = 0; j < e.dim; ++j) {
    EXPECT_FLOAT_EQ(result.row(0)[j], e.row(3)[j]);
  }
  EXPECT_EQ(result.oov[1], 1);
  double norm = 0.0;
  for (std::size_t j = 0; j < e.dim; ++j) {
    norm += static_cast<double>(result.row(1)[j]) * result.row(1)[j];
  }
  EXPECT_GT(norm, 0.0);  // synthesized, not zeroed
  EXPECT_EQ(service.stats().snapshot().oov_fallbacks, 1u);
}

TEST(Lookup, ConcurrentLookupsDuringHotSwapStayConsistent) {
  EmbeddingStore store;
  const auto e1 = random_embedding(64, 8, 26);
  const auto e2 = random_embedding(64, 8, 27);
  store.add_version("v1", e1);
  store.add_version("v2", e2);
  LookupService service(store);

  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::size_t> ids(8);
        for (auto& id : ids) id = rng.index(64);
        const LookupResult r = service.lookup_ids(ids);
        const embed::Embedding& expect = r.version == "v1" ? e1 : e2;
        for (std::size_t i = 0; i < ids.size(); ++i) {
          for (std::size_t j = 0; j < r.dim; ++j) {
            if (r.row(i)[j] != expect.row(ids[i])[j]) {
              inconsistencies.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  // Flap the live version while the workers hammer lookups.
  for (int swap = 0; swap < 50; ++swap) {
    store.set_live(swap % 2 == 0 ? "v2" : "v1");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(service.stats().snapshot().lookups, 0u);
}

// ---- ServeStats --------------------------------------------------------

TEST(Stats, CountsAndPercentiles) {
  ServeStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.record_batch(10, static_cast<double>(i));
  }
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.lookups, 1000u);
  EXPECT_EQ(snap.batches, 100u);
  EXPECT_GT(snap.qps, 0.0);
  EXPECT_NEAR(snap.p50_latency_us, 50.0, 2.0);
  EXPECT_NEAR(snap.p99_latency_us, 99.0, 2.0);
  EXPECT_FALSE(snap.summary().empty());
}

TEST(Stats, ResetZeroesEverything) {
  ServeStats stats;
  stats.record_batch(5, 1.0);
  stats.record_cache_hit();
  stats.reset();
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.lookups, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.p99_latency_us, 0.0);
}

TEST(Stats, PercentilesWithFewSamples) {
  // Nearest-rank: with 3 samples p50 is the 2nd smallest and p99 the
  // maximum — the tail must not collapse onto the median. Quantiles come
  // from the log histogram, so each estimate is the containing bucket's
  // lower bound (≤ 1/32 below the true value). 10 and 20 sit exactly on
  // bucket boundaries; 1000 does not, so its estimate lands just below.
  ServeStats stats;
  stats.record_batch(1, 20.0);
  stats.record_batch(1, 1000.0);
  stats.record_batch(1, 10.0);
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.p50_latency_us, 20.0);
  EXPECT_NEAR(snap.p99_latency_us, 1000.0, 1000.0 / 32.0);
  EXPECT_LE(snap.p99_latency_us, 1000.0);

  ServeStats one;
  one.record_batch(1, 7.0);
  const StatsSnapshot single = one.snapshot();
  EXPECT_EQ(single.p50_latency_us, 7.0);
  EXPECT_EQ(single.p99_latency_us, 7.0);
}

TEST(Stats, QuantilesCoverAllSamplesSinceReset) {
  // The histogram has no ring to wrap: every sample since the last reset
  // counts, so two equal-sized epochs split the median exactly at the
  // lower level (nearest-rank: rank 4096 of 8192 falls in the 100 µs
  // bucket) while the tail reports the higher one. Both values sit
  // exactly on bucket boundaries, so the comparisons are exact.
  constexpr std::size_t kEpoch = 4096;
  ServeStats stats;
  for (std::size_t i = 0; i < kEpoch; ++i) stats.record_batch(1, 100.0);
  for (std::size_t i = 0; i < kEpoch; ++i) stats.record_batch(1, 200.0);
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.lookups, 2 * kEpoch);
  EXPECT_EQ(snap.latency.count, 2 * kEpoch);
  EXPECT_EQ(snap.p50_latency_us, 100.0);
  EXPECT_EQ(snap.p99_latency_us, 200.0);

  // More low samples drag the median down but never produce a value
  // outside the recorded range.
  for (std::size_t i = 0; i < kEpoch; ++i) stats.record_batch(1, 50.0);
  const StatsSnapshot mixed = stats.snapshot();
  EXPECT_GE(mixed.p50_latency_us, 50.0);
  EXPECT_LE(mixed.p99_latency_us, 200.0);
}

TEST(Stats, SnapshotNeverMixesSamplesAcrossReset) {
  // reset() zeroes every histogram bucket in place. After recording many
  // samples of a marker value, a reset plus a handful of new samples must
  // yield percentiles computed from the new samples ONLY: any 1000 µs
  // marker surfacing would mean a pre-reset sample leaked into the
  // post-reset window.
  constexpr std::size_t kFill = 4096;
  ServeStats stats;
  for (std::size_t i = 0; i < kFill; ++i) stats.record_batch(1, 1000.0);
  stats.reset();

  // Zero post-reset samples: empty window, not the old ring.
  EXPECT_EQ(stats.snapshot().p99_latency_us, 0.0);

  stats.record_batch(1, 7.0);
  stats.record_batch(1, 5.0);
  stats.record_batch(1, 6.0);
  const StatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.batches, 3u);
  EXPECT_EQ(snap.p50_latency_us, 6.0);
  EXPECT_EQ(snap.p99_latency_us, 7.0);

  // Across several generations the filter keeps holding.
  stats.reset();
  stats.record_batch(1, 3.0);
  const StatsSnapshot again = stats.snapshot();
  EXPECT_EQ(again.p50_latency_us, 3.0);
  EXPECT_EQ(again.p99_latency_us, 3.0);
}

TEST(Stats, ResetUnderConcurrentRecordingStaysCoherent) {
  // Counters may land on either side of a concurrent reset (documented),
  // but every snapshot must stay internally sane: no torn counts beyond
  // the recorded total, percentiles inside the recorded value range. No
  // sleeps — threads just hammer; ASan/TSan runs give the race coverage.
  ServeStats stats;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        stats.record_batch(2, 5.0 + (i % 3));
        stats.record_cache_hit();
        stats.record_oov();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int r = 0; r < 100; ++r) {
    stats.reset();
    const StatsSnapshot snap = stats.snapshot();
    EXPECT_LE(snap.lookups, 2ull * kThreads * kPerThread);
    EXPECT_LE(snap.batches, 1ull * kThreads * kPerThread);
    if (snap.batches > 0) {
      EXPECT_GE(snap.p99_latency_us, 0.0);
      EXPECT_LE(snap.p99_latency_us, 8.0);
    }
  }
  for (auto& t : recorders) t.join();
  const StatsSnapshot final_snap = stats.snapshot();
  EXPECT_LE(final_snap.lookups, 2ull * kThreads * kPerThread);
  stats.reset();
  EXPECT_EQ(stats.snapshot().batches, 0u);
}

// ---- DeploymentGate ----------------------------------------------------

TEST(Gate, IdenticalSnapshotsScoreNearZeroAndAdmit) {
  const auto e = random_embedding(120, 8, 28);
  EmbeddingStore store;
  store.add_version("old", e);
  store.add_version("new", e);
  GateConfig config;
  config.knn_queries = 64;
  DeploymentGate gate(config);
  const GateReport report =
      gate.evaluate(*store.snapshot("old"), *store.snapshot("new"));
  EXPECT_NEAR(report.eis, 0.0, 1e-6);
  EXPECT_NEAR(report.one_minus_knn, 0.0, 1e-9);
  EXPECT_EQ(report.decision, GateDecision::kAdmit);
}

TEST(Gate, EvaluateFromPoolWorkerDoesNotDeadlockAndMatches) {
  // A canarying job may run evaluate() *on* the shared pool; with a single
  // worker the overlap path (submit + get) would block that worker on a
  // task queued behind it forever, so the gate must detect it and fall
  // back to sequential — with an identical report.
  const auto e = random_embedding(100, 8, 41);
  EmbeddingStore store;
  store.add_version("old", e, {.build_oov_table = false});
  store.add_version("new", perturbed(e, 0.05, 42), {.build_oov_table = false});
  GateConfig config;
  config.knn_queries = 32;
  DeploymentGate gate(config);
  const GateReport direct =
      gate.evaluate(*store.snapshot("old"), *store.snapshot("new"));

  util::set_global_pool_threads(1);
  auto fut = util::global_pool().submit([&] {
    return gate.evaluate(*store.snapshot("old"), *store.snapshot("new"));
  });
  const GateReport nested = fut.get();
  util::set_global_pool_threads(0);
  EXPECT_EQ(nested.eis, direct.eis);
  EXPECT_EQ(nested.one_minus_knn, direct.one_minus_knn);
}

TEST(Gate, UnrelatedSnapshotScoresHigherThanPerturbed) {
  const auto e = random_embedding(120, 8, 29);
  EmbeddingStore store;
  store.add_version("old", e);
  store.add_version("minor", perturbed(e, 0.05, 30));
  store.add_version("alien", random_embedding(120, 8, 31));
  GateConfig config;
  config.knn_queries = 64;
  DeploymentGate gate(config);
  const auto minor =
      gate.evaluate(*store.snapshot("old"), *store.snapshot("minor"));
  const auto alien =
      gate.evaluate(*store.snapshot("old"), *store.snapshot("alien"));
  EXPECT_LT(minor.eis, alien.eis);
  EXPECT_LT(minor.one_minus_knn, alien.one_minus_knn);
}

TEST(Gate, TryPromoteAdmitsLowAndRejectsHighInstability) {
  const auto e = random_embedding(120, 8, 32);
  EmbeddingStore store;
  store.add_version("old", e);
  store.add_version("minor", perturbed(e, 0.05, 33));
  store.add_version("alien", random_embedding(120, 8, 34));

  // Self-calibrate the thresholds between the two candidates' measured
  // values, the way an operator would pin them from rollout history.
  GateConfig probe;
  probe.knn_queries = 64;
  const auto lo = DeploymentGate(probe).evaluate(*store.snapshot("old"),
                                                 *store.snapshot("minor"));
  const auto hi = DeploymentGate(probe).evaluate(*store.snapshot("old"),
                                                 *store.snapshot("alien"));
  ASSERT_LT(lo.eis, hi.eis);

  GateConfig config = probe;
  config.eis_warn = config.eis_reject = 0.5 * (lo.eis + hi.eis);
  config.knn_warn = config.knn_reject =
      std::max(1.001 * hi.one_minus_knn, 1e-3);
  DeploymentGate gate(config);

  const GateReport rejected = gate.try_promote(store, "alien");
  EXPECT_EQ(rejected.decision, GateDecision::kReject);
  EXPECT_FALSE(rejected.promoted);
  EXPECT_EQ(store.live_version(), "old");

  const GateReport admitted = gate.try_promote(store, "minor");
  EXPECT_NE(admitted.decision, GateDecision::kReject);
  EXPECT_TRUE(admitted.promoted);
  EXPECT_EQ(store.live_version(), "minor");
}

TEST(Gate, NoIncumbentAdmitsUnconditionally) {
  EmbeddingStore store;
  LookupService service(store);
  store.add_version("first", random_embedding(20, 4, 35));
  // add_version already made it live; promoting the live version again is a
  // no-op admit.
  DeploymentGate gate;
  const GateReport report = gate.try_promote(store, "first");
  EXPECT_EQ(report.decision, GateDecision::kAdmit);
  EXPECT_TRUE(report.promoted);
}

TEST(Gate, ReregisteredLiveVersionNameIsStillGated) {
  const auto e = random_embedding(120, 8, 43);
  EmbeddingStore store;
  store.add_version("v1", e);  // live
  // A botched refresh re-registered under the SAME version id must not
  // bypass the gate via the name shortcut: live_ still points at the old
  // snapshot, so the comparison is identity, not string equality.
  store.add_version("v1", random_embedding(120, 8, 44));
  GateConfig config;
  config.knn_queries = 64;
  config.eis_reject = 1e-6;  // anything non-identical rejects
  config.eis_warn = 1e-6;
  const GateReport report =
      DeploymentGate(config).try_promote(store, "v1");
  EXPECT_EQ(report.decision, GateDecision::kReject);
  EXPECT_FALSE(report.promoted);
  // The incumbent snapshot keeps serving.
  EXPECT_EQ(store.live()->epoch(), 1u);
}

TEST(Gate, UnknownCandidateThrows) {
  EmbeddingStore store;
  store.add_version("a", random_embedding(10, 4, 36));
  DeploymentGate gate;
  EXPECT_THROW(gate.try_promote(store, "ghost"), CheckError);
}

TEST(Gate, DifferingDimensionsAreComparable) {
  EmbeddingStore store;
  store.add_version("d8", random_embedding(100, 8, 37));
  store.add_version("d16", random_embedding(100, 16, 38));
  GateConfig config;
  config.knn_queries = 32;
  DeploymentGate gate(config);
  const auto report =
      gate.evaluate(*store.snapshot("d8"), *store.snapshot("d16"));
  EXPECT_GT(report.eis, 0.0);
  EXPECT_EQ(report.rows_compared, 100u);
}

TEST(Gate, AuditLogRoundTrips) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("anchor_serve_audit_" + std::to_string(::getpid()) +
                     ".csv");
  std::filesystem::remove(path);

  const auto e = random_embedding(80, 6, 39);
  EmbeddingStore store;
  store.add_version("old", e);
  store.add_version("new", perturbed(e, 0.05, 40));
  GateConfig config;
  config.knn_queries = 32;
  config.audit_log = path;
  DeploymentGate gate(config);
  gate.try_promote(store, "new");
  gate.try_promote(store, "new");  // already-live no-op also audited

  // A row with an empty reason (the struct default) must also round-trip:
  // getline drops the field after a trailing comma.
  GateReport bare;
  bare.old_version = "x";
  bare.new_version = "y";
  append_audit_csv(path, bare);

  const auto rows = read_audit_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].reason, "");
  EXPECT_EQ(rows[0].old_version, "old");
  EXPECT_EQ(rows[0].new_version, "new");
  EXPECT_TRUE(rows[0].promoted);
  EXPECT_GE(rows[0].eis, 0.0);
  EXPECT_EQ(rows[1].reason, "candidate is already live");
}

}  // namespace
}  // namespace anchor::serve
