// AsyncLookupService (serve/batcher): coalescing correctness, flush
// policy, drain-on-destruction, and error propagation. Timing-dependent
// behavior is asserted only in directions that cannot flake (e.g. "at
// least ceil(n/max) batches"), never via sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/demo_store.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::serve {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

constexpr std::size_t kVocab = 500;
constexpr std::size_t kDim = 24;

class AsyncLookupTest : public ::testing::Test {
 protected:
  AsyncLookupTest() {
    SnapshotConfig q8;
    q8.bits = 8;
    store_.add_version("live", random_embedding(kVocab, kDim, 11), q8);
  }

  EmbeddingStore store_;
};

TEST_F(AsyncLookupTest, ConcurrentSingleKeyLookupsMatchDirectBatch) {
  LookupService service(store_);
  AsyncLookupService async(service);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      LookupService check(store_);  // independent direct path
      for (int i = 0; i < kPerThread; ++i) {
        // Mix of in-vocab and OOV ids.
        const std::size_t id = rng.index(kVocab + 32);
        ResultSlice slice = async.lookup_id(id).get();
        const LookupResult direct = check.lookup_ids({id});
        if (slice.size() != 1 || slice.dim() != kDim ||
            slice.oov(0) != (direct.oov[0] != 0) ||
            slice.version() != direct.version) {
          ++mismatches;
          continue;
        }
        for (std::size_t d = 0; d < kDim; ++d) {
          if (slice.row(0)[d] != direct.row(0)[d]) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  const StatsSnapshot stats = async.stats().snapshot();
  EXPECT_EQ(stats.lookups, kThreads * kPerThread);
  // Every flush records one batch; coalescing can only reduce the count.
  EXPECT_LE(stats.batches, stats.lookups);
}

TEST_F(AsyncLookupTest, PipelinedRequestsCoalesceIntoSharedBatches) {
  LookupService service(store_);
  BatcherConfig config;
  config.max_batch_size = 32;
  config.max_wait_us = 5000;  // generous: flush on size, not age
  AsyncLookupService async(service, config);

  // Issue a window of single-key requests without draining, so the
  // combiner sees a deep queue and can fill batches.
  constexpr std::size_t kRequests = 256;
  std::vector<AsyncLookupService::SliceFuture> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(async.lookup_id(i % kVocab));
  }
  std::size_t shared = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    ResultSlice slice = futures[i].get();
    ASSERT_EQ(slice.size(), 1u);
    EXPECT_EQ(slice.row(0)[0],
              service.lookup_ids({i % kVocab}).row(0)[0]);
    // A slice whose backing batch holds more rows than the request proves
    // zero-copy sharing with co-batched waiters.
    if (slice.batch()->size() > 1) ++shared;
  }
  EXPECT_GT(shared, 0u);
  const StatsSnapshot stats = async.stats().snapshot();
  EXPECT_EQ(stats.lookups, kRequests);
  // max_batch_size caps each flush, so at least ceil(256/32) batches; the
  // exact count depends on arrival timing.
  EXPECT_GE(stats.batches, kRequests / config.max_batch_size);
  EXPECT_LT(stats.batches, kRequests);
}

TEST_F(AsyncLookupTest, SmallBatchAndWordRequestsInterleave) {
  LookupService service(store_);
  AsyncLookupService async(service);

  auto ids_fut = async.lookup_ids({0, 5, kVocab + 7});
  auto word_fut = async.lookup_word("w3");
  auto words_fut = async.lookup_words({"w1", "definitely-oov"});

  const ResultSlice ids = ids_fut.get();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_FALSE(ids.oov(0));
  EXPECT_TRUE(ids.oov(2));
  const LookupResult direct = service.lookup_ids({0, 5});
  for (std::size_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(ids.row(0)[d], direct.row(0)[d]);
    EXPECT_EQ(ids.row(1)[d], direct.row(1)[d]);
  }

  const ResultSlice word = word_fut.get();
  ASSERT_EQ(word.size(), 1u);
  EXPECT_FALSE(word.oov(0));
  const LookupResult word_direct = service.lookup_words({"w3"});
  for (std::size_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(word.row(0)[d], word_direct.row(0)[d]);
  }

  const ResultSlice words = words_fut.get();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_FALSE(words.oov(0));
  EXPECT_TRUE(words.oov(1));
}

TEST_F(AsyncLookupTest, EmptyRequestResolvesToEmptySlice) {
  LookupService service(store_);
  AsyncLookupService async(service);
  const ResultSlice slice = async.lookup_ids({}).get();
  EXPECT_EQ(slice.size(), 0u);
}

TEST_F(AsyncLookupTest, DestructorDrainsQueuedGeneralRequests) {
  // General (promise) path only: std::futures outlive the service and
  // must still complete because destruction drains the dispatcher queue.
  LookupService service(store_);
  BatcherConfig config;
  config.max_batch_size = 4096;           // nothing flushes on size...
  config.max_wait_us = 60 * 1000 * 1000;  // ...or on age
  std::vector<std::future<ResultSlice>> futures;
  {
    AsyncLookupService async(service, config);
    for (std::size_t i = 0; i < 64; ++i) {
      futures.push_back(async.lookup_ids({i}));
    }
    // Destruction must flush the queue: every future still completes.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ResultSlice slice = futures[i].get();
    ASSERT_EQ(slice.size(), 1u);
    EXPECT_FALSE(slice.oov(0));
    EXPECT_EQ(slice.row(0)[0], service.lookup_ids({i}).row(0)[0]);
  }
}

TEST_F(AsyncLookupTest, UnconsumedSliceFuturesAreConsumedByTheirDtor) {
  LookupService service(store_);
  AsyncLookupService async(service);
  {
    // Abandoned fast-path futures: their destructors must consume the
    // ring slots (blocking until executed) so the ring never leaks slots.
    std::vector<AsyncLookupService::SliceFuture> abandoned;
    for (std::size_t i = 0; i < 100; ++i) {
      abandoned.push_back(async.lookup_id(i % kVocab));
    }
  }
  // The ring is quiescent again: a fresh request still works.
  ResultSlice slice = async.lookup_id(3).get();
  EXPECT_EQ(slice.size(), 1u);
  EXPECT_EQ(async.pending(), 0u);
}

TEST_F(AsyncLookupTest, SlicesOutliveTheServiceSafely) {
  LookupService service(store_);
  ResultSlice kept;
  {
    AsyncLookupService async(service);
    kept = async.lookup_id(42).get();
  }
  // The backing buffers are freelist-owned, so the slice stays valid
  // after the async service is gone.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept.row(0)[0], service.lookup_ids({42}).row(0)[0]);
}

TEST(AsyncLookupErrors, LookupAgainstEmptyStoreRejectsTheFuture) {
  EmbeddingStore empty;
  LookupService service(empty);
  AsyncLookupService async(service);
  auto fut = async.lookup_id(0);
  EXPECT_THROW(fut.get(), std::exception);
  // The dispatcher must survive a failed batch and keep serving: another
  // request still completes (with the same error).
  auto fut2 = async.lookup_id(1);
  EXPECT_THROW(fut2.get(), std::exception);
}

TEST(AsyncLookupExec, InlineAndPoolExecutionAgree) {
  EmbeddingStore store;
  SnapshotConfig q4;
  q4.bits = 4;
  store.add_version("live", random_embedding(kVocab, kDim, 21), q4);
  LookupService service(store);

  for (const auto exec :
       {BatcherConfig::Exec::kInline, BatcherConfig::Exec::kPool}) {
    BatcherConfig config;
    config.exec = exec;
    AsyncLookupService async(service, config);
    for (std::size_t id : {std::size_t{0}, std::size_t{17}, kVocab - 1}) {
      ResultSlice slice = async.lookup_id(id).get();
      const LookupResult direct = service.lookup_ids({id});
      ASSERT_EQ(slice.size(), 1u);
      for (std::size_t d = 0; d < kDim; ++d) {
        EXPECT_EQ(slice.row(0)[d], direct.row(0)[d]);
      }
    }
  }
}

// The synthetic demo store underpins the RPC example and the daemon's
// --demo mode: its gate outcomes under DEFAULT thresholds are a contract,
// so pin them here rather than discovering drift in a smoke script.
TEST(DemoStore, DefaultGateAdmitsRoutineAndRejectsBotched) {
  EmbeddingStore store;
  DemoStoreConfig config;
  config.vocab = 600;  // smaller than the default: keep the suite fast
  config.dim = 32;
  add_demo_versions(store, config);
  EXPECT_EQ(store.live_version(), "v1");

  DeploymentGate gate;  // default thresholds — what the daemon ships with
  const GateReport bad = gate.try_promote(store, "v3-bad");
  EXPECT_EQ(bad.decision, GateDecision::kReject);
  EXPECT_FALSE(bad.promoted);
  EXPECT_EQ(store.live_version(), "v1");

  const GateReport good = gate.try_promote(store, "v2-good");
  EXPECT_EQ(good.decision, GateDecision::kAdmit);
  EXPECT_TRUE(good.promoted);
  EXPECT_EQ(store.live_version(), "v2-good");
}

}  // namespace
}  // namespace anchor::serve
