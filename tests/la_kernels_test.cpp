// Parity and determinism suite for the la/kernels SIMD layer.
//
// Three invariants hold the kernel substrate together:
//   1. the AVX2 paths agree with the scalar references to 1e-6 on random
//      inputs of every alignment (reductions reassociate; axpy and
//      dequantize_rows are bit-exact),
//   2. fused dequantize_rows reproduces the per-code compress grid exactly
//      for all of 1/2/4/8 bits, and
//   3. the parallel measures are bit-for-bit identical at any thread count.
#include "la/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/quantize.hpp"
#include "core/measures.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace anchor {
namespace {

namespace k = la::kernels;

// Sizes straddling every SIMD boundary: sub-lane, lane, unroll width, and
// non-multiples of 4/8/16.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 17,
                              31, 32, 33, 100, 255, 300, 301};

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

TEST(Kernels, DotMatchesScalar) {
  Rng rng(1);
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, rng);
    const auto b = random_vec(n, rng);
    EXPECT_NEAR(k::dot(a.data(), b.data(), n),
                k::scalar::dot(a.data(), b.data(), n), 1e-6)
        << "n=" << n;
  }
}

TEST(Kernels, AxpyIsBitExactWithScalar) {
  Rng rng(2);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec(n, rng);
    auto y1 = random_vec(n, rng);
    auto y2 = y1;
    k::axpy(0.37, x.data(), y1.data(), n);
    k::scalar::axpy(0.37, x.data(), y2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y1[i], y2[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, RotIsBitExactWithScalar) {
  Rng rng(21);
  const double c = std::cos(0.7);
  const double s = std::sin(0.7);
  for (const std::size_t n : kSizes) {
    auto x1 = random_vec(n, rng);
    auto y1 = random_vec(n, rng);
    auto x2 = x1;
    auto y2 = y1;
    k::rot(x1.data(), y1.data(), n, c, s);
    k::scalar::rot(x2.data(), y2.data(), n, c, s);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x1[i], x2[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(y1[i], y2[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, L2NormalizeMatchesScalar) {
  Rng rng(3);
  for (const std::size_t n : kSizes) {
    auto x1 = random_vec(n, rng);
    auto x2 = x1;
    const double n1 = k::l2_normalize(x1.data(), n);
    const double n2 = k::scalar::l2_normalize(x2.data(), n);
    EXPECT_NEAR(n1, n2, 1e-6) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x1[i], x2[i], 1e-6) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, L2NormalizeLeavesZeroVectorsUntouched) {
  std::vector<double> z(13, 0.0);
  EXPECT_EQ(k::l2_normalize(z.data(), z.size()), 0.0);
  for (const double v : z) EXPECT_EQ(v, 0.0);
}

TEST(Kernels, MatvecMatchesScalar) {
  Rng rng(4);
  for (const std::size_t cols : {1u, 5u, 8u, 13u, 64u, 301u}) {
    const std::size_t rows = 17;  // odd: exercises the 2-row + tail split
    const auto m = random_vec(rows * cols, rng);
    const auto x = random_vec(cols, rng);
    std::vector<double> y1(rows), y2(rows);
    k::matvec_rowmajor(m.data(), rows, cols, x.data(), y1.data());
    k::scalar::matvec_rowmajor(m.data(), rows, cols, x.data(), y2.data());
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_NEAR(y1[i], y2[i], 1e-6) << "cols=" << cols << " i=" << i;
    }
  }
}

TEST(Kernels, GemmNtMatchesScalar) {
  Rng rng(5);
  // Shapes crossing the 32-row A tile and 4-row B block boundaries.
  const struct { std::size_t ar, br, c; } shapes[] = {
      {1, 1, 1}, {3, 5, 7}, {4, 4, 8}, {33, 9, 13}, {65, 34, 31}, {40, 41, 300}};
  for (const auto& s : shapes) {
    const auto a = random_vec(s.ar * s.c, rng);
    const auto b = random_vec(s.br * s.c, rng);
    std::vector<double> c1(s.ar * s.br), c2(s.ar * s.br);
    k::gemm_nt(a.data(), s.ar, b.data(), s.br, s.c, c1.data());
    k::scalar::gemm_nt(a.data(), s.ar, b.data(), s.br, s.c, c2.data());
    for (std::size_t i = 0; i < c1.size(); ++i) {
      EXPECT_NEAR(c1[i], c2[i], 1e-6)
          << s.ar << "x" << s.br << "x" << s.c << " i=" << i;
    }
  }
}

TEST(Kernels, ForcedScalarDispatchStillWorks) {
  const bool was = k::simd_enabled();
  k::set_simd_enabled(false);
  EXPECT_STREQ(k::active_isa(), "scalar");
  Rng rng(6);
  const auto a = random_vec(37, rng);
  const auto b = random_vec(37, rng);
  EXPECT_EQ(k::dot(a.data(), b.data(), 37),
            k::scalar::dot(a.data(), b.data(), 37));
  k::set_simd_enabled(was);
  EXPECT_EQ(k::simd_enabled(), was && k::simd_available());
}

// Packs `values` the way EmbeddingSnapshot::encode_shard_row does:
// little-endian codes within each byte, rows padded to whole bytes.
std::vector<std::uint8_t> pack_rows(const std::vector<float>& values,
                                    std::size_t rows, std::size_t dim,
                                    int bits, float clip) {
  const std::size_t stride = k::packed_row_bytes(dim, bits);
  const std::size_t per = 8u / static_cast<std::size_t>(bits);
  std::vector<std::uint8_t> packed(rows * stride, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < dim; ++j) {
      const std::uint32_t code =
          compress::quantize_code(values[r * dim + j], clip, bits);
      packed[r * stride + j / per] |= static_cast<std::uint8_t>(
          code << ((j % per) * static_cast<std::size_t>(bits)));
    }
  }
  return packed;
}

TEST(Kernels, DequantizeRowsMatchesPerCodePathForAllBitWidths) {
  Rng rng(7);
  const float clip = 0.9f;
  for (const int bits : {1, 2, 4, 8}) {
    // dim 13 exercises the sub-byte tail and the non-multiple-of-8 SIMD tail.
    for (const std::size_t dim : {1u, 7u, 8u, 13u, 64u, 300u}) {
      const std::size_t rows = 5;
      std::vector<float> values(rows * dim);
      for (auto& v : values) v = static_cast<float>(rng.normal(0.0, 0.5));
      const auto packed = pack_rows(values, rows, dim, bits, clip);

      std::vector<float> fused(rows * dim), scalar(rows * dim);
      k::dequantize_rows(packed.data(), rows, dim, bits, clip, fused.data());
      k::scalar::dequantize_rows(packed.data(), rows, dim, bits, clip,
                                 scalar.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        // Bit-exact round trip: fused == scalar == the per-code grid.
        const std::uint32_t code =
            compress::quantize_code(values[i], clip, bits);
        const float reference = compress::dequantize_code(code, clip, bits);
        EXPECT_EQ(fused[i], reference)
            << "bits=" << bits << " dim=" << dim << " i=" << i;
        EXPECT_EQ(fused[i], scalar[i])
            << "bits=" << bits << " dim=" << dim << " i=" << i;
      }
    }
  }
}

la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  for (auto& x : m.storage()) x = rng.normal(0.0, 1.0);
  return m;
}

TEST(Kernels, ParallelKnnMeasureIsBitForBitDeterministic) {
  const la::Matrix x = random_matrix(120, 24, 11);
  la::Matrix xt = x;
  Rng noise(12);
  for (auto& v : xt.storage()) v += 0.05 * noise.normal(0.0, 1.0);

  util::set_global_pool_threads(1);
  const double single = core::knn_measure(x, xt, 5, 60, 42);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::set_global_pool_threads(threads);
    const double parallel = core::knn_measure(x, xt, 5, 60, 42);
    EXPECT_EQ(single, parallel) << "threads=" << threads;
  }
  util::set_global_pool_threads(0);  // restore default sizing
}

TEST(Kernels, ParallelSemanticDisplacementIsBitForBitDeterministic) {
  const la::Matrix x = random_matrix(80, 16, 13);
  la::Matrix xt = x;
  Rng noise(14);
  for (auto& v : xt.storage()) v += 0.1 * noise.normal(0.0, 1.0);

  util::set_global_pool_threads(1);
  const double single = core::semantic_displacement(x, xt);
  util::set_global_pool_threads(4);
  EXPECT_EQ(single, core::semantic_displacement(x, xt));
  util::set_global_pool_threads(0);
}

TEST(Kernels, AdcScanIsBitExactWithScalar) {
  // The IVF-PQ merge contract leans on adc_scan being bit-exact between
  // the AVX2 gather path and the scalar reference: shards and the single-
  // process oracle must produce identical ADC distances. Sweep counts, m,
  // and ksub across SIMD boundaries (odd counts exercise the scalar tail,
  // ksub 3 a non-power-of-two LUT stride).
  Rng rng(41);
  for (const std::size_t count : {1u, 2u, 7u, 8u, 9u, 16u, 31u, 100u}) {
    for (const std::size_t m : {1u, 2u, 3u, 8u, 13u}) {
      for (const std::size_t ksub : {2u, 3u, 16u, 256u}) {
        std::vector<std::uint8_t> codes(count * m);
        for (auto& c : codes) {
          c = static_cast<std::uint8_t>(rng.index(ksub));
        }
        std::vector<float> lut(m * ksub);
        for (auto& v : lut) v = static_cast<float>(rng.normal(0.0, 1.0));
        std::vector<float> simd(count, -1.0f), ref(count, -2.0f);
        k::adc_scan(codes.data(), count, m, ksub, lut.data(), simd.data());
        k::scalar::adc_scan(codes.data(), count, m, ksub, lut.data(),
                            ref.data());
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(simd[i], ref[i])
              << "count=" << count << " m=" << m << " ksub=" << ksub
              << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, PqDecodeRowsIsBitExactWithScalar) {
  // The PQ snapshot merge contract (shared-codebook shards decode the same
  // bytes to the same floats) leans on pq_decode_rows being bit-exact
  // between the AVX2 and scalar paths. Pure centroid copies make that hold
  // by construction; this pins it. Sub-dims straddle the 8- and 4-lane
  // boundaries (odd sub-dims exercise the scalar tail).
  Rng rng(59);
  for (const std::size_t rows : {1u, 2u, 7u, 16u, 33u}) {
    for (const std::size_t m : {1u, 2u, 3u, 8u}) {
      for (const std::size_t sub_dim : {1u, 3u, 4u, 7u, 8u, 11u, 16u, 19u}) {
        const std::size_t ksub = 16;
        std::vector<std::uint8_t> codes(rows * m);
        for (auto& c : codes) c = static_cast<std::uint8_t>(rng.index(ksub));
        std::vector<float> books(m * ksub * sub_dim);
        for (auto& v : books) v = static_cast<float>(rng.normal(0.0, 1.0));
        std::vector<float> simd(rows * m * sub_dim, -1.0f);
        std::vector<float> ref(rows * m * sub_dim, -2.0f);
        k::pq_decode_rows(codes.data(), rows, m, sub_dim, ksub, books.data(),
                          simd.data());
        k::scalar::pq_decode_rows(codes.data(), rows, m, sub_dim, ksub,
                                  books.data(), ref.data());
        for (std::size_t i = 0; i < simd.size(); ++i) {
          EXPECT_EQ(simd[i], ref[i]) << "rows=" << rows << " m=" << m
                                     << " sub_dim=" << sub_dim << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, L2SqF32MatchesScalar) {
  // Reduction: FMA reassociation allowed, so tolerance not bit-equality.
  Rng rng(43);
  for (const std::size_t n : kSizes) {
    std::vector<float> a(n), b(n);
    for (auto& x : a) x = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& x : b) x = static_cast<float>(rng.normal(0.0, 1.0));
    const float simd = k::l2_sq_f32(a.data(), b.data(), n);
    const float ref = k::scalar::l2_sq_f32(a.data(), b.data(), n);
    EXPECT_NEAR(simd, ref, 1e-5 * (1.0 + std::abs(ref))) << "n=" << n;
  }
}

TEST(Kernels, PrenormalizedKnnEqualsPlainKnn) {
  const la::Matrix x = random_matrix(60, 12, 15);
  const la::Matrix xt = random_matrix(60, 12, 16);
  const double plain = core::knn_measure(x, xt, 3, 40, 7);
  const double pre = core::knn_measure_normalized(
      core::normalize_rows_l2(x), core::normalize_rows_l2(xt), 3, 40, 7);
  EXPECT_EQ(plain, pre);
}

}  // namespace
}  // namespace anchor
