// Tests for the word2vec-text embedding IO: round-trips, format structure,
// and loud failure on malformed files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "embed/io.hpp"
#include "util/rng.hpp"

namespace anchor::embed {
namespace {

namespace fs = std::filesystem;

class EmbedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anchor_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const std::string& name) const { return dir_ / name; }

  static Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                    std::uint64_t seed) {
    Rng rng(seed);
    Embedding e(vocab, dim);
    for (auto& x : e.data) x = static_cast<float>(rng.normal());
    return e;
  }

  fs::path dir_;
};

TEST_F(EmbedIoTest, RoundTripPreservesValuesToTextPrecision) {
  const Embedding original = random_embedding(30, 6, 1);
  save_text(original, path("e.txt"));
  const Embedding loaded = load_text(path("e.txt"));
  ASSERT_EQ(loaded.vocab_size, 30u);
  ASSERT_EQ(loaded.dim, 6u);
  for (std::size_t i = 0; i < original.data.size(); ++i) {
    EXPECT_NEAR(loaded.data[i], original.data[i],
                1e-6f * std::abs(original.data[i]) + 1e-7f);
  }
}

TEST_F(EmbedIoTest, HeaderMatchesWord2vecConvention) {
  save_text(random_embedding(5, 3, 2), path("e.txt"));
  std::ifstream in(path("e.txt"));
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "5 3");
  std::string word;
  in >> word;
  EXPECT_EQ(word, "w0000");
}

TEST_F(EmbedIoTest, LoadAcceptsPermutedRows) {
  // Word lines in any order must land at their id.
  std::ofstream out(path("p.txt"));
  out << "3 2\n"
      << "w0002 5 6\n"
      << "w0000 1 2\n"
      << "w0001 3 4\n";
  out.close();
  const Embedding e = load_text(path("p.txt"));
  EXPECT_FLOAT_EQ(e.row(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(e.row(1)[1], 4.0f);
  EXPECT_FLOAT_EQ(e.row(2)[0], 5.0f);
}

TEST_F(EmbedIoTest, RejectsMissingFile) {
  EXPECT_THROW(load_text(path("nope.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsMalformedHeader) {
  std::ofstream(path("h.txt")) << "abc def\n";
  EXPECT_THROW(load_text(path("h.txt")), CheckError);
  std::ofstream(path("z.txt")) << "0 4\n";
  EXPECT_THROW(load_text(path("z.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsTruncatedFile) {
  std::ofstream(path("t.txt")) << "2 2\nw0000 1 2\n";  // one row missing
  EXPECT_THROW(load_text(path("t.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsDuplicateWordIds) {
  std::ofstream(path("d.txt")) << "2 1\nw0000 1\nw0000 2\n";
  EXPECT_THROW(load_text(path("d.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsOutOfRangeWordId) {
  std::ofstream(path("r.txt")) << "2 1\nw0000 1\nw0009 2\n";
  EXPECT_THROW(load_text(path("r.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsNonNumericValues) {
  std::ofstream(path("n.txt")) << "1 2\nw0000 1 banana\n";
  EXPECT_THROW(load_text(path("n.txt")), CheckError);
}

TEST_F(EmbedIoTest, RejectsForeignWordTokens) {
  std::ofstream(path("f.txt")) << "1 1\nhello 1\n";
  EXPECT_THROW(load_text(path("f.txt")), CheckError);
}

}  // namespace
}  // namespace anchor::embed
