// Integration tests for the experiment pipeline at miniature scale:
// caching, alignment, quantization threading, downstream instability, and
// the end-to-end shape checks the paper's conclusions rest on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "la/matrix.hpp"
#include "pipeline/pipeline.hpp"

namespace anchor::pipeline {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig c;
  c.vocab = 200;
  c.latent_dim = 6;
  c.num_topics = 6;
  c.num_documents = 150;
  c.dims = {8, 16};
  c.precisions = {1, 8, 32};
  c.seeds = {1};
  c.reference_dim = 16;
  c.knn_queries = 60;
  c.sentiment_scale_train = 400;
  c.ner_train = 80;
  c.ner_test = 50;
  c.ner_hidden = 6;
  c.ner_epochs = 2;
  c.epoch_scale = 0.5;
  return c;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("anchor_pipeline_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    pipe_ = std::make_unique<Pipeline>(tiny_config(), dir_.string());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::unique_ptr<Pipeline> pipe_;
};

TEST_F(PipelineTest, TaskListAndNerDetection) {
  EXPECT_EQ(Pipeline::all_tasks().size(), 5u);
  EXPECT_TRUE(Pipeline::is_ner_task("conll2003"));
  EXPECT_FALSE(Pipeline::is_ner_task("sst2"));
}

TEST_F(PipelineTest, EmbeddingCachingIsStable) {
  const embed::Embedding a =
      pipe_->raw_embedding(Year::k17, embed::Algo::kMc, 8, 1);
  const embed::Embedding b =
      pipe_->raw_embedding(Year::k17, embed::Algo::kMc, 8, 1);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.vocab_size, 200u);
  EXPECT_EQ(a.dim, 8u);
}

TEST_F(PipelineTest, CachePersistsAcrossPipelineInstances) {
  const embed::Embedding a =
      pipe_->raw_embedding(Year::k17, embed::Algo::kMc, 4, 1);
  Pipeline second(tiny_config(), dir_.string());
  const embed::Embedding b =
      second.raw_embedding(Year::k17, embed::Algo::kMc, 4, 1);
  EXPECT_EQ(a.data, b.data);
}

TEST_F(PipelineTest, YearsDiffer) {
  const embed::Embedding a =
      pipe_->raw_embedding(Year::k17, embed::Algo::kMc, 8, 1);
  const embed::Embedding b =
      pipe_->raw_embedding(Year::k18, embed::Algo::kMc, 8, 1);
  EXPECT_NE(a.data, b.data);
}

TEST_F(PipelineTest, AlignmentReducesFrobeniusDistance) {
  const embed::Embedding raw17 =
      pipe_->raw_embedding(Year::k17, embed::Algo::kMc, 8, 1);
  const embed::Embedding raw18 =
      pipe_->raw_embedding(Year::k18, embed::Algo::kMc, 8, 1);
  auto [x17, x18] = pipe_->aligned_pair(embed::Algo::kMc, 8, 1);
  EXPECT_EQ(x17.data, raw17.data);  // the anchor side is untouched
  const double before = la::frobenius_norm(
      la::subtract(raw17.to_matrix(), raw18.to_matrix()));
  const double after =
      la::frobenius_norm(la::subtract(x17.to_matrix(), x18.to_matrix()));
  EXPECT_LE(after, before + 1e-9);
}

TEST_F(PipelineTest, QuantizedPairSharesLevelGrid) {
  auto [q17, q18] = pipe_->quantized_pair(embed::Algo::kMc, 8, 1, 2);
  std::set<float> levels(q17.data.begin(), q17.data.end());
  EXPECT_LE(levels.size(), 4u);
  for (const float v : q18.data) {
    EXPECT_TRUE(levels.count(v) > 0) << "X18 value off X17's grid: " << v;
  }
}

TEST_F(PipelineTest, FullPrecisionQuantizedPairIsAlignedPair) {
  auto [a17, a18] = pipe_->aligned_pair(embed::Algo::kMc, 8, 1);
  auto [q17, q18] = pipe_->quantized_pair(embed::Algo::kMc, 8, 1, 32);
  EXPECT_EQ(q17.data, a17.data);
  EXPECT_EQ(q18.data, a18.data);
}

TEST_F(PipelineTest, PredictionsDeterministicAndCached) {
  const auto a = pipe_->predictions("sst2", Year::k17, embed::Algo::kMc, 8,
                                    32, 1);
  const auto b = pipe_->predictions("sst2", Year::k17, embed::Algo::kMc, 8,
                                    32, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), pipe_->sentiment_dataset("sst2").test_labels.size());
  for (const auto p : a) EXPECT_TRUE(p == 0 || p == 1);
}

TEST_F(PipelineTest, NerPredictionsFlattenTestTokens) {
  const auto p = pipe_->predictions("conll2003", Year::k17, embed::Algo::kMc,
                                    8, 32, 1);
  EXPECT_EQ(p.size(), pipe_->ner_dataset().flat_test_gold().size());
}

TEST_F(PipelineTest, InstabilityWithinRangeAndNonzero) {
  const double di =
      pipe_->downstream_instability("sst2", embed::Algo::kMc, 8, 1, 1);
  EXPECT_GE(di, 0.0);
  EXPECT_LE(di, 100.0);
  // 1-bit embeddings from drifted corpora virtually always disagree some.
  EXPECT_GT(di, 0.0);
}

TEST_F(PipelineTest, QualityIsReasonable) {
  const double acc =
      pipe_->quality("sst2", Year::k17, embed::Algo::kMc, 8, 32, 1);
  EXPECT_GT(acc, 50.0);  // better than chance
  EXPECT_LE(acc, 100.0);
}

TEST_F(PipelineTest, MeasuresFiniteAndOriented) {
  const auto m = pipe_->measures(embed::Algo::kMc, 8, 8, 1);
  for (const double v : m) EXPECT_TRUE(std::isfinite(v));
  // EIS, 1−kNN, 1−overlap are in [0, 1]; displacement and PIP ≥ 0.
  EXPECT_GE(m[0], -1e-9);
  EXPECT_LE(m[0], 1.0 + 1e-9);
  EXPECT_GE(m[1], -1e-9);
  EXPECT_LE(m[1], 1.0 + 1e-9);
  EXPECT_GE(m[2], 0.0);
  EXPECT_GE(m[3], 0.0);
  EXPECT_GE(m[4], -1e-9);
  EXPECT_LE(m[4], 1.0 + 1e-9);
}

TEST_F(PipelineTest, LowerPrecisionHasLargerMeasureDistance) {
  const auto coarse = pipe_->measures(embed::Algo::kMc, 8, 1, 1);
  const auto fine = pipe_->measures(embed::Algo::kMc, 8, 32, 1);
  // Semantic displacement measures per-word movement after alignment and
  // grows robustly as precision collapses. (PIP loss is scale-sensitive —
  // aggressive quantization shrinks all norms — so it is not asserted here;
  // the paper's Table 1 likewise reports weak/negative PIP correlations.)
  EXPECT_GT(coarse[2], fine[2]);
}

TEST_F(PipelineTest, EisAlphaAndKnnKVariants) {
  const double a0 = pipe_->eis_with_alpha(embed::Algo::kMc, 8, 8, 1, 0.0);
  const double a3 = pipe_->eis_with_alpha(embed::Algo::kMc, 8, 8, 1, 3.0);
  EXPECT_TRUE(std::isfinite(a0));
  EXPECT_TRUE(std::isfinite(a3));
  EXPECT_NE(a0, a3);
  const double k1 = pipe_->knn_with_k(embed::Algo::kMc, 8, 8, 1, 1);
  const double k10 = pipe_->knn_with_k(embed::Algo::kMc, 8, 8, 1, 10);
  EXPECT_GE(k1, 0.0);
  EXPECT_LE(k10, 1.0);
}

TEST_F(PipelineTest, ConfigGridCoversAllCells) {
  const auto grid = pipe_->config_grid("sst2", embed::Algo::kMc, 1);
  EXPECT_EQ(grid.size(), 2u * 3u);  // dims × precisions
  for (const auto& p : grid) {
    EXPECT_EQ(p.measures.size(), 5u);
    EXPECT_GE(p.downstream_instability_pct, 0.0);
  }
}

TEST_F(PipelineTest, InstabilityGridAveragesSeeds) {
  const auto grid = pipe_->instability_grid("sst2", embed::Algo::kMc);
  EXPECT_EQ(grid.size(), 6u);
  for (const auto& cell : grid) {
    EXPECT_EQ(cell.per_seed_pct.size(), 1u);
    EXPECT_DOUBLE_EQ(cell.mean_pct, cell.per_seed_pct[0]);
  }
}

TEST_F(PipelineTest, StabilityMemoryShape) {
  // The paper's headline: more memory ⇒ (weakly) less instability. At tiny
  // scale we assert the extremes: the highest-memory cell is no less stable
  // than the lowest-memory cell.
  const auto grid = pipe_->instability_grid("sst2", embed::Algo::kMc);
  double lo_mem = 1e18, hi_mem = -1;
  double lo_di = 0, hi_di = 0;
  for (const auto& cell : grid) {
    const double mem = static_cast<double>(cell.dim) * cell.bits;
    if (mem < lo_mem) {
      lo_mem = mem;
      lo_di = cell.mean_pct;
    }
    if (mem > hi_mem) {
      hi_mem = mem;
      hi_di = cell.mean_pct;
    }
  }
  EXPECT_LE(hi_di, lo_di + 1e-9);
}

TEST_F(PipelineTest, DownstreamOptionsChangeCacheKey) {
  DownstreamOptions default_opts;
  DownstreamOptions decoupled;
  decoupled.init_seed = 99;
  const auto a = pipe_->predictions("sst2", Year::k17, embed::Algo::kMc, 8,
                                    32, 1, default_opts);
  const auto b = pipe_->predictions("sst2", Year::k17, embed::Algo::kMc, 8,
                                    32, 1, decoupled);
  EXPECT_NE(a, b);  // different init seed trains a different model
}

TEST_F(PipelineTest, SignatureDistinguishesConfigs) {
  PipelineConfig a = tiny_config();
  PipelineConfig b = tiny_config();
  b.drift = 0.999;
  EXPECT_NE(a.signature(), b.signature());
  DownstreamOptions o1, o2;
  o2.fine_tune = true;
  EXPECT_NE(o1.signature(), o2.signature());
}

}  // namespace
}  // namespace anchor::pipeline
