// IVF-PQ index suite: recall against the exact oracle on clustered data,
// the shard-merge determinism contract (sliced indexes sharing artifacts
// merge bit-identically to the single-process index), knob clamping on
// degenerate stores, and the AnnService epoch-keyed cache + top-k churn
// gate measure.
#include "ann/ivf_pq.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "ann/ann_service.hpp"
#include "serve/embedding_store.hpp"
#include "util/rng.hpp"

namespace anchor::ann {
namespace {

// IVF needs cluster structure to earn its keep (on iid Gaussian rows every
// cell is equidistant and recall degenerates to nprobe/nlist): a mixture
// of Gaussians is the honest synthetic workload.
embed::Embedding clustered_embedding(std::size_t vocab, std::size_t dim,
                                     std::size_t num_clusters,
                                     std::uint64_t seed) {
  embed::Embedding e(vocab, dim);
  Rng rng(seed);
  std::vector<float> centers(num_clusters * dim);
  for (auto& c : centers) c = static_cast<float>(rng.normal(0.0, 4.0));
  for (std::size_t w = 0; w < vocab; ++w) {
    const std::size_t c = w % num_clusters;
    for (std::size_t j = 0; j < dim; ++j) {
      e.row(w)[j] =
          centers[c * dim + j] + static_cast<float>(rng.normal(0.0, 0.5));
    }
  }
  return e;
}

serve::SnapshotPtr make_snapshot(serve::EmbeddingStore& store,
                                 const std::string& version,
                                 const embed::Embedding& e) {
  serve::SnapshotConfig config;
  config.bits = 32;  // byte-exact rows: the merge tests pin bit-identity
  return store.add_version(version, e, config);
}

std::vector<std::uint64_t> brute_force_topk(const embed::Embedding& e,
                                            const float* query,
                                            std::size_t k) {
  std::vector<std::pair<float, std::uint64_t>> all(e.vocab_size);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    float d = 0.0f;
    for (std::size_t j = 0; j < e.dim; ++j) {
      const float t = query[j] - e.row(w)[j];
      d += t * t;
    }
    all[w] = {d, w};
  }
  std::sort(all.begin(), all.end());
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < std::min(k, all.size()); ++i) {
    ids.push_back(all[i].second);
  }
  return ids;
}

TEST(IvfPq, RecallAt10AtLeast95PercentOnClusteredStore) {
  const std::size_t vocab = 4096, dim = 32, k = 10;
  const embed::Embedding e = clustered_embedding(vocab, dim, 48, 7);
  serve::EmbeddingStore store;
  const auto snap = make_snapshot(store, "v1", e);

  AnnConfig config;
  config.nlist_bits = 6;  // 64 cells
  config.pq_m = 8;
  config.pq_bits = 8;
  const IvfPqIndex index(snap, config);

  Rng rng(11);
  const std::size_t num_queries = 100;
  std::size_t hit = 0, total = 0;
  for (std::size_t q = 0; q < num_queries; ++q) {
    // A perturbed store row: near the manifold, not on it.
    std::vector<float> query(dim);
    const std::size_t w = rng.index(vocab);
    for (std::size_t j = 0; j < dim; ++j) {
      query[j] = e.row(w)[j] + static_cast<float>(rng.normal(0.0, 0.05));
    }
    const auto truth = brute_force_topk(e, query.data(), k);
    const TopKResult got =
        index.search(query.data(), k, /*nprobe=*/16, /*rerank=*/128);
    ASSERT_EQ(got.hits.size(), k);
    EXPECT_EQ(got.flags, 0);
    EXPECT_EQ(got.version, "v1");
    const std::set<std::uint64_t> truth_set(truth.begin(), truth.end());
    for (const TopKHit& h : got.hits) hit += truth_set.count(h.id);
    total += k;
  }
  const double recall = static_cast<double>(hit) / static_cast<double>(total);
  EXPECT_GE(recall, 0.95) << "recall@10=" << recall;
}

TEST(IvfPq, ExactDistancesMatchBruteForce) {
  const embed::Embedding e = clustered_embedding(512, 16, 8, 3);
  serve::EmbeddingStore store;
  const auto snap = make_snapshot(store, "v1", e);
  AnnConfig config;
  config.nlist_bits = 3;
  config.pq_m = 4;
  const IvfPqIndex index(snap, config);

  // Probing every cell with a full-vocab shortlist makes the ANN search
  // exhaustive: the top-k must equal brute force exactly.
  std::vector<float> query(e.row(5), e.row(5) + e.dim);
  const TopKResult got = index.search(query.data(), 10, /*nprobe=*/8,
                                      /*rerank=*/e.vocab_size);
  const auto truth = brute_force_topk(e, query.data(), 10);
  ASSERT_EQ(got.hits.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(got.hits[i].id, truth[i]) << "rank " << i;
  }
  EXPECT_EQ(got.hits[0].id, 5u);  // the row itself, at distance ~0
  EXPECT_NEAR(got.hits[0].exact, 0.0f, 1e-5);
}

TEST(IvfPq, SearchIsDeterministic) {
  const embed::Embedding e = clustered_embedding(1024, 24, 16, 9);
  serve::EmbeddingStore store;
  const auto snap = make_snapshot(store, "v1", e);
  const IvfPqIndex a(snap, AnnConfig{});
  const IvfPqIndex b(snap, AnnConfig{});

  std::vector<float> query(e.row(100), e.row(100) + e.dim);
  const TopKResult ra = a.search(query.data(), 10);
  const TopKResult rb = b.search(query.data(), 10);
  ASSERT_EQ(ra.hits.size(), rb.hits.size());
  for (std::size_t i = 0; i < ra.hits.size(); ++i) {
    EXPECT_EQ(ra.hits[i].id, rb.hits[i].id);
    EXPECT_EQ(ra.hits[i].exact, rb.hits[i].exact);
    EXPECT_EQ(ra.hits[i].adc, rb.hits[i].adc);
  }
}

// The cluster contract, in-process: slice the rows into two shards, build
// per-shard indexes with the artifacts trained on the FULL matrix, merge
// the per-shard candidate lists the way ClusterClient does, and require
// the result bit-identical to the single-process index over all rows.
TEST(IvfPq, SlicedIndexesWithSharedArtifactsMergeBitIdentically) {
  const std::size_t vocab = 2048, dim = 32, k = 10;
  const embed::Embedding full = clustered_embedding(vocab, dim, 24, 21);
  serve::EmbeddingStore full_store;
  const auto full_snap = make_snapshot(full_store, "v1", full);

  AnnConfig config;
  config.nlist_bits = 5;
  config.pq_m = 8;
  const IvfPqIndex reference(full_snap, config);

  // Shards encode with the reference's artifacts (the deployment protocol:
  // train once, ship everywhere).
  const std::size_t mid = vocab / 2;
  embed::Embedding lo(mid, dim), hi(vocab - mid, dim);
  std::copy(full.data.begin(), full.data.begin() + mid * dim,
            lo.data.begin());
  std::copy(full.data.begin() + mid * dim, full.data.end(), hi.data.begin());
  serve::EmbeddingStore lo_store, hi_store;
  AnnConfig shard_config = config;
  shard_config.artifacts = reference.artifacts();
  const IvfPqIndex lo_index(make_snapshot(lo_store, "v1", lo), shard_config);
  shard_config.artifacts = reference.artifacts();
  const IvfPqIndex hi_index(make_snapshot(hi_store, "v1", hi), shard_config);

  Rng rng(33);
  for (std::size_t q = 0; q < 50; ++q) {
    std::vector<float> query(dim);
    const std::size_t w = rng.index(vocab);
    for (std::size_t j = 0; j < dim; ++j) {
      query[j] = full.row(w)[j] + static_cast<float>(rng.normal(0.0, 0.1));
    }
    const std::size_t nprobe = 8, rerank = 64;
    const TopKResult want = reference.search(query.data(), k, nprobe, rerank);

    // The router merge: pool per-shard candidates under global ids, keep
    // the `rerank` best by (adc, gid), then the k best by (exact, gid).
    struct Cand {
      float adc;
      std::uint64_t gid;
      float exact;
    };
    std::vector<Cand> pool;
    const TopKResult lo_c = lo_index.candidates(query.data(), rerank, nprobe);
    const TopKResult hi_c = hi_index.candidates(query.data(), rerank, nprobe);
    for (const TopKHit& h : lo_c.hits) pool.push_back({h.adc, h.id, h.exact});
    for (const TopKHit& h : hi_c.hits) {
      pool.push_back({h.adc, h.id + mid, h.exact});
    }
    const std::size_t keep = std::min(rerank, pool.size());
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                      [](const Cand& a, const Cand& b) {
                        return a.adc != b.adc ? a.adc < b.adc
                                              : a.gid < b.gid;
                      });
    pool.resize(keep);
    std::sort(pool.begin(), pool.end(), [](const Cand& a, const Cand& b) {
      return a.exact != b.exact ? a.exact < b.exact : a.gid < b.gid;
    });
    if (pool.size() > k) pool.resize(k);

    ASSERT_EQ(pool.size(), want.hits.size()) << "query " << q;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(pool[i].gid, want.hits[i].id) << "query " << q << " rank "
                                              << i;
      EXPECT_EQ(pool[i].exact, want.hits[i].exact) << "query " << q;
      EXPECT_EQ(pool[i].adc, want.hits[i].adc) << "query " << q;
    }
  }
}

TEST(IvfPq, ReusesPqSnapshotCodesAndMatchesBruteForceOverDecodedRows) {
  // A PQ snapshot already holds exactly what an IVF-PQ index needs: codes
  // and codebooks. With no explicit artifacts the index must adopt them
  // (flat one-cell layout, no retraining) instead of decoding and
  // re-encoding the whole store.
  const embed::Embedding e = clustered_embedding(512, 16, 8, 13);
  serve::EmbeddingStore store;
  serve::SnapshotConfig sc;
  sc.pq_m = 4;
  sc.pq_bits = 6;
  sc.build_oov_table = false;
  const auto snap = store.add_version("v1", e, sc);

  const IvfPqIndex index(snap, AnnConfig{});
  EXPECT_TRUE(index.reused_snapshot_codes());
  EXPECT_EQ(index.nlist(), 1u);  // flat: the exhaustive-ADC degenerate IVF
  EXPECT_EQ(index.pq_m(), 4u);

  // fp32 snapshots keep the trained path.
  serve::EmbeddingStore plain;
  const IvfPqIndex trained(make_snapshot(plain, "v1", e), AnnConfig{});
  EXPECT_FALSE(trained.reused_snapshot_codes());

  // Exhaustive search over the reused index equals brute force over the
  // snapshot's DECODED rows — the rows the store actually serves.
  embed::Embedding decoded(e.vocab_size, e.dim);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    snap->copy_row(w, decoded.row(w));
  }
  std::vector<float> query(e.row(5), e.row(5) + e.dim);
  const TopKResult got = index.search(query.data(), 10, /*nprobe=*/1,
                                      /*rerank=*/e.vocab_size);
  const auto truth = brute_force_topk(decoded, query.data(), 10);
  ASSERT_EQ(got.hits.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(got.hits[i].id, truth[i]) << "rank " << i;
  }

  // AnnService reaches the reuse path with zero call-site changes.
  AnnService service(store, AnnConfig{});
  const IvfPqIndexPtr via_service = service.index_for_live();
  ASSERT_NE(via_service, nullptr);
  EXPECT_TRUE(via_service->reused_snapshot_codes());
}

TEST(IvfPq, ClampsKnobsOnTinyStores) {
  const embed::Embedding e = clustered_embedding(6, 10, 2, 5);
  serve::EmbeddingStore store;
  const auto snap = make_snapshot(store, "v1", e);
  AnnConfig config;
  config.nlist_bits = 8;  // 256 cells >> 6 rows: must clamp
  config.pq_m = 4;        // 10 % 4 != 0: must clamp to a divisor
  config.pq_bits = 8;     // 256 residual centroids >> 6 rows: must clamp
  const IvfPqIndex index(snap, config);
  EXPECT_LE(index.nlist(), e.vocab_size);
  EXPECT_EQ(e.dim % index.pq_m(), 0u);
  EXPECT_LE(index.ksub(), e.vocab_size);

  std::vector<float> query(e.row(0), e.row(0) + e.dim);
  const TopKResult got = index.search(query.data(), 3);
  ASSERT_FALSE(got.hits.empty());
  EXPECT_EQ(got.hits[0].id, 0u);
}

TEST(AnnService, CachesIndexesByEpochAndFollowsLive) {
  serve::EmbeddingStore store;
  const embed::Embedding v1 = clustered_embedding(512, 16, 8, 1);
  const embed::Embedding v2 = clustered_embedding(512, 16, 8, 2);
  make_snapshot(store, "v1", v1);

  AnnConfig config;
  config.nlist_bits = 3;
  AnnService service(store, config);
  EXPECT_EQ(service.builds(), 0u);

  const IvfPqIndexPtr a = service.index_for_live();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(service.builds(), 1u);
  EXPECT_EQ(service.index_for_live(), a);  // cache hit, same pointer
  EXPECT_EQ(service.builds(), 1u);

  make_snapshot(store, "v2", v2);
  store.set_live("v2");
  const IvfPqIndexPtr b = service.index_for_live();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->version(), "v2");
  EXPECT_EQ(service.builds(), 2u);

  // Flipping live back reuses the cached v1 index: no rebuild.
  store.set_live("v1");
  EXPECT_EQ(service.index_for_live(), a);
  EXPECT_EQ(service.builds(), 2u);
}

TEST(AnnService, TopKChurnZeroForIdenticalRowsPositiveForDrift) {
  serve::EmbeddingStore store;
  const embed::Embedding base = clustered_embedding(512, 16, 8, 4);
  embed::Embedding drifted = base;
  Rng rng(5);
  for (auto& x : drifted.data) {
    x += static_cast<float>(rng.normal(0.0, 1.0));
  }
  const auto a = make_snapshot(store, "a", base);
  const auto same = make_snapshot(store, "same", base);
  const auto b = make_snapshot(store, "b", drifted);

  AnnConfig config;
  config.nlist_bits = 3;
  AnnService service(store, config);
  EXPECT_EQ(service.topk_churn(a, same, 32, 10), 0.0);
  const double churn = service.topk_churn(a, b, 32, 10);
  EXPECT_GT(churn, 0.1);
  EXPECT_LE(churn, 1.0);
}

}  // namespace
}  // namespace anchor::ann
