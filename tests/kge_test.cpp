// Tests for the knowledge-graph substrate: graph generation, TransE
// training, link prediction, triplet classification, and quantization.
#include <gtest/gtest.h>

#include <set>

#include "kge/kg_data.hpp"
#include "kge/kge_eval.hpp"
#include "kge/transe.hpp"

namespace anchor::kge {
namespace {

KgConfig small_kg_config() {
  KgConfig c;
  c.num_entities = 80;
  c.num_relations = 6;
  c.latent_dim = 6;
  c.train_triplets = 1200;
  c.valid_triplets = 100;
  c.test_triplets = 150;
  c.tail_temperature = 0.4;  // sharp enough that TransE is clearly learnable
  c.seed = 5;
  return c;
}

TEST(KgData, SplitSizesAndRanges) {
  const KgDataset ds = generate_kg(small_kg_config());
  EXPECT_EQ(ds.train.size(), 1200u);
  EXPECT_EQ(ds.valid.size(), 100u);
  EXPECT_EQ(ds.test.size(), 150u);
  auto check = [&](const std::vector<Triplet>& split) {
    for (const auto& t : split) {
      EXPECT_GE(t.head, 0);
      EXPECT_LT(t.head, 80);
      EXPECT_GE(t.relation, 0);
      EXPECT_LT(t.relation, 6);
      EXPECT_GE(t.tail, 0);
      EXPECT_LT(t.tail, 80);
      EXPECT_NE(t.head, t.tail);
    }
  };
  check(ds.train);
  check(ds.valid);
  check(ds.test);
}

TEST(KgData, TripletsAreUniqueAcrossSplits) {
  const KgDataset ds = generate_kg(small_kg_config());
  std::set<std::tuple<int, int, int>> seen;
  auto insert_all = [&](const std::vector<Triplet>& split) {
    for (const auto& t : split) {
      EXPECT_TRUE(seen.insert({t.head, t.relation, t.tail}).second);
    }
  };
  insert_all(ds.train);
  insert_all(ds.valid);
  insert_all(ds.test);
}

TEST(KgData, DeterministicGivenSeed) {
  const KgDataset a = generate_kg(small_kg_config());
  const KgDataset b = generate_kg(small_kg_config());
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(KgData, SubsampleDropsTrainOnly) {
  const KgDataset full = generate_kg(small_kg_config());
  const KgDataset sub = subsample_train(full, 0.05, 9);
  EXPECT_EQ(sub.train.size(), 1140u);  // 95% of 1200
  EXPECT_EQ(sub.valid, full.valid);
  EXPECT_EQ(sub.test, full.test);
  // Every kept triplet came from the full training set.
  std::set<std::tuple<int, int, int>> full_set;
  for (const auto& t : full.train) {
    full_set.insert({t.head, t.relation, t.tail});
  }
  for (const auto& t : sub.train) {
    EXPECT_TRUE(full_set.count({t.head, t.relation, t.tail}) > 0);
  }
}

TransEConfig quick_transe() {
  TransEConfig c;
  c.dim = 12;
  c.max_epochs = 30;
  c.eval_every = 10;
  c.learning_rate = 0.02f;
  return c;
}

TEST(TransE, ScoreIsL1Distance) {
  TransEModel m;
  m.entities = embed::Embedding(3, 2, 0.0f);
  m.relations = embed::Embedding(1, 2, 0.0f);
  m.entities.row(0)[0] = 1.0f;
  m.relations.row(0)[0] = 2.0f;
  m.entities.row(1)[0] = 2.5f;
  m.entities.row(1)[1] = -1.0f;
  // |1+2−2.5| + |0+0−(−1)| = 0.5 + 1 = 1.5.
  EXPECT_NEAR(m.score({0, 0, 1}), 1.5, 1e-6);
}

TEST(TransE, TrainingBeatsUntrainedMeanRank) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel trained = train_transe(ds, quick_transe());

  TransEConfig no_train = quick_transe();
  no_train.max_epochs = 0;
  const TransEModel random_init = train_transe(ds, no_train);

  const double trained_rank = link_prediction(trained, ds.test).mean_rank;
  const double random_rank = link_prediction(random_init, ds.test).mean_rank;
  EXPECT_LT(trained_rank, 0.7 * random_rank);
}

TEST(TransE, DeterministicGivenSeed) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel a = train_transe(ds, quick_transe());
  const TransEModel b = train_transe(ds, quick_transe());
  EXPECT_EQ(a.entities.data, b.entities.data);
}

TEST(LinkPrediction, RanksWithinBounds) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel m = train_transe(ds, quick_transe());
  const LinkPredictionResult r = link_prediction(m, ds.test);
  EXPECT_EQ(r.ranks.size(), 2 * ds.test.size());
  for (const auto rank : r.ranks) {
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, static_cast<std::int32_t>(ds.num_entities));
  }
  EXPECT_GE(r.mean_rank, 1.0);
}

TEST(LinkPrediction, UnstableRankZeroOnSelf) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel m = train_transe(ds, quick_transe());
  const LinkPredictionResult r = link_prediction(m, ds.test);
  EXPECT_DOUBLE_EQ(unstable_rank_at_k(r, r, 10), 0.0);
}

TEST(LinkPrediction, UnstableRankCountsBigChanges) {
  LinkPredictionResult a, b;
  a.ranks = {1, 5, 100, 7};
  b.ranks = {1, 20, 100, 18};  // changes: 15 (>10), 0, 11 (>10)... and 0
  EXPECT_DOUBLE_EQ(unstable_rank_at_k(a, b, 10), 50.0);
  EXPECT_DOUBLE_EQ(unstable_rank_at_k(a, b, 20), 0.0);
}

TEST(TripletClassification, NegativesDifferFromPositives) {
  const KgDataset ds = generate_kg(small_kg_config());
  const LabeledTriplets lt =
      make_classification_set(ds.valid, ds.num_entities, 3);
  EXPECT_EQ(lt.triplets.size(), 2 * ds.valid.size());
  for (std::size_t i = 0; i < lt.triplets.size(); i += 2) {
    EXPECT_EQ(lt.labels[i], 1);
    EXPECT_EQ(lt.labels[i + 1], 0);
    EXPECT_NE(lt.triplets[i].tail, lt.triplets[i + 1].tail);
    EXPECT_EQ(lt.triplets[i].head, lt.triplets[i + 1].head);
  }
}

TEST(TripletClassification, SameSeedSameNegatives) {
  const KgDataset ds = generate_kg(small_kg_config());
  const auto a = make_classification_set(ds.valid, ds.num_entities, 3);
  const auto b = make_classification_set(ds.valid, ds.num_entities, 3);
  EXPECT_EQ(a.triplets, b.triplets);
}

TEST(TripletClassification, TunedThresholdsBeatChance) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel m = train_transe(ds, quick_transe());
  const auto valid = make_classification_set(ds.valid, ds.num_entities, 3);
  const auto test = make_classification_set(ds.test, ds.num_entities, 4);
  const std::vector<double> thresholds =
      tune_thresholds(m, valid, ds.num_relations);
  const auto preds = classify_triplets(m, test.triplets, thresholds);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    hits += (preds[i] == test.labels[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / preds.size(), 0.62);
}

TEST(Quantize, FullPrecisionPassthrough) {
  const KgDataset ds = generate_kg(small_kg_config());
  TransEConfig qc = quick_transe();
  qc.max_epochs = 5;
  const TransEModel m = train_transe(ds, qc);
  const TransEModel q = quantize_model(m, 32);
  EXPECT_EQ(q.entities.data, m.entities.data);
}

TEST(Quantize, LowerBitsChangeScoresMore) {
  const KgDataset ds = generate_kg(small_kg_config());
  const TransEModel m = train_transe(ds, quick_transe());
  auto score_delta = [&](int bits) {
    const TransEModel q = quantize_model(m, bits);
    double acc = 0.0;
    for (const auto& t : ds.test) acc += std::abs(q.score(t) - m.score(t));
    return acc;
  };
  EXPECT_GT(score_delta(1), score_delta(4));
  EXPECT_GT(score_delta(4), score_delta(16));
}

TEST(Quantize, SharedClipUsesReferenceThreshold) {
  const KgDataset full = generate_kg(small_kg_config());
  const KgDataset sub = subsample_train(full, 0.05, 7);
  TransEConfig qc = quick_transe();
  qc.max_epochs = 10;
  const TransEModel a = train_transe(sub, qc);
  const TransEModel b = train_transe(full, qc);
  const TransEModel qb_shared = quantize_model(b, 2, &a);
  const TransEModel qb_own = quantize_model(b, 2);
  // Shared-threshold quantization differs from own-threshold quantization.
  EXPECT_NE(qb_shared.entities.data, qb_own.entities.data);
}

}  // namespace
}  // namespace anchor::kge
