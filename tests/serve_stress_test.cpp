// Deterministic seeded stress for AsyncLookupService: N producer threads
// issuing randomized mixes of single-key fast-path futures, multi-key id
// requests, and word requests, with injected slow consumers that sit on
// futures while the ring keeps moving. Every future must resolve and
// every result must be bit-identical to a direct LookupService call —
// the coalescing layer is allowed to batch however it likes but never to
// change an answer.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace anchor::serve {
namespace {

constexpr std::size_t kVocab = 1200;
constexpr std::size_t kDim = 24;

embed::Embedding random_embedding(std::uint64_t seed) {
  embed::Embedding e(kVocab, kDim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

/// One producer's pending request: what was asked plus how to get it.
struct InFlight {
  enum class Kind { kFastId, kIds, kWord, kWords } kind = Kind::kFastId;
  std::size_t id = 0;
  std::vector<std::size_t> ids;
  std::string word;
  std::vector<std::string> words;
  AsyncLookupService::SliceFuture fast;
  std::future<ResultSlice> general;
};

/// Bit-identical comparison of a resolved slice against the direct
/// service's answer for the same request.
bool slice_matches(const ResultSlice& slice, const LookupResult& expected) {
  if (slice.size() != expected.size()) return false;
  if (slice.size() == 0) return true;
  if (slice.dim() != expected.dim) return false;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    if (slice.oov(i) != (expected.oov[i] != 0)) return false;
    const float* got = slice.row(i);
    const float* want = expected.row(i);
    for (std::size_t j = 0; j < expected.dim; ++j) {
      if (got[j] != want[j]) return false;
    }
  }
  return true;
}

class StressCase {
 public:
  StressCase(int bits, std::size_t cache_rows)
      : config_{.cache_rows_per_shard = cache_rows} {
    SnapshotConfig snap;
    snap.bits = bits;
    store_.add_version("live", random_embedding(41), snap);
  }

  void run(int threads, int requests_per_thread, std::uint64_t seed) {
    LookupService service(store_, config_);
    const LookupService direct(store_, config_);
    std::atomic<std::uint64_t> resolved{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::uint64_t issued_total = 0;
    {
      AsyncLookupService async(service);
      std::vector<std::thread> producers;
      std::vector<std::uint64_t> issued(static_cast<std::size_t>(threads), 0);
      for (int t = 0; t < threads; ++t) {
        producers.emplace_back([&, t] {
          Rng rng(seed + static_cast<std::uint64_t>(t) * 7919);
          std::deque<InFlight> window;

          const auto drain_one = [&] {
            InFlight req = std::move(window.front());
            window.pop_front();
            ResultSlice slice;
            LookupResult expected;
            switch (req.kind) {
              case InFlight::Kind::kFastId:
                slice = req.fast.get();
                direct.lookup_ids_into({req.id}, &expected);
                break;
              case InFlight::Kind::kIds:
                slice = req.general.get();
                direct.lookup_ids_into(req.ids, &expected);
                break;
              case InFlight::Kind::kWord:
                slice = req.general.get();
                direct.lookup_words_into({req.word}, &expected);
                break;
              case InFlight::Kind::kWords:
                slice = req.general.get();
                direct.lookup_words_into(req.words, &expected);
                break;
            }
            resolved.fetch_add(1, std::memory_order_relaxed);
            if (!slice_matches(slice, expected)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          };

          for (int i = 0; i < requests_per_thread; ++i) {
            InFlight req;
            const double pick = rng.uniform();
            if (pick < 0.45) {
              req.kind = InFlight::Kind::kFastId;
              req.id = rng.index(kVocab);
              req.fast = async.lookup_id(req.id);
            } else if (pick < 0.70) {
              req.kind = InFlight::Kind::kIds;
              const std::size_t n = 1 + rng.index(17);
              req.ids.resize(n);
              // ~6% of ids are out of vocabulary → zero/oov slots.
              for (auto& id : req.ids) id = rng.index(kVocab + 80);
              req.general = async.lookup_ids(req.ids);
            } else if (pick < 0.85) {
              req.kind = InFlight::Kind::kWord;
              req.word = rng.bernoulli(0.8)
                             ? "w" + std::to_string(rng.index(kVocab))
                             : "junk-" + std::to_string(rng.index(64));
              req.general = async.lookup_word(req.word);
            } else {
              req.kind = InFlight::Kind::kWords;
              const std::size_t n = 1 + rng.index(9);
              req.words.resize(n);
              for (auto& w : req.words) {
                w = rng.bernoulli(0.7)
                        ? "w" + std::to_string(rng.index(kVocab + 60))
                        : "oov-" + std::to_string(rng.index(32));
              }
              req.general = async.lookup_words(req.words);
            }
            window.push_back(std::move(req));
            ++issued[static_cast<std::size_t>(t)];

            // Injected slow consumer: occasionally sit on the whole
            // window while other producers keep the ring and dispatcher
            // busy — slot reclamation must not depend on us consuming.
            if (rng.bernoulli(0.02)) {
              std::this_thread::sleep_for(std::chrono::microseconds(
                  static_cast<int>(100 + rng.index(400))));
            }
            while (window.size() > 8) drain_one();
          }
          while (!window.empty()) drain_one();
        });
      }
      for (auto& p : producers) p.join();
      for (const auto n : issued) issued_total += n;
      // async destructor: drains the general queue; every fast-path
      // future was consumed above.
    }
    EXPECT_EQ(mismatches.load(), 0u);
    // Every single future resolved (none lost, none stuck).
    EXPECT_EQ(resolved.load(), issued_total);
    EXPECT_EQ(issued_total,
              static_cast<std::uint64_t>(threads) *
                  static_cast<std::uint64_t>(requests_per_thread));
  }

 private:
  EmbeddingStore store_;
  LookupConfig config_;
};

TEST(AsyncStress, MixedTrafficFp32NoCacheResolvesBitIdentical) {
  StressCase(32, 0).run(/*threads=*/4, /*requests_per_thread=*/600, 101);
}

TEST(AsyncStress, MixedTrafficInt8CachedResolvesBitIdentical) {
  StressCase(8, 128).run(/*threads=*/4, /*requests_per_thread=*/600, 202);
}

TEST(AsyncStress, TinyRingForcesBackpressureAndStillResolvesAll) {
  // A ring sized to the minimum (2 × max_batch) with 6 producers: full
  // slots make producers help combine; everything must still resolve.
  EmbeddingStore store;
  SnapshotConfig snap;
  snap.bits = 8;
  store.add_version("live", random_embedding(77), snap);
  LookupService service(store);
  const LookupService direct(store);
  BatcherConfig config;
  config.max_batch_size = 8;
  config.ring_capacity = 2;  // rounded up to 2 × max_batch internally
  AsyncLookupService async(service, config);

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 6; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(404 + static_cast<std::uint64_t>(t));
      std::deque<std::pair<std::size_t, AsyncLookupService::SliceFuture>>
          window;
      for (int i = 0; i < 800; ++i) {
        const std::size_t id = rng.index(kVocab);
        window.emplace_back(id, async.lookup_id(id));
        if (rng.bernoulli(0.01)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        while (window.size() > 4) {
          auto [want_id, fut] = std::move(window.front());
          window.pop_front();
          const ResultSlice slice = fut.get();
          LookupResult expected;
          direct.lookup_ids_into({want_id}, &expected);
          if (!slice_matches(slice, expected)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      while (!window.empty()) {
        window.front().second.get();
        window.pop_front();
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace anchor::serve
