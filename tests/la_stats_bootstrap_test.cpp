// Tests for the bootstrap Spearman confidence interval: coverage of the
// point estimate, determinism, width behavior with sample size, and input
// validation.
#include <gtest/gtest.h>

#include "la/stats.hpp"
#include "util/rng.hpp"

namespace anchor::la {
namespace {

/// Correlated pair sample: y = x + noise·ε.
std::pair<std::vector<double>, std::vector<double>> correlated_sample(
    std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = x[i] + noise * rng.normal();
  }
  return {x, y};
}

TEST(BootstrapSpearman, IntervalContainsPointEstimate) {
  const auto [x, y] = correlated_sample(60, 0.8, 1);
  const BootstrapInterval ci = bootstrap_spearman_ci(x, y, 500);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_DOUBLE_EQ(ci.point, spearman(x, y));
}

TEST(BootstrapSpearman, StrongCorrelationExcludesZero) {
  const auto [x, y] = correlated_sample(80, 0.2, 2);
  const BootstrapInterval ci = bootstrap_spearman_ci(x, y, 1000);
  EXPECT_GT(ci.lo, 0.0) << "a nearly-deterministic relation's 95% CI "
                           "must not include zero";
}

TEST(BootstrapSpearman, IndependentDataIntervalStraddlesZero) {
  Rng rng(3);
  std::vector<double> x(100), y(100);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const BootstrapInterval ci = bootstrap_spearman_ci(x, y, 1000);
  EXPECT_LT(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
}

TEST(BootstrapSpearman, DeterministicGivenSeed) {
  const auto [x, y] = correlated_sample(40, 0.5, 4);
  const BootstrapInterval a = bootstrap_spearman_ci(x, y, 300, 0.95, 99);
  const BootstrapInterval b = bootstrap_spearman_ci(x, y, 300, 0.95, 99);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(BootstrapSpearman, MoreDataNarrowsTheInterval) {
  const auto [xs, ys] = correlated_sample(20, 0.8, 5);
  const auto [xl, yl] = correlated_sample(400, 0.8, 5);
  const BootstrapInterval small = bootstrap_spearman_ci(xs, ys, 800);
  const BootstrapInterval large = bootstrap_spearman_ci(xl, yl, 800);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(BootstrapSpearman, WiderLevelGivesWiderInterval) {
  const auto [x, y] = correlated_sample(50, 1.0, 6);
  const BootstrapInterval narrow = bootstrap_spearman_ci(x, y, 800, 0.80);
  const BootstrapInterval wide = bootstrap_spearman_ci(x, y, 800, 0.99);
  EXPECT_LE(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(BootstrapSpearman, RejectsDegenerateInputs) {
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(bootstrap_spearman_ci(two, two), CheckError);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(bootstrap_spearman_ci(x, y), CheckError);
  const std::vector<double> ok = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(bootstrap_spearman_ci(ok, ok, 2000, 1.5), CheckError);
  EXPECT_THROW(bootstrap_spearman_ci(ok, ok, 1), CheckError);
}

}  // namespace
}  // namespace anchor::la
