// Tests for uniform quantization: grid structure, monotone error in the
// precision, clip-threshold sharing, deterministic vs stochastic rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "compress/quantize.hpp"
#include "util/rng.hpp"

namespace anchor::compress {
namespace {

embed::Embedding random_embedding(std::size_t vocab, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  embed::Embedding e(vocab, dim);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 0.3));
  return e;
}

double mse(const embed::Embedding& a, const embed::Embedding& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    const double d = static_cast<double>(a.data[i]) - b.data[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data.size());
}

TEST(Quantize, FullPrecisionIsPassthrough) {
  const embed::Embedding e = random_embedding(50, 8, 1);
  QuantizeConfig config;
  config.bits = 32;
  const QuantizeResult r = uniform_quantize(e, config);
  EXPECT_EQ(r.embedding.data, e.data);
}

TEST(Quantize, RejectsUnsupportedBitWidths) {
  const embed::Embedding e = random_embedding(10, 4, 1);
  QuantizeConfig config;
  config.bits = 3;
  EXPECT_THROW(uniform_quantize(e, config), CheckError);
}

class QuantizeBits : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBits, AtMostTwoToTheBDistinctLevels) {
  const int bits = GetParam();
  const embed::Embedding e = random_embedding(80, 16, 2);
  QuantizeConfig config;
  config.bits = bits;
  const QuantizeResult r = uniform_quantize(e, config);
  std::set<float> levels(r.embedding.data.begin(), r.embedding.data.end());
  EXPECT_LE(levels.size(), static_cast<std::size_t>(1) << bits);
}

TEST_P(QuantizeBits, ValuesStayWithinClip) {
  const int bits = GetParam();
  const embed::Embedding e = random_embedding(80, 16, 3);
  QuantizeConfig config;
  config.bits = bits;
  const QuantizeResult r = uniform_quantize(e, config);
  for (const float v : r.embedding.data) {
    EXPECT_LE(std::abs(v), r.clip * (1.0f + 1e-5f));
  }
}

TEST_P(QuantizeBits, Idempotent) {
  // Quantizing an already-quantized matrix with the same clip is a no-op.
  const int bits = GetParam();
  const embed::Embedding e = random_embedding(40, 8, 4);
  QuantizeConfig config;
  config.bits = bits;
  const QuantizeResult first = uniform_quantize(e, config);
  config.clip_override = first.clip;
  const QuantizeResult second = uniform_quantize(first.embedding, config);
  for (std::size_t i = 0; i < first.embedding.data.size(); ++i) {
    EXPECT_NEAR(second.embedding.data[i], first.embedding.data[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeBits, ::testing::Values(1, 2, 4, 8, 16));

TEST(Quantize, ErrorDecreasesMonotonicallyWithBits) {
  const embed::Embedding e = random_embedding(200, 16, 5);
  double prev = 1e300;
  for (const int bits : {1, 2, 4, 8, 16}) {
    QuantizeConfig config;
    config.bits = bits;
    const QuantizeResult r = uniform_quantize(e, config);
    const double err = mse(e, r.embedding);
    EXPECT_LT(err, prev);
    prev = err;
  }
  // 16-bit error is already tiny relative to the data scale (~0.09 var).
  EXPECT_LT(prev, 1e-6);
}

TEST(Quantize, ClipOverrideIsRespected) {
  const embed::Embedding e = random_embedding(60, 8, 6);
  QuantizeConfig config;
  config.bits = 4;
  config.clip_override = 0.123f;
  const QuantizeResult r = uniform_quantize(e, config);
  EXPECT_FLOAT_EQ(r.clip, 0.123f);
  for (const float v : r.embedding.data) EXPECT_LE(std::abs(v), 0.1231f);
}

TEST(Quantize, SharedClipMakesPairGridsIdentical) {
  // The §C.2 protocol: X̃ reuses X's threshold, so both land on the same
  // level grid and grid mismatch cannot masquerade as instability.
  const embed::Embedding x = random_embedding(60, 8, 7);
  embed::Embedding x_tilde = x;
  for (auto& v : x_tilde.data) v += 0.001f;
  QuantizeConfig config;
  config.bits = 2;
  const QuantizeResult qx = uniform_quantize(x, config);
  config.clip_override = qx.clip;
  const QuantizeResult qxt = uniform_quantize(x_tilde, config);
  std::set<float> levels_x(qx.embedding.data.begin(), qx.embedding.data.end());
  for (const float v : qxt.embedding.data) {
    EXPECT_TRUE(levels_x.count(v) > 0) << "off-grid value " << v;
  }
}

TEST(Quantize, DeterministicRoundingIsStable) {
  const embed::Embedding e = random_embedding(60, 8, 8);
  QuantizeConfig config;
  config.bits = 4;
  const QuantizeResult a = uniform_quantize(e, config);
  const QuantizeResult b = uniform_quantize(e, config);
  EXPECT_EQ(a.embedding.data, b.embedding.data);
}

TEST(Quantize, StochasticRoundingIsUnbiasedOnAverage) {
  // Single value quantized many times: the mean must approach the value.
  embed::Embedding e(1, 1);
  e.data[0] = 0.37f;
  QuantizeConfig config;
  config.bits = 1;
  config.rounding = Rounding::kStochastic;
  config.clip_override = 1.0f;
  double sum = 0.0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    config.stochastic_seed = static_cast<std::uint64_t>(i + 1);
    sum += uniform_quantize(e, config).embedding.data[0];
  }
  EXPECT_NEAR(sum / trials, 0.37, 0.05);
}

TEST(Quantize, OptimalClipBeatsMaxAbsAtLowBits) {
  // With heavy-tailed data, clipping below max|x| reduces MSE at 1–4 bits.
  Rng rng(9);
  std::vector<float> values(20000);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  values[0] = 5.0f;  // one extreme outlier
  float max_abs = 0.0f;
  for (const float v : values) max_abs = std::max(max_abs, std::abs(v));
  const float clip = optimal_clip_threshold(values, 2);
  EXPECT_LT(clip, max_abs);
}

TEST(Quantize, HighBitsClipIsMaxAbs) {
  const std::vector<float> values = {-2.0f, 1.0f, 0.5f};
  EXPECT_FLOAT_EQ(optimal_clip_threshold(values, 16), 2.0f);
}

TEST(Quantize, AllZeroInputHandled) {
  // The symmetric 2^b grid has no exact zero level; all-zero input must map
  // to one consistent level of minimal magnitude (half a grid step).
  embed::Embedding e(4, 4, 0.0f);
  QuantizeConfig config;
  config.bits = 2;
  const QuantizeResult r = uniform_quantize(e, config);
  const float first = r.embedding.data[0];
  const float step = 2.0f * r.clip / 3.0f;  // 4 levels across [-clip, clip]
  EXPECT_LE(std::abs(first), 0.5f * step + 1e-6f);
  for (const float v : r.embedding.data) EXPECT_FLOAT_EQ(v, first);
}

TEST(Quantize, BitsPerWordAccounting) {
  EXPECT_EQ(bits_per_word(100, 32), 3200u);
  EXPECT_EQ(bits_per_word(25, 1), 25u);
  // The paper's equal-memory example: (800, 2) and (50, 32).
  EXPECT_EQ(bits_per_word(800, 2), bits_per_word(50, 32));
}

}  // namespace
}  // namespace anchor::compress
