file(REMOVE_RECURSE
  "CMakeFiles/select_under_budget.dir/examples/select_under_budget.cpp.o"
  "CMakeFiles/select_under_budget.dir/examples/select_under_budget.cpp.o.d"
  "examples/select_under_budget"
  "examples/select_under_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_under_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
