# Empty compiler generated dependencies file for select_under_budget.
# This may be replaced when dependencies are built.
