# Empty compiler generated dependencies file for ctx_elmo_test.
# This may be replaced when dependencies are built.
