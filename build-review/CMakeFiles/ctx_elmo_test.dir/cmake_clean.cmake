file(REMOVE_RECURSE
  "CMakeFiles/ctx_elmo_test.dir/tests/ctx_elmo_test.cpp.o"
  "CMakeFiles/ctx_elmo_test.dir/tests/ctx_elmo_test.cpp.o.d"
  "ctx_elmo_test"
  "ctx_elmo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctx_elmo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
