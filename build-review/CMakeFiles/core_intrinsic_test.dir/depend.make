# Empty dependencies file for core_intrinsic_test.
# This may be replaced when dependencies are built.
