file(REMOVE_RECURSE
  "CMakeFiles/core_intrinsic_test.dir/tests/core_intrinsic_test.cpp.o"
  "CMakeFiles/core_intrinsic_test.dir/tests/core_intrinsic_test.cpp.o.d"
  "core_intrinsic_test"
  "core_intrinsic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_intrinsic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
