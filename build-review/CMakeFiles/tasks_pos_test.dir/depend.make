# Empty dependencies file for tasks_pos_test.
# This may be replaced when dependencies are built.
