file(REMOVE_RECURSE
  "CMakeFiles/tasks_pos_test.dir/tests/tasks_pos_test.cpp.o"
  "CMakeFiles/tasks_pos_test.dir/tests/tasks_pos_test.cpp.o.d"
  "tasks_pos_test"
  "tasks_pos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_pos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
