# Empty dependencies file for anchor.
# This may be replaced when dependencies are built.
