file(REMOVE_RECURSE
  "libanchor.a"
)
