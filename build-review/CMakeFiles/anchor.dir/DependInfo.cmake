
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/ann_service.cpp" "CMakeFiles/anchor.dir/src/ann/ann_service.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/ann/ann_service.cpp.o.d"
  "/root/repo/src/ann/ivf_pq.cpp" "CMakeFiles/anchor.dir/src/ann/ivf_pq.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/ann/ivf_pq.cpp.o.d"
  "/root/repo/src/cluster/client_pool.cpp" "CMakeFiles/anchor.dir/src/cluster/client_pool.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/cluster/client_pool.cpp.o.d"
  "/root/repo/src/cluster/cluster_client.cpp" "CMakeFiles/anchor.dir/src/cluster/cluster_client.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/cluster/cluster_client.cpp.o.d"
  "/root/repo/src/cluster/router.cpp" "CMakeFiles/anchor.dir/src/cluster/router.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/cluster/router.cpp.o.d"
  "/root/repo/src/cluster/shard_map.cpp" "CMakeFiles/anchor.dir/src/cluster/shard_map.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/cluster/shard_map.cpp.o.d"
  "/root/repo/src/compress/kmeans.cpp" "CMakeFiles/anchor.dir/src/compress/kmeans.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/compress/kmeans.cpp.o.d"
  "/root/repo/src/compress/pq.cpp" "CMakeFiles/anchor.dir/src/compress/pq.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/compress/pq.cpp.o.d"
  "/root/repo/src/compress/quantize.cpp" "CMakeFiles/anchor.dir/src/compress/quantize.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/compress/quantize.cpp.o.d"
  "/root/repo/src/core/instability.cpp" "CMakeFiles/anchor.dir/src/core/instability.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/instability.cpp.o.d"
  "/root/repo/src/core/intrinsic.cpp" "CMakeFiles/anchor.dir/src/core/intrinsic.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/intrinsic.cpp.o.d"
  "/root/repo/src/core/measures.cpp" "CMakeFiles/anchor.dir/src/core/measures.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/measures.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/anchor.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/report.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "CMakeFiles/anchor.dir/src/core/selection.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/selection.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "CMakeFiles/anchor.dir/src/core/theory.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/core/theory.cpp.o.d"
  "/root/repo/src/ctx/elmo.cpp" "CMakeFiles/anchor.dir/src/ctx/elmo.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/ctx/elmo.cpp.o.d"
  "/root/repo/src/ctx/tiny_bert.cpp" "CMakeFiles/anchor.dir/src/ctx/tiny_bert.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/ctx/tiny_bert.cpp.o.d"
  "/root/repo/src/embed/cbow.cpp" "CMakeFiles/anchor.dir/src/embed/cbow.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/cbow.cpp.o.d"
  "/root/repo/src/embed/embedding.cpp" "CMakeFiles/anchor.dir/src/embed/embedding.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/embedding.cpp.o.d"
  "/root/repo/src/embed/glove.cpp" "CMakeFiles/anchor.dir/src/embed/glove.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/glove.cpp.o.d"
  "/root/repo/src/embed/io.cpp" "CMakeFiles/anchor.dir/src/embed/io.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/io.cpp.o.d"
  "/root/repo/src/embed/mc.cpp" "CMakeFiles/anchor.dir/src/embed/mc.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/mc.cpp.o.d"
  "/root/repo/src/embed/negative_sampling.cpp" "CMakeFiles/anchor.dir/src/embed/negative_sampling.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/negative_sampling.cpp.o.d"
  "/root/repo/src/embed/ppmi_svd.cpp" "CMakeFiles/anchor.dir/src/embed/ppmi_svd.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/ppmi_svd.cpp.o.d"
  "/root/repo/src/embed/sgns.cpp" "CMakeFiles/anchor.dir/src/embed/sgns.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/sgns.cpp.o.d"
  "/root/repo/src/embed/subword.cpp" "CMakeFiles/anchor.dir/src/embed/subword.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/subword.cpp.o.d"
  "/root/repo/src/embed/trainer.cpp" "CMakeFiles/anchor.dir/src/embed/trainer.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/embed/trainer.cpp.o.d"
  "/root/repo/src/kge/distmult.cpp" "CMakeFiles/anchor.dir/src/kge/distmult.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/kge/distmult.cpp.o.d"
  "/root/repo/src/kge/kg_data.cpp" "CMakeFiles/anchor.dir/src/kge/kg_data.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/kge/kg_data.cpp.o.d"
  "/root/repo/src/kge/kge_eval.cpp" "CMakeFiles/anchor.dir/src/kge/kge_eval.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/kge/kge_eval.cpp.o.d"
  "/root/repo/src/kge/transe.cpp" "CMakeFiles/anchor.dir/src/kge/transe.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/kge/transe.cpp.o.d"
  "/root/repo/src/la/eigen.cpp" "CMakeFiles/anchor.dir/src/la/eigen.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/eigen.cpp.o.d"
  "/root/repo/src/la/kernels.cpp" "CMakeFiles/anchor.dir/src/la/kernels.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/kernels.cpp.o.d"
  "/root/repo/src/la/lstsq.cpp" "CMakeFiles/anchor.dir/src/la/lstsq.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/lstsq.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "CMakeFiles/anchor.dir/src/la/matrix.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/matrix.cpp.o.d"
  "/root/repo/src/la/procrustes.cpp" "CMakeFiles/anchor.dir/src/la/procrustes.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/procrustes.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "CMakeFiles/anchor.dir/src/la/sparse.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/sparse.cpp.o.d"
  "/root/repo/src/la/stats.cpp" "CMakeFiles/anchor.dir/src/la/stats.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/stats.cpp.o.d"
  "/root/repo/src/la/subspace.cpp" "CMakeFiles/anchor.dir/src/la/subspace.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/subspace.cpp.o.d"
  "/root/repo/src/la/svd.cpp" "CMakeFiles/anchor.dir/src/la/svd.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/la/svd.cpp.o.d"
  "/root/repo/src/model/bilstm.cpp" "CMakeFiles/anchor.dir/src/model/bilstm.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/model/bilstm.cpp.o.d"
  "/root/repo/src/model/feature_classifier.cpp" "CMakeFiles/anchor.dir/src/model/feature_classifier.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/model/feature_classifier.cpp.o.d"
  "/root/repo/src/model/linear_bow.cpp" "CMakeFiles/anchor.dir/src/model/linear_bow.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/model/linear_bow.cpp.o.d"
  "/root/repo/src/model/optimizer.cpp" "CMakeFiles/anchor.dir/src/model/optimizer.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/model/optimizer.cpp.o.d"
  "/root/repo/src/model/text_cnn.cpp" "CMakeFiles/anchor.dir/src/model/text_cnn.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/model/text_cnn.cpp.o.d"
  "/root/repo/src/net/client.cpp" "CMakeFiles/anchor.dir/src/net/client.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/client.cpp.o.d"
  "/root/repo/src/net/fault.cpp" "CMakeFiles/anchor.dir/src/net/fault.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/fault.cpp.o.d"
  "/root/repo/src/net/metrics_http.cpp" "CMakeFiles/anchor.dir/src/net/metrics_http.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/metrics_http.cpp.o.d"
  "/root/repo/src/net/server.cpp" "CMakeFiles/anchor.dir/src/net/server.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/server.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "CMakeFiles/anchor.dir/src/net/socket.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/socket.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "CMakeFiles/anchor.dir/src/net/wire.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/net/wire.cpp.o.d"
  "/root/repo/src/obs/drift_probe.cpp" "CMakeFiles/anchor.dir/src/obs/drift_probe.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/drift_probe.cpp.o.d"
  "/root/repo/src/obs/heavy_hitters.cpp" "CMakeFiles/anchor.dir/src/obs/heavy_hitters.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/heavy_hitters.cpp.o.d"
  "/root/repo/src/obs/log_histogram.cpp" "CMakeFiles/anchor.dir/src/obs/log_histogram.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/log_histogram.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "CMakeFiles/anchor.dir/src/obs/metrics.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "CMakeFiles/anchor.dir/src/obs/trace.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/trace.cpp.o.d"
  "/root/repo/src/obs/windowed.cpp" "CMakeFiles/anchor.dir/src/obs/windowed.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/obs/windowed.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "CMakeFiles/anchor.dir/src/pipeline/pipeline.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/serve/batcher.cpp" "CMakeFiles/anchor.dir/src/serve/batcher.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/batcher.cpp.o.d"
  "/root/repo/src/serve/canary.cpp" "CMakeFiles/anchor.dir/src/serve/canary.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/canary.cpp.o.d"
  "/root/repo/src/serve/demo_store.cpp" "CMakeFiles/anchor.dir/src/serve/demo_store.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/demo_store.cpp.o.d"
  "/root/repo/src/serve/deployment_gate.cpp" "CMakeFiles/anchor.dir/src/serve/deployment_gate.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/deployment_gate.cpp.o.d"
  "/root/repo/src/serve/embedding_store.cpp" "CMakeFiles/anchor.dir/src/serve/embedding_store.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/embedding_store.cpp.o.d"
  "/root/repo/src/serve/lookup_service.cpp" "CMakeFiles/anchor.dir/src/serve/lookup_service.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/lookup_service.cpp.o.d"
  "/root/repo/src/serve/serve_stats.cpp" "CMakeFiles/anchor.dir/src/serve/serve_stats.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/serve/serve_stats.cpp.o.d"
  "/root/repo/src/tasks/ner.cpp" "CMakeFiles/anchor.dir/src/tasks/ner.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/tasks/ner.cpp.o.d"
  "/root/repo/src/tasks/pos.cpp" "CMakeFiles/anchor.dir/src/tasks/pos.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/tasks/pos.cpp.o.d"
  "/root/repo/src/tasks/sentiment.cpp" "CMakeFiles/anchor.dir/src/tasks/sentiment.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/tasks/sentiment.cpp.o.d"
  "/root/repo/src/text/cooc.cpp" "CMakeFiles/anchor.dir/src/text/cooc.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/text/cooc.cpp.o.d"
  "/root/repo/src/text/corpus.cpp" "CMakeFiles/anchor.dir/src/text/corpus.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/text/corpus.cpp.o.d"
  "/root/repo/src/text/latent_space.cpp" "CMakeFiles/anchor.dir/src/text/latent_space.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/text/latent_space.cpp.o.d"
  "/root/repo/src/util/argparse.cpp" "CMakeFiles/anchor.dir/src/util/argparse.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/util/argparse.cpp.o.d"
  "/root/repo/src/util/cache.cpp" "CMakeFiles/anchor.dir/src/util/cache.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/util/cache.cpp.o.d"
  "/root/repo/src/util/io.cpp" "CMakeFiles/anchor.dir/src/util/io.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/util/io.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/anchor.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/anchor.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/anchor.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
