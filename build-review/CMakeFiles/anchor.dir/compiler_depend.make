# Empty compiler generated dependencies file for anchor.
# This may be replaced when dependencies are built.
