file(REMOVE_RECURSE
  "CMakeFiles/bench_obs_load.dir/bench/bench_obs_load.cpp.o"
  "CMakeFiles/bench_obs_load.dir/bench/bench_obs_load.cpp.o.d"
  "bench/bench_obs_load"
  "bench/bench_obs_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
