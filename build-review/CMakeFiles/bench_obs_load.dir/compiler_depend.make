# Empty compiler generated dependencies file for bench_obs_load.
# This may be replaced when dependencies are built.
