file(REMOVE_RECURSE
  "CMakeFiles/serve_async_test.dir/tests/serve_async_test.cpp.o"
  "CMakeFiles/serve_async_test.dir/tests/serve_async_test.cpp.o.d"
  "serve_async_test"
  "serve_async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
