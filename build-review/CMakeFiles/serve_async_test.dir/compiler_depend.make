# Empty compiler generated dependencies file for serve_async_test.
# This may be replaced when dependencies are built.
