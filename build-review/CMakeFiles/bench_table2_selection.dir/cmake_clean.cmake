file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_selection.dir/bench/bench_table2_selection.cpp.o"
  "CMakeFiles/bench_table2_selection.dir/bench/bench_table2_selection.cpp.o.d"
  "bench/bench_table2_selection"
  "bench/bench_table2_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
