# Empty dependencies file for bench_table2_selection.
# This may be replaced when dependencies are built.
