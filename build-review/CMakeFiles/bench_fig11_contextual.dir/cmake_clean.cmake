file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_contextual.dir/bench/bench_fig11_contextual.cpp.o"
  "CMakeFiles/bench_fig11_contextual.dir/bench/bench_fig11_contextual.cpp.o.d"
  "bench/bench_fig11_contextual"
  "bench/bench_fig11_contextual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_contextual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
