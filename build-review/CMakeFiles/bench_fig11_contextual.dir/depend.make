# Empty dependencies file for bench_fig11_contextual.
# This may be replaced when dependencies are built.
