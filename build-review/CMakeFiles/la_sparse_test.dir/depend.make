# Empty dependencies file for la_sparse_test.
# This may be replaced when dependencies are built.
