file(REMOVE_RECURSE
  "CMakeFiles/la_sparse_test.dir/tests/la_sparse_test.cpp.o"
  "CMakeFiles/la_sparse_test.dir/tests/la_sparse_test.cpp.o.d"
  "la_sparse_test"
  "la_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
