file(REMOVE_RECURSE
  "CMakeFiles/ctx_test.dir/tests/ctx_test.cpp.o"
  "CMakeFiles/ctx_test.dir/tests/ctx_test.cpp.o.d"
  "ctx_test"
  "ctx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
