file(REMOVE_RECURSE
  "CMakeFiles/compress_ext_test.dir/tests/compress_ext_test.cpp.o"
  "CMakeFiles/compress_ext_test.dir/tests/compress_ext_test.cpp.o.d"
  "compress_ext_test"
  "compress_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
