file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pos_tagging.dir/bench/bench_ext_pos_tagging.cpp.o"
  "CMakeFiles/bench_ext_pos_tagging.dir/bench/bench_ext_pos_tagging.cpp.o.d"
  "bench/bench_ext_pos_tagging"
  "bench/bench_ext_pos_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pos_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
