# Empty compiler generated dependencies file for bench_ext_pos_tagging.
# This may be replaced when dependencies are built.
