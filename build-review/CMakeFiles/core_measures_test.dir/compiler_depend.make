# Empty compiler generated dependencies file for core_measures_test.
# This may be replaced when dependencies are built.
