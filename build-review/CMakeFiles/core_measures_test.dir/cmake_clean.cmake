file(REMOVE_RECURSE
  "CMakeFiles/core_measures_test.dir/tests/core_measures_test.cpp.o"
  "CMakeFiles/core_measures_test.dir/tests/core_measures_test.cpp.o.d"
  "core_measures_test"
  "core_measures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
