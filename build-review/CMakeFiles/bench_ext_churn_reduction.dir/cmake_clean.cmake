file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_churn_reduction.dir/bench/bench_ext_churn_reduction.cpp.o"
  "CMakeFiles/bench_ext_churn_reduction.dir/bench/bench_ext_churn_reduction.cpp.o.d"
  "bench/bench_ext_churn_reduction"
  "bench/bench_ext_churn_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_churn_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
