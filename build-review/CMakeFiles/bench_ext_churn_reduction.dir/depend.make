# Empty dependencies file for bench_ext_churn_reduction.
# This may be replaced when dependencies are built.
