file(REMOVE_RECURSE
  "CMakeFiles/embed_ext_test.dir/tests/embed_ext_test.cpp.o"
  "CMakeFiles/embed_ext_test.dir/tests/embed_ext_test.cpp.o.d"
  "embed_ext_test"
  "embed_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
