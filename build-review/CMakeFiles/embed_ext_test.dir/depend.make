# Empty dependencies file for embed_ext_test.
# This may be replaced when dependencies are built.
