file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fasttext.dir/bench/bench_fig12_fasttext.cpp.o"
  "CMakeFiles/bench_fig12_fasttext.dir/bench/bench_fig12_fasttext.cpp.o.d"
  "bench/bench_fig12_fasttext"
  "bench/bench_fig12_fasttext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fasttext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
