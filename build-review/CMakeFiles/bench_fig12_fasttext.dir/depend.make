# Empty dependencies file for bench_fig12_fasttext.
# This may be replaced when dependencies are built.
