file(REMOVE_RECURSE
  "CMakeFiles/pipeline_ext_test.dir/tests/pipeline_ext_test.cpp.o"
  "CMakeFiles/pipeline_ext_test.dir/tests/pipeline_ext_test.cpp.o.d"
  "pipeline_ext_test"
  "pipeline_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
