file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_quality.dir/bench/bench_fig7_8_quality.cpp.o"
  "CMakeFiles/bench_fig7_8_quality.dir/bench/bench_fig7_8_quality.cpp.o.d"
  "bench/bench_fig7_8_quality"
  "bench/bench_fig7_8_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
