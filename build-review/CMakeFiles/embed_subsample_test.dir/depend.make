# Empty dependencies file for embed_subsample_test.
# This may be replaced when dependencies are built.
