file(REMOVE_RECURSE
  "CMakeFiles/embed_subsample_test.dir/tests/embed_subsample_test.cpp.o"
  "CMakeFiles/embed_subsample_test.dir/tests/embed_subsample_test.cpp.o.d"
  "embed_subsample_test"
  "embed_subsample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_subsample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
