file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_11_worstcase.dir/bench/bench_table10_11_worstcase.cpp.o"
  "CMakeFiles/bench_table10_11_worstcase.dir/bench/bench_table10_11_worstcase.cpp.o.d"
  "bench/bench_table10_11_worstcase"
  "bench/bench_table10_11_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_11_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
