# Empty dependencies file for bench_table10_11_worstcase.
# This may be replaced when dependencies are built.
