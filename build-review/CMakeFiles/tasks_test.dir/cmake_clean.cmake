file(REMOVE_RECURSE
  "CMakeFiles/tasks_test.dir/tests/tasks_test.cpp.o"
  "CMakeFiles/tasks_test.dir/tests/tasks_test.cpp.o.d"
  "tasks_test"
  "tasks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
