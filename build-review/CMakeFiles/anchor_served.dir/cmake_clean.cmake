file(REMOVE_RECURSE
  "CMakeFiles/anchor_served.dir/tools/anchor_served.cpp.o"
  "CMakeFiles/anchor_served.dir/tools/anchor_served.cpp.o.d"
  "anchor_served"
  "anchor_served.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_served.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
