# Empty dependencies file for anchor_served.
# This may be replaced when dependencies are built.
