file(REMOVE_RECURSE
  "CMakeFiles/kge_distmult_test.dir/tests/kge_distmult_test.cpp.o"
  "CMakeFiles/kge_distmult_test.dir/tests/kge_distmult_test.cpp.o.d"
  "kge_distmult_test"
  "kge_distmult_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kge_distmult_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
