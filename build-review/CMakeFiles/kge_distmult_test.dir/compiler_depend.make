# Empty compiler generated dependencies file for kge_distmult_test.
# This may be replaced when dependencies are built.
