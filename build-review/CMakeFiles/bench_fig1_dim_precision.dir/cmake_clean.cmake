file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_dim_precision.dir/bench/bench_fig1_dim_precision.cpp.o"
  "CMakeFiles/bench_fig1_dim_precision.dir/bench/bench_fig1_dim_precision.cpp.o.d"
  "bench/bench_fig1_dim_precision"
  "bench/bench_fig1_dim_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dim_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
