# Empty compiler generated dependencies file for bench_fig1_dim_precision.
# This may be replaced when dependencies are built.
