file(REMOVE_RECURSE
  "CMakeFiles/compression_tradeoffs.dir/examples/compression_tradeoffs.cpp.o"
  "CMakeFiles/compression_tradeoffs.dir/examples/compression_tradeoffs.cpp.o.d"
  "examples/compression_tradeoffs"
  "examples/compression_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
