# Empty dependencies file for compression_tradeoffs.
# This may be replaced when dependencies are built.
