file(REMOVE_RECURSE
  "CMakeFiles/serve_canary_test.dir/tests/serve_canary_test.cpp.o"
  "CMakeFiles/serve_canary_test.dir/tests/serve_canary_test.cpp.o.d"
  "serve_canary_test"
  "serve_canary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_canary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
