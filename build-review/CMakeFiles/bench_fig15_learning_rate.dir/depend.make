# Empty dependencies file for bench_fig15_learning_rate.
# This may be replaced when dependencies are built.
