file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_learning_rate.dir/bench/bench_fig15_learning_rate.cpp.o"
  "CMakeFiles/bench_fig15_learning_rate.dir/bench/bench_fig15_learning_rate.cpp.o.d"
  "bench/bench_fig15_learning_rate"
  "bench/bench_fig15_learning_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_learning_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
