file(REMOVE_RECURSE
  "CMakeFiles/ann_test.dir/tests/ann_test.cpp.o"
  "CMakeFiles/ann_test.dir/tests/ann_test.cpp.o.d"
  "ann_test"
  "ann_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
