# Empty dependencies file for ann_test.
# This may be replaced when dependencies are built.
