file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_intrinsic_quality.dir/bench/bench_ext_intrinsic_quality.cpp.o"
  "CMakeFiles/bench_ext_intrinsic_quality.dir/bench/bench_ext_intrinsic_quality.cpp.o.d"
  "bench/bench_ext_intrinsic_quality"
  "bench/bench_ext_intrinsic_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intrinsic_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
