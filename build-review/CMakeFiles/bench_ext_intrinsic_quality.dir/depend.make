# Empty dependencies file for bench_ext_intrinsic_quality.
# This may be replaced when dependencies are built.
