file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_kge.dir/bench/bench_fig3_kge.cpp.o"
  "CMakeFiles/bench_fig3_kge.dir/bench/bench_fig3_kge.cpp.o.d"
  "bench/bench_fig3_kge"
  "bench/bench_fig3_kge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
