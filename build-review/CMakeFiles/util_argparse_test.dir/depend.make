# Empty dependencies file for util_argparse_test.
# This may be replaced when dependencies are built.
