file(REMOVE_RECURSE
  "CMakeFiles/util_argparse_test.dir/tests/util_argparse_test.cpp.o"
  "CMakeFiles/util_argparse_test.dir/tests/util_argparse_test.cpp.o.d"
  "util_argparse_test"
  "util_argparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_argparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
