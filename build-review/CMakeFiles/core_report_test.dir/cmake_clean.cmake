file(REMOVE_RECURSE
  "CMakeFiles/core_report_test.dir/tests/core_report_test.cpp.o"
  "CMakeFiles/core_report_test.dir/tests/core_report_test.cpp.o.d"
  "core_report_test"
  "core_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
