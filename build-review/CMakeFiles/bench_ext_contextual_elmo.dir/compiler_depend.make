# Empty compiler generated dependencies file for bench_ext_contextual_elmo.
# This may be replaced when dependencies are built.
