file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_contextual_elmo.dir/bench/bench_ext_contextual_elmo.cpp.o"
  "CMakeFiles/bench_ext_contextual_elmo.dir/bench/bench_ext_contextual_elmo.cpp.o.d"
  "bench/bench_ext_contextual_elmo"
  "bench/bench_ext_contextual_elmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_contextual_elmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
