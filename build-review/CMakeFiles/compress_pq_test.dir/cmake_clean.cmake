file(REMOVE_RECURSE
  "CMakeFiles/compress_pq_test.dir/tests/compress_pq_test.cpp.o"
  "CMakeFiles/compress_pq_test.dir/tests/compress_pq_test.cpp.o.d"
  "compress_pq_test"
  "compress_pq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_pq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
