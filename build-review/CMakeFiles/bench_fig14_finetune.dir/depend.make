# Empty dependencies file for bench_fig14_finetune.
# This may be replaced when dependencies are built.
