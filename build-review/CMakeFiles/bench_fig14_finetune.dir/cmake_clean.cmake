file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_finetune.dir/bench/bench_fig14_finetune.cpp.o"
  "CMakeFiles/bench_fig14_finetune.dir/bench/bench_fig14_finetune.cpp.o.d"
  "bench/bench_fig14_finetune"
  "bench/bench_fig14_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
