# Empty dependencies file for embedding_server_audit.
# This may be replaced when dependencies are built.
