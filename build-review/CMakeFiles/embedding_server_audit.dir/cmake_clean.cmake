file(REMOVE_RECURSE
  "CMakeFiles/embedding_server_audit.dir/examples/embedding_server_audit.cpp.o"
  "CMakeFiles/embedding_server_audit.dir/examples/embedding_server_audit.cpp.o.d"
  "examples/embedding_server_audit"
  "examples/embedding_server_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_server_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
