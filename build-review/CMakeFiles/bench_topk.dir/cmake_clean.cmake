file(REMOVE_RECURSE
  "CMakeFiles/bench_topk.dir/bench/bench_topk.cpp.o"
  "CMakeFiles/bench_topk.dir/bench/bench_topk.cpp.o.d"
  "bench/bench_topk"
  "bench/bench_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
