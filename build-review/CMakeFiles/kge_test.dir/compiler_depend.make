# Empty compiler generated dependencies file for kge_test.
# This may be replaced when dependencies are built.
