file(REMOVE_RECURSE
  "CMakeFiles/kge_test.dir/tests/kge_test.cpp.o"
  "CMakeFiles/kge_test.dir/tests/kge_test.cpp.o.d"
  "kge_test"
  "kge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
