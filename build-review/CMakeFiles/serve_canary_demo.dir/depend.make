# Empty dependencies file for serve_canary_demo.
# This may be replaced when dependencies are built.
