file(REMOVE_RECURSE
  "CMakeFiles/serve_canary_demo.dir/examples/serve_canary_demo.cpp.o"
  "CMakeFiles/serve_canary_demo.dir/examples/serve_canary_demo.cpp.o.d"
  "examples/serve_canary_demo"
  "examples/serve_canary_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_canary_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
