file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_complex_models.dir/bench/bench_fig13_complex_models.cpp.o"
  "CMakeFiles/bench_fig13_complex_models.dir/bench/bench_fig13_complex_models.cpp.o.d"
  "bench/bench_fig13_complex_models"
  "bench/bench_fig13_complex_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_complex_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
