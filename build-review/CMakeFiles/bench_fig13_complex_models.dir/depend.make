# Empty dependencies file for bench_fig13_complex_models.
# This may be replaced when dependencies are built.
