file(REMOVE_RECURSE
  "CMakeFiles/serve_stress_test.dir/tests/serve_stress_test.cpp.o"
  "CMakeFiles/serve_stress_test.dir/tests/serve_stress_test.cpp.o.d"
  "serve_stress_test"
  "serve_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
