file(REMOVE_RECURSE
  "CMakeFiles/drift_monitor.dir/examples/drift_monitor.cpp.o"
  "CMakeFiles/drift_monitor.dir/examples/drift_monitor.cpp.o.d"
  "examples/drift_monitor"
  "examples/drift_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
