# Empty dependencies file for serve_hot_swap.
# This may be replaced when dependencies are built.
