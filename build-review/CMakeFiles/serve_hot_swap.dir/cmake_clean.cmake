file(REMOVE_RECURSE
  "CMakeFiles/serve_hot_swap.dir/examples/serve_hot_swap.cpp.o"
  "CMakeFiles/serve_hot_swap.dir/examples/serve_hot_swap.cpp.o.d"
  "examples/serve_hot_swap"
  "examples/serve_hot_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_hot_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
