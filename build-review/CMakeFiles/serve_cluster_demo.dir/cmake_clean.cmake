file(REMOVE_RECURSE
  "CMakeFiles/serve_cluster_demo.dir/examples/serve_cluster_demo.cpp.o"
  "CMakeFiles/serve_cluster_demo.dir/examples/serve_cluster_demo.cpp.o.d"
  "examples/serve_cluster_demo"
  "examples/serve_cluster_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_cluster_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
