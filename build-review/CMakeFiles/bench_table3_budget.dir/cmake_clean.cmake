file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_budget.dir/bench/bench_table3_budget.cpp.o"
  "CMakeFiles/bench_table3_budget.dir/bench/bench_table3_budget.cpp.o.d"
  "bench/bench_table3_budget"
  "bench/bench_table3_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
