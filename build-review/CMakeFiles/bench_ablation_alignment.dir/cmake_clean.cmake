file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alignment.dir/bench/bench_ablation_alignment.cpp.o"
  "CMakeFiles/bench_ablation_alignment.dir/bench/bench_ablation_alignment.cpp.o.d"
  "bench/bench_ablation_alignment"
  "bench/bench_ablation_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
