# Empty compiler generated dependencies file for bench_ablation_alignment.
# This may be replaced when dependencies are built.
