file(REMOVE_RECURSE
  "CMakeFiles/kge_stability.dir/examples/kge_stability.cpp.o"
  "CMakeFiles/kge_stability.dir/examples/kge_stability.cpp.o.d"
  "examples/kge_stability"
  "examples/kge_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kge_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
