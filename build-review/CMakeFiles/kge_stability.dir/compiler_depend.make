# Empty compiler generated dependencies file for kge_stability.
# This may be replaced when dependencies are built.
