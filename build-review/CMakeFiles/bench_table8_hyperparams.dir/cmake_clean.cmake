file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_hyperparams.dir/bench/bench_table8_hyperparams.cpp.o"
  "CMakeFiles/bench_table8_hyperparams.dir/bench/bench_table8_hyperparams.cpp.o.d"
  "bench/bench_table8_hyperparams"
  "bench/bench_table8_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
