# Empty dependencies file for serve_rpc_demo.
# This may be replaced when dependencies are built.
