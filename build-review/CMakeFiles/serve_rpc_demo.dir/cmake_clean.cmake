file(REMOVE_RECURSE
  "CMakeFiles/serve_rpc_demo.dir/examples/serve_rpc_demo.cpp.o"
  "CMakeFiles/serve_rpc_demo.dir/examples/serve_rpc_demo.cpp.o.d"
  "examples/serve_rpc_demo"
  "examples/serve_rpc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_rpc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
