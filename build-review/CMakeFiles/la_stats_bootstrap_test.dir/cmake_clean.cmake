file(REMOVE_RECURSE
  "CMakeFiles/la_stats_bootstrap_test.dir/tests/la_stats_bootstrap_test.cpp.o"
  "CMakeFiles/la_stats_bootstrap_test.dir/tests/la_stats_bootstrap_test.cpp.o.d"
  "la_stats_bootstrap_test"
  "la_stats_bootstrap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_stats_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
