# Empty dependencies file for la_stats_bootstrap_test.
# This may be replaced when dependencies are built.
