file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_measures.dir/bench/bench_micro_measures.cpp.o"
  "CMakeFiles/bench_micro_measures.dir/bench/bench_micro_measures.cpp.o.d"
  "bench/bench_micro_measures"
  "bench/bench_micro_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
