# Empty compiler generated dependencies file for bench_micro_measures.
# This may be replaced when dependencies are built.
