file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_throughput.dir/bench/bench_serve_throughput.cpp.o"
  "CMakeFiles/bench_serve_throughput.dir/bench/bench_serve_throughput.cpp.o.d"
  "bench/bench_serve_throughput"
  "bench/bench_serve_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
