file(REMOVE_RECURSE
  "CMakeFiles/anchor_router.dir/tools/anchor_router.cpp.o"
  "CMakeFiles/anchor_router.dir/tools/anchor_router.cpp.o.d"
  "anchor_router"
  "anchor_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
