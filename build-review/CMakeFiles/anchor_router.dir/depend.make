# Empty dependencies file for anchor_router.
# This may be replaced when dependencies are built.
