# Empty dependencies file for bench_table13_randomness.
# This may be replaced when dependencies are built.
