file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_randomness.dir/bench/bench_table13_randomness.cpp.o"
  "CMakeFiles/bench_table13_randomness.dir/bench/bench_table13_randomness.cpp.o.d"
  "bench/bench_table13_randomness"
  "bench/bench_table13_randomness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
