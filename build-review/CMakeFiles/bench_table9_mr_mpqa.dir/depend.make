# Empty dependencies file for bench_table9_mr_mpqa.
# This may be replaced when dependencies are built.
