file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_mr_mpqa.dir/bench/bench_table9_mr_mpqa.cpp.o"
  "CMakeFiles/bench_table9_mr_mpqa.dir/bench/bench_table9_mr_mpqa.cpp.o.d"
  "bench/bench_table9_mr_mpqa"
  "bench/bench_table9_mr_mpqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_mr_mpqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
