# Empty compiler generated dependencies file for bench_ext_kge_models.
# This may be replaced when dependencies are built.
