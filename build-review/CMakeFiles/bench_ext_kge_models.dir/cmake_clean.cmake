file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kge_models.dir/bench/bench_ext_kge_models.cpp.o"
  "CMakeFiles/bench_ext_kge_models.dir/bench/bench_ext_kge_models.cpp.o.d"
  "bench/bench_ext_kge_models"
  "bench/bench_ext_kge_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kge_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
