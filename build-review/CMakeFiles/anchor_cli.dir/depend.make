# Empty dependencies file for anchor_cli.
# This may be replaced when dependencies are built.
