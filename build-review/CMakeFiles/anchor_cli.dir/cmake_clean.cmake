file(REMOVE_RECURSE
  "CMakeFiles/anchor_cli.dir/tools/anchor_cli.cpp.o"
  "CMakeFiles/anchor_cli.dir/tools/anchor_cli.cpp.o.d"
  "anchor_cli"
  "anchor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
