file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_memory_tradeoff.dir/bench/bench_fig2_memory_tradeoff.cpp.o"
  "CMakeFiles/bench_fig2_memory_tradeoff.dir/bench/bench_fig2_memory_tradeoff.cpp.o.d"
  "bench/bench_fig2_memory_tradeoff"
  "bench/bench_fig2_memory_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_memory_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
