file(REMOVE_RECURSE
  "CMakeFiles/model_stabilizer_test.dir/tests/model_stabilizer_test.cpp.o"
  "CMakeFiles/model_stabilizer_test.dir/tests/model_stabilizer_test.cpp.o.d"
  "model_stabilizer_test"
  "model_stabilizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_stabilizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
