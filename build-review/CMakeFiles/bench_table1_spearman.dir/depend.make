# Empty dependencies file for bench_table1_spearman.
# This may be replaced when dependencies are built.
