file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_spearman.dir/bench/bench_table1_spearman.cpp.o"
  "CMakeFiles/bench_table1_spearman.dir/bench/bench_table1_spearman.cpp.o.d"
  "bench/bench_table1_spearman"
  "bench/bench_table1_spearman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_spearman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
