# Empty dependencies file for embed_io_test.
# This may be replaced when dependencies are built.
