file(REMOVE_RECURSE
  "CMakeFiles/embed_io_test.dir/tests/embed_io_test.cpp.o"
  "CMakeFiles/embed_io_test.dir/tests/embed_io_test.cpp.o.d"
  "embed_io_test"
  "embed_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
