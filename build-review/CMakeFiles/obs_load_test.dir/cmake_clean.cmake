file(REMOVE_RECURSE
  "CMakeFiles/obs_load_test.dir/tests/obs_load_test.cpp.o"
  "CMakeFiles/obs_load_test.dir/tests/obs_load_test.cpp.o.d"
  "obs_load_test"
  "obs_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
