# Empty dependencies file for bench_fig4_6_sentiment_appendix.
# This may be replaced when dependencies are built.
