file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_6_sentiment_appendix.dir/bench/bench_fig4_6_sentiment_appendix.cpp.o"
  "CMakeFiles/bench_fig4_6_sentiment_appendix.dir/bench/bench_fig4_6_sentiment_appendix.cpp.o.d"
  "bench/bench_fig4_6_sentiment_appendix"
  "bench/bench_fig4_6_sentiment_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_6_sentiment_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
