// anchor-cli: command-line driver for the library's main workflows.
//
// Subcommands:
//   train      train an embedding on a synthetic corpus "year" and save it
//   align      Procrustes-align one embedding to a reference
//   quantize   uniform-quantize an embedding (optionally sharing the
//              reference's clip threshold, per Appendix C.2)
//   measure    compute the five embedding distance measures between a pair
//   stability  run the end-to-end pipeline for one configuration and print
//              the downstream instability plus all measures
//
// Embeddings are stored in word2vec text format, so outputs are directly
// inspectable and consumable by standard NLP tooling.
#include <iostream>
#include <string>
#include <vector>

#include "compress/quantize.hpp"
#include "core/measures.hpp"
#include "core/report.hpp"
#include "embed/io.hpp"
#include "embed/trainer.hpp"
#include "la/procrustes.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"
#include "util/argparse.hpp"

namespace {

using anchor::ArgParser;

int fail_usage(const ArgParser& parser) {
  if (parser.help_requested()) {
    std::cout << parser.usage();
    return 0;
  }
  std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
  return 2;
}

anchor::embed::Algo parse_algo(const std::string& name) {
  using anchor::embed::Algo;
  for (const Algo algo : {Algo::kCbow, Algo::kGloVe, Algo::kMc,
                          Algo::kFastText, Algo::kSgns, Algo::kPpmiSvd}) {
    if (anchor::embed::algo_name(algo) == name) return algo;
  }
  ANCHOR_CHECK_MSG(
      false, "unknown algorithm (use CBOW, GloVe, MC, FT-SG, SGNS, PPMI-SVD)");
  return Algo::kCbow;
}

/// Miniature pipeline scale for --quick runs: trains in seconds, preserving
/// every stage of the protocol (the defaults are bench scale — minutes).
anchor::pipeline::PipelineConfig quick_pipeline_config() {
  anchor::pipeline::PipelineConfig c;
  c.vocab = 200;
  c.latent_dim = 6;
  c.num_topics = 6;
  c.num_documents = 150;
  c.dims = {8, 16};
  c.precisions = {1, 2, 4, 8, 16, 32};
  c.seeds = {1};
  c.reference_dim = 16;
  c.knn_queries = 60;
  c.sentiment_scale_train = 400;
  c.ner_train = 80;
  c.ner_test = 50;
  c.ner_hidden = 6;
  c.ner_epochs = 2;
  c.epoch_scale = 0.5;
  return c;
}

/// Builds the corpus for a "year": year 17 is the base space, year 18 the
/// drifted one — the same construction the pipeline uses.
anchor::text::Corpus make_corpus(std::size_t vocab, std::size_t docs,
                                 std::uint64_t space_seed, int year,
                                 double drift) {
  anchor::text::LatentSpaceConfig lsc;
  lsc.vocab_size = vocab;
  lsc.seed = space_seed;
  const anchor::text::LatentSpace base(lsc);
  anchor::text::CorpusConfig cc;
  cc.num_documents = docs;
  cc.seed = 1;
  if (year == 17) return anchor::text::generate_corpus(base, cc);
  ANCHOR_CHECK_MSG(year == 18, "--year must be 17 or 18");
  return anchor::text::generate_corpus(
      base.drifted(drift, space_seed + 1), cc);
}

int cmd_train(const std::vector<std::string>& args) {
  ArgParser parser("anchor-cli train",
                   "Train a word embedding on a synthetic corpus year.");
  parser.add_option("algo", "embedding algorithm name", "CBOW")
      .add_option("dim", "embedding dimension", "32")
      .add_option("seed", "training seed", "1")
      .add_option("year", "corpus year: 17 (base) or 18 (drifted)", "17")
      .add_option("drift", "latent drift for year 18", "0.08")
      .add_option("vocab", "vocabulary size", "500")
      .add_option("docs", "number of documents", "800")
      .add_option("space-seed", "latent space seed", "17")
      .add_option("out", "output embedding path (word2vec text)", "",
                  /*required=*/true);
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::text::Corpus corpus = make_corpus(
      static_cast<std::size_t>(parser.get_int("vocab")),
      static_cast<std::size_t>(parser.get_int("docs")),
      static_cast<std::uint64_t>(parser.get_int("space-seed")),
      static_cast<int>(parser.get_int("year")), parser.get_double("drift"));
  anchor::embed::TrainOptions options;
  options.dim = static_cast<std::size_t>(parser.get_int("dim"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const anchor::embed::Embedding e = anchor::embed::train_embedding(
      corpus, parse_algo(parser.get("algo")), options);
  anchor::embed::save_text(e, parser.get("out"));
  std::cout << "trained " << parser.get("algo") << " dim=" << e.dim
            << " on year-" << parser.get("year") << " corpus ("
            << corpus.total_tokens() << " tokens) -> " << parser.get("out")
            << "\n";
  return 0;
}

int cmd_align(const std::vector<std::string>& args) {
  ArgParser parser("anchor-cli align",
                   "Rotate an embedding onto a reference with orthogonal "
                   "Procrustes (the paper aligns Wiki'18 to Wiki'17 before "
                   "compression).");
  parser.add_positional("input", "embedding to rotate")
      .add_option("ref", "reference embedding", "", /*required=*/true)
      .add_option("out", "output path", "", /*required=*/true);
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::embed::Embedding input =
      anchor::embed::load_text(parser.get("input"));
  const anchor::embed::Embedding ref =
      anchor::embed::load_text(parser.get("ref"));
  ANCHOR_CHECK_EQ(input.dim, ref.dim);
  const anchor::la::Matrix rotated =
      anchor::la::procrustes_align(ref.to_matrix(), input.to_matrix());
  anchor::embed::save_text(anchor::embed::Embedding::from_matrix(rotated),
                           parser.get("out"));
  std::cout << "aligned " << parser.get("input") << " to " << parser.get("ref")
            << " -> " << parser.get("out") << "\n";
  return 0;
}

int cmd_quantize(const std::vector<std::string>& args) {
  ArgParser parser("anchor-cli quantize",
                   "Uniformly quantize an embedding to b bits per entry.");
  parser.add_positional("input", "embedding to quantize")
      .add_option("bits", "precision in {1,2,4,8,16,32}", "8")
      .add_option("clip-from",
                  "reuse this embedding's optimal clip threshold "
                  "(the shared-threshold protocol of Appendix C.2)")
      .add_option("out", "output path", "", /*required=*/true);
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::embed::Embedding input =
      anchor::embed::load_text(parser.get("input"));
  anchor::compress::QuantizeConfig config;
  config.bits = static_cast<int>(parser.get_int("bits"));
  if (parser.has("clip-from")) {
    const anchor::embed::Embedding ref =
        anchor::embed::load_text(parser.get("clip-from"));
    config.clip_override =
        anchor::compress::optimal_clip_threshold(ref.data, config.bits);
  }
  const anchor::compress::QuantizeResult r =
      anchor::compress::uniform_quantize(input, config);
  anchor::embed::save_text(r.embedding, parser.get("out"));
  std::cout << "quantized to " << config.bits << " bits (clip="
            << r.clip << ", " << anchor::compress::bits_per_word(
                   input.dim, config.bits)
            << " bits/word) -> " << parser.get("out") << "\n";
  return 0;
}

int cmd_measure(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli measure",
      "Compute the five embedding distance measures between two embeddings. "
      "The eigenspace instability measure's reference pair (E, E~) defaults "
      "to the inputs themselves; pass --ref-e/--ref-et to use "
      "higher-dimensional references as the paper does.");
  parser.add_positional("x", "first embedding (e.g. Wiki'17)")
      .add_positional("xt", "second embedding (e.g. Wiki'18)")
      .add_option("ref-e", "EIS reference embedding E")
      .add_option("ref-et", "EIS reference embedding E~")
      .add_option("alpha", "EIS eigenvalue-importance exponent", "3")
      .add_option("k", "k-NN neighborhood size", "5")
      .add_option("queries", "k-NN query words", "200");
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::la::Matrix x =
      anchor::embed::load_text(parser.get("x")).to_matrix();
  const anchor::la::Matrix xt =
      anchor::embed::load_text(parser.get("xt")).to_matrix();
  const anchor::la::Matrix e =
      parser.has("ref-e")
          ? anchor::embed::load_text(parser.get("ref-e")).to_matrix()
          : x;
  const anchor::la::Matrix et =
      parser.has("ref-et")
          ? anchor::embed::load_text(parser.get("ref-et")).to_matrix()
          : xt;
  const anchor::core::EisContext ctx = anchor::core::EisContext::build(
      e, et, parser.get_double("alpha"));

  std::cout << "eigenspace_instability "
            << anchor::core::eigenspace_instability_of(x, xt, ctx) << "\n"
            << "one_minus_knn "
            << 1.0 - anchor::core::knn_measure(
                         x, xt, static_cast<std::size_t>(parser.get_int("k")),
                         static_cast<std::size_t>(parser.get_int("queries")))
            << "\n"
            << "semantic_displacement "
            << anchor::core::semantic_displacement(x, xt) << "\n"
            << "pip_loss " << anchor::core::pip_loss(x, xt) << "\n"
            << "one_minus_eigenspace_overlap "
            << 1.0 - anchor::core::eigenspace_overlap(x, xt) << "\n";
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli export",
      "Run the pipeline over the full dimension-precision grid for one "
      "(task, algo, seed) and export the per-cell downstream instability "
      "and all five measures as a CSV — the artifact's 'lightweight "
      "option' input (Appendix A.7).");
  parser.add_option("task", "sst2 | mr | subj | mpqa | conll2003", "sst2")
      .add_option("algo", "embedding algorithm name", "CBOW")
      .add_option("seed", "seed", "1")
      .add_option("cache", "artifact cache directory", "anchor-cache")
      .add_flag("quick", "miniature pipeline scale (seconds, not minutes)")
      .add_option("out", "output CSV path", "", /*required=*/true);
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::pipeline::PipelineConfig config =
      parser.get_flag("quick") ? quick_pipeline_config()
                               : anchor::pipeline::PipelineConfig{};
  anchor::pipeline::Pipeline pipe(config, parser.get("cache"));
  const auto grid = pipe.config_grid(
      parser.get("task"), parse_algo(parser.get("algo")),
      static_cast<std::uint64_t>(parser.get_int("seed")));
  anchor::core::write_config_points_csv(grid, parser.get("out"));
  std::cout << "exported " << grid.size() << " grid cells -> "
            << parser.get("out") << "\n";
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli analyze",
      "Reproduce the analysis stage (Tables 1-3) from a results CSV, with "
      "no training — the artifact's Appendix A.5 step 3.");
  parser.add_positional("csv", "results CSV from `anchor-cli export`");
  if (!parser.parse(args)) return fail_usage(parser);

  const auto points =
      anchor::core::read_config_points_csv(parser.get("csv"));
  const anchor::core::GridAnalysis a = anchor::core::analyze_grid(points);

  std::cout << points.size() << " grid cells\n\n"
            << "measure, spearman, pairwise_error, budget_gap_pct\n";
  const auto gap_str = [&](double gap) {
    return a.has_contested_budget ? std::to_string(gap) : std::string("n/a");
  };
  for (const auto& row : a.measures) {
    std::cout << anchor::core::measure_name(row.measure) << ", "
              << row.spearman << ", " << row.pairwise_error << ", "
              << gap_str(row.budget_gap_pct) << "\n";
  }
  std::cout << "High Precision (naive), -, -, "
            << gap_str(a.high_precision_gap_pct)
            << "\nLow Precision (naive), -, -, "
            << gap_str(a.low_precision_gap_pct) << "\n";
  return 0;
}

int cmd_stability(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli stability",
      "Run the end-to-end pipeline for one (algo, dim, bits, seed) "
      "configuration: train the Wiki'17/Wiki'18 embedding pair, align, "
      "quantize, train downstream models, and print Definition-1 "
      "instability plus all five measures.");
  parser.add_option("task", "sst2 | mr | subj | mpqa | conll2003", "sst2")
      .add_option("algo", "embedding algorithm name", "CBOW")
      .add_option("dim", "embedding dimension", "16")
      .add_option("bits", "precision", "8")
      .add_option("seed", "seed", "1")
      .add_option("cache", "artifact cache directory", "anchor-cache")
      .add_flag("quick", "miniature pipeline scale (seconds, not minutes)");
  if (!parser.parse(args)) return fail_usage(parser);

  const anchor::pipeline::PipelineConfig config =
      parser.get_flag("quick") ? quick_pipeline_config()
                               : anchor::pipeline::PipelineConfig{};
  anchor::pipeline::Pipeline pipe(config, parser.get("cache"));
  const auto algo = parse_algo(parser.get("algo"));
  const auto dim = static_cast<std::size_t>(parser.get_int("dim"));
  const auto bits = static_cast<int>(parser.get_int("bits"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const double di =
      pipe.downstream_instability(parser.get("task"), algo, dim, bits, seed);
  const auto measures = pipe.measures(algo, dim, bits, seed);
  std::cout << "task " << parser.get("task") << ", " << parser.get("algo")
            << " dim=" << dim << " bits=" << bits << " seed=" << seed << "\n"
            << "downstream_instability_pct " << di << "\n";
  for (std::size_t i = 0; i < measures.size(); ++i) {
    std::cout << anchor::core::measure_name(anchor::core::kAllMeasures[i])
              << " " << measures[i] << "\n";
  }
  return 0;
}

/// Splits a --connect host:port and builds a Client with the subcommand's
/// --rpc-timeout-ms deadline applied to every recv/send on the connection.
anchor::net::Client connect_client(const ArgParser& parser) {
  const std::string address = parser.get("connect");
  const std::size_t colon = address.rfind(':');
  ANCHOR_CHECK_MSG(colon != std::string::npos && colon + 1 < address.size(),
                   "--connect takes host:port (e.g. 127.0.0.1:7411)");
  const std::string host = address.substr(0, colon);
  const int port = std::stoi(address.substr(colon + 1));
  ANCHOR_CHECK_MSG(port > 0 && port <= 65535, "--connect port out of range");
  const int timeout_ms = static_cast<int>(parser.get_int("rpc-timeout-ms"));
  ANCHOR_CHECK_MSG(timeout_ms >= 0, "--rpc-timeout-ms must be >= 0");
  return anchor::net::Client(host, static_cast<std::uint16_t>(port),
                             timeout_ms);
}

int cmd_metrics(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli metrics",
      "Fetch the metrics plane of a running anchor_served or anchor_router "
      "over the METRICS RPC and print it (human-readable by default, "
      "Prometheus text exposition with --prometheus).");
  parser.add_option("connect", "daemon address host:port", "",
                    /*required=*/true)
      .add_option("rpc-timeout-ms",
                  "per-recv/send deadline on the connection; a hung daemon "
                  "fails the command instead of wedging it (0 = no deadline)",
                  "5000")
      .add_flag("prometheus",
                "print the Prometheus 0.0.4 text exposition instead of the "
                "human-readable dump");
  if (!parser.parse(args)) return fail_usage(parser);

  anchor::net::Client client = connect_client(parser);
  const anchor::obs::MetricsReport report = client.metrics();
  std::cout << (parser.get_flag("prometheus")
                    ? anchor::obs::to_prometheus(report)
                    : anchor::obs::to_text(report));
  return 0;
}

int cmd_topk(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli topk",
      "Approximate nearest-neighbor search over the TOPK RPC: query a "
      "running anchor_served (single-shard) or anchor_router (scatter-"
      "gather merged) by row id or word, and print the neighbors with "
      "exact and ADC-approximate distances.");
  parser.add_option("connect", "daemon address host:port", "",
                    /*required=*/true)
      .add_option("id", "query row id (mutually exclusive with --word)")
      .add_option("word", "query word (mutually exclusive with --id)")
      .add_option("k", "neighbors to return", "10")
      .add_option("nprobe", "coarse cells probed (0 = server default)", "0")
      .add_option("rerank", "exact-rerank shortlist (0 = server default)",
                  "0")
      .add_option("rpc-timeout-ms",
                  "per-recv/send deadline on the connection (0 = none)",
                  "5000");
  if (!parser.parse(args)) return fail_usage(parser);
  ANCHOR_CHECK_MSG(parser.has("id") != parser.has("word"),
                   "pass exactly one of --id or --word");

  anchor::net::Client client = connect_client(parser);
  const auto k = static_cast<std::size_t>(parser.get_int("k"));
  const auto nprobe = static_cast<std::size_t>(parser.get_int("nprobe"));
  const auto rerank = static_cast<std::size_t>(parser.get_int("rerank"));
  const anchor::ann::TopKResult result =
      parser.has("id")
          ? client.topk_id(static_cast<std::uint64_t>(parser.get_int("id")),
                           k, nprobe, rerank)
          : client.topk_word(parser.get("word"), k, nprobe, rerank);

  std::cout << "version " << result.version << ", cells_probed "
            << result.cells_probed << ", shortlist " << result.shortlist;
  if (result.flags & anchor::ann::kTopKFlagPartial) {
    std::cout << " [PARTIAL: some shards degraded]";
  }
  std::cout << "\nrank, id, exact_l2sq, adc_l2sq\n";
  for (std::size_t i = 0; i < result.hits.size(); ++i) {
    const anchor::ann::TopKHit& hit = result.hits[i];
    std::cout << i + 1 << ", " << hit.id << ", " << hit.exact << ", "
              << hit.adc << "\n";
  }
  return 0;
}

int cmd_top_keys(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli top-keys",
      "Fetch the heavy-hitter key sketch of a running anchor_served "
      "(local ids) or anchor_router (global ids, merged across the fleet) "
      "over the HEAT RPC and print the hottest keys. `count` is the "
      "sketch's estimate; `max_err` bounds its overestimate, so the true "
      "count lies in [count - max_err, count].");
  parser.add_option("connect", "daemon address host:port", "",
                    /*required=*/true)
      .add_option("k", "keys to print", "16")
      .add_option("rpc-timeout-ms",
                  "per-recv/send deadline on the connection (0 = none)",
                  "5000");
  if (!parser.parse(args)) return fail_usage(parser);

  anchor::net::Client client = connect_client(parser);
  const anchor::net::HeatReport report = client.heat();
  const anchor::obs::SketchSnapshot& sketch = report.sketch;
  std::cout << "key_load_records " << sketch.total << ", sketch_capacity "
            << sketch.capacity << ", tracked_keys " << sketch.entries.size()
            << "\n";
  if (sketch.total == 0) {
    std::cout << "(no key load recorded"
              << (sketch.capacity == 0 ? "; key-load tracking disabled — "
                                         "start the daemon with --hot-keys > 0"
                                       : "")
              << ")\n";
    return 0;
  }
  std::cout << "rank, id, count, max_err, share\n";
  const auto top =
      sketch.top(static_cast<std::size_t>(parser.get_int("k")));
  for (std::size_t i = 0; i < top.size(); ++i) {
    const anchor::obs::HeavyHitter& h = top[i];
    std::cout << i + 1 << ", " << h.key << ", " << h.count << ", " << h.error
              << ", "
              << static_cast<double>(h.count) /
                     static_cast<double>(sketch.total)
              << "\n";
  }
  return 0;
}

int cmd_heat(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli heat",
      "Fetch the windowed load stats and per-id-range heat map of a "
      "running anchor_served or anchor_router over the HEAT RPC. Each "
      "heat row is one contiguous id range with its bucketed access "
      "counts; a router reply covers the whole fleet in global id space.");
  parser.add_option("connect", "daemon address host:port", "",
                    /*required=*/true)
      .add_option("buckets-per-line", "heat buckets printed per line", "16")
      .add_option("rpc-timeout-ms",
                  "per-recv/send deadline on the connection (0 = none)",
                  "5000");
  if (!parser.parse(args)) return fail_usage(parser);

  anchor::net::Client client = connect_client(parser);
  const anchor::net::HeatReport report = client.heat();
  const anchor::obs::WindowedSnapshot& w = report.windowed;
  constexpr std::uint64_t k10s = 10ull * 1000 * 1000;
  constexpr std::uint64_t k1m = 60ull * 1000 * 1000;
  std::cout << "window_10s: qps " << w.qps(k10s) << ", error_rate "
            << w.error_rate(k10s) << "\n"
            << "window_1m:  qps " << w.qps(k1m) << ", error_rate "
            << w.error_rate(k1m) << ", p50_us "
            << w.latency_in(k1m).quantile(0.50) << ", p99_us "
            << w.latency_in(k1m).quantile(0.99) << "\n";
  const anchor::obs::HeatMapSnapshot& heat = report.heat;
  std::cout << "heat_total " << heat.total << ", ranges "
            << heat.ranges.size() << "\n";
  const auto per_line =
      static_cast<std::size_t>(parser.get_int("buckets-per-line"));
  ANCHOR_CHECK_MSG(per_line > 0, "--buckets-per-line must be > 0");
  for (const anchor::obs::HeatRange& range : heat.ranges) {
    std::cout << "[" << range.row_begin << ", " << range.row_end << ") x"
              << range.buckets.size() << " buckets:\n";
    for (std::size_t i = 0; i < range.buckets.size(); ++i) {
      std::cout << (i % per_line == 0 ? (i == 0 ? "  " : "\n  ") : " ")
                << range.buckets[i];
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_fault_set(const std::vector<std::string>& args) {
  ArgParser parser(
      "anchor-cli fault-set",
      "Reconfigure the fault-injection harness of a running anchor_served "
      "over the FAULT_SET RPC. The daemon must have been started with "
      "--fault-inject (unarmed daemons refuse). An empty --spec clears all "
      "faults.");
  parser.add_option("connect", "daemon address host:port", "",
                    /*required=*/true)
      .add_option("spec",
                  "fault clauses: delay=P:MS,drop=P,close=P,truncate=P "
                  "(empty = clear)")
      .add_option("rpc-timeout-ms",
                  "per-recv/send deadline on the connection (0 = none)",
                  "5000");
  if (!parser.parse(args)) return fail_usage(parser);

  anchor::net::Client client = connect_client(parser);
  const std::string applied = client.fault_set(parser.get("spec"));
  std::cout << "faults now: " << (applied.empty() ? "(none)" : applied)
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: anchor-cli "
      "<train|align|quantize|measure|stability|export|analyze|metrics|"
      "topk|top-keys|heat|fault-set> [args]\n"
      "       anchor-cli <subcommand> --help for details\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);

  try {
    if (cmd == "train") return cmd_train(rest);
    if (cmd == "align") return cmd_align(rest);
    if (cmd == "quantize") return cmd_quantize(rest);
    if (cmd == "measure") return cmd_measure(rest);
    if (cmd == "stability") return cmd_stability(rest);
    if (cmd == "export") return cmd_export(rest);
    if (cmd == "analyze") return cmd_analyze(rest);
    if (cmd == "metrics") return cmd_metrics(rest);
    if (cmd == "topk") return cmd_topk(rest);
    if (cmd == "top-keys") return cmd_top_keys(rest);
    if (cmd == "heat") return cmd_heat(rest);
    if (cmd == "fault-set") return cmd_fault_set(rest);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown subcommand '" << cmd << "'\n" << usage;
  return 2;
}
