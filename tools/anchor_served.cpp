// anchor_served — the embedding-serving daemon: loads one or more
// embedding versions into an EmbeddingStore, wraps them in the
// LookupService → AsyncLookupService batching stack, and serves the
// binary RPC protocol (src/net/PROTOCOL.md) on a TCP loopback port.
//
// Examples:
//   # serve two word2vec-text files, int8-quantized, gate thresholds set
//   anchor_served --stores live=2017.vec,candidate=2018.vec --bits 8
//       --port 7411 --eis-reject 0.12 --audit-log /tmp/audit.csv
//   # then from another process: lookups, gated promotion, stats
//   serve_rpc_demo --connect 127.0.0.1:7411
//
//   # self-contained synthetic store (smoke tests, demos)
//   anchor_served --demo --port 0
//
// The daemon prints exactly one line
//   anchor_served listening on 127.0.0.1:<port>
// to stdout once it serves, so scripts can scrape the (possibly
// ephemeral) port. It exits on SIGINT/SIGTERM or a client kShutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/metrics_http.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/demo_store.hpp"
#include "serve/serve.hpp"
#include "util/argparse.hpp"

namespace {

std::atomic<bool> g_signaled{false};

void on_signal(int) { g_signaled.store(true); }

/// Splits "name=path,name=path" store specs; a bare "path" gets version
/// id "v<index>".
struct StoreSpec {
  std::string version;
  std::string path;
};

std::vector<StoreSpec> parse_store_specs(const std::string& arg) {
  std::vector<StoreSpec> specs;
  std::size_t begin = 0;
  while (begin <= arg.size()) {
    std::size_t end = arg.find(',', begin);
    if (end == std::string::npos) end = arg.size();
    const std::string item = arg.substr(begin, end - begin);
    if (!item.empty()) {
      StoreSpec spec;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        spec.version = "v";
        spec.version += std::to_string(specs.size() + 1);
        spec.path = item;
      } else {
        spec.version = item.substr(0, eq);
        spec.path = item.substr(eq + 1);
      }
      specs.push_back(std::move(spec));
    }
    begin = end + 1;
  }
  return specs;
}

/// Parses the --bits spec into the snapshot encoding fields: a bare
/// integer ("32", "8", …) selects fp32/uniform quantization, and
/// "pq:<m>x<b>" (e.g. "pq:4x8") selects product quantization with m
/// sub-vectors of b-bit codes. Range/divisibility validation stays with
/// SnapshotConfig itself — this only parses the shape.
void parse_bits_spec(const std::string& spec,
                     anchor::serve::SnapshotConfig* snap) {
  if (spec.rfind("pq:", 0) == 0) {
    const std::size_t x = spec.find('x', 3);
    if (x == std::string::npos || x == 3 || x + 1 >= spec.size()) {
      throw std::runtime_error("--bits pq spec must be pq:<m>x<b>, e.g. "
                               "pq:4x8 (got '" + spec + "')");
    }
    snap->bits = 32;
    snap->pq_m = static_cast<std::size_t>(std::stoul(spec.substr(3, x - 3)));
    snap->pq_bits = static_cast<int>(std::stoul(spec.substr(x + 1)));
    return;
  }
  snap->bits = static_cast<int>(std::stol(spec));
  snap->pq_m = 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anchor;

  ArgParser parser(
      "anchor_served",
      "Embedding serving daemon: batched lookups, instability-gated "
      "promotion, and stats over a binary TCP protocol (see "
      "src/net/PROTOCOL.md).");
  parser.add_option("stores",
                    "comma-separated version=path word2vec-text files; "
                    "first entry becomes live (e.g. live=a.vec,cand=b.vec)");
  parser.add_flag("demo",
                  "serve a synthetic three-version store (v1 live, "
                  "v2-good admitable, v3-bad rejectable) instead of files");
  parser.add_option("demo-vocab", "demo store vocabulary size", "1500");
  parser.add_option("demo-dim", "demo store dimension", "48");
  parser.add_option("bits",
                    "snapshot row encoding: 32 = fp32, 1/2/4/8 = bit-packed "
                    "uniform quantized, pq:<m>x<b> = product-quantized "
                    "(m sub-vectors, b-bit codes, e.g. pq:4x8)", "32");
  parser.add_option("shards", "storage shards per snapshot", "8");
  parser.add_option("cache-rows",
                    "hot rows per lookup-cache shard (0 disables)", "256");
  parser.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "0");
  parser.add_option("metrics",
                    "Prometheus scrape port on 127.0.0.1 (0 = ephemeral, "
                    "-1 = disabled)", "-1");
  parser.add_option("slow-log",
                    "JSONL slow-request trace log path (empty = disabled)");
  parser.add_option("slow-threshold-us",
                    "log a sampled trace when the request took at least "
                    "this many microseconds (0 = every sampled request)",
                    "10000");
  parser.add_option("slow-log-max-bytes",
                    "rotate the slow log once it would exceed this many "
                    "bytes: the old file moves to <path>.1 (0 = unbounded)",
                    "16777216");
  parser.add_option("slo-p99-us",
                    "SLO latency target in microseconds: requests at or "
                    "over it count against the error budget (0 disables "
                    "the latency term)", "0");
  parser.add_option("slo-error-budget",
                    "allowed fraction of SLO-violating requests; burn "
                    "rates are measured against it", "0.01");
  parser.add_option("drift-interval",
                    "drift-probe sampling period in milliseconds "
                    "(0 = probe once at startup, then only on demand)", "0");
  parser.add_option("hot-keys",
                    "heavy-hitter sketch entry budget; worst-case count "
                    "error is total/budget (0 disables key-load tracking)",
                    "512");
  parser.add_option("heat-buckets",
                    "per-id-range heat-map bucket fanout", "256");
  parser.add_option("max-batch",
                    "batcher: flush when this many keys are waiting", "64");
  parser.add_option("max-wait-us",
                    "batcher: flush when the oldest request is this old",
                    "100");
  parser.add_option("eis-warn", "gate: EIS warn threshold", "0.05");
  parser.add_option("eis-reject", "gate: EIS reject threshold", "0.15");
  parser.add_option("knn-warn", "gate: 1−kNN warn threshold", "0.30");
  parser.add_option("knn-reject", "gate: 1−kNN reject threshold", "0.60");
  parser.add_option("knn-queries", "gate: sampled kNN query words", "256");
  parser.add_option("gate-max-rows",
                    "gate: vocabulary subsample for the measures (0 = all)",
                    "2048");
  parser.add_option("audit-log",
                    "CSV audit log path for gate decisions (empty = no log)");
  parser.add_option("canary-fraction",
                    "canary: default fraction of lookup keys routed to the "
                    "candidate", "0.1");
  parser.add_option("shadow-rate",
                    "canary: fraction of candidate-routed keys mirrored to "
                    "the incumbent for online agreement", "0.1");
  parser.add_option("canary-min-shadows",
                    "canary: shadow samples required before any "
                    "auto-decision", "64");
  parser.add_option("canary-max-shadows",
                    "canary: shadow budget at which the point estimate "
                    "decides", "8192");
  parser.add_option("canary-promote",
                    "canary: promote once the agreement lower confidence "
                    "bound reaches this", "0.70");
  parser.add_option("canary-rollback",
                    "canary: roll back once the agreement upper confidence "
                    "bound falls to this", "0.40");
  parser.add_flag("align-candidates",
                  "Procrustes-align every loaded version after the first "
                  "to the then-live snapshot before serving (cuts false "
                  "canary rollbacks from rotation-only drift)");
  parser.add_option("fault-inject",
                    "ARM the fault-injection harness (chaos testing only): "
                    "a clause list like delay=0.1:25,drop=0.05,close=0.02,"
                    "truncate=0.01 applied to data-plane replies; pass an "
                    "empty spec ('') to arm with no faults and drive it "
                    "later over the FAULT_SET RPC. Unarmed daemons refuse "
                    "FAULT_SET");
  parser.add_option("fault-seed",
                    "fault-injection RNG seed (replayable chaos runs)", "0");
  parser.add_flag("ann-off",
                  "disable the IVF-PQ index and the TOPK RPC entirely");
  parser.add_option("ann-nlist-bits",
                    "TOPK: log2 of the coarse cell count (clamped to the "
                    "store)", "6");
  parser.add_option("ann-m",
                    "TOPK: PQ sub-quantizers per vector (clamped to a "
                    "divisor of dim)", "8");
  parser.add_option("ann-bits", "TOPK: bits per PQ code (1-8)", "8");
  parser.add_option("ann-nprobe",
                    "TOPK: default coarse cells probed per query", "8");
  parser.add_option("ann-rerank",
                    "TOPK: default exact-rerank shortlist size", "64");
  parser.add_option("ann-seed", "TOPK: index-training RNG seed", "42");
  parser.add_option("topk-churn-reject",
                    "gate: reject a promote when mean top-k churn between "
                    "the live and candidate indexes exceeds this "
                    "(0 disables the churn gate)", "0");
  parser.add_option("topk-churn-queries",
                    "gate: probe rows sampled for the churn measure", "64");

  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << parser.error() << "\n" << parser.usage();
    return 2;
  }

  net::ServerConfig config;
  std::int64_t metrics_port = -1;
  // Numeric-flag parsing throws (CheckError) on malformed values; turn
  // that into the usage exit path rather than an abort.
  try {
    const std::int64_t port = parser.get_int("port");
    if (port < 0 || port > 65535) {
      throw std::runtime_error("--port must be in [0, 65535]");
    }
    config.port = static_cast<std::uint16_t>(port);
    metrics_port = parser.get_int("metrics");
    if (metrics_port > 65535) {
      throw std::runtime_error("--metrics must be in [-1, 65535]");
    }
    obs::TracerConfig tracer;
    tracer.slow_log_path = parser.get("slow-log");
    tracer.slow_threshold_us = parser.get_double("slow-threshold-us");
    const std::int64_t slow_cap = parser.get_int("slow-log-max-bytes");
    if (slow_cap < 0) {
      throw std::runtime_error("--slow-log-max-bytes must be >= 0");
    }
    tracer.slow_log_max_bytes = static_cast<std::uint64_t>(slow_cap);
    obs::Tracer::instance().configure(tracer);
    config.slo.p99_target_us = parser.get_double("slo-p99-us");
    config.slo.error_budget = parser.get_double("slo-error-budget");
    if (config.slo.error_budget <= 0.0 || config.slo.error_budget > 1.0) {
      throw std::runtime_error("--slo-error-budget must be in (0, 1]");
    }
    const std::int64_t drift_ms = parser.get_int("drift-interval");
    if (drift_ms < 0) {
      throw std::runtime_error("--drift-interval must be >= 0");
    }
    config.drift.interval_ms = static_cast<std::uint64_t>(drift_ms);
    config.hot_key_capacity =
        static_cast<std::size_t>(parser.get_int("hot-keys"));
    config.heat_buckets =
        static_cast<std::size_t>(parser.get_int("heat-buckets"));
    config.lookup.cache_rows_per_shard =
        static_cast<std::size_t>(parser.get_int("cache-rows"));
    config.batcher.max_batch_size =
        static_cast<std::size_t>(parser.get_int("max-batch"));
    config.batcher.max_wait_us =
        static_cast<std::uint32_t>(parser.get_int("max-wait-us"));
    config.gate.eis_warn = parser.get_double("eis-warn");
    config.gate.eis_reject = parser.get_double("eis-reject");
    config.gate.knn_warn = parser.get_double("knn-warn");
    config.gate.knn_reject = parser.get_double("knn-reject");
    config.gate.knn_queries =
        static_cast<std::size_t>(parser.get_int("knn-queries"));
    config.gate.max_rows =
        static_cast<std::size_t>(parser.get_int("gate-max-rows"));
    config.gate.audit_log = parser.get("audit-log");
    config.canary.fraction = parser.get_double("canary-fraction");
    config.canary.shadow_rate = parser.get_double("shadow-rate");
    config.canary.min_shadows =
        static_cast<std::size_t>(parser.get_int("canary-min-shadows"));
    config.canary.max_shadows =
        static_cast<std::size_t>(parser.get_int("canary-max-shadows"));
    config.canary.promote_agreement = parser.get_double("canary-promote");
    config.canary.rollback_agreement = parser.get_double("canary-rollback");
    // A typo here misroutes live traffic (1.5 saturates to "everything to
    // the candidate"); reject out-of-range knobs like the RPC layer does.
    if (config.canary.fraction <= 0.0 || config.canary.fraction > 1.0 ||
        config.canary.shadow_rate <= 0.0 || config.canary.shadow_rate > 1.0) {
      throw std::runtime_error(
          "--canary-fraction and --shadow-rate must be in (0, 1]");
    }
    if (config.canary.min_shadows > config.canary.max_shadows) {
      throw std::runtime_error(
          "--canary-min-shadows must not exceed --canary-max-shadows");
    }
    if (parser.has("fault-inject")) {
      // Arming is a startup-only decision: a daemon started without the
      // flag can never be faulted, locally or over FAULT_SET.
      config.fault_inject = true;
      config.faults = net::FaultConfig::parse(parser.get("fault-inject"));
      const std::int64_t seed = parser.get_int("fault-seed");
      if (seed != 0) config.fault_seed = static_cast<std::uint64_t>(seed);
    }
    config.ann_enable = !parser.get_flag("ann-off");
    config.ann.nlist_bits =
        static_cast<std::size_t>(parser.get_int("ann-nlist-bits"));
    config.ann.pq_m = static_cast<std::size_t>(parser.get_int("ann-m"));
    config.ann.pq_bits = static_cast<std::size_t>(parser.get_int("ann-bits"));
    config.ann.nprobe = static_cast<std::size_t>(parser.get_int("ann-nprobe"));
    config.ann.rerank = static_cast<std::size_t>(parser.get_int("ann-rerank"));
    config.ann.seed = static_cast<std::uint64_t>(parser.get_int("ann-seed"));
    config.topk_churn_reject = parser.get_double("topk-churn-reject");
    config.topk_churn_queries =
        static_cast<std::size_t>(parser.get_int("topk-churn-queries"));
    if (config.topk_churn_reject < 0.0 || config.topk_churn_reject > 1.0) {
      throw std::runtime_error("--topk-churn-reject must be in [0, 1]");
    }
    if (config.canary.rollback_agreement > config.canary.promote_agreement ||
        config.canary.promote_agreement > 1.0 ||
        config.canary.rollback_agreement < 0.0) {
      throw std::runtime_error(
          "--canary-rollback ≤ --canary-promote required, both in [0, 1]");
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << parser.usage();
    return 2;
  }

  // Fail fast on an occupied port BEFORE the (potentially slow) store
  // load: a multi-process demo or CI script pointing two daemons at one
  // port should see "address in use" in milliseconds, not after parsing a
  // multi-gigabyte vector file — and should see it as an error exit, not
  // sit behind a daemon that never prints its listening line. The probe
  // listener closes immediately; the authoritative bind is the Server
  // constructor's (losing that race just reverts to the late error path).
  if (config.port != 0) {
    try {
      net::TcpListener::bind_loopback(config.port).close();
    } catch (const net::NetError& e) {
      std::cerr << "error: " << e.what()
                << "\nhint: 127.0.0.1:" << config.port
                << " is busy — stop the other process, choose another "
                   "--port, or pass --port 0 to pick a free one (printed "
                   "on the listening line)\n";
      return 1;
    }
  }

  serve::SnapshotConfig snap;
  serve::EmbeddingStore store;
  try {
    parse_bits_spec(parser.get("bits"), &snap);
    snap.num_shards = static_cast<std::size_t>(parser.get_int("shards"));
    snap.align_to_live = parser.get_flag("align-candidates");
    if (parser.get_flag("demo")) {
      serve::DemoStoreConfig demo;
      demo.vocab = static_cast<std::size_t>(parser.get_int("demo-vocab"));
      demo.dim = static_cast<std::size_t>(parser.get_int("demo-dim"));
      demo.bits = snap.bits;
      demo.pq_m = snap.pq_m;
      demo.pq_bits = snap.pq_bits;
      demo.num_shards = snap.num_shards;
      demo.align_to_live = snap.align_to_live;
      serve::add_demo_versions(store, demo);
      std::cerr << "loaded demo store: v1 (live), v2-good, v3-bad; vocab="
                << demo.vocab << " dim=" << demo.dim << " encoding="
                << store.live()->encoding() << "\n";
    } else {
      const auto specs = parse_store_specs(parser.get("stores"));
      if (specs.empty()) {
        std::cerr << "error: provide --stores version=path[,...] or --demo\n"
                  << parser.usage();
        return 2;
      }
      for (const StoreSpec& spec : specs) {
        store.load_version(spec.version, spec.path, snap);
        const auto loaded = store.snapshot(spec.version);
        std::cerr << "loaded " << spec.version << " from " << spec.path
                  << ": vocab=" << loaded->vocab_size()
                  << " dim=" << loaded->dim()
                  << " encoding=" << loaded->encoding() << " ("
                  << loaded->memory_bytes() << " bytes)\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error loading store: " << e.what() << "\n";
    return 1;
  }

  try {
    net::Server server(store, config);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::optional<net::MetricsHttpServer> metrics_http;
    if (metrics_port >= 0) {
      metrics_http.emplace(
          static_cast<std::uint16_t>(metrics_port), [&server] {
            return obs::to_prometheus(server.metrics_registry().snapshot());
          });
      metrics_http->start();
    }
    server.start();
    // The one machine-readable line scripts scrape for the bound port.
    std::cout << "anchor_served listening on 127.0.0.1:" << server.port()
              << std::endl;
    // Scripts scrape the "listening on" line specifically, so the
    // metrics endpoint gets its own line (same greppable shape).
    if (metrics_http) {
      std::cout << "anchor_served metrics on 127.0.0.1:"
                << metrics_http->port() << std::endl;
    }

    if (config.fault_inject) {
      std::cerr << "anchor_served FAULT INJECTION ARMED: "
                << (config.faults.any() ? config.faults.serialize()
                                        : std::string("(no faults yet)"))
                << "\n";
    }

    while (!g_signaled.load() && !server.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Graceful drain: stop() quits accepting, waits out in-flight
    // handlers and canary shadows, and flushes the audit CSV/slow-log
    // before the listener closes — SIGTERM'd daemons exit 0 with no
    // half-written replies on the wire.
    std::cerr << "anchor_served draining (signal or shutdown RPC)...\n";
    server.stop();
    const auto stats = server.service().stats().snapshot();
    std::cerr << "anchor_served exiting; " << stats.summary() << "\n";
  } catch (const net::NetError& e) {
    // Usually the bind racing another process onto the same port (the
    // pre-load probe above catches the common case early).
    std::cerr << "fatal: " << e.what()
              << "\nhint: pass --port 0 to pick a free port (printed on "
                 "the listening line)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
