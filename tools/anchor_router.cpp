// anchor_router — the distributed-serving front-end: speaks the standard
// wire protocol (src/net/PROTOCOL.md) to clients and scatter-gathers
// every lookup across the anchor_served backends named by a ShardMap.
// Unmodified net::Client code pointed at this port sees one logical
// store covering the union of all shard row ranges.
//
//   # two backends serving rows [0,1500) and [1500,3000)
//   anchor_served --demo --port 7501 &
//   anchor_served --demo --port 7502 &
//   anchor_router --backends 127.0.0.1:7501:0:1500,127.0.0.1:7502:1500:3000
//       --port 7500 --audit-log /tmp/rollout_audit.csv
//   # then: lookups via any client, plus ROLLOUT_START/STATUS/ABORT for
//   # coordinated shard-by-shard version promotion.
//
// Prints exactly one line
//   anchor_router listening on 127.0.0.1:<port>
// once it serves (--port 0 picks a free port, reported here). Exits on
// SIGINT/SIGTERM or a client kShutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "cluster/router.hpp"
#include "net/metrics_http.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/argparse.hpp"

namespace {

std::atomic<bool> g_signaled{false};

void on_signal(int) { g_signaled.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace anchor;

  ArgParser parser(
      "anchor_router",
      "Shard-routing front-end: scatter-gather lookups across anchor_served "
      "backends plus coordinated shard-by-shard rollout (see "
      "src/net/PROTOCOL.md).");
  parser.add_option("backends",
                    "comma-separated host:port[|host:port...]:row_begin:"
                    "row_end shard entries, contiguous from row 0; '|' "
                    "separates the replicas of one shard",
                    "", /*required=*/true);
  parser.add_option("map-version",
                    "topology version stamped into the ShardMap", "1");
  parser.add_option("port", "TCP port on 127.0.0.1 (0 = pick a free port, "
                    "printed on the listening line)", "0");
  parser.add_option("metrics",
                    "Prometheus scrape port on 127.0.0.1 (0 = ephemeral, "
                    "-1 = disabled)", "-1");
  parser.add_option("slow-log",
                    "JSONL slow-request trace log path (empty = disabled)");
  parser.add_option("slow-threshold-us",
                    "log a sampled trace when the request took at least "
                    "this many microseconds (0 = every sampled request)",
                    "10000");
  parser.add_option("slow-log-max-bytes",
                    "rotate the slow log once it would exceed this many "
                    "bytes: the old file moves to <path>.1 (0 = unbounded)",
                    "16777216");
  parser.add_option("slo-p99-us",
                    "SLO latency target in microseconds for cluster "
                    "lookups (0 disables the latency term)", "0");
  parser.add_option("slo-error-budget",
                    "allowed fraction of degraded/SLO-violating lookups",
                    "0.01");
  parser.add_option("hot-keys",
                    "heavy-hitter sketch entry budget over the global id "
                    "space (0 disables key-load tracking)", "512");
  parser.add_option("heat-buckets",
                    "per-id-range heat-map bucket fanout", "256");
  parser.add_option("probe-interval-ms",
                    "backend health-probe cadence (0 disables probing)",
                    "500");
  parser.add_option("backend-timeout-ms",
                    "per-recv/send stall bound on backend connections "
                    "before a shard's rows degrade", "2000");
  parser.add_option("rollout-poll-ms",
                    "poll cadence for a per-shard canary during a rollout",
                    "50");
  parser.add_option("pool-size",
                    "data-plane ClusterClient pool size: concurrent "
                    "scatter-gathers and per-replica backend fan-in are "
                    "both capped here", "4");
  parser.add_option("max-attempts",
                    "failover budget per shard per lookup (1 = no retry)",
                    "3");
  parser.add_flag("no-hedge",
                  "disable p99-hedged reads (hedging is on by default "
                  "when a shard has more than one live replica)");
  parser.add_option("hedge-quantile",
                    "RTT quantile the hedge delay is derived from", "0.99");
  parser.add_option("hedge-multiplier",
                    "hedge delay = quantile RTT x this multiplier", "1.0");
  parser.add_option("hedge-min-samples",
                    "per-shard RTT samples required before the measured "
                    "delay replaces the default", "64");
  parser.add_option("audit-log",
                    "CSV audit log for per-shard rollout outcomes "
                    "(empty = no log)");
  parser.add_flag("forward-shutdown",
                  "forward a client kShutdown to every backend before "
                  "stopping (one RPC tears down the whole cluster)");

  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << parser.error() << "\n" << parser.usage();
    return 2;
  }

  cluster::RouterConfig config;
  std::int64_t metrics_port = -1;
  try {
    const std::int64_t port = parser.get_int("port");
    if (port < 0 || port > 65535) {
      throw std::runtime_error("--port must be in [0, 65535]");
    }
    config.port = static_cast<std::uint16_t>(port);
    metrics_port = parser.get_int("metrics");
    if (metrics_port > 65535) {
      throw std::runtime_error("--metrics must be in [-1, 65535]");
    }
    obs::TracerConfig tracer;
    tracer.slow_log_path = parser.get("slow-log");
    tracer.slow_threshold_us = parser.get_double("slow-threshold-us");
    const std::int64_t slow_cap = parser.get_int("slow-log-max-bytes");
    if (slow_cap < 0) {
      throw std::runtime_error("--slow-log-max-bytes must be >= 0");
    }
    tracer.slow_log_max_bytes = static_cast<std::uint64_t>(slow_cap);
    obs::Tracer::instance().configure(tracer);
    config.slo.p99_target_us = parser.get_double("slo-p99-us");
    config.slo.error_budget = parser.get_double("slo-error-budget");
    if (config.slo.error_budget <= 0.0 || config.slo.error_budget > 1.0) {
      throw std::runtime_error("--slo-error-budget must be in (0, 1]");
    }
    config.hot_key_capacity =
        static_cast<std::size_t>(parser.get_int("hot-keys"));
    config.heat_buckets =
        static_cast<std::size_t>(parser.get_int("heat-buckets"));
    std::string map_text = "v";
    map_text += std::to_string(parser.get_int("map-version"));
    map_text += ',';
    map_text += parser.get("backends");
    config.map = cluster::ShardMap::parse(map_text);
    config.probe_interval_ms =
        static_cast<int>(parser.get_int("probe-interval-ms"));
    config.backend_io_timeout_ms =
        static_cast<int>(parser.get_int("backend-timeout-ms"));
    config.rollout_poll_ms =
        static_cast<int>(parser.get_int("rollout-poll-ms"));
    const std::int64_t pool_size = parser.get_int("pool-size");
    if (pool_size < 1 || pool_size > 256) {
      throw std::runtime_error("--pool-size must be in [1, 256]");
    }
    config.pool_size = static_cast<std::size_t>(pool_size);
    const std::int64_t max_attempts = parser.get_int("max-attempts");
    if (max_attempts < 1) {
      throw std::runtime_error("--max-attempts must be at least 1");
    }
    config.max_attempts = static_cast<int>(max_attempts);
    config.hedge = !parser.get_flag("no-hedge");
    config.hedge_policy.quantile = parser.get_double("hedge-quantile");
    config.hedge_policy.multiplier = parser.get_double("hedge-multiplier");
    config.hedge_policy.min_samples =
        static_cast<std::size_t>(parser.get_int("hedge-min-samples"));
    if (config.hedge_policy.quantile <= 0.0 ||
        config.hedge_policy.quantile >= 1.0 ||
        config.hedge_policy.multiplier <= 0.0) {
      throw std::runtime_error(
          "--hedge-quantile must be in (0, 1) and --hedge-multiplier > 0");
    }
    config.audit_log = parser.get("audit-log");
    config.forward_shutdown = parser.get_flag("forward-shutdown");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << parser.usage();
    return 2;
  }

  try {
    cluster::Router router(config);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::optional<net::MetricsHttpServer> metrics_http;
    if (metrics_port >= 0) {
      metrics_http.emplace(
          static_cast<std::uint16_t>(metrics_port), [&router] {
            return obs::to_prometheus(router.metrics_registry().snapshot());
          });
      metrics_http->start();
    }
    router.start();
    std::cerr << "routing " << config.map.total_rows() << " rows over "
              << config.map.num_shards() << " shards ("
              << config.map.num_replicas_total() << " replicas, hedging "
              << (config.hedge ? "on" : "off") << "): "
              << config.map.serialize() << "\n";
    std::cout << "anchor_router listening on 127.0.0.1:" << router.port()
              << std::endl;
    if (metrics_http) {
      std::cout << "anchor_router metrics on 127.0.0.1:"
                << metrics_http->port() << std::endl;
    }

    while (!g_signaled.load() && !router.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // Graceful drain: stop() quits accepting, joins in-flight handlers
    // and any rollout thread (aborting + rolling back an interrupted
    // rollout), and flushes the audit CSV before the listener closes.
    std::cerr << "anchor_router draining (signal or shutdown RPC)...\n";
    router.stop();
    std::cerr << "anchor_router exiting\n";
  } catch (const net::NetError& e) {
    // The common operator mistake is a port that is already bound; fail
    // fast with the remedy instead of a bare errno string.
    std::cerr << "fatal: " << e.what()
              << "\nhint: pass --port 0 to pick a free port (printed on "
                 "the listening line)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
