// Table 3: average absolute gap to the oracle's downstream instability when
// selecting the dimension–precision combination under fixed memory budgets,
// for the five measures plus the High/Low-Precision naive baselines.
#include "bench/selection_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  print_header("Table 3 — selection under fixed memory budgets", "Table 3");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<std::string> tasks = {"sst2", "subj", "conll2003"};

  anchor::TextTable table([&] {
    std::vector<std::string> header = {"Criterion"};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        header.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return header;
  }());

  double eis_total = 0.0, naive_best_total = 1e300;
  std::map<std::string, double> totals;
  for (const auto& criterion : all_criteria()) {
    std::vector<std::string> row = {criterion.name()};
    double total = 0.0;
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        const auto r = seed_budget_selection(pipe, task, algo, criterion);
        total += r.mean_abs_gap_pct;
        row.push_back(anchor::format_double(r.mean_abs_gap_pct, 2));
      }
    }
    totals[criterion.name()] = total;
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  eis_total = totals.at("Eigenspace Instability");
  naive_best_total =
      std::min(totals.at("High Precision"), totals.at("Low Precision"));
  std::cout << "\nMean |gap to oracle| — EIS: "
            << anchor::format_double(eis_total / 9.0, 3)
            << "%, best naive baseline: "
            << anchor::format_double(naive_best_total / 9.0, 3) << "%\n";
  shape_check("EIS closer to the oracle than the naive baselines",
              eis_total < naive_best_total);
  return 0;
}
