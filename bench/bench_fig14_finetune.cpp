// Figure 14b (Appendix E.4): the stability–memory tradeoff when the linear
// sentiment model fine-tunes the embeddings during training. The paper
// finds the trend noisier but intact, and overall instability reduced
// relative to frozen embeddings.
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  using anchor::pipeline::DownstreamOptions;
  print_header("Figure 14b — fine-tuned embeddings", "Figure 14b");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  const std::vector<int> precisions = {1, 4, 32};
  DownstreamOptions finetune;
  finetune.fine_tune = true;

  for (const auto algo : algos) {
    std::cout << algo_name(algo)
              << ", SST-2 — % disagreement, fine-tuned vs frozen:\n";
    anchor::TextTable table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : precisions) {
        h.push_back("ft b=" + std::to_string(b));
      }
      for (const int b : precisions) {
        h.push_back("frozen b=" + std::to_string(b));
      }
      return h;
    }());
    double ft_total = 0.0, frozen_total = 0.0;
    double ft_lo = 0.0, ft_hi = 0.0;
    for (const auto dim : pipe.config().dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int b : precisions) {
        const double di =
            pipe.downstream_instability("sst2", algo, dim, b, 1, finetune);
        ft_total += di;
        row.push_back(format_double(di, 2));
        if (dim == pipe.config().dims.front() && b == precisions.front()) {
          ft_lo = di;
        }
        if (dim == pipe.config().dims.back() && b == precisions.back()) {
          ft_hi = di;
        }
      }
      for (const int b : precisions) {
        const double di = pipe.downstream_instability("sst2", algo, dim, b, 1);
        frozen_total += di;
        row.push_back(format_double(di, 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    shape_check("tradeoff persists under fine-tuning (" + algo_name(algo) +
                    ", min vs max memory)",
                ft_hi <= ft_lo);
    shape_check("fine-tuning reduces total instability (" + algo_name(algo) +
                    ")",
                ft_total < frozen_total);
    std::cout << "\n";
  }
  return 0;
}
