// Serving throughput bench: multi-threaded batched lookup against the
// EmbeddingStore/LookupService across precision (fp32 vs bit-packed
// quantized), hot-row cache on/off, and thread count — including a
// hot-swap-under-load scenario showing version promotion costs readers
// nothing.
//
// Reported numbers are aggregate QPS (vectors/sec) and per-batch p50/p99
// latency from ServeStats; every cell is also appended to a machine-
// readable BENCH_serve.json (override with --json <path>) so the serving
// perf trajectory is recorded across PRs. Latency quantiles come from
// ServeStats' obs::LogHistogram (nearest-rank bucket lower bound, ≤1/32
// relative error) — the same estimator the daemon and router report, so
// bench cells are directly comparable to production scrapes. The JSON
// stamps this as workload.latency_estimator; cells from before that
// field existed used a raw nearest-rank sample ring and are not
// bit-comparable at the tail.
//
// The async section measures the coalescing front-end: N client threads
// each keep a window of pipelined SINGLE-KEY futures against an
// AsyncLookupService, so all batching happens inside its flat-combining
// ring. Numbers to watch (both in the JSON's "async_vs_native" object):
// the ratio of coalesced single-key throughput to native lookup_batch
// throughput at the same batch size, and the speedup over UNcoalesced
// native single-key calls (the naive front-end the batcher replaces).
// On a 1-core host the multi-client cells are scheduler-bound: clients,
// combiner, and consumers time-slice one core, so the ratio peaks at 1
// client (~50% of native batch-64) and decays with client count; the
// single-key speedup is the robust signal.
//
// The canary section prices the CanaryRouter data plane. Two numbers:
// the SHADOW overhead (shadow-rate 0.1 vs 0 through the same router —
// the cost of observing agreement, a few percent) and the ROUTING
// overhead vs the plain async batch path. The latter is dominated on a
// 1-core host by the general path's cv-wait latency floor: the hash
// split turns every full batch into two underfull sub-batches whose
// flush deadline + promise wakeup cost ~100 µs of timer slack per
// request with a single blocking driver. With concurrent clients the
// sub-batches coalesce across requests and that floor amortizes away —
// re-measure on multicore before reading it as steady-state cost.
//
// The cluster section prices the shard router's scatter-gather data
// plane: batch-64 lookups over loopback TCP against one direct backend
// vs a 2-shard ClusterClient split (the JSON's "cluster" object). On a
// 1-core host the fan-out cost is dominated by time-slicing: client,
// two backend accept/handler/batcher stacks, and the merge all share
// one core, so the two sub-requests serialize instead of overlapping —
// the number to watch on multicore is how far the overhead falls once
// shard execution is genuinely concurrent (the design's whole point).
// Run: ./build/bench/bench_serve_throughput [--json path] [--smoke]
#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "cluster/cluster_client.hpp"
#include "compress/pq.hpp"
#include "la/kernels.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

constexpr std::size_t kVocab = 50000;
constexpr std::size_t kDim = 64;
constexpr std::size_t kBatch = 64;
constexpr std::size_t kAsyncWindow = 64;  // pipelined futures per client
double g_seconds_per_cell = 0.4;

embed::Embedding random_embedding(std::uint64_t seed) {
  embed::Embedding e(kVocab, kDim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

/// Zipf-ish skewed row id: popular rows dominate, so the hot-row cache has
/// something to cache (uniform traffic would thrash any bounded cache).
std::size_t skewed_id(Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::size_t>(u * u * u * static_cast<double>(kVocab)) %
         kVocab;
}

serve::StatsSnapshot run_cell(serve::LookupService& service, int threads,
                              std::size_t batch = kBatch) {
  service.stats().reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&service, &stop, batch, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      std::vector<std::size_t> ids(batch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& id : ids) id = skewed_id(rng);
        service.lookup_ids(ids);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(g_seconds_per_cell));
  stop.store(true);
  for (auto& w : workers) w.join();
  return service.stats().snapshot();
}

/// Coalesced single-key traffic: every request carries ONE key; each
/// client pipelines kAsyncWindow futures so the dispatcher always has
/// enough queued keys to form full batches (a blocking client per thread
/// would cap coalesced batches at `threads` keys).
serve::StatsSnapshot run_async_cell(const serve::LookupService& service,
                                    int threads, double* mean_batch) {
  serve::BatcherConfig config;
  config.max_batch_size = kBatch;
  serve::AsyncLookupService async(service, config);
  async.stats().reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&async, &stop, t] {
      Rng rng(3000 + static_cast<std::uint64_t>(t));
      std::deque<serve::AsyncLookupService::SliceFuture> window;
      while (!stop.load(std::memory_order_relaxed)) {
        window.push_back(async.lookup_id(skewed_id(rng)));
        // Drain everything already completed; block only when the
        // window is full (keeps slack against batch-phase drift).
        while (!window.empty() &&
               (window.size() >= kAsyncWindow || window.front().ready())) {
          window.front().get();
          window.pop_front();
        }
      }
      while (!window.empty()) {
        window.front().get();
        window.pop_front();
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(g_seconds_per_cell));
  stop.store(true);
  for (auto& c : clients) c.join();
  const serve::StatsSnapshot s = async.stats().snapshot();
  *mean_batch = s.batches > 0
                    ? static_cast<double>(s.lookups) /
                          static_cast<double>(s.batches)
                    : 0.0;
  return s;
}

struct BenchCell {
  std::string config;
  int threads = 0;
  serve::StatsSnapshot stats;
  double mean_coalesced_batch = 0.0;  // async cells only
};

void add_row(TextTable& table, std::vector<BenchCell>& cells,
             const std::string& label, const serve::StatsSnapshot& s,
             int threads, double mean_batch = 0.0) {
  table.add_row({label, std::to_string(threads),
                 format_double(s.qps / 1e6, 2), format_double(s.p50_latency_us, 1),
                 format_double(s.p99_latency_us, 1),
                 format_double(100.0 * s.cache_hit_rate(), 1) + "%"});
  cells.push_back({label, threads, s, mean_batch});
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--smoke") {
      smoke = true;  // CI: exercise every path in well under a second each
    }
  }
  if (smoke) g_seconds_per_cell = 0.05;
  const std::vector<int> native_threads =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> async_threads =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
  std::cout << "\n=== Serving throughput (EmbeddingStore + LookupService) "
               "===\n"
            << "vocab=" << kVocab << " dim=" << kDim << " batch=" << kBatch
            << ", skewed traffic, " << g_seconds_per_cell
            << "s per cell\n\n";

  serve::EmbeddingStore store;
  const auto source = random_embedding(7);
  serve::SnapshotConfig fp32;
  fp32.build_oov_table = false;
  serve::SnapshotConfig q8 = fp32;
  q8.bits = 8;
  store.add_version("fp32", source, fp32);
  store.add_version("int8", source, q8);

  // PQ version: train codebooks on a 4096-row subsample (the offline step
  // of the shared-codebook deployment contract), then encode the full
  // vocabulary against them — Lloyd over all 50k rows would dominate bench
  // startup without changing what the cells measure.
  serve::SnapshotConfig pq = fp32;
  pq.pq_m = 4;
  pq.pq_bits = 8;
  {
    embed::Embedding sample(4096, kDim);
    std::copy_n(source.data.begin(), sample.data.size(),
                sample.data.begin());
    compress::PqConfig pc;
    pc.num_subvectors = pq.pq_m;
    pc.bits = pq.pq_bits;
    pq.pq_codebooks_override = compress::pq_quantize(sample, pc).codebooks;
  }
  store.add_version("pq4x8", source, pq);

  std::cout << "resident bytes: fp32="
            << store.snapshot("fp32")->memory_bytes() << " int8="
            << store.snapshot("int8")->memory_bytes() << " pq4x8="
            << store.snapshot("pq4x8")->memory_bytes() << "\n\n";

  TextTable table({"config", "threads", "Mqps", "p50 us", "p99 us",
                   "cache hit"});
  std::vector<BenchCell> cells;
  for (const int threads : native_threads) {
    store.set_live("fp32");
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 0});
      add_row(table, cells, "fp32 nocache", run_cell(service, threads),
              threads);
    }
    store.set_live("int8");
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 0});
      add_row(table, cells, "int8 nocache", run_cell(service, threads),
              threads);
    }
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 1024});
      add_row(table, cells, "int8 cached", run_cell(service, threads),
              threads);
    }
    store.set_live("pq4x8");
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 0});
      add_row(table, cells, "pq4x8 nocache", run_cell(service, threads),
              threads);
    }
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 1024});
      add_row(table, cells, "pq4x8 cached", run_cell(service, threads),
              threads);
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the grid: the cache only wins when a hit is "
               "cheaper than re-dequantizing a row, i.e. for wide rows or "
               "aggressive bit widths; at narrow dims the per-shard mutex "
               "can cost more than the unpack it saves.\n";

  // Async coalescing: single-key futures only, batching done entirely by
  // the AsyncLookupService dispatcher. Compare against "int8 nocache"
  // above — that is the native lookup_batch(kBatch) hot path the
  // coalesced traffic is trying to match.
  std::cout << "\nasync coalesced single-key (window=" << kAsyncWindow
            << " futures/client, max_batch=" << kBatch << "):\n";
  store.set_live("int8");
  serve::LookupService async_backend(store, {.cache_rows_per_shard = 0});
  // The uncoalesced baseline: every single-key request pays the full
  // per-batch cost itself — what a naive RPC front-end would do, and the
  // number the batcher exists to beat.
  const auto native1 = run_cell(async_backend, 8, 1);
  std::cout << "  (uncoalesced native single-key at 8 threads: "
            << format_double(native1.qps / 1e6, 2) << " Mqps)\n";
  cells.push_back({"int8 native1key", 8, native1, 0.0});
  TextTable async_table({"config", "threads", "Mqps", "p50 us", "p99 us",
                         "coalesced batch"});
  for (const int threads : async_threads) {
    double mean_batch = 0.0;
    const auto s = run_async_cell(async_backend, threads, &mean_batch);
    async_table.add_row({"int8 async1key", std::to_string(threads),
                         format_double(s.qps / 1e6, 2),
                         format_double(s.p50_latency_us, 1),
                         format_double(s.p99_latency_us, 1),
                         format_double(mean_batch, 1)});
    cells.push_back({"int8 async1key", threads, s, mean_batch});
  }
  async_table.print(std::cout);

  // The acceptance ratio the JSON records: coalesced single-key QPS vs
  // native batch QPS, both int8/nocache, at the highest common thread
  // count (p50 here is client-observed latency including queue wait, so
  // it is expected to sit near max_wait_us under light load).
  double native_ref = 0.0, async_ref = 0.0, pq_ref = 0.0;
  int ref_threads = 0;
  for (const BenchCell& c : cells) {
    if (c.config == "int8 nocache" && c.threads >= 8) {
      native_ref = c.stats.qps;
      ref_threads = c.threads;
    }
    if (c.config == "pq4x8 nocache" && c.threads >= 8) {
      pq_ref = c.stats.qps;
    }
    if (c.config == "int8 async1key" && c.threads == 8) {
      async_ref = c.stats.qps;
    }
  }
  const double ratio = native_ref > 0.0 ? async_ref / native_ref : 0.0;
  const double coalescing_speedup =
      native1.qps > 0.0 ? async_ref / native1.qps : 0.0;
  std::cout << "\nasync vs native batch-" << kBatch << " at " << ref_threads
            << " threads: " << format_double(async_ref / 1e6, 2) << " / "
            << format_double(native_ref / 1e6, 2)
            << " Mqps = " << format_double(100.0 * ratio, 1)
            << "%\nasync vs UNcoalesced single-key: "
            << format_double(coalescing_speedup, 1) << "x\n";

  // Canary overhead: run the CanaryRouter as the data plane (fraction
  // 0.1 of keys to a candidate pinned snapshot) and price the shadow
  // mirror at shadow-rate 0.1 against shadow-rate 0 and against the
  // plain async batch path. The candidate is the same source matrix, the
  // decision thresholds are disabled, and min_shadows is unreachable, so
  // the canary stays RUNNING for the whole cell — these numbers are the
  // steady-state cost of observing a canary, not of deciding one.
  std::cout << "\ncanary routing overhead (fraction=0.1, batch=" << kBatch
            << "):\n";
  store.set_live("int8");
  store.add_version("int8cand", source, q8);
  serve::LookupService canary_backend(store, {.cache_rows_per_shard = 0});
  serve::BatcherConfig canary_batcher;
  canary_batcher.max_batch_size = kBatch;
  // The hash split turns each 64-key request into two underfull
  // sub-batches (~6 + ~58 keys), so with blocking drivers the flush
  // deadline — not the lookup — dominates. 20 µs is a latency-tuned
  // serving value; the same batcher serves the baseline cell, keeping
  // the comparison apples-to-apples.
  canary_batcher.max_wait_us = 20;
  serve::AsyncLookupService canary_primary(canary_backend, canary_batcher);
  serve::GateConfig canary_gate;
  canary_gate.eis_warn = canary_gate.eis_reject = 100.0;
  canary_gate.knn_warn = canary_gate.knn_reject = 100.0;
  canary_gate.max_rows = 512;
  canary_gate.knn_queries = 64;
  const serve::DeploymentGate permissive(canary_gate);

  const auto run_blocking_cell = [&](auto&& fn, int threads) {
    serve::ServeStats cell_stats;
    std::atomic<bool> cell_stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(5000 + static_cast<std::uint64_t>(t));
        std::vector<std::size_t> ids(kBatch);
        serve::LookupResult result;
        while (!cell_stop.load(std::memory_order_relaxed)) {
          for (auto& id : ids) id = skewed_id(rng);
          const auto t0 = std::chrono::steady_clock::now();
          fn(ids, &result);
          cell_stats.record_batch(
              kBatch, std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(g_seconds_per_cell));
    cell_stop.store(true);
    for (auto& w : workers) w.join();
    return cell_stats.snapshot();
  };

  const int canary_threads = smoke ? 1 : 2;
  const auto baseline_cell = run_blocking_cell(
      [&](const std::vector<std::size_t>& ids, serve::LookupResult*) {
        canary_primary.lookup_ids(std::vector<std::size_t>(ids)).get();
      },
      canary_threads);

  serve::StatsSnapshot canary_cells[2];
  const double shadow_rates[2] = {0.0, 0.1};
  for (int c = 0; c < 2; ++c) {
    serve::CanaryConfig ccfg;
    ccfg.fraction = 0.1;
    ccfg.shadow_rate = shadow_rates[c];
    ccfg.min_shadows = ~std::size_t{0} / 2;  // observe forever, never decide
    ccfg.max_shadows = ~std::size_t{0} / 2;
    ccfg.candidate_batcher.max_wait_us = 20;
    const auto router =
        permissive.try_promote(store, "int8cand", canary_primary, ccfg);
    canary_cells[c] = run_blocking_cell(
        [&](const std::vector<std::size_t>& ids, serve::LookupResult* out) {
          router->lookup_ids_into(ids, out);
        },
        canary_threads);
    if (c == 1) {
      const auto cs = router->stats();
      std::cout << "  shadow samples collected at rate 0.1: " << cs.shadows
                << " (mean agreement " << format_double(cs.mean_agreement, 3)
                << ")\n";
    }
    router->abort();
  }
  const double canary_routing_cost =
      baseline_cell.qps > 0.0
          ? 1.0 - canary_cells[0].qps / baseline_cell.qps
          : 0.0;
  const double shadow_cost =
      canary_cells[0].qps > 0.0
          ? 1.0 - canary_cells[1].qps / canary_cells[0].qps
          : 0.0;
  TextTable canary_table({"config", "threads", "Mqps", "p50 us", "p99 us",
                          "cache hit"});
  add_row(canary_table, cells, "int8 asyncbatch nocanary", baseline_cell,
          canary_threads);
  add_row(canary_table, cells, "int8 canary f0.1 s0.0", canary_cells[0],
          canary_threads);
  add_row(canary_table, cells, "int8 canary f0.1 s0.1", canary_cells[1],
          canary_threads);
  canary_table.print(std::cout);
  std::cout << "  routing overhead (canary vs plain async batch): "
            << format_double(100.0 * canary_routing_cost, 1)
            << "%\n  shadow overhead (s=0.1 vs s=0.0):               "
            << format_double(100.0 * shadow_cost, 1) << "%\n";

  // Cluster scatter-gather: the same int8 rows served over loopback TCP,
  // once by a single backend and once split across two shard backends
  // behind a ClusterClient (the router's data plane). The delta prices
  // the fan-out: two sub-requests, two replies, one merge per batch —
  // against the one-RPC direct path. Both cells pay the wire, so the
  // ratio isolates the sharding cost rather than TCP itself. Shards share
  // the full store's clip threshold, keeping the split bit-identical to
  // the single backend (the deployment contract README documents).
  std::cout << "\ncluster scatter-gather over loopback (batch=" << kBatch
            << "):\n";
  const int cluster_threads = smoke ? 1 : 2;
  serve::StatsSnapshot cluster_cells[2];
  {
    serve::SnapshotConfig q8_shared = q8;
    q8_shared.clip_override = store.snapshot("int8")->clip();
    const std::size_t split = kVocab / 2;
    const auto make_slice = [&](std::size_t begin, std::size_t end) {
      embed::Embedding e(end - begin, kDim);
      std::memcpy(e.data.data(), source.data.data() + begin * kDim,
                  (end - begin) * kDim * sizeof(float));
      return e;
    };
    serve::EmbeddingStore whole, lo, hi;
    whole.add_version("int8", source, q8_shared);
    lo.add_version("int8", make_slice(0, split), q8_shared);
    hi.add_version("int8", make_slice(split, kVocab), q8_shared);
    net::Server direct(whole, {});
    net::Server shard1(lo, {});
    net::Server shard2(hi, {});
    direct.start();
    shard1.start();
    shard2.start();
    const cluster::ShardMap map(
        1, {{"127.0.0.1", shard1.port(), 0, split},
            {"127.0.0.1", shard2.port(), split, kVocab}});

    // make_client(t) builds the per-thread lookup fn (blocking clients
    // are single-stream, so each worker owns its own).
    const auto run_rpc_cell = [&](auto&& make_client) {
      serve::ServeStats cell_stats;
      std::atomic<bool> cell_stop{false};
      std::vector<std::thread> workers;
      for (int t = 0; t < cluster_threads; ++t) {
        workers.emplace_back([&, t] {
          auto lookup = make_client(t);
          Rng rng(7000 + static_cast<std::uint64_t>(t));
          std::vector<std::size_t> ids(kBatch);
          while (!cell_stop.load(std::memory_order_relaxed)) {
            for (auto& id : ids) id = skewed_id(rng);
            const auto t0 = std::chrono::steady_clock::now();
            lookup(ids);
            cell_stats.record_batch(
                kBatch, std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
          }
        });
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(g_seconds_per_cell));
      cell_stop.store(true);
      for (auto& w : workers) w.join();
      return cell_stats.snapshot();
    };
    cluster_cells[0] = run_rpc_cell([&](int) {
      auto client = std::make_shared<net::Client>("127.0.0.1", direct.port());
      return [client](const std::vector<std::size_t>& ids) {
        client->lookup_ids(ids);
      };
    });
    cluster_cells[1] = run_rpc_cell([&](int) {
      cluster::ClusterConfig cc;
      cc.map = map;
      auto client = std::make_shared<cluster::ClusterClient>(cc);
      return [client](const std::vector<std::size_t>& ids) {
        client->lookup_ids(ids);
      };
    });
    direct.stop();
    shard1.stop();
    shard2.stop();
  }
  const double fanout_cost =
      cluster_cells[0].qps > 0.0
          ? 1.0 - cluster_cells[1].qps / cluster_cells[0].qps
          : 0.0;
  TextTable cluster_table({"config", "threads", "Mqps", "p50 us", "p99 us",
                           "cache hit"});
  add_row(cluster_table, cells, "int8 rpc direct", cluster_cells[0],
          cluster_threads);
  add_row(cluster_table, cells, "int8 cluster 2shard", cluster_cells[1],
          cluster_threads);
  cluster_table.print(std::cout);
  std::cout << "  fan-out overhead (2-shard scatter-gather vs direct RPC): "
            << format_double(100.0 * fanout_cost, 1) << "%\n";

  // Hot swap under load: flip the live version every 10ms while 4 threads
  // read. Any stall or stale read would show up as a latency spike or a
  // crash; the snapshot shared_ptr design means neither can happen.
  std::cout << "\nhot-swap under load (4 threads, swap every 10ms):\n";
  serve::LookupService service(store, {.cache_rows_per_shard = 1024});
  service.stats().reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&service, &stop, t] {
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      std::vector<std::size_t> ids(kBatch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& id : ids) id = skewed_id(rng);
        service.lookup_ids(ids);
      }
    });
  }
  for (int swap = 0; swap < (smoke ? 5 : 40); ++swap) {
    store.set_live(swap % 2 == 0 ? "fp32" : "int8");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  const auto swap_stats = service.stats().snapshot();
  std::cout << "  " << swap_stats.summary() << "\n";

  bench::JsonWriter json;
  json.begin_object();
  json.kv("bench", "serve_throughput");
  json.key("host").begin_object();
  json.kv("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.kv("isa", anchor::la::kernels::active_isa());
  json.end_object();
  json.key("workload").begin_object();
  json.kv("vocab", kVocab);
  json.kv("dim", kDim);
  json.kv("batch", kBatch);
  json.kv("async_window", kAsyncWindow);
  json.kv("seconds_per_cell", g_seconds_per_cell);
  // Quantile provenance: p50/p99 in every cell are derived from the
  // shared obs::LogHistogram, not a raw sample ring.
  json.kv("latency_estimator", "log_histogram_rel_err_1_32");
  json.end_object();
  json.key("cells").begin_array();
  for (const BenchCell& c : cells) {
    json.begin_object();
    json.kv("config", c.config);
    json.kv("threads", c.threads);
    json.kv("qps", c.stats.qps);
    json.kv("p50_us", c.stats.p50_latency_us);
    json.kv("p99_us", c.stats.p99_latency_us);
    json.kv("cache_hit_rate", c.stats.cache_hit_rate());
    if (c.mean_coalesced_batch > 0.0) {
      json.kv("mean_coalesced_batch", c.mean_coalesced_batch);
    }
    json.end_object();
  }
  json.end_array();
  // The PQ memory/throughput trade at a glance: bytes per stored row for
  // each encoding (codebook amortized across the vocabulary) and the
  // decode cost as a QPS ratio against int8 on the same traffic.
  json.key("pq").begin_object();
  json.kv("encoding", store.snapshot("pq4x8")->encoding());
  json.kv("row_bytes_fp32", kDim * sizeof(float));
  json.kv("row_bytes_int8", kDim);
  json.kv("row_bytes_pq", pq.pq_m);
  json.kv("fp32_memory_bytes", store.snapshot("fp32")->memory_bytes());
  json.kv("int8_memory_bytes", store.snapshot("int8")->memory_bytes());
  json.kv("pq_memory_bytes", store.snapshot("pq4x8")->memory_bytes());
  json.kv("pq_nocache_qps", pq_ref);
  json.kv("qps_vs_int8_nocache",
          native_ref > 0.0 ? pq_ref / native_ref : 0.0);
  json.end_object();
  json.key("async_vs_native").begin_object();
  json.kv("threads", ref_threads);
  json.kv("native_batch_qps", native_ref);
  json.kv("native_single_key_qps", native1.qps);
  json.kv("async_single_key_qps", async_ref);
  json.kv("ratio_vs_native_batch", ratio);
  json.kv("speedup_vs_uncoalesced", coalescing_speedup);
  json.end_object();
  json.key("cluster").begin_object();
  json.kv("threads", static_cast<std::size_t>(cluster_threads));
  json.kv("shards", static_cast<std::size_t>(2));
  json.kv("direct_rpc_qps", cluster_cells[0].qps);
  json.kv("cluster_qps", cluster_cells[1].qps);
  json.kv("fanout_overhead_frac", fanout_cost);
  json.end_object();
  json.key("canary_overhead").begin_object();
  json.kv("threads", static_cast<std::size_t>(canary_threads));
  json.kv("fraction", 0.1);
  json.kv("shadow_rate", 0.1);
  json.kv("baseline_async_batch_qps", baseline_cell.qps);
  json.kv("canary_no_shadow_qps", canary_cells[0].qps);
  json.kv("canary_shadow_qps", canary_cells[1].qps);
  json.kv("routing_overhead_frac", canary_routing_cost);
  json.kv("shadow_overhead_frac", shadow_cost);
  json.end_object();
  json.key("hot_swap_under_load").begin_object();
  json.kv("threads", 4);
  json.kv("qps", swap_stats.qps);
  json.kv("p50_us", swap_stats.p50_latency_us);
  json.kv("p99_us", swap_stats.p99_latency_us);
  json.end_object();
  json.end_object();
  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  return 0;
}
