// Serving throughput bench: multi-threaded batched lookup against the
// EmbeddingStore/LookupService across precision (fp32 vs bit-packed
// quantized), hot-row cache on/off, and thread count — including a
// hot-swap-under-load scenario showing version promotion costs readers
// nothing.
//
// Reported numbers are aggregate QPS (vectors/sec) and per-batch p50/p99
// latency from ServeStats; every cell is also appended to a machine-
// readable BENCH_serve.json (override with --json <path>) so the serving
// perf trajectory is recorded across PRs.
// Run: ./build/bench/bench_serve_throughput [--json path]
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "la/kernels.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

constexpr std::size_t kVocab = 50000;
constexpr std::size_t kDim = 64;
constexpr std::size_t kBatch = 64;
constexpr double kSecondsPerCell = 0.4;

embed::Embedding random_embedding(std::uint64_t seed) {
  embed::Embedding e(kVocab, kDim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

/// Zipf-ish skewed row id: popular rows dominate, so the hot-row cache has
/// something to cache (uniform traffic would thrash any bounded cache).
std::size_t skewed_id(Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::size_t>(u * u * u * static_cast<double>(kVocab)) %
         kVocab;
}

serve::StatsSnapshot run_cell(serve::LookupService& service, int threads) {
  service.stats().reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&service, &stop, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      std::vector<std::size_t> ids(kBatch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& id : ids) id = skewed_id(rng);
        service.lookup_ids(ids);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kSecondsPerCell));
  stop.store(true);
  for (auto& w : workers) w.join();
  return service.stats().snapshot();
}

struct BenchCell {
  std::string config;
  int threads = 0;
  serve::StatsSnapshot stats;
};

void add_row(TextTable& table, std::vector<BenchCell>& cells,
             const std::string& label, const serve::StatsSnapshot& s,
             int threads) {
  table.add_row({label, std::to_string(threads),
                 format_double(s.qps / 1e6, 2), format_double(s.p50_latency_us, 1),
                 format_double(s.p99_latency_us, 1),
                 format_double(100.0 * s.cache_hit_rate(), 1) + "%"});
  cells.push_back({label, threads, s});
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::cout << "\n=== Serving throughput (EmbeddingStore + LookupService) "
               "===\n"
            << "vocab=" << kVocab << " dim=" << kDim << " batch=" << kBatch
            << ", skewed traffic, " << kSecondsPerCell
            << "s per cell\n\n";

  serve::EmbeddingStore store;
  const auto source = random_embedding(7);
  serve::SnapshotConfig fp32;
  fp32.build_oov_table = false;
  serve::SnapshotConfig q8 = fp32;
  q8.bits = 8;
  store.add_version("fp32", source, fp32);
  store.add_version("int8", source, q8);

  std::cout << "resident bytes: fp32="
            << store.snapshot("fp32")->memory_bytes() << " int8="
            << store.snapshot("int8")->memory_bytes() << "\n\n";

  TextTable table({"config", "threads", "Mqps", "p50 us", "p99 us",
                   "cache hit"});
  std::vector<BenchCell> cells;
  for (const int threads : {1, 2, 4, 8}) {
    store.set_live("fp32");
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 0});
      add_row(table, cells, "fp32 nocache", run_cell(service, threads),
              threads);
    }
    store.set_live("int8");
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 0});
      add_row(table, cells, "int8 nocache", run_cell(service, threads),
              threads);
    }
    {
      serve::LookupService service(store, {.cache_rows_per_shard = 1024});
      add_row(table, cells, "int8 cached", run_cell(service, threads),
              threads);
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the grid: the cache only wins when a hit is "
               "cheaper than re-dequantizing a row, i.e. for wide rows or "
               "aggressive bit widths; at narrow dims the per-shard mutex "
               "can cost more than the unpack it saves.\n";

  // Hot swap under load: flip the live version every 10ms while 4 threads
  // read. Any stall or stale read would show up as a latency spike or a
  // crash; the snapshot shared_ptr design means neither can happen.
  std::cout << "\nhot-swap under load (4 threads, swap every 10ms):\n";
  serve::LookupService service(store, {.cache_rows_per_shard = 1024});
  service.stats().reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&service, &stop, t] {
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      std::vector<std::size_t> ids(kBatch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& id : ids) id = skewed_id(rng);
        service.lookup_ids(ids);
      }
    });
  }
  for (int swap = 0; swap < 40; ++swap) {
    store.set_live(swap % 2 == 0 ? "fp32" : "int8");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  const auto swap_stats = service.stats().snapshot();
  std::cout << "  " << swap_stats.summary() << "\n";

  bench::JsonWriter json;
  json.begin_object();
  json.kv("bench", "serve_throughput");
  json.key("host").begin_object();
  json.kv("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.kv("isa", anchor::la::kernels::active_isa());
  json.end_object();
  json.key("workload").begin_object();
  json.kv("vocab", kVocab);
  json.kv("dim", kDim);
  json.kv("batch", kBatch);
  json.kv("seconds_per_cell", kSecondsPerCell);
  json.end_object();
  json.key("cells").begin_array();
  for (const BenchCell& c : cells) {
    json.begin_object();
    json.kv("config", c.config);
    json.kv("threads", c.threads);
    json.kv("qps", c.stats.qps);
    json.kv("p50_us", c.stats.p50_latency_us);
    json.kv("p99_us", c.stats.p99_latency_us);
    json.kv("cache_hit_rate", c.stats.cache_hit_rate());
    json.end_object();
  }
  json.end_array();
  json.key("hot_swap_under_load").begin_object();
  json.kv("threads", 4);
  json.kv("qps", swap_stats.qps);
  json.kv("p50_us", swap_stats.p50_latency_us);
  json.kv("p99_us", swap_stats.p99_latency_us);
  json.end_object();
  json.end_object();
  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  return 0;
}
