// Table 2: selection error when using each embedding distance measure to
// pick the more stable of two dimension–precision configurations, for
// SST-2 / Subj / CoNLL-2003 × CBOW / GloVe / MC.
#include "bench/selection_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::core::Measure;
  print_header("Table 2 — pairwise dimension-precision selection error",
               "Table 2");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<std::string> tasks = {"sst2", "subj", "conll2003"};

  anchor::TextTable table([&] {
    std::vector<std::string> header = {"Measure"};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        header.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return header;
  }());

  std::map<Measure, double> totals;
  for (const auto m : anchor::core::kAllMeasures) {
    std::vector<std::string> row = {measure_name(m)};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        const double err = mean_pairwise_error(pipe, task, algo, m);
        totals[m] += err;
        row.push_back(anchor::format_double(err, 2));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Shape: EIS beats the three weaker measures on average (the paper's
  // claim; k-NN is allowed to be competitive either way).
  const double eis = totals[Measure::kEigenspaceInstability];
  const double weak = std::min({totals[Measure::kSemanticDisplacement],
                                totals[Measure::kPipLoss],
                                totals[Measure::kOneMinusEigenspaceOverlap]});
  std::cout << "\nMean error — EIS: "
            << anchor::format_double(eis / 9.0, 3)
            << ", best weak baseline: " << anchor::format_double(weak / 9.0, 3)
            << ", k-NN: "
            << anchor::format_double(totals[Measure::kOneMinusKnn] / 9.0, 3)
            << "\n";
  shape_check("EIS error below the weaker measures' best (paper: up to "
              "3.33x lower)",
              eis < weak);
  return 0;
}
