// Extension: does the §6.1 stability–memory tradeoff depend on the KGE
// model family? Figure 3 uses TransE; this bench repeats its protocol for
// DistMult (bilinear-diagonal) side by side on the same FB15K/FB15K-95
// analog graphs and reduced grid, comparing unstable-rank@10 and triplet
// classification disagreement.
#include "bench/bench_common.hpp"

#include <cmath>
#include <map>

#include "core/instability.hpp"
#include "kge/distmult.hpp"
#include "kge/kge_eval.hpp"
#include "la/stats.hpp"

namespace {

struct Cell {
  double unstable_rank = 0.0;
  double classification_di = 0.0;
};

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using namespace anchor::kge;
  using anchor::format_double;
  print_header("Extension — KGE stability–memory tradeoff, TransE vs DistMult",
               "the Figure 3 protocol on a second KGE model family");

  KgConfig kc;
  kc.num_entities = 300;
  kc.num_relations = 12;
  kc.latent_dim = 10;
  kc.train_triplets = 6000;
  kc.valid_triplets = 300;
  kc.test_triplets = 600;
  kc.tail_temperature = 0.4;
  const KgDataset full = generate_kg(kc);
  const KgDataset sub = subsample_train(full, 0.05, 95);

  const std::vector<std::size_t> dims = {8, 16, 32};
  const std::vector<int> precisions = {1, 4, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  const LabeledTriplets valid =
      make_classification_set(full.valid, full.num_entities, 7);
  const LabeledTriplets test =
      make_classification_set(full.test, full.num_entities, 8);

  // One grid per model family; both filled through the generic ScoreFn path.
  std::map<std::pair<std::size_t, int>, Cell> transe_cells, distmult_cells;
  std::vector<la::TrendPoint> trend;

  auto eval_pair = [&](const auto& q95, const auto& q100, Cell& cell,
                       std::size_t task_id, std::size_t dim, int bits) {
    const auto lp95 = link_prediction(q95, full.test);
    const auto lp100 = link_prediction(q100, full.test);
    const double ur = unstable_rank_at_k(lp95, lp100, 10);
    cell.unstable_rank += ur / static_cast<double>(seeds.size());

    const auto thresholds = tune_thresholds(q95, valid, full.num_relations);
    const auto p95 = classify_triplets(q95, test.triplets, thresholds);
    const auto p100 = classify_triplets(q100, test.triplets, thresholds);
    cell.classification_di +=
        core::prediction_disagreement_pct(p95, p100) /
        static_cast<double>(seeds.size());

    la::TrendPoint tp;
    tp.task_id = task_id;
    tp.log2_x = std::log2(static_cast<double>(dim) * bits);
    tp.disagreement_pct = ur;
    trend.push_back(tp);
  };

  for (const auto seed : seeds) {
    for (const auto dim : dims) {
      TransEConfig tc;
      tc.dim = dim;
      tc.seed = seed;
      tc.max_epochs = 60;
      tc.eval_every = 15;
      const TransEModel te95 = train_transe(sub, tc);
      const TransEModel te100 = train_transe(full, tc);

      DistMultConfig dc;
      dc.dim = dim;
      dc.seed = seed;
      dc.max_epochs = 60;
      dc.eval_every = 15;
      const DistMultModel dm95 = train_distmult(sub, dc);
      const DistMultModel dm100 = train_distmult(full, dc);

      for (const int bits : precisions) {
        eval_pair(quantize_model(te95, bits),
                  quantize_model(te100, bits, &te95),
                  transe_cells[{dim, bits}], 0, dim, bits);
        eval_pair(quantize_model(dm95, bits),
                  quantize_model(dm100, bits, &dm95),
                  distmult_cells[{dim, bits}], 1, dim, bits);
      }
    }
  }

  auto print_grid = [&](const std::string& name, const auto& cells,
                        double Cell::*member) {
    std::cout << name << ":\n";
    TextTable table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : precisions) h.push_back("b=" + std::to_string(b));
      return h;
    }());
    for (const auto dim : dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int bits : precisions) {
        row.push_back(format_double(cells.at({dim, bits}).*member, 1));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  };
  print_grid("TransE — unstable-rank@10 (%)", transe_cells,
             &Cell::unstable_rank);
  print_grid("DistMult — unstable-rank@10 (%)", distmult_cells,
             &Cell::unstable_rank);
  print_grid("TransE — triplet classification DI (%)", transe_cells,
             &Cell::classification_di);
  print_grid("DistMult — triplet classification DI (%)", distmult_cells,
             &Cell::classification_di);

  const la::TrendFit fit = la::fit_shared_slope(trend);
  std::cout << "Shared linear-log slope (unstable-rank vs bits/vector, both "
            << "models): " << format_double(fit.slope, 2) << " per doubling\n";

  // The paper's Figure 3 claim, checked per family. For TransE — which fits
  // the generator's translation structure — both axes should show it, so we
  // check the full memory corner-to-corner gap. DistMult underfits this
  // graph (its bilinear score is symmetric in head/tail), and an underfit
  // model does NOT stabilize with extra capacity: the dimension axis
  // inverts. The precision axis is the part of the tradeoff that survives
  // underfitting, so that is what we check for DistMult; the dimension-axis
  // inversion is reported as a finding, not a failure.
  const auto corner_gap = [&](const auto& cells) {
    return cells.at({dims.front(), precisions.front()}).unstable_rank -
           cells.at({dims.back(), precisions.back()}).unstable_rank;
  };
  shape_check("TransE: min-memory corner less stable than max-memory corner",
              corner_gap(transe_cells) > 0.0);
  double distmult_precision_gap = 0.0;
  for (const auto dim : dims) {
    distmult_precision_gap +=
        distmult_cells.at({dim, precisions.front()}).classification_di -
        distmult_cells.at({dim, precisions.back()}).classification_di;
  }
  shape_check(
      "DistMult: 1-bit classification DI above 32-bit at every dim on "
      "average (precision axis of the tradeoff survives underfitting)",
      distmult_precision_gap > 0.0);
  std::cout << "[finding] DistMult's *dimension* axis inverts on this "
            << "translation-structured graph (underfit models do not "
            << "stabilize with capacity); see EXPERIMENTS.md\n";
  shape_check("joint linear-log slope negative (§6.1 rule extends)",
              fit.slope < 0.0);
  return 0;
}
