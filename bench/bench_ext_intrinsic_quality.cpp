// Extension: the quality–memory tradeoff (Appendix D.2) measured
// *intrinsically* against the synthetic ground truth — WordSim-style
// similarity correlation and 3CosAdd analogy accuracy per (dim, precision)
// cell. Complements bench_fig7_8_quality (downstream quality). Note one
// deliberate scale artifact: our latent rank (12) sits inside the dimension
// grid, so intrinsic quality saturates once dim exceeds it — at paper scale
// (rank >> 25) the D.2 "dimension drives quality" effect is larger; here
// the precision axis carries most of the remaining signal.
#include "bench/bench_common.hpp"

#include "core/intrinsic.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Extension — intrinsic quality vs memory",
               "the Appendix D.2 quality axis, intrinsic edition");

  pipeline::Pipeline pipe = make_pipeline();
  const auto& space = pipe.base_space();
  const auto algo = embed::Algo::kMc;
  const std::vector<std::size_t> dims = {8, 16, 32, 64};
  const std::vector<int> precisions = {1, 2, 4, 32};
  const std::uint64_t seed = 1;

  core::IntrinsicConfig ic;
  ic.num_pairs = 400;
  ic.num_analogies = 120;
  ic.analogy_top_k = 5;
  // The paper computes its measures on the most frequent words only (2.4);
  // the Zipf tail is barely trained at bench scale and would only add noise.
  ic.max_word_id = pipe.config().vocab / 4;

  std::cout << "Word-similarity Spearman (MC, Wiki'17):\n";
  TextTable sim_table([&] {
    std::vector<std::string> h = {"dim\\bits"};
    for (const int b : precisions) h.push_back("b=" + std::to_string(b));
    return h;
  }());
  TextTable ana_table([&] {
    std::vector<std::string> h = {"dim\\bits"};
    for (const int b : precisions) h.push_back("b=" + std::to_string(b));
    return h;
  }());

  // For the D.2-style comparison: quality spread along each axis.
  double dim_effect = 0.0, prec_effect = 0.0;
  std::vector<std::vector<double>> sim(dims.size(),
                                       std::vector<double>(precisions.size()));

  for (std::size_t di = 0; di < dims.size(); ++di) {
    std::vector<std::string> sim_row = {std::to_string(dims[di])};
    std::vector<std::string> ana_row = {std::to_string(dims[di])};
    for (std::size_t bi = 0; bi < precisions.size(); ++bi) {
      const auto [x17, x18] =
          pipe.quantized_pair(algo, dims[di], seed, precisions[bi]);
      sim[di][bi] = core::word_similarity_score(x17, space, ic);
      const core::AnalogyResult ana = core::analogy_accuracy(x17, space, ic);
      sim_row.push_back(format_double(sim[di][bi], 3));
      ana_row.push_back(format_double(100.0 * ana.accuracy, 1));
    }
    sim_table.add_row(std::move(sim_row));
    ana_table.add_row(std::move(ana_row));
  }
  sim_table.print(std::cout);
  std::cout << "\n3CosAdd analogy accuracy %, top-" << ic.analogy_top_k
            << " (MC, Wiki'17):\n";
  ana_table.print(std::cout);

  // Axis effects at matched 4x memory growth: dimension 8→32 at b=32 vs
  // precision 1→4 at dim=32 — the D.2 "dimension matters more for quality"
  // comparison.
  dim_effect = sim[2][precisions.size() - 1] - sim[0][precisions.size() - 1];
  prec_effect = sim[2][2] - sim[2][0];
  std::cout << "\nSimilarity gain from 4x dimension (8->32, b=32): "
            << format_double(dim_effect, 3)
            << "\nSimilarity gain from 4x precision (b=1->4, dim=32): "
            << format_double(prec_effect, 3) << "\n";

  shape_check("intrinsic quality rises with memory (min corner vs max "
              "corner)",
              sim[dims.size() - 1][precisions.size() - 1] > sim[0][0]);
  shape_check("precision >= 4 bits costs little intrinsic quality "
              "(paper: compression above 4 bits is benign)",
              sim[2][precisions.size() - 1] - sim[2][2] < 0.05);
  return 0;
}
