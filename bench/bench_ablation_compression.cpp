// Ablation: compression *method* at matched bits-per-entry. The paper (§2.3)
// adopts uniform quantization because May et al. (2019) showed it matches
// more complex compressors on downstream quality; this bench asks the
// analogous stability question — do k-means (Andrews, 2016) or product
// quantization (the vector-level family standing in for Shu & Nakayama,
// 2018) change the downstream-instability picture at the same precision?
//
// Protocol mirrors Appendix C.2 throughout: embeddings are Procrustes-
// aligned first, and the Wiki'18 member of each pair reuses the Wiki'17
// member's clip threshold / codebooks.
#include "bench/bench_common.hpp"

#include "compress/kmeans.hpp"
#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "model/linear_bow.hpp"

namespace {

using anchor::embed::Embedding;

struct DownstreamEval {
  double disagreement_pct = 0.0;
  double accuracy17_pct = 0.0;
};

DownstreamEval evaluate(anchor::pipeline::Pipeline& pipe, const Embedding& x17,
                        const Embedding& x18, std::uint64_t seed) {
  const auto& ds = pipe.sentiment_dataset("sst2");
  anchor::model::LinearBowConfig mc;
  mc.init_seed = seed;
  mc.sampling_seed = seed;
  const anchor::model::LinearBowClassifier m17(x17, ds.train_sentences,
                                               ds.train_labels, mc);
  const anchor::model::LinearBowClassifier m18(x18, ds.train_sentences,
                                               ds.train_labels, mc);
  const auto p17 = m17.predict_all(ds.test_sentences);
  const auto p18 = m18.predict_all(ds.test_sentences);
  DownstreamEval out;
  out.disagreement_pct = anchor::core::prediction_disagreement_pct(p17, p18);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < p17.size(); ++i) {
    correct += p17[i] == ds.test_labels[i] ? 1 : 0;
  }
  out.accuracy17_pct =
      100.0 * static_cast<double>(correct) / static_cast<double>(p17.size());
  return out;
}

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using namespace anchor::compress;
  using anchor::format_double;
  print_header("Ablation — compression method at matched precision",
               "the §2.3 choice of uniform quantization, stability edition");

  pipeline::Pipeline pipe = make_pipeline();
  const auto algo = embed::Algo::kCbow;
  const std::size_t dim = 32;
  const std::vector<int> bits_list = {1, 2, 4};
  const std::vector<std::uint64_t> seeds = {1, 2};

  TextTable table({"bits/entry", "uniform DI%", "k-means DI%", "PQ DI%",
                   "uniform acc%", "k-means acc%", "PQ acc%"});
  double uniform_mean = 0.0, kmeans_mean = 0.0, pq_mean = 0.0;
  double acc_gap_worst = 0.0;

  for (const int bits : bits_list) {
    DownstreamEval uni{}, km{}, pq{};
    for (const auto seed : seeds) {
      const auto [x17, x18] = pipe.aligned_pair(algo, dim, seed);

      // Uniform quantization, shared clip (the paper's protocol).
      QuantizeConfig qc;
      qc.bits = bits;
      const QuantizeResult q17 = uniform_quantize(x17, qc);
      qc.clip_override = q17.clip;
      const QuantizeResult q18 = uniform_quantize(x18, qc);
      const DownstreamEval u = evaluate(pipe, q17.embedding, q18.embedding,
                                        seed);

      // Scalar k-means, shared codebook.
      KmeansConfig kc;
      kc.bits = bits;
      const KmeansResult k17 = kmeans_quantize(x17, kc);
      kc.codebook_override = k17.codebook;
      const KmeansResult k18 = kmeans_quantize(x18, kc);
      const DownstreamEval k = evaluate(pipe, k17.embedding, k18.embedding,
                                        seed);

      // Product quantization at matched bits/entry: with m sub-vectors of
      // sub_dim = dim/m entries, a c-bit code spends c/sub_dim bits per
      // entry, so matching uniform's b bits/entry needs c = sub_dim·b.
      // The codebook saturates once 2^c approaches the vocabulary size, so
      // c is capped at 9 (512 centroids < vocab) — PQ is an aggressive-rate
      // compressor and simply cannot spend 128 bits/word the way b=4
      // uniform does; the capped cell is reported at its true (smaller)
      // memory cost.
      PqConfig pc;
      pc.num_subvectors = 8;  // sub_dim = 4
      pc.bits = std::min(9, static_cast<int>(dim / pc.num_subvectors) * bits);
      const PqResult pq17 = pq_quantize(x17, pc);
      pc.codebooks_override = pq17.codebooks;
      const PqResult pq18 = pq_quantize(x18, pc);
      const DownstreamEval p = evaluate(pipe, pq17.embedding, pq18.embedding,
                                        seed);

      const double w = 1.0 / static_cast<double>(seeds.size());
      uni.disagreement_pct += w * u.disagreement_pct;
      uni.accuracy17_pct += w * u.accuracy17_pct;
      km.disagreement_pct += w * k.disagreement_pct;
      km.accuracy17_pct += w * k.accuracy17_pct;
      pq.disagreement_pct += w * p.disagreement_pct;
      pq.accuracy17_pct += w * p.accuracy17_pct;
    }
    table.add_row({std::to_string(bits),
                   format_double(uni.disagreement_pct, 1),
                   format_double(km.disagreement_pct, 1),
                   format_double(pq.disagreement_pct, 1),
                   format_double(uni.accuracy17_pct, 1),
                   format_double(km.accuracy17_pct, 1),
                   format_double(pq.accuracy17_pct, 1)});
    uniform_mean += uni.disagreement_pct / bits_list.size();
    kmeans_mean += km.disagreement_pct / bits_list.size();
    pq_mean += pq.disagreement_pct / bits_list.size();
    acc_gap_worst = std::max(
        acc_gap_worst, std::max(uni.accuracy17_pct - km.accuracy17_pct,
                                uni.accuracy17_pct - pq.accuracy17_pct));
  }
  table.print(std::cout);
  std::cout << "\nMean DI — uniform: " << format_double(uniform_mean, 2)
            << "%, k-means: " << format_double(kmeans_mean, 2)
            << "%, PQ: " << format_double(pq_mean, 2) << "%\n";

  shape_check(
      "uniform quantization is within 1.5x of the best method's mean "
      "instability (supports the paper's choice of the simple compressor)",
      uniform_mean <= 1.5 * std::min(kmeans_mean, pq_mean) + 0.5);
  shape_check(
      "no alternative compressor beats uniform on accuracy by > 5% "
      "(May et al. 2019 quality parity, reproduced)",
      acc_gap_worst < 5.0);
  return 0;
}
