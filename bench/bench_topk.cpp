// TOPK serving bench: exact brute-force scan vs the IVF-PQ index across
// an nprobe sweep, on a clustered synthetic store (a mixture of Gaussians
// — iid rows would defeat any inverted-file index and reduce recall to
// nprobe/nlist, which is not the workload ANN exists for).
//
// Reported per cell: queries/sec, recall@10 against the exact scan, and
// per-query p50/p99 latency from an obs::LogHistogram — the same
// estimator the daemon's anchor_topk_latency_us histogram uses, so bench
// cells are directly comparable to production scrapes. Everything is also
// written to BENCH_topk.json (override with --json <path>); the headline
// acceptance number is speedup_vs_exact at the smallest nprobe whose
// recall@10 still clears 0.95.
//
// Run: ./build/bench/bench_topk [--json path] [--smoke]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ann/ivf_pq.hpp"
#include "bench/bench_json.hpp"
#include "la/kernels.hpp"
#include "obs/log_histogram.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

std::size_t g_vocab = 32768;
constexpr std::size_t kDim = 64;
constexpr std::size_t kClusters = 96;
constexpr std::size_t kK = 10;
std::size_t g_queries = 400;

embed::Embedding clustered_embedding(std::uint64_t seed) {
  embed::Embedding e(g_vocab, kDim);
  Rng rng(seed);
  std::vector<float> centers(kClusters * kDim);
  for (auto& c : centers) c = static_cast<float>(rng.normal(0.0, 4.0));
  for (std::size_t w = 0; w < g_vocab; ++w) {
    const std::size_t c = w % kClusters;
    for (std::size_t j = 0; j < kDim; ++j) {
      e.row(w)[j] =
          centers[c * kDim + j] + static_cast<float>(rng.normal(0.0, 0.5));
    }
  }
  return e;
}

std::vector<std::vector<float>> make_queries(const embed::Embedding& e,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> queries(g_queries);
  Rng rng(seed);
  for (auto& q : queries) {
    q.resize(kDim);
    const std::size_t w = rng.index(g_vocab);
    for (std::size_t j = 0; j < kDim; ++j) {
      q[j] = e.row(w)[j] + static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  return queries;
}

/// Exact top-k by (L2², id) over every row — the recall ground truth and
/// the latency baseline the index must beat.
std::vector<std::uint64_t> exact_topk(const embed::Embedding& e,
                                      const float* query) {
  std::vector<std::pair<float, std::uint64_t>> best;
  best.reserve(kK + 1);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    const float d = la::kernels::l2_sq_f32(query, e.row(w), kDim);
    if (best.size() < kK || d < best.back().first ||
        (d == best.back().first && w < best.back().second)) {
      best.emplace_back(d, w);
      std::sort(best.begin(), best.end());
      if (best.size() > kK) best.pop_back();
    }
  }
  std::vector<std::uint64_t> ids(best.size());
  for (std::size_t i = 0; i < best.size(); ++i) ids[i] = best[i].second;
  return ids;
}

struct Cell {
  std::string config;
  std::size_t nprobe = 0, rerank = 0;
  double qps = 0.0, recall = 0.0, p50 = 0.0, p99 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_topk.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--smoke") {
      smoke = true;  // CI: every path, a couple of seconds total
    }
  }
  if (smoke) {
    g_vocab = 4096;
    g_queries = 60;
  }

  std::cout << "\n=== TOPK: exact scan vs IVF-PQ (clustered store) ===\n"
            << "vocab=" << g_vocab << " dim=" << kDim << " k=" << kK
            << " queries=" << g_queries << " isa="
            << la::kernels::active_isa() << "\n\n";

  const embed::Embedding source = clustered_embedding(7);
  serve::EmbeddingStore store;
  serve::SnapshotConfig snap;
  snap.build_oov_table = false;
  const auto snapshot = store.add_version("v1", source, snap);

  ann::AnnConfig config;
  config.nlist_bits = 7;  // 128 cells
  config.pq_m = 8;
  config.pq_bits = 8;
  const auto t_build = std::chrono::steady_clock::now();
  const ann::IvfPqIndex index(snapshot, config);
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_build)
          .count();
  std::cout << "index: nlist=" << index.nlist() << " m=" << index.pq_m()
            << " ksub=" << index.ksub() << ", built in " << build_s
            << "s\n\n";

  const auto queries = make_queries(source, 21);
  std::vector<std::vector<std::uint64_t>> truth(queries.size());

  // Exact baseline cell (also produces the recall ground truth).
  Cell exact;
  exact.config = "exact scan";
  {
    // qps from summed per-query latency, not wall clock: on a 1-core
    // host, scheduler slices between queries would otherwise dominate.
    obs::LogHistogram lat;
    double total_us = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto s = std::chrono::steady_clock::now();
      truth[q] = exact_topk(source, queries[q].data());
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - s)
                            .count();
      lat.record(us);
      total_us += us;
    }
    exact.qps = static_cast<double>(queries.size()) / (total_us * 1e-6);
    exact.recall = 1.0;
    exact.p50 = lat.quantile(0.5);
    exact.p99 = lat.quantile(0.99);
  }

  const std::vector<std::size_t> nprobes =
      smoke ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  std::vector<Cell> cells;
  for (const std::size_t nprobe : nprobes) {
    Cell cell;
    cell.nprobe = nprobe;
    cell.rerank = 256;
    cell.config = "ivfpq nprobe=" + std::to_string(nprobe);
    obs::LogHistogram lat;
    std::size_t hits = 0;
    double total_us = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto s = std::chrono::steady_clock::now();
      const ann::TopKResult got =
          index.search(queries[q].data(), kK, nprobe, cell.rerank);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - s)
                            .count();
      lat.record(us);
      total_us += us;
      for (const ann::TopKHit& h : got.hits) {
        if (std::find(truth[q].begin(), truth[q].end(), h.id) !=
            truth[q].end()) {
          ++hits;
        }
      }
    }
    cell.qps = static_cast<double>(queries.size()) / (total_us * 1e-6);
    cell.recall = static_cast<double>(hits) /
                  static_cast<double>(queries.size() * kK);
    cell.p50 = lat.quantile(0.5);
    cell.p99 = lat.quantile(0.99);
    cells.push_back(cell);
  }

  TextTable table(
      {"config", "qps", "recall@10", "p50 us", "p99 us", "speedup"});
  const auto add_row = [&](const Cell& c) {
    table.add_row({c.config, format_double(c.qps, 0),
                   format_double(c.recall, 4), format_double(c.p50, 1),
                   format_double(c.p99, 1),
                   format_double(c.qps / exact.qps, 2)});
  };
  add_row(exact);
  for (const Cell& c : cells) add_row(c);
  table.print(std::cout);
  std::cout << "\n";

  // The acceptance headline: best speedup among cells clearing recall
  // 0.95 (smallest nprobe is usually fastest, but scheduler noise on a
  // shared host can shuffle adjacent cells).
  double headline_speedup = 0.0;
  std::size_t headline_nprobe = 0;
  for (const Cell& c : cells) {
    if (c.recall >= 0.95 && c.qps / exact.qps > headline_speedup) {
      headline_speedup = c.qps / exact.qps;
      headline_nprobe = c.nprobe;
    }
  }
  std::cout << "headline: " << format_double(headline_speedup, 2)
            << "x over exact scan at recall@10 >= 0.95 (nprobe="
            << headline_nprobe << ")\n";

  bench::JsonWriter json;
  json.begin_object();
  json.kv("bench", "topk");
  json.key("host").begin_object();
  json.kv("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.kv("isa", la::kernels::active_isa());
  json.end_object();
  json.key("workload").begin_object();
  json.kv("vocab", g_vocab);
  json.kv("dim", kDim);
  json.kv("clusters", kClusters);
  json.kv("k", kK);
  json.kv("queries", g_queries);
  json.kv("nlist", index.nlist());
  json.kv("pq_m", index.pq_m());
  json.kv("ksub", index.ksub());
  json.kv("build_seconds", build_s);
  json.kv("latency_estimator", "log_histogram_bucket_lower_bound");
  json.end_object();
  json.key("exact").begin_object();
  json.kv("qps", exact.qps);
  json.kv("p50_us", exact.p50);
  json.kv("p99_us", exact.p99);
  json.end_object();
  json.key("cells").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.kv("nprobe", c.nprobe);
    json.kv("rerank", c.rerank);
    json.kv("qps", c.qps);
    json.kv("recall_at_10", c.recall);
    json.kv("p50_us", c.p50);
    json.kv("p99_us", c.p99);
    json.kv("speedup_vs_exact", c.qps / exact.qps);
    json.end_object();
  }
  json.end_array();
  json.key("headline").begin_object();
  json.kv("speedup_vs_exact_at_recall95", headline_speedup);
  json.kv("nprobe", headline_nprobe);
  json.end_object();
  json.end_object();
  json.write_file(json_path);
  std::cout << "wrote " << json_path << "\n";
  return headline_speedup > 0.0 ? 0 : 1;
}
