// Shared configuration and helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper at the
// scaled-down setting described in DESIGN.md. All word-embedding benches
// share one artifact cache (./anchor-cache by default, override with
// ANCHOR_CACHE_DIR), so they can run in any order; whichever runs first
// pays the training cost.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "util/table.hpp"

namespace anchor::bench {

/// The bench-scale experiment grid (see DESIGN.md §1 for the mapping from
/// the paper's scale). Single source of truth for every figure/table bench.
inline pipeline::PipelineConfig bench_config() {
  pipeline::PipelineConfig c;  // defaults are already bench-scale
  c.ner_train = 400;
  c.ner_hidden = 10;
  return c;
}

inline pipeline::Pipeline make_pipeline() {
  return pipeline::Pipeline(bench_config(), "anchor-cache");
}

/// The three embedding algorithms of the main study (§2.2). The fastText
/// robustness study (Appendix E.1) adds Algo::kFastText in its own bench.
inline const std::vector<embed::Algo>& main_algos() {
  static const std::vector<embed::Algo> algos = {
      embed::Algo::kCbow, embed::Algo::kGloVe, embed::Algo::kMc};
  return algos;
}

/// Paper-name for a task id ("sst2" → "SST-2" etc.).
inline std::string task_display_name(const std::string& task) {
  if (task == "sst2") return "SST-2";
  if (task == "mr") return "MR";
  if (task == "subj") return "Subj";
  if (task == "mpqa") return "MPQA";
  if (task == "conll2003") return "CoNLL-2003";
  return task;
}

/// Mean over per-seed values.
inline double mean(const std::vector<double>& v) {
  double acc = 0.0;
  for (const double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << " at the scaled setting of "
            << "DESIGN.md; shapes, not absolute values, are the claim)\n\n";
}

/// Directional shape check printed with each bench so regressions in the
/// reproduced trend are visible in CI logs.
inline void shape_check(const std::string& claim, bool ok) {
  std::cout << "[shape] " << (ok ? "PASS" : "FAIL") << "  " << claim << "\n";
}

}  // namespace anchor::bench
