// Figure 3 + §6.1 (and Figure 10, Appendix D.6): stability of TransE
// knowledge graph embeddings trained on FB15K vs FB15K-95 analogs —
// unstable-rank@10 for link prediction and prediction disagreement for
// triplet classification, across dimension–precision combinations, with the
// §6.1 linear-log fit, plus the per-dataset-threshold variant of Fig. 10.
#include "bench/bench_common.hpp"

#include <cmath>
#include <map>

#include "core/instability.hpp"
#include "kge/kge_eval.hpp"
#include "la/stats.hpp"

namespace {

struct KgeCell {
  double unstable_rank = 0.0;     // link prediction instability (%)
  double shared_thresh_di = 0.0;  // triplet classification, shared thresholds
  double own_thresh_di = 0.0;     // per-dataset thresholds (Fig. 10)
};

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using namespace anchor::kge;
  using anchor::format_double;
  print_header("Figure 3 + §6.1 (+ Figure 10) — knowledge graph embedding "
               "stability",
               "Figure 3, the §6.1 linear-log fit, and Figure 10");

  KgConfig kc;
  kc.num_entities = 300;
  kc.num_relations = 12;
  kc.latent_dim = 10;
  kc.train_triplets = 6000;
  kc.valid_triplets = 300;
  kc.test_triplets = 600;
  kc.tail_temperature = 0.4;
  const KgDataset full = generate_kg(kc);          // FB15K analog
  const KgDataset sub = subsample_train(full, 0.05, 95);  // FB15K-95 analog

  const std::vector<std::size_t> dims = {8, 16, 32, 64};
  const std::vector<int> precisions = {1, 2, 4, 8, 16, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  std::map<std::pair<std::size_t, int>, KgeCell> cells;
  std::vector<anchor::la::TrendPoint> trend;

  for (const auto seed : seeds) {
    for (const auto dim : dims) {
      TransEConfig tc;
      tc.dim = dim;
      tc.seed = seed;
      tc.max_epochs = 60;
      tc.eval_every = 15;
      const TransEModel m95 = train_transe(sub, tc);
      const TransEModel m100 = train_transe(full, tc);

      const LabeledTriplets valid =
          make_classification_set(full.valid, full.num_entities, 7);
      const LabeledTriplets test =
          make_classification_set(full.test, full.num_entities, 8);

      for (const int bits : precisions) {
        const TransEModel q95 = quantize_model(m95, bits);
        // The FB15K model reuses the FB15K-95 clip thresholds (§C.2 protocol
        // applied to KGEs).
        const TransEModel q100 = quantize_model(m100, bits, &m95);

        const auto lp95 = link_prediction(q95, full.test);
        const auto lp100 = link_prediction(q100, full.test);
        KgeCell& cell = cells[{dim, bits}];
        const double ur = unstable_rank_at_k(lp95, lp100, 10);
        cell.unstable_rank += ur / seeds.size();

        // Shared thresholds: tuned on the FB15K-95 model, reused for FB15K
        // (the Figure 3 protocol).
        const auto shared = tune_thresholds(q95, valid, full.num_relations);
        const auto p95 = classify_triplets(q95, test.triplets, shared);
        const auto p100s = classify_triplets(q100, test.triplets, shared);
        cell.shared_thresh_di +=
            anchor::core::prediction_disagreement_pct(p95, p100s) /
            seeds.size();

        // Per-dataset thresholds (Figure 10).
        const auto own = tune_thresholds(q100, valid, full.num_relations);
        const auto p100o = classify_triplets(q100, test.triplets, own);
        cell.own_thresh_di +=
            anchor::core::prediction_disagreement_pct(p95, p100o) /
            seeds.size();

        anchor::la::TrendPoint tp;
        tp.task_id = 0;
        tp.log2_x = std::log2(static_cast<double>(dim) * bits);
        tp.disagreement_pct = ur;
        trend.push_back(tp);
      }
    }
  }

  auto print_metric = [&](const std::string& title,
                          double KgeCell::*member) {
    std::cout << title << ":\n";
    anchor::TextTable table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : precisions) h.push_back("b=" + std::to_string(b));
      return h;
    }());
    for (const auto dim : dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int bits : precisions) {
        row.push_back(format_double(cells[{dim, bits}].*member, 1));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  };
  print_metric("Figure 3 (left) — link prediction unstable-rank@10 (%)",
               &KgeCell::unstable_rank);
  print_metric("Figure 3 (right) — triplet classification % disagreement "
               "(shared thresholds)",
               &KgeCell::shared_thresh_di);
  print_metric("Figure 10 — triplet classification % disagreement "
               "(per-dataset thresholds)",
               &KgeCell::own_thresh_di);

  // §6.1 fit: 2× memory ⇒ 7–19% relative reduction in the paper.
  const auto fit = anchor::la::fit_shared_slope(trend);
  const double mean_ur = [&] {
    double acc = 0.0;
    for (const auto& p : trend) acc += p.disagreement_pct;
    return acc / trend.size();
  }();
  std::cout << "Linear-log fit: unstable-rank@10 ≈ C + ("
            << format_double(fit.slope, 2) << ")*log2(bits/vector); at the "
            << "mean level this is a " << format_double(-100.0 * fit.slope / mean_ur, 1)
            << "% relative reduction per memory doubling  [paper: 7-19%]\n";
  shape_check("KGE instability decreases with memory", fit.slope < 0.0);

  const double lo = cells[{dims.front(), 1}].unstable_rank;
  const double hi = cells[{dims.back(), 32}].unstable_rank;
  shape_check("min-memory cell less stable than max-memory cell", hi < lo);
  return 0;
}
