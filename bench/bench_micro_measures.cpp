// Micro-benchmarks (google-benchmark) for the computational claims:
// the eigenspace instability measure's O(n·d²) fast path vs the naive
// O(n²·d) Definition-2 evaluation (Appendix B.1), plus the cost of the
// other measures, the thin SVD, uniform quantization, and gemm.
#include <benchmark/benchmark.h>

#include "compress/kmeans.hpp"
#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "ctx/elmo.hpp"
#include "la/sparse.hpp"
#include "la/subspace.hpp"
#include "core/measures.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace {

using anchor::la::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  anchor::Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& x : m.storage()) x = rng.normal();
  return m;
}

void BM_EisFast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const Matrix x = random_matrix(n, d, 1);
  const Matrix y = random_matrix(n, d, 2);
  const Matrix e = random_matrix(n, d, 3);
  const Matrix et = random_matrix(n, d, 4);
  const auto ctx = anchor::core::EisContext::build(e, et, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        anchor::core::eigenspace_instability_of(x, y, ctx));
  }
}
BENCHMARK(BM_EisFast)->Args({500, 16})->Args({500, 64})->Args({2000, 64});

void BM_EisNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const Matrix x = random_matrix(n, d, 1);
  const Matrix y = random_matrix(n, d, 2);
  const Matrix sigma = anchor::core::build_sigma_naive(
      random_matrix(n, d, 3), random_matrix(n, d, 4), 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        anchor::core::eigenspace_instability_naive(x, y, sigma));
  }
}
BENCHMARK(BM_EisNaive)->Args({500, 16})->Args({500, 64});

void BM_KnnMeasure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(n, 32, 1);
  const Matrix y = random_matrix(n, 32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::core::knn_measure(x, y, 5, 100, 42));
  }
}
BENCHMARK(BM_KnnMeasure)->Arg(500)->Arg(2000);

void BM_PipLoss(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(n, 64, 1);
  const Matrix y = random_matrix(n, 64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::core::pip_loss(x, y));
  }
}
BENCHMARK(BM_PipLoss)->Arg(500)->Arg(2000);

void BM_SemanticDisplacement(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(n, 32, 1);
  const Matrix y = random_matrix(n, 32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::core::semantic_displacement(x, y));
  }
}
BENCHMARK(BM_SemanticDisplacement)->Arg(500)->Arg(2000);

void BM_ThinSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const Matrix x = random_matrix(n, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::la::svd(x));
  }
}
BENCHMARK(BM_ThinSvd)->Args({500, 16})->Args({2000, 64})->Args({2000, 128});

void BM_UniformQuantize(benchmark::State& state) {
  const auto bits = static_cast<int>(state.range(0));
  anchor::Rng rng(1);
  anchor::embed::Embedding e(2000, 64);
  for (auto& x : e.data) x = static_cast<float>(rng.normal());
  anchor::compress::QuantizeConfig qc;
  qc.bits = bits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::compress::uniform_quantize(e, qc));
  }
}
BENCHMARK(BM_UniformQuantize)->Arg(1)->Arg(4)->Arg(8);

void BM_KmeansQuantize(benchmark::State& state) {
  const auto bits = static_cast<int>(state.range(0));
  anchor::Rng rng(1);
  anchor::embed::Embedding e(2000, 64);
  for (auto& x : e.data) x = static_cast<float>(rng.normal());
  anchor::compress::KmeansConfig kc;
  kc.bits = bits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::compress::kmeans_quantize(e, kc));
  }
}
BENCHMARK(BM_KmeansQuantize)->Arg(1)->Arg(4);

void BM_PqQuantize(benchmark::State& state) {
  const auto bits = static_cast<int>(state.range(0));
  anchor::Rng rng(1);
  anchor::embed::Embedding e(2000, 64);
  for (auto& x : e.data) x = static_cast<float>(rng.normal());
  anchor::compress::PqConfig pc;
  pc.num_subvectors = 8;
  pc.bits = bits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::compress::pq_quantize(e, pc));
  }
}
BENCHMARK(BM_PqQuantize)->Arg(4)->Arg(8);

void BM_SparseMatmat(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // ~1% dense symmetric matrix, the PPMI sparsity regime.
  anchor::Rng rng(1);
  std::vector<anchor::la::SparseEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (rng.bernoulli(0.01)) {
        const double v = rng.normal();
        entries.push_back({static_cast<std::int32_t>(i),
                           static_cast<std::int32_t>(j), v});
        if (i != j) {
          entries.push_back({static_cast<std::int32_t>(j),
                             static_cast<std::int32_t>(i), v});
        }
      }
    }
  }
  const anchor::la::SparseMatrix a =
      anchor::la::SparseMatrix::from_triplets(n, std::move(entries));
  const Matrix x = random_matrix(n, 32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(x));
  }
}
BENCHMARK(BM_SparseMatmat)->Arg(500)->Arg(2000);

void BM_TopEigs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  anchor::Rng rng(3);
  std::vector<anchor::la::SparseEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<std::int32_t>(i),
                       static_cast<std::int32_t>(i),
                       std::abs(rng.normal()) + 0.1});
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.bernoulli(0.02)) {
        const double v = 0.3 * rng.normal();
        entries.push_back({static_cast<std::int32_t>(i),
                           static_cast<std::int32_t>(j), v});
        entries.push_back({static_cast<std::int32_t>(j),
                           static_cast<std::int32_t>(i), v});
      }
    }
  }
  const anchor::la::SparseMatrix a =
      anchor::la::SparseMatrix::from_triplets(n, std::move(entries));
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::la::top_eigs(a, k));
  }
}
BENCHMARK(BM_TopEigs)->Args({500, 16})->Args({1000, 32});

void BM_ElmoEncode(benchmark::State& state) {
  const auto hidden = static_cast<std::size_t>(state.range(0));
  anchor::ctx::TinyElmoConfig ec;
  ec.embed_dim = hidden;
  ec.hidden = hidden;
  const anchor::ctx::TinyElmo elmo(400, ec);
  std::vector<std::int32_t> sentence(24);
  anchor::Rng rng(5);
  for (auto& w : sentence) w = static_cast<std::int32_t>(rng.index(400));
  for (auto _ : state) {
    benchmark::DoNotOptimize(elmo.encode(sentence));
  }
}
BENCHMARK(BM_ElmoEncode)->Arg(16)->Arg(64);

void BM_GemmAtB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, 64, 1);
  const Matrix b = random_matrix(n, 64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor::la::matmul_at_b(a, b));
  }
}
BENCHMARK(BM_GemmAtB)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
