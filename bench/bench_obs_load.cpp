// Load-telemetry hot-path microbench: what one recorded request costs in
// the windowed ring, the Space-Saving sketch, and the range heat map —
// the per-request / per-resolved-key overhead the serving layers pay for
// the HEAT telemetry plane (PR 10).
//
// Cells (per-op ns, single-threaded and contended):
//   windowed      WindowedStats::record — lock-free except on rotation
//   sketch s=1    SpaceSavingSketch::offer with one stripe (worst case)
//   sketch s=8    same offered load, lock-striped (the shipped default)
//   heat          RangeHeatMap::record — one relaxed atomic add
//   key_load      KeyLoadRecorder::record — sketch + heat, the exact
//                 hook LookupService/ClusterClient run per resolved key
//
// Keys are Zipf-ish skewed like real traffic: a uniform stream would
// understate sketch cost (every offer a miss-path eviction) and overstate
// stripe contention. Numbers land in BENCH_obs_load.json (--json <path>);
// --smoke shrinks repetitions for CI.
//
// Run: ./build/bench/bench_obs_load [--smoke] [--json path]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "obs/heavy_hitters.hpp"
#include "obs/windowed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

constexpr std::uint64_t kVocab = 50000;

/// Zipf-ish skewed key, same shape as bench_serve_throughput's traffic.
std::uint64_t skewed_key(Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::uint64_t>(u * u * u * static_cast<double>(kVocab)) %
         kVocab;
}

std::vector<std::uint64_t> skewed_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = skewed_key(rng);
  return keys;
}

/// Per-op ns for `op(key)` over a pre-drawn key stream, `threads` ways
/// concurrent (each thread its own stream so contention is on the
/// recorder, not the generator).
template <typename Op>
double time_per_op(std::size_t reps, std::size_t threads, const Op& op) {
  std::vector<std::vector<std::uint64_t>> streams;
  streams.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    streams.push_back(skewed_keys(reps, 0x9e3779b9ull + t));
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (const std::uint64_t k : streams[t]) op(k);
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return 1e9 * secs / static_cast<double>(reps * threads);
}

struct Cell {
  std::string name;
  std::string config;
  double ns_1t = 0;
  double ns_mt = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_obs_load.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  const std::size_t reps = smoke ? 200000 : 2000000;
  const std::size_t threads =
      std::max<std::size_t>(2, std::min<std::size_t>(
                                   4, std::thread::hardware_concurrency()));
  std::cout << "\n=== obs load-telemetry microbench (vocab=" << kVocab
            << ", threads=" << threads << ", "
            << (smoke ? "smoke" : "full") << ") ===\n\n";

  std::vector<Cell> cells;

  {
    Cell c{"windowed", "16x5s ring", 0, 0};
    obs::WindowedStats w1;
    c.ns_1t = time_per_op(reps, 1, [&](std::uint64_t k) {
      w1.record(static_cast<double>(k & 1023), false);
    });
    obs::WindowedStats wm;
    c.ns_mt = time_per_op(reps, threads, [&](std::uint64_t k) {
      wm.record(static_cast<double>(k & 1023), false);
    });
    cells.push_back(c);
  }
  double sketch1_mt = 0;
  double sketch8_mt = 0;
  {
    Cell c{"sketch", "cap=512 stripes=1", 0, 0};
    obs::SpaceSavingSketch s1({512, 1});
    c.ns_1t =
        time_per_op(reps, 1, [&](std::uint64_t k) { s1.offer(k); });
    obs::SpaceSavingSketch sm({512, 1});
    c.ns_mt = sketch1_mt =
        time_per_op(reps, threads, [&](std::uint64_t k) { sm.offer(k); });
    cells.push_back(c);
  }
  {
    Cell c{"sketch", "cap=512 stripes=8", 0, 0};
    obs::SpaceSavingSketch s1({512, 8});
    c.ns_1t =
        time_per_op(reps, 1, [&](std::uint64_t k) { s1.offer(k); });
    obs::SpaceSavingSketch sm({512, 8});
    c.ns_mt = sketch8_mt =
        time_per_op(reps, threads, [&](std::uint64_t k) { sm.offer(k); });
    cells.push_back(c);
  }
  {
    Cell c{"heat", "256 buckets", 0, 0};
    obs::RangeHeatMap h1({0, kVocab, 256});
    c.ns_1t =
        time_per_op(reps, 1, [&](std::uint64_t k) { h1.record(k); });
    obs::RangeHeatMap hm({0, kVocab, 256});
    c.ns_mt =
        time_per_op(reps, threads, [&](std::uint64_t k) { hm.record(k); });
    cells.push_back(c);
  }
  double key_load_1t = 0;
  {
    Cell c{"key_load", "sketch+heat hook", 0, 0};
    obs::KeyLoadRecorder r1({512, 8}, {0, kVocab, 256});
    c.ns_1t = key_load_1t =
        time_per_op(reps, 1, [&](std::uint64_t k) { r1.record(k); });
    obs::KeyLoadRecorder rm({512, 8}, {0, kVocab, 256});
    c.ns_mt =
        time_per_op(reps, threads, [&](std::uint64_t k) { rm.record(k); });
    cells.push_back(c);
  }

  TextTable table({"recorder", "config", "1-thread ns/op",
                   std::to_string(threads) + "-thread ns/op"});
  auto fmt = [](double ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", ns);
    return std::string(buf);
  };
  for (const Cell& c : cells) {
    table.add_row({c.name, c.config, fmt(c.ns_1t), fmt(c.ns_mt)});
  }
  table.print(std::cout);

  // Directional shape checks, not absolute thresholds (host-dependent):
  // striping must not make the contended sketch meaningfully slower than
  // one big lock (it exists to make it faster on multicore), and the
  // full per-key hook must stay in sub-microsecond territory — the hook
  // rides every resolved key of every lookup.
  const bool striping_ok = sketch8_mt <= sketch1_mt * 1.25;
  const bool hook_ok = key_load_1t < 1000.0;
  std::cout << "\n[shape] " << (striping_ok ? "PASS" : "FAIL")
            << "  lock-striped sketch >= single-stripe under contention\n"
            << "[shape] " << (hook_ok ? "PASS" : "FAIL")
            << "  per-key load hook < 1us single-threaded\n";

  bench::JsonWriter json;
  json.begin_object();
  json.kv("bench", "obs_load");
  json.kv("mode", smoke ? "smoke" : "full");
  json.kv("threads", threads);
  json.kv("reps_per_thread", reps);
  json.key("recorders").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.kv("name", c.name);
    json.kv("config", c.config);
    json.kv("ns_1t", c.ns_1t);
    json.kv("ns_mt", c.ns_mt);
    json.end_object();
  }
  json.end_array();
  json.kv("striping_helps_under_contention", striping_ok);
  json.kv("key_load_hook_sub_us", hook_ok);
  json.end_object();
  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
