// Table 1 (+ Figure 9's per-measure series): Spearman correlation between
// each embedding distance measure and downstream prediction disagreement,
// across the dimension–precision grid, for SST-2 / Subj / CoNLL-2003 and
// CBOW / GloVe / MC.
#include "bench/bench_common.hpp"

#include "core/selection.hpp"
#include "la/stats.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::core::ConfigPoint;
  using anchor::core::Measure;
  print_header("Table 1 — Spearman correlation of measures vs downstream "
               "instability",
               "Table 1 (and the Figure 9 scatter series)");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();
  const std::vector<std::string> tasks = {"sst2", "subj", "conll2003"};

  anchor::TextTable table([&] {
    std::vector<std::string> header = {"Measure"};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        header.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return header;
  }());

  // Seed-averaged grids per (task, algo).
  std::map<std::string, std::vector<ConfigPoint>> grids;
  for (const auto& task : tasks) {
    for (const auto algo : main_algos()) {
      std::vector<ConfigPoint> avg;
      for (const auto seed : cfg.seeds) {
        const auto grid = pipe.config_grid(task, algo, seed);
        if (avg.empty()) {
          avg = grid;
        } else {
          for (std::size_t i = 0; i < grid.size(); ++i) {
            avg[i].downstream_instability_pct +=
                grid[i].downstream_instability_pct;
            for (auto& [m, v] : avg[i].measures) v += grid[i].measures.at(m);
          }
        }
      }
      const double inv = 1.0 / static_cast<double>(cfg.seeds.size());
      for (auto& p : avg) {
        p.downstream_instability_pct *= inv;
        for (auto& [m, v] : p.measures) v *= inv;
      }
      grids[task + "|" + algo_name(algo)] = std::move(avg);
    }
  }

  double eis_total = 0.0, weak_best_total = 0.0;
  for (const auto m : anchor::core::kAllMeasures) {
    std::vector<std::string> row = {measure_name(m)};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        const double rho = anchor::core::measure_spearman(
            grids.at(task + "|" + algo_name(algo)), m);
        row.push_back(anchor::format_double(rho, 2));
        if (m == Measure::kEigenspaceInstability) eis_total += rho;
        if (m == Measure::kSemanticDisplacement ||
            m == Measure::kPipLoss ||
            m == Measure::kOneMinusEigenspaceOverlap) {
          weak_best_total = std::max(weak_best_total, rho);
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const double cells = static_cast<double>(tasks.size() * main_algos().size());
  std::cout << "\nMean EIS Spearman = "
            << anchor::format_double(eis_total / cells, 3) << "\n";
  shape_check("eigenspace instability correlates positively on average "
              "(paper: 0.68-0.84)",
              eis_total / cells > 0.3);

  // Statistical rigor beyond the paper: 95% bootstrap CIs on the EIS
  // correlation, per task × algorithm, over the config-grid cells.
  std::cout << "\nEIS Spearman with 95% bootstrap CI (2000 resamples):\n";
  anchor::TextTable ci_table({"task/algo", "rho", "95% CI"});
  bool all_ci_above_zero = true;
  for (const auto& task : tasks) {
    for (const auto algo : main_algos()) {
      const auto& grid = grids.at(task + "|" + algo_name(algo));
      std::vector<double> di, eis;
      for (const auto& p : grid) {
        di.push_back(p.downstream_instability_pct);
        eis.push_back(p.measures.at(Measure::kEigenspaceInstability));
      }
      const anchor::la::BootstrapInterval ci =
          anchor::la::bootstrap_spearman_ci(eis, di, 2000);
      ci_table.add_row({task_display_name(task) + "/" + algo_name(algo),
                        anchor::format_double(ci.point, 2),
                        "[" + anchor::format_double(ci.lo, 2) + ", " +
                            anchor::format_double(ci.hi, 2) + "]"});
      all_ci_above_zero = all_ci_above_zero && ci.lo > 0.0;
    }
  }
  ci_table.print(std::cout);
  shape_check("every EIS correlation's 95% CI excludes zero "
              "(the Table-1 relationship is not sampling noise)",
              all_ci_above_zero);
  return 0;
}
