// Kernel-layer microbench: scalar vs SIMD for every la/kernels primitive,
// plus end-to-end DeploymentGate::evaluate wall time on a 50k×300 snapshot
// pair at 1/4/8 measure threads.
//
// Emits a human table to stdout and a machine-readable baseline to
// BENCH_kernels.json (override with --json <path>) so the perf trajectory
// is recorded across PRs. --smoke shrinks repetitions for CI (~seconds).
//
// Run: ./build/bench/bench_kernels [--smoke] [--json path]
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "la/kernels.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace anchor;
namespace k = la::kernels;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times fn() repeated `reps` times; returns seconds per call. A volatile
/// sink defeats dead-code elimination in the measured loops.
volatile double g_sink = 0.0;

template <typename Fn>
double time_per_call(std::size_t reps, const Fn& fn) {
  fn();  // warm caches and the dispatch branch
  const double t0 = now_seconds();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return (now_seconds() - t0) / static_cast<double>(reps);
}

struct Cell {
  std::string name;
  std::string config;
  double scalar_ns = 0.0;
  double simd_ns = 0.0;
  double speedup() const {
    return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  }
};

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  const std::size_t dim = 300;
  const std::size_t reps = smoke ? 20000 : 200000;
  std::cout << "\n=== la/kernels microbench (dim=" << dim
            << ", simd=" << (k::simd_available() ? "avx2" : "unavailable")
            << ", " << (smoke ? "smoke" : "full") << ") ===\n\n";

  std::vector<Cell> cells;

  // ---- vector kernels --------------------------------------------------
  {
    const auto a = random_vec(dim, 1);
    const auto b = random_vec(dim, 2);
    Cell c{"dot", "d=300", 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(reps, [&] {
      g_sink = k::dot(a.data(), b.data(), dim);
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(reps, [&] {
      g_sink = k::dot(a.data(), b.data(), dim);
    });
    cells.push_back(c);
  }
  {
    const auto x = random_vec(dim, 3);
    auto y = random_vec(dim, 4);
    Cell c{"axpy", "d=300", 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(reps, [&] {
      k::axpy(1e-9, x.data(), y.data(), dim);
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(reps, [&] {
      k::axpy(1e-9, x.data(), y.data(), dim);
    });
    g_sink = y[0];
    cells.push_back(c);
  }
  {
    auto x = random_vec(dim, 5);
    Cell c{"l2_normalize", "d=300", 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(reps, [&] {
      g_sink = k::l2_normalize(x.data(), dim);
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(reps, [&] {
      g_sink = k::l2_normalize(x.data(), dim);
    });
    cells.push_back(c);
  }

  // ---- matrix kernels --------------------------------------------------
  {
    const std::size_t rows = 4096;
    const auto m = random_vec(rows * dim, 6);
    const auto x = random_vec(dim, 7);
    std::vector<double> y(rows);
    const std::size_t mat_reps = smoke ? 20 : 200;
    Cell c{"matvec_rowmajor", "4096x300", 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(mat_reps, [&] {
      k::matvec_rowmajor(m.data(), rows, dim, x.data(), y.data());
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(mat_reps, [&] {
      k::matvec_rowmajor(m.data(), rows, dim, x.data(), y.data());
    });
    g_sink = y[0];
    cells.push_back(c);
  }
  {
    const std::size_t ar = 512, br = 512;
    const auto a = random_vec(ar * dim, 8);
    const auto b = random_vec(br * dim, 9);
    std::vector<double> cbuf(ar * br);
    const std::size_t gemm_reps = smoke ? 2 : 10;
    Cell c{"gemm_nt", "512x512x300", 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(gemm_reps, [&] {
      k::gemm_nt(a.data(), ar, b.data(), br, dim, cbuf.data());
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(gemm_reps, [&] {
      k::gemm_nt(a.data(), ar, b.data(), br, dim, cbuf.data());
    });
    g_sink = cbuf[0];
    cells.push_back(c);
  }

  // ---- fused dequantize ------------------------------------------------
  for (const int bits : {1, 2, 4, 8}) {
    const std::size_t rows = 4096;
    const float clip = 1.0f;
    std::vector<std::uint8_t> packed(rows * k::packed_row_bytes(dim, bits));
    Rng rng(10);
    for (auto& byte : packed) {
      byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    }
    std::vector<float> out(rows * dim);
    const std::size_t dq_reps = smoke ? 10 : 100;
    Cell c{"dequantize_rows", "4096x300 b=" + std::to_string(bits), 0, 0};
    k::set_simd_enabled(false);
    c.scalar_ns = 1e9 * time_per_call(dq_reps, [&] {
      k::dequantize_rows(packed.data(), rows, dim, bits, clip, out.data());
    });
    k::set_simd_enabled(true);
    c.simd_ns = 1e9 * time_per_call(dq_reps, [&] {
      k::dequantize_rows(packed.data(), rows, dim, bits, clip, out.data());
    });
    g_sink = out[0];
    cells.push_back(c);
  }

  TextTable table({"kernel", "config", "scalar ns", "simd ns", "speedup"});
  for (const Cell& c : cells) {
    table.add_row({c.name, c.config, format_double(c.scalar_ns, 1),
                   format_double(c.simd_ns, 1),
                   format_double(c.speedup(), 2) + "x"});
  }
  table.print(std::cout);

  // ---- end-to-end gate evaluation -------------------------------------
  // The serving-time shape from the ISSUE: a 50k×300 incumbent/candidate
  // pair, measures subsampled to the gate's default 2048 rows.
  const std::size_t vocab = smoke ? 10000 : 50000;
  std::cout << "\nDeploymentGate::evaluate, " << vocab
            << "x300 fp32 pair (max_rows=" << (smoke ? 512 : 2048) << "):\n";
  embed::Embedding source(vocab, dim);
  Rng rng(20);
  for (auto& x : source.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  embed::Embedding refreshed = source;
  for (auto& x : refreshed.data) {
    x += static_cast<float>(rng.normal(0.0, 0.05));
  }
  serve::SnapshotConfig sc;
  sc.build_oov_table = false;
  serve::EmbeddingSnapshot incumbent("live", source, sc, 1);
  serve::EmbeddingSnapshot candidate("next", refreshed, sc, 2);

  serve::GateConfig gc;
  gc.max_rows = smoke ? 512 : 2048;
  const serve::DeploymentGate gate(gc);
  const std::size_t gate_reps = smoke ? 1 : 3;

  struct GateCell {
    std::string variant;
    std::size_t threads = 1;
    double ms = 0.0;
  };
  std::vector<GateCell> gate_cells;
  k::set_simd_enabled(false);
  util::set_global_pool_threads(1);
  gate_cells.push_back(
      {"scalar", 1, 1e3 * time_per_call(gate_reps, [&] {
         g_sink = gate.evaluate(incumbent, candidate).eis;
       })});
  k::set_simd_enabled(true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    util::set_global_pool_threads(threads);
    gate_cells.push_back(
        {"simd", threads, 1e3 * time_per_call(gate_reps, [&] {
           g_sink = gate.evaluate(incumbent, candidate).eis;
         })});
  }
  util::set_global_pool_threads(0);

  TextTable gate_table({"variant", "threads", "evaluate ms", "speedup"});
  const double scalar_ms = gate_cells.front().ms;
  for (const GateCell& c : gate_cells) {
    gate_table.add_row({c.variant, std::to_string(c.threads),
                        format_double(c.ms, 1),
                        format_double(scalar_ms / c.ms, 2) + "x"});
  }
  gate_table.print(std::cout);
  std::cout << "(threads > hardware cores cannot speed up further; this "
               "host has "
            << std::thread::hardware_concurrency() << ")\n";

  // ---- machine-readable baseline --------------------------------------
  bench::JsonWriter json;
  json.begin_object();
  json.kv("bench", "kernels");
  json.kv("mode", smoke ? "smoke" : "full");
  json.key("host").begin_object();
  json.kv("simd_available", k::simd_available());
  json.kv("isa", k::simd_available() ? "avx2" : "scalar");
  json.kv("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.end_object();
  json.key("kernels").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.kv("name", c.name);
    json.kv("config", c.config);
    json.kv("scalar_ns", c.scalar_ns);
    json.kv("simd_ns", c.simd_ns);
    json.kv("speedup", c.speedup());
    json.end_object();
  }
  json.end_array();
  json.key("gate_evaluate").begin_array();
  for (const GateCell& c : gate_cells) {
    json.begin_object();
    json.kv("variant", c.variant);
    json.kv("threads", c.threads);
    json.kv("ms", c.ms);
    json.kv("speedup_vs_scalar", scalar_ms / c.ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
