// Table 13 + Figure 14a (Appendix E.3): how much instability downstream
// randomness sources (model init seed, sampling order seed) contribute
// relative to the change in embedding training data; and the joint grid
// with the same-seed constraint relaxed.
#include "bench/bench_common.hpp"

#include "core/instability.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  using anchor::pipeline::DownstreamOptions;
  using anchor::pipeline::Year;
  print_header("Table 13 + Figure 14a — sources of downstream randomness",
               "Table 13 and Figure 14a");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  const std::vector<std::string> tasks = {"sst2", "mr", "subj", "mpqa"};
  const std::size_t dim = pipe.config().dims.back();  // largest = paper's 400d
  const int bits = 32;

  // --- Table 13: fixed Wiki'17 embedding, vary one seed at a time ---
  std::cout << "Table 13 — % disagreement between model pairs (fixed "
               "full-precision d=" << dim << " Wiki'17 embedding):\n";
  anchor::TextTable table([&] {
    std::vector<std::string> h = {"Randomness source"};
    for (const auto& task : tasks) {
      for (const auto algo : algos) {
        h.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return h;
  }());

  // Three pairs of decoupled seeds, averaged (the paper's protocol).
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> seed_pairs = {
      {11, 21}, {12, 22}, {13, 23}};

  auto seed_variation_row = [&](const std::string& label, bool vary_init) {
    std::vector<std::string> row = {label};
    for (const auto& task : tasks) {
      for (const auto algo : algos) {
        std::vector<double> dis;
        for (const auto& [sa, sb] : seed_pairs) {
          DownstreamOptions a, b;
          if (vary_init) {
            a.init_seed = sa;
            b.init_seed = sb;
          } else {
            a.sampling_seed = sa;
            b.sampling_seed = sb;
          }
          const auto pa =
              pipe.predictions(task, Year::k17, algo, dim, bits, 1, a);
          const auto pb =
              pipe.predictions(task, Year::k17, algo, dim, bits, 1, b);
          dis.push_back(anchor::core::prediction_disagreement_pct(pa, pb));
        }
        row.push_back(format_double(mean(dis), 2));
      }
    }
    return row;
  };
  table.add_row(seed_variation_row("Model Initialization Seed", true));
  table.add_row(seed_variation_row("Sampling Order Seed", false));

  // Embedding training data row: the standard 17-vs-18 instability.
  std::vector<std::string> emb_row = {"Embedding Training Data"};
  double emb_total = 0.0, init_total = 0.0;
  for (const auto& task : tasks) {
    for (const auto algo : algos) {
      std::vector<double> dis;
      for (const auto seed : pipe.config().seeds) {
        dis.push_back(
            pipe.downstream_instability(task, algo, dim, bits, seed));
      }
      emb_row.push_back(format_double(mean(dis), 2));
      emb_total += mean(dis);
    }
  }
  table.add_row(std::move(emb_row));
  table.print(std::cout);

  // Shape: embedding-data instability is material relative to seed noise
  // (the paper finds them comparable, with init seed often smaller).
  for (const auto& task : tasks) {
    for (const auto algo : algos) {
      std::vector<double> dis;
      for (const auto& [sa, sb] : seed_pairs) {
        DownstreamOptions a, b;
        a.init_seed = sa;
        b.init_seed = sb;
        const auto pa = pipe.predictions(task, Year::k17, algo, dim, bits, 1, a);
        const auto pb = pipe.predictions(task, Year::k17, algo, dim, bits, 1, b);
        dis.push_back(anchor::core::prediction_disagreement_pct(pa, pb));
      }
      init_total += mean(dis);
    }
  }
  shape_check("embedding-data change contributes nontrivial instability "
              "(>= half of init-seed noise on average)",
              emb_total >= 0.5 * init_total);

  // --- Figure 14a: relaxed seed constraint on the SST-2 grid ---
  std::cout << "\nFigure 14a — SST-2 grid with mismatched downstream seeds "
               "(CBOW & MC, % disagreement):\n";
  for (const auto algo : algos) {
    anchor::TextTable grid_table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : {1, 4, 32}) h.push_back("b=" + std::to_string(b));
      return h;
    }());
    for (const auto d : pipe.config().dims) {
      std::vector<std::string> row = {std::to_string(d)};
      for (const int b : {1, 4, 32}) {
        // Wiki'18 model gets different init/sampling seeds than Wiki'17's.
        DownstreamOptions relaxed;
        relaxed.init_seed = 101;
        relaxed.sampling_seed = 202;
        const auto p17 = pipe.predictions("sst2", Year::k17, algo, d, b, 1);
        const auto p18 =
            pipe.predictions("sst2", Year::k18, algo, d, b, 1, relaxed);
        row.push_back(format_double(
            anchor::core::prediction_disagreement_pct(p17, p18), 2));
      }
      grid_table.add_row(std::move(row));
    }
    std::cout << algo_name(algo) << ":\n";
    grid_table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
