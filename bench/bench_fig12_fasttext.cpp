// Figure 12 (Appendix E.1): stability–memory tradeoff for fastText-style
// subword skipgram embeddings (FT-SG) on SST-2 and CoNLL-2003.
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Figure 12 — fastText subword embeddings", "Figure 12");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();
  // Subword training is ~5x CBOW cost: a reduced grid keeps this bench
  // affordable while covering the full memory range.
  const std::vector<std::size_t> dims = {8, 16, 32, 64};
  const std::vector<int> precisions = {1, 4, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  for (const std::string& task :
       {std::string("sst2"), std::string("conll2003")}) {
    std::cout << "FT-SG, " << task_display_name(task)
              << " — % disagreement by dimension-precision:\n";
    anchor::TextTable table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : precisions) h.push_back("b=" + std::to_string(b));
      return h;
    }());
    double lo_di = 0.0, hi_di = 0.0;
    for (const auto dim : dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int bits : precisions) {
        std::vector<double> per_seed;
        for (const auto seed : seeds) {
          per_seed.push_back(pipe.downstream_instability(
              task, anchor::embed::Algo::kFastText, dim, bits, seed));
        }
        const double di = mean(per_seed);
        row.push_back(format_double(di, 2));
        if (dim == dims.front() && bits == precisions.front()) lo_di = di;
        if (dim == dims.back() && bits == precisions.back()) hi_di = di;
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    shape_check("FT-SG instability lower at max memory than min memory (" +
                    task_display_name(task) + ")",
                hi_di < lo_di);
    std::cout << "\n";
  }
  std::cout << "(cfg epoch scale " << cfg.epoch_scale << ")\n";
  return 0;
}
