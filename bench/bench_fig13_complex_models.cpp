// Figure 13 (Appendix E.2): the stability–memory tradeoff under more
// complex downstream models — a text CNN on SST-2 (13a) and a BiLSTM-CRF
// on CoNLL-2003 (13b) — for CBOW and MC embeddings on a reduced grid (the
// paper likewise uses a representative subset for the CRF).
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  using anchor::pipeline::DownstreamOptions;
  print_header("Figure 13 — complex downstream models (CNN, BiLSTM-CRF)",
               "Figure 13 (a) and (b)");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  const std::vector<std::size_t> dims = {8, 32, 128};
  const std::vector<int> precisions = {1, 4, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  struct Variant {
    std::string title;
    std::string task;
    DownstreamOptions::ModelKind model;
  };
  const std::vector<Variant> variants = {
      {"Figure 13a — CNN on SST-2", "sst2", DownstreamOptions::ModelKind::kCnn},
      {"Figure 13b — BiLSTM-CRF on CoNLL-2003", "conll2003",
       DownstreamOptions::ModelKind::kBiLstmCrf},
  };

  for (const auto& variant : variants) {
    DownstreamOptions opts;
    opts.model = variant.model;
    for (const auto algo : algos) {
      std::cout << variant.title << ", " << algo_name(algo)
                << " (% disagreement):\n";
      anchor::TextTable table([&] {
        std::vector<std::string> h = {"dim\\bits"};
        for (const int b : precisions) h.push_back("b=" + std::to_string(b));
        return h;
      }());
      // Sequence models at this scale are noisy (the paper's CRF panel uses
      // a reduced grid for the same reason); compare the low-memory corner
      // row against the high-memory corner row, seed-averaged.
      double lo_row = 0.0, hi_row = 0.0;
      for (const auto dim : dims) {
        std::vector<std::string> row = {std::to_string(dim)};
        for (const int bits : precisions) {
          std::vector<double> per_seed;
          for (const auto seed : seeds) {
            per_seed.push_back(pipe.downstream_instability(
                variant.task, algo, dim, bits, seed, opts));
          }
          const double di = mean(per_seed);
          row.push_back(format_double(di, 2));
          if (dim == dims.front()) lo_row += di / precisions.size();
          if (dim == dims.back()) hi_row += di / precisions.size();
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      shape_check("tradeoff holds under " + variant.title + " / " +
                      algo_name(algo) + " (row means)",
                  hi_row <= lo_row + 2.0);
      std::cout << "\n";
    }
  }
  return 0;
}
