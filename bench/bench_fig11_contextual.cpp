// Figure 11 (§6.2 / Appendix D.7): downstream instability of contextual
// word embeddings — TinyBert encoders pretrained on the Wiki'17 and Wiki'18
// analog corpora, probed with linear classifiers on mean-pooled (optionally
// quantized) last-layer features, across output dimensionalities and
// feature precisions.
#include "bench/bench_common.hpp"

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "ctx/tiny_bert.hpp"
#include "model/feature_classifier.hpp"
#include "tasks/sentiment.hpp"

namespace {

using anchor::ctx::TinyBert;

/// Mean-pooled features for every sentence of a dataset split.
std::vector<std::vector<float>> extract(const TinyBert& bert,
                                        const std::vector<std::vector<std::int32_t>>& sentences) {
  std::vector<std::vector<float>> out;
  out.reserve(sentences.size());
  for (const auto& s : sentences) out.push_back(bert.features(s));
  return out;
}

/// Quantizes a feature set to `bits`, reusing `clip_from` (or computing the
/// clip when null) — same shared-threshold protocol as word embeddings.
std::vector<std::vector<float>> quantize_features(
    const std::vector<std::vector<float>>& features, int bits,
    float* clip_io) {
  if (bits == 32) return features;
  anchor::embed::Embedding flat(features.size(), features.front().size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    std::copy(features[i].begin(), features[i].end(), flat.row(i));
  }
  anchor::compress::QuantizeConfig qc;
  qc.bits = bits;
  if (*clip_io > 0.0f) qc.clip_override = *clip_io;
  const auto r = anchor::compress::uniform_quantize(flat, qc);
  *clip_io = r.clip;
  std::vector<std::vector<float>> out(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    out[i].assign(r.embedding.row(i),
                  r.embedding.row(i) + r.embedding.dim);
  }
  return out;
}

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Figure 11 — contextual word embedding (BERT-analog) "
               "instability",
               "Figure 11 (a) dimension and (b) precision");

  // Corpora: the same Wiki'17/Wiki'18 analog generator as the word
  // embedding study (§6.2 pretrains on subsampled dumps).
  const auto cfg = bench_config();
  anchor::text::LatentSpaceConfig sc;
  sc.vocab_size = 400;
  sc.latent_dim = cfg.latent_dim;
  sc.num_topics = cfg.num_topics;
  sc.seed = cfg.space_seed;
  const anchor::text::LatentSpace space17(sc);
  const anchor::text::LatentSpace space18 =
      space17.drifted(cfg.drift, cfg.space_seed + 1, cfg.extra_docs);
  anchor::text::CorpusConfig cc;
  cc.num_documents = 500;
  cc.seed = 1;
  const anchor::text::Corpus c17 = generate_corpus(space17, cc);
  const anchor::text::Corpus c18 = generate_corpus(space18, cc);

  // Downstream probe task (SST-2 analog) from the base space.
  anchor::tasks::SentimentTaskConfig tc = anchor::tasks::sentiment_profile("sst2");
  tc.train_size = 800;
  tc.val_size = 100;
  tc.test_size = 400;
  const auto ds = anchor::tasks::make_sentiment_task(space17, tc);

  const std::vector<std::size_t> dims = {8, 16, 32, 64};
  const std::vector<int> precisions = {1, 2, 4, 8, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  // Pretrain encoder pairs per (dim, seed); reuse for the precision sweep.
  std::map<std::pair<std::size_t, std::uint64_t>, double> di_by_dim;
  anchor::TextTable dim_table({"Dimension", "% disagreement (b=32)"});
  anchor::TextTable prec_table({"Precision", "% disagreement (base dim)"});
  const std::size_t base_dim = 32;  // the BERT_BASE analog
  std::map<int, double> di_by_prec;

  for (const auto dim : dims) {
    double di_sum = 0.0;
    for (const auto seed : seeds) {
      anchor::ctx::TinyBertConfig bc;
      bc.dim = dim;
      bc.heads = 2;
      bc.layers = 2;
      bc.seed = seed;
      bc.epochs = 1;
      TinyBert b17(c17.vocab_size, bc), b18(c18.vocab_size, bc);
      b17.pretrain(c17);
      b18.pretrain(c18);

      const auto train17 = extract(b17, ds.train_sentences);
      const auto test17 = extract(b17, ds.test_sentences);
      const auto train18 = extract(b18, ds.train_sentences);
      const auto test18 = extract(b18, ds.test_sentences);

      auto probe_di = [&](int bits) {
        float clip17 = 0.0f;
        const auto qtrain17 = quantize_features(train17, bits, &clip17);
        float clip_test = clip17;
        const auto qtest17 = quantize_features(test17, bits, &clip_test);
        // Wiki'18 features reuse the Wiki'17 clip.
        float clip18 = clip17;
        const auto qtrain18 = quantize_features(train18, bits, &clip18);
        float clip18t = clip17;
        const auto qtest18 = quantize_features(test18, bits, &clip18t);

        anchor::model::FeatureClassifierConfig fc;
        fc.init_seed = seed;
        fc.sampling_seed = seed;
        const anchor::model::FeatureClassifier m17(qtrain17, ds.train_labels,
                                                   fc);
        const anchor::model::FeatureClassifier m18(qtrain18, ds.train_labels,
                                                   fc);
        return anchor::core::prediction_disagreement_pct(
            m17.predict_all(qtest17), m18.predict_all(qtest18));
      };

      di_sum += probe_di(32);
      if (dim == base_dim) {
        for (const int bits : precisions) {
          di_by_prec[bits] += probe_di(bits) / seeds.size();
        }
      }
    }
    di_by_dim[{dim, 0}] = di_sum / seeds.size();
    dim_table.add_row({std::to_string(dim),
                       format_double(di_sum / seeds.size(), 2)});
  }

  std::cout << "Figure 11a — instability vs transformer output dimension:\n";
  dim_table.print(std::cout);
  std::cout << "\nFigure 11b — instability vs feature precision (dim="
            << base_dim << "):\n";
  for (const int bits : precisions) {
    prec_table.add_row({std::to_string(bits),
                        format_double(di_by_prec[bits], 2)});
  }
  prec_table.print(std::cout);

  // The paper's §6.2 claims are directional but explicitly noisy; check the
  // envelope: 1-2 bit features less stable than full precision.
  shape_check("1-bit features less stable than full-precision features "
              "(paper: b<=2 degrades, b>=4 negligible)",
              di_by_prec[1] > di_by_prec[32]);
  // The paper (§6.2) explicitly reports the dimension trend as noisy for
  // contextual encoders; the envelope check only requires that the largest
  // dimension is not dramatically worse than the smallest.
  shape_check("largest dimension within noise band of smallest (paper: "
              "noisy dimension trend)",
              di_by_dim[{dims.back(), 0}] <= di_by_dim[{dims.front(), 0}] + 8.0);
  return 0;
}
