// Table 9 (Appendix D.5): the Table 1/2/3 protocol on the two remaining
// sentiment tasks, MR and MPQA.
#include "bench/selection_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  print_header("Table 9 — Spearman / selection error / budget gap on MR & "
               "MPQA",
               "Table 9 (a), (b), (c)");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();
  const std::vector<std::string> tasks = {"mr", "mpqa"};

  auto header = [&] {
    std::vector<std::string> h = {"Measure"};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        h.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return h;
  };

  // (a) Spearman correlations on seed-averaged grids.
  std::cout << "(a) Spearman correlation with downstream instability:\n";
  anchor::TextTable ta(header());
  for (const auto m : anchor::core::kAllMeasures) {
    std::vector<std::string> row = {measure_name(m)};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        std::vector<double> per_seed;
        for (const auto seed : cfg.seeds) {
          per_seed.push_back(anchor::core::measure_spearman(
              pipe.config_grid(task, algo, seed), m));
        }
        row.push_back(anchor::format_double(mean(per_seed), 2));
      }
    }
    ta.add_row(std::move(row));
  }
  ta.print(std::cout);

  // (b) Pairwise selection error.
  std::cout << "\n(b) Pairwise selection error:\n";
  anchor::TextTable tb(header());
  for (const auto m : anchor::core::kAllMeasures) {
    std::vector<std::string> row = {measure_name(m)};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        row.push_back(
            anchor::format_double(mean_pairwise_error(pipe, task, algo, m), 2));
      }
    }
    tb.add_row(std::move(row));
  }
  tb.print(std::cout);

  // (c) Budget selection gap, all criteria.
  std::cout << "\n(c) Average |gap to oracle| under fixed memory budgets:\n";
  anchor::TextTable tc([&] {
    auto h = header();
    h[0] = "Criterion";
    return h;
  }());
  for (const auto& criterion : all_criteria()) {
    std::vector<std::string> row = {criterion.name()};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        row.push_back(anchor::format_double(
            seed_budget_selection(pipe, task, algo, criterion).mean_abs_gap_pct,
            2));
      }
    }
    tc.add_row(std::move(row));
  }
  tc.print(std::cout);
  return 0;
}
