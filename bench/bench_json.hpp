// Minimal streaming JSON writer for machine-readable bench baselines.
//
// The perf benches print human tables to stdout *and* append structured
// records to a BENCH_*.json file so the perf trajectory across PRs is
// diffable. Deliberately tiny: objects, arrays, string/number/bool leaves,
// no reading. Commas and nesting are tracked internally; keys must be
// valid per the caller (no escaping needed beyond quotes/backslashes,
// handled here).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace anchor::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ << '{';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << '}';
    fresh_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ << '[';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << ']';
    fresh_.pop_back();
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    comma();
    out_ << '"' << escape(k) << "\":";
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    comma();
    out_ << '"' << escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    comma();
    std::ostringstream num;
    num.precision(10);
    num << v;
    out_ << num.str();
    return *this;
  }
  JsonWriter& value(std::size_t v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ << (v ? "true" : "false");
    return *this;
  }
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    return key(k).value(v);
  }

  std::string str() const { return out_.str(); }

  /// Writes the document to `path` (overwriting) with a trailing newline.
  void write_file(const std::string& path) const {
    std::ofstream f(path);
    ANCHOR_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    f << out_.str() << '\n';
    ANCHOR_CHECK_MSG(f.good(), "write failure on " << path);
  }

 private:
  // Emits the separating comma for the current nesting level; a value
  // directly after key() never takes one.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ << ',';
      fresh_.back() = false;
    }
  }

  static std::string escape(const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  }

  std::ostringstream out_;
  std::vector<bool> fresh_;
  bool pending_value_ = false;
};

}  // namespace anchor::bench
