// Extension study: does the stability–memory tradeoff (Figure 2 / §3.3)
// extend to embedding algorithms beyond the paper's CBOW/GloVe/MC trio?
// We run the same dimension×precision grid for skip-gram negative sampling
// (word2vec's other mode) and PPMI-SVD (the spectral family of Hellrich et
// al., 2019, which has no SGD randomness at all) and fit the same
// linear-log rule of thumb.
#include "bench/bench_common.hpp"

#include <cmath>

#include "la/stats.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Extension — stability–memory tradeoff for SGNS and PPMI-SVD",
               "the Figure 2 protocol on two additional algorithms");

  pipeline::Pipeline pipe = make_pipeline();
  const auto& config = pipe.config();
  const std::vector<embed::Algo> algos = {embed::Algo::kSgns,
                                          embed::Algo::kPpmiSvd};
  const std::string task = "sst2";

  int trend_task = 0;
  std::vector<la::TrendPoint> trend;
  bool all_monotone_coarse = true;

  for (const auto algo : algos) {
    std::cout << embed::algo_name(algo) << ", " << task_display_name(task)
              << " — % disagreement by (dim, bits):\n";
    TextTable table([&] {
      std::vector<std::string> h = {"dim\\bits"};
      for (const int b : config.precisions) h.push_back("b=" + std::to_string(b));
      return h;
    }());

    const std::vector<pipeline::CellResult> grid =
        pipe.instability_grid(task, algo);
    // Low-memory vs high-memory average: the coarse monotonicity the paper's
    // Figure 2 shows (instability decreases as memory grows).
    double low_sum = 0.0, high_sum = 0.0;
    std::size_t low_n = 0, high_n = 0;
    const double memory_split = 128.0;  // bits/word

    for (const auto dim : config.dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int bits : config.precisions) {
        for (const auto& cell : grid) {
          if (cell.dim != dim || cell.bits != bits) continue;
          row.push_back(format_double(cell.mean_pct, 1));
          const double memory = static_cast<double>(dim) * bits;
          la::TrendPoint tp;
          tp.task_id = trend_task;
          tp.log2_x = std::log2(memory);
          tp.disagreement_pct = cell.mean_pct;
          trend.push_back(tp);
          if (memory <= memory_split) {
            low_sum += cell.mean_pct;
            ++low_n;
          } else {
            high_sum += cell.mean_pct;
            ++high_n;
          }
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    const double low = low_sum / static_cast<double>(low_n);
    const double high = high_sum / static_cast<double>(high_n);
    std::cout << "  mean DI at ≤" << memory_split << " bits/word: "
              << format_double(low, 2) << "%, above: "
              << format_double(high, 2) << "%\n\n";
    all_monotone_coarse = all_monotone_coarse && low > high;
    ++trend_task;
  }

  const la::TrendFit fit = la::fit_shared_slope(trend);
  std::cout << "Joint linear-log fit across both algorithms: DI ≈ C_algo "
            << (fit.slope < 0 ? "− " : "+ ")
            << format_double(std::abs(fit.slope), 2)
            << "·log2(bits/word)  (R² = " << format_double(fit.r_squared, 2)
            << ")\n";

  shape_check(
      "instability falls from the low- to the high-memory half of the grid "
      "for SGNS and PPMI-SVD (paper Fig. 2 trend, extension algorithms)",
      all_monotone_coarse);
  shape_check("fitted linear-log slope is negative (§3.3 rule of thumb)",
              fit.slope < 0.0);
  return 0;
}
