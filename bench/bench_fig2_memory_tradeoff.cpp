// Figure 2 + §3.3: downstream instability of NER (CoNLL-2003) across all
// dimension–precision combinations as a function of memory (bits/word),
// with the paper's linear-log rule-of-thumb fits:
//   • joint:     DI_T ≈ C_T − β·log2(bits/word)   (paper: β ≈ 1.3)
//   • per-axis:  precision slope vs dimension slope (paper: precision > dim)
#include "bench/bench_common.hpp"

#include <cmath>
#include <map>

#include "la/stats.hpp"

namespace anchor::bench {
namespace {

/// Collects (task_id, log2 x, DI) points for the shared-slope fit across the
/// five tasks and the CBOW + MC algorithms (the paper's fitting population,
/// Appendix C.4), restricted to cells below the plateau cutoff.
std::vector<la::TrendPoint> collect_points(
    pipeline::Pipeline& pipe, double memory_cutoff_bits,
    const std::function<double(std::size_t dim, int bits)>& x_of,
    const std::function<bool(std::size_t dim, int bits)>& keep) {
  const auto& cfg = pipe.config();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  std::vector<la::TrendPoint> points;
  std::size_t task_id = 0;
  for (const auto& task : pipeline::Pipeline::all_tasks()) {
    for (const auto algo : algos) {
      for (const std::size_t dim : cfg.dims) {
        for (const int bits : cfg.precisions) {
          const double memory = static_cast<double>(dim) * bits;
          if (memory >= memory_cutoff_bits) continue;
          if (!keep(dim, bits)) continue;
          for (const auto seed : cfg.seeds) {
            la::TrendPoint p;
            p.task_id = task_id;
            p.log2_x = std::log2(x_of(dim, bits));
            p.disagreement_pct =
                pipe.downstream_instability(task, algo, dim, bits, seed);
            points.push_back(p);
          }
        }
      }
      ++task_id;
    }
  }
  return points;
}

}  // namespace
}  // namespace anchor::bench

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Figure 2 + §3.3 — stability-memory tradeoff and rule of thumb",
               "Figure 2 and the §3.3 linear-log fits");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();

  // --- Figure 2: NER instability vs memory, one series per precision ---
  for (const auto algo : main_algos()) {
    std::cout << algo_name(algo) << ", CoNLL-2003 — % disagreement by "
              << "memory (bits/word):\n";
    anchor::TextTable table([&] {
      std::vector<std::string> header = {"dim\\bits"};
      for (const int b : cfg.precisions) header.push_back("b=" + std::to_string(b));
      return header;
    }());
    for (const std::size_t dim : cfg.dims) {
      std::vector<std::string> row = {std::to_string(dim)};
      for (const int bits : cfg.precisions) {
        std::vector<double> per_seed;
        for (const auto seed : cfg.seeds) {
          per_seed.push_back(pipe.downstream_instability("conll2003", algo,
                                                         dim, bits, seed));
        }
        row.push_back(format_double(mean(per_seed), 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- §3.3 rule of thumb: shared slope of DI vs log2(memory) ---
  // Plateau cutoff scaled from the paper's 10^3 bits/word on a 25–800 grid
  // to our 8–128 grid: exclude the top memory decile.
  const double cutoff =
      static_cast<double>(cfg.dims.back()) * cfg.precisions.back() / 8.0;
  const auto joint = anchor::la::fit_shared_slope(collect_points(
      pipe, cutoff, [](std::size_t d, int b) { return double(d) * b; },
      [](std::size_t, int) { return true; }));
  std::cout << "Rule of thumb (joint fit, memory < " << cutoff
            << " bits/word):\n  DI_T ≈ C_T + (" << format_double(joint.slope, 3)
            << ") * log2(bits/word)   [paper: ≈ -1.3, R²=" << format_double(joint.r_squared, 2)
            << "]\n";
  shape_check("joint memory slope is negative", joint.slope < 0.0);

  // --- Per-axis fits: precision effect vs dimension effect ---
  // Precision fit: vary bits at fixed dims (each (task, algo, dim) could get
  // its own intercept; we approximate with task-level intercepts as the
  // trends are parallel).
  const auto prec_fit = anchor::la::fit_shared_slope(collect_points(
      pipe, cutoff, [](std::size_t, int b) { return double(b); },
      [](std::size_t, int) { return true; }));
  const auto dim_fit = anchor::la::fit_shared_slope(collect_points(
      pipe, cutoff, [](std::size_t d, int) { return double(d); },
      [](std::size_t, int) { return true; }));
  std::cout << "Per-axis slopes: 2x precision → "
            << format_double(prec_fit.slope, 3) << "% ; 2x dimension → "
            << format_double(dim_fit.slope, 3)
            << "%   [paper: -1.4 vs -1.2 — precision slightly stronger]\n";
  shape_check("both per-axis slopes negative",
              prec_fit.slope < 0.0 && dim_fit.slope < 0.0);

  // Relative-reduction band (§3.3: 5%–37% relative per memory doubling).
  const double abs_drop = -joint.slope;
  std::cout << "A 2x memory increase reduces instability by ≈ "
            << format_double(abs_drop, 2) << "% (absolute) per doubling.\n";
  return 0;
}
