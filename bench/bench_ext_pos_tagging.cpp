// Extension: part-of-speech tagging — the downstream task of Wendlandt et
// al. (2018), the paper's closest related work. Two questions:
//   (1) does the stability–memory tradeoff cover a POS task measured over
//       ALL tokens (the paper's NER numbers are entity-token-restricted)?
//   (2) does the *intrinsic* instability lens of the related work (1−kNN)
//       rank configurations the same way the paper's *downstream
//       disagreement* lens does on this task?
#include "bench/bench_common.hpp"

#include "core/instability.hpp"
#include "la/stats.hpp"
#include "model/bilstm.hpp"
#include "tasks/pos.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Extension — POS tagging (Wendlandt et al. 2018's task)",
               "the related-work comparison: intrinsic vs downstream lens");

  pipeline::Pipeline pipe = make_pipeline();
  const auto algo = embed::Algo::kCbow;
  const std::vector<std::size_t> dims = {8, 16, 32, 64};
  const std::vector<int> precisions = {1, 4, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};

  tasks::PosTaskConfig tc;
  tc.train_size = 400;
  tc.test_size = 250;
  const tasks::SequenceTaggingDataset ds =
      tasks::make_pos_task(pipe.base_space(), tc);
  const auto gold = ds.flat_test_gold();

  TextTable table({"dim", "bits", "POS DI %", "error'17 %", "1-kNN"});
  std::vector<double> di_series, knn_series;
  std::map<std::pair<std::size_t, int>, double> di_cells;

  for (const auto dim : dims) {
    for (const int bits : precisions) {
      double di = 0.0, err = 0.0, knn = 0.0;
      for (const auto seed : seeds) {
        const auto [x17, x18] = pipe.quantized_pair(algo, dim, seed, bits);

        model::BiLstmConfig mc;
        mc.num_tags = tasks::kNumPosTags;
        mc.hidden = 10;
        mc.epochs = 3;
        mc.word_dropout = 0.0f;
        mc.locked_dropout = 0.0f;
        mc.init_seed = seed;
        mc.sampling_seed = seed;
        const model::BiLstmTagger m17(x17, ds.train_sentences, ds.train_tags,
                                      mc);
        const model::BiLstmTagger m18(x18, ds.train_sentences, ds.train_tags,
                                      mc);
        const auto p17 = m17.predict_flat(ds.test_sentences);
        const auto p18 = m18.predict_flat(ds.test_sentences);

        const double w = 1.0 / static_cast<double>(seeds.size());
        // POS instability over ALL tokens (no entity mask).
        di += w * core::prediction_disagreement_pct(p17, p18);
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < p17.size(); ++i) {
          wrong += p17[i] != gold[i] ? 1 : 0;
        }
        err += w * 100.0 * static_cast<double>(wrong) /
               static_cast<double>(p17.size());
        // The related work's intrinsic lens on the same embedding pair.
        knn += w * (1.0 - core::knn_measure(x17.to_matrix(), x18.to_matrix(),
                                            pipe.config().knn_k,
                                            pipe.config().knn_queries));
      }
      table.add_row({std::to_string(dim), std::to_string(bits),
                     format_double(di, 1), format_double(err, 1),
                     format_double(knn, 3)});
      di_series.push_back(di);
      knn_series.push_back(knn);
      di_cells[{dim, bits}] = di;
    }
  }
  table.print(std::cout);

  const double rho = la::spearman(knn_series, di_series);
  std::cout << "\nSpearman(1-kNN intrinsic instability, POS downstream DI) = "
            << format_double(rho, 2) << "\n";

  shape_check("POS instability lower at the max-memory cell than the "
              "min-memory cell (tradeoff covers the related work's task)",
              di_cells.at({dims.back(), precisions.back()}) <
                  di_cells.at({dims.front(), precisions.front()}));
  shape_check("intrinsic (1-kNN) and downstream (DI) lenses rank configs "
              "consistently (rho > 0.3)",
              rho > 0.3);
  return 0;
}
