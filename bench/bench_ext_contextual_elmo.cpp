// Extension: the Figure 11 contextual-embedding protocol on a *second*
// contextual family — TinyElmo, a bidirectional LSTM language model
// (Peters et al., 2018, which §6.2 cites alongside transformers). Encoder
// pairs are pretrained on the Wiki'17/Wiki'18 analog corpora, probed with
// linear classifiers on mean-pooled (optionally quantized) features, across
// hidden sizes and feature precisions.
#include "bench/bench_common.hpp"

#include <map>

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "ctx/elmo.hpp"
#include "model/feature_classifier.hpp"
#include "tasks/sentiment.hpp"

namespace {

using anchor::ctx::TinyElmo;

std::vector<std::vector<float>> extract(
    const TinyElmo& elmo,
    const std::vector<std::vector<std::int32_t>>& sentences) {
  std::vector<std::vector<float>> out;
  out.reserve(sentences.size());
  for (const auto& s : sentences) out.push_back(elmo.features(s));
  return out;
}

/// Same feature quantizer as the BERT-analog bench: flatten, uniform-
/// quantize, share the clip threshold across the pair via clip_io.
std::vector<std::vector<float>> quantize_features(
    const std::vector<std::vector<float>>& features, int bits,
    float* clip_io) {
  if (bits == 32) return features;
  anchor::embed::Embedding flat(features.size(), features.front().size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    std::copy(features[i].begin(), features[i].end(), flat.row(i));
  }
  anchor::compress::QuantizeConfig qc;
  qc.bits = bits;
  if (*clip_io > 0.0f) qc.clip_override = *clip_io;
  const auto r = anchor::compress::uniform_quantize(flat, qc);
  *clip_io = r.clip;
  std::vector<std::vector<float>> out(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    out[i].assign(r.embedding.row(i), r.embedding.row(i) + r.embedding.dim);
  }
  return out;
}

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Extension — contextual instability with a BiLSTM LM (ELMo "
               "analog)",
               "the Figure 11 protocol on the Peters et al. (2018) family");

  const auto cfg = bench_config();
  text::LatentSpaceConfig sc;
  sc.vocab_size = 400;
  sc.latent_dim = cfg.latent_dim;
  sc.num_topics = cfg.num_topics;
  sc.seed = cfg.space_seed;
  const text::LatentSpace space17(sc);
  const text::LatentSpace space18 =
      space17.drifted(cfg.drift, cfg.space_seed + 1, cfg.extra_docs);
  text::CorpusConfig cc;
  cc.num_documents = 400;
  cc.seed = 1;
  const text::Corpus c17 = generate_corpus(space17, cc);
  const text::Corpus c18 = generate_corpus(space18, cc);

  tasks::SentimentTaskConfig tc = tasks::sentiment_profile("sst2");
  tc.train_size = 800;
  tc.val_size = 100;
  tc.test_size = 400;
  const auto ds = tasks::make_sentiment_task(space17, tc);

  const std::vector<std::size_t> hiddens = {8, 16, 32};
  const std::vector<int> precisions = {1, 2, 4, 8, 32};
  const std::vector<std::uint64_t> seeds = {1, 2};
  const std::size_t base_hidden = 16;

  std::map<std::size_t, double> di_by_dim;
  std::map<int, double> di_by_prec;

  for (const auto hidden : hiddens) {
    for (const auto seed : seeds) {
      ctx::TinyElmoConfig ec;
      ec.embed_dim = hidden;
      ec.hidden = hidden;
      ec.epochs = 2;
      ec.seed = seed;
      TinyElmo e17(c17.vocab_size, ec), e18(c18.vocab_size, ec);
      e17.pretrain(c17);
      e18.pretrain(c18);

      const auto train17 = extract(e17, ds.train_sentences);
      const auto test17 = extract(e17, ds.test_sentences);
      const auto train18 = extract(e18, ds.train_sentences);
      const auto test18 = extract(e18, ds.test_sentences);

      auto probe_di = [&](int bits) {
        float clip17 = 0.0f;
        const auto qtrain17 = quantize_features(train17, bits, &clip17);
        float clip = clip17;
        const auto qtest17 = quantize_features(test17, bits, &clip);
        clip = clip17;
        const auto qtrain18 = quantize_features(train18, bits, &clip);
        clip = clip17;
        const auto qtest18 = quantize_features(test18, bits, &clip);

        model::FeatureClassifierConfig fc;
        fc.init_seed = seed;
        fc.sampling_seed = seed;
        const model::FeatureClassifier m17(qtrain17, ds.train_labels, fc);
        const model::FeatureClassifier m18(qtrain18, ds.train_labels, fc);
        return core::prediction_disagreement_pct(m17.predict_all(qtest17),
                                                 m18.predict_all(qtest18));
      };

      di_by_dim[hidden] += probe_di(32) / seeds.size();
      if (hidden == base_hidden) {
        for (const int bits : precisions) {
          di_by_prec[bits] += probe_di(bits) / seeds.size();
        }
      }
    }
  }

  std::cout << "Instability vs BiLSTM hidden size (feature dim = 2·hidden, "
            << "b=32):\n";
  TextTable dim_table({"hidden", "feature dim", "% disagreement"});
  for (const auto hidden : hiddens) {
    dim_table.add_row({std::to_string(hidden), std::to_string(2 * hidden),
                       format_double(di_by_dim[hidden], 2)});
  }
  dim_table.print(std::cout);

  std::cout << "\nInstability vs feature precision (hidden=" << base_hidden
            << "):\n";
  TextTable prec_table({"bits", "% disagreement"});
  for (const int bits : precisions) {
    prec_table.add_row(
        {std::to_string(bits), format_double(di_by_prec[bits], 2)});
  }
  prec_table.print(std::cout);

  shape_check(
      "1-bit features less stable than full precision (Fig. 11b trend on "
      "the ELMo-analog family)",
      di_by_prec[1] > di_by_prec[32]);
  shape_check(
      "largest hidden size within noise band of smallest (paper: noisy "
      "dimension trend for contextual encoders)",
      di_by_dim[hiddens.back()] <= di_by_dim[hiddens.front()] + 8.0);
  return 0;
}
