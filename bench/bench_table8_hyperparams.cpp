// Table 8 (Appendix D.3): hyperparameter selection for the eigenspace
// instability measure's α and the k-NN measure's k — average Spearman
// correlation with downstream instability across the sentiment + NER tasks
// and the CBOW + MC algorithms. Also covers the α ablation DESIGN.md calls
// out (α = 0 reduces Σ to an unweighted projector sum).
#include "bench/bench_common.hpp"

#include "core/selection.hpp"
#include "la/stats.hpp"

namespace anchor::bench {
namespace {

/// Spearman of `value(dim, bits)` against DI over the grid for one
/// (task, algo), seed 1 (the paper tunes on validation data; one seed keeps
/// this bench affordable).
double grid_spearman(pipeline::Pipeline& pipe, const std::string& task,
                     embed::Algo algo,
                     const std::function<double(std::size_t, int)>& value) {
  const auto& cfg = pipe.config();
  std::vector<double> v, di;
  for (const auto dim : cfg.dims) {
    for (const int bits : cfg.precisions) {
      v.push_back(value(dim, bits));
      di.push_back(pipe.downstream_instability(task, algo, dim, bits, 1));
    }
  }
  return la::spearman(v, di);
}

}  // namespace
}  // namespace anchor::bench

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  print_header("Table 8 — hyperparameter selection for alpha (EIS) and k "
               "(k-NN)",
               "Table 8 (a) and (b)");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  const auto& tasks = anchor::pipeline::Pipeline::all_tasks();
  const double cells = static_cast<double>(tasks.size() * algos.size());

  std::cout << "(a) alpha for the eigenspace instability measure:\n";
  anchor::TextTable ta({"alpha", "avg Spearman"});
  double best_rho = -2.0;
  double best_alpha = -1.0;
  for (const double alpha : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    double total = 0.0;
    for (const auto& task : tasks) {
      for (const auto algo : algos) {
        total += grid_spearman(pipe, task, algo,
                               [&](std::size_t d, int b) {
                                 return pipe.eis_with_alpha(algo, d, b, 1,
                                                            alpha);
                               });
      }
    }
    const double avg = total / cells;
    ta.add_row({anchor::format_double(alpha, 0), anchor::format_double(avg, 3)});
    if (avg > best_rho) {
      best_rho = avg;
      best_alpha = alpha;
    }
  }
  ta.print(std::cout);
  std::cout << "Best alpha = " << best_alpha
            << "   [paper: 3, with small alpha clearly worse]\n\n";
  shape_check("eigenvalue weighting helps: best alpha > 0", best_alpha > 0.0);

  std::cout << "(b) k for the k-NN measure:\n";
  anchor::TextTable tb({"k", "avg Spearman"});
  double best_k_rho = -2.0;
  std::size_t best_k = 0;
  for (const std::size_t k : {1u, 2u, 5u, 10u, 50u, 100u}) {
    double total = 0.0;
    for (const auto& task : tasks) {
      for (const auto algo : algos) {
        total += grid_spearman(pipe, task, algo,
                               [&](std::size_t d, int b) {
                                 return pipe.knn_with_k(algo, d, b, 1, k);
                               });
      }
    }
    const double avg = total / cells;
    tb.add_row({std::to_string(k), anchor::format_double(avg, 3)});
    if (avg > best_k_rho) {
      best_k_rho = avg;
      best_k = k;
    }
  }
  tb.print(std::cout);
  std::cout << "Best k = " << best_k
            << "   [paper: 5, with very large k degrading]\n";
  shape_check("moderate k beats the largest k (paper: k=500+ degrades)",
              best_k <= 50);
  return 0;
}
