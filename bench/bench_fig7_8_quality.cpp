// Figures 7 & 8 (Appendix D.2): quality–memory and quality–stability
// tradeoffs — test accuracy (sentiment) / entity micro-F1 (NER) alongside
// instability for CBOW and MC across the dimension–precision grid.
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Figures 7 & 8 — quality tradeoffs", "Figures 7 and 8");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};

  bool dim_helps_quality = true;
  for (const std::string& task :
       {std::string("sst2"), std::string("subj"), std::string("conll2003")}) {
    for (const auto algo : algos) {
      std::cout << algo_name(algo) << ", " << task_display_name(task)
                << " — quality (" << (task == "conll2003" ? "F1" : "accuracy")
                << " %) and instability by memory:\n";
      anchor::TextTable table(
          {"dim", "bits", "bits/word", "quality", "% disagreement"});
      double small_q = 0.0, large_q = 0.0;
      for (const auto dim : cfg.dims) {
        for (const int bits : {1, 4, 32}) {
          std::vector<double> q17, di;
          for (const auto seed : cfg.seeds) {
            q17.push_back(
                pipe.quality(task, pipeline::Year::k17, algo, dim, bits, seed));
            di.push_back(
                pipe.downstream_instability(task, algo, dim, bits, seed));
          }
          table.add_row({std::to_string(dim), std::to_string(bits),
                         std::to_string(dim * static_cast<std::size_t>(bits)),
                         format_double(mean(q17), 2),
                         format_double(mean(di), 2)});
          if (dim == cfg.dims.front() && bits == 32) small_q = mean(q17);
          if (dim == cfg.dims.back() && bits == 32) large_q = mean(q17);
        }
      }
      table.print(std::cout);
      std::cout << "\n";
      dim_helps_quality = dim_helps_quality && (large_q >= small_q - 1.0);
    }
  }
  shape_check("quality does not degrade from smallest to largest dimension "
              "(paper: dimension drives quality)",
              dim_helps_quality);
  return 0;
}
