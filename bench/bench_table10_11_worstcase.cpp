// Tables 10 & 11 (Appendix D.5): worst-case performance of the measures as
// selection criteria — the largest instability increase a wrong pairwise
// pick can cause (Table 10) and the worst gap to the oracle under memory
// budgets (Table 11).
#include "bench/selection_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  print_header("Tables 10 & 11 — worst-case selection errors",
               "Tables 10 and 11");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<std::string> tasks = {"sst2", "subj", "conll2003"};

  auto header = [&] {
    std::vector<std::string> h = {"Criterion"};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        h.push_back(task_display_name(task) + "/" + algo_name(algo));
      }
    }
    return h;
  };

  std::cout << "Table 10 — worst-case absolute error, pairwise setting:\n";
  anchor::TextTable t10(header());
  for (const auto m : anchor::core::kAllMeasures) {
    std::vector<std::string> row = {measure_name(m)};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        row.push_back(anchor::format_double(
            worst_pairwise_error(pipe, task, algo, m), 2));
      }
    }
    t10.add_row(std::move(row));
  }
  t10.print(std::cout);

  std::cout << "\nTable 11 — worst-case |gap to oracle| under memory "
               "budgets:\n";
  anchor::TextTable t11(header());
  for (const auto& criterion : all_criteria()) {
    std::vector<std::string> row = {criterion.name()};
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        row.push_back(anchor::format_double(
            seed_budget_selection(pipe, task, algo, criterion).worst_abs_gap_pct,
            2));
      }
    }
    t11.add_row(std::move(row));
  }
  t11.print(std::cout);
  return 0;
}
