// Figure 15 (Appendix E.5): effect of the downstream learning rate on
// instability, for CBOW and MC on SST-2 and MR, at a small and a large
// dimension. The paper finds both very small and very large rates unstable.
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  using anchor::pipeline::DownstreamOptions;
  print_header("Figure 15 — downstream learning-rate sweep", "Figure 15");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::vector<embed::Algo> algos = {embed::Algo::kCbow,
                                          embed::Algo::kMc};
  const std::vector<float> rates = {1e-5f, 1e-4f, 1e-3f, 1e-2f, 1e-1f};
  const std::vector<std::size_t> sweep_dims = {pipe.config().dims[1],
                                               pipe.config().dims.back()};

  for (const std::string& task : {std::string("sst2"), std::string("mr")}) {
    for (const auto algo : algos) {
      std::cout << algo_name(algo) << ", " << task_display_name(task)
                << " — % disagreement vs learning rate:\n";
      anchor::TextTable table([&] {
        std::vector<std::string> h = {"learning rate"};
        for (const auto d : sweep_dims) h.push_back("dim=" + std::to_string(d));
        return h;
      }());
      std::map<std::size_t, std::pair<double, double>> extremes_vs_mid;
      for (const float lr : rates) {
        std::vector<std::string> row = {format_double(lr, 5)};
        for (const auto dim : sweep_dims) {
          DownstreamOptions opts;
          opts.learning_rate = lr;
          const double di =
              pipe.downstream_instability(task, algo, dim, 32, 1, opts);
          row.push_back(format_double(di, 2));
          auto& [extreme_max, mid] = extremes_vs_mid[dim];
          if (lr == rates.front() || lr == rates.back()) {
            extreme_max = std::max(extreme_max, di);
          }
          if (lr == 1e-3f) mid = di;
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      bool extremes_worse = true;
      for (const auto& [dim, pair] : extremes_vs_mid) {
        extremes_worse = extremes_worse && (pair.first >= pair.second);
      }
      shape_check("extreme learning rates at least as unstable as the "
                  "moderate rate (" + algo_name(algo) + ", " +
                      task_display_name(task) + ")",
                  extremes_worse);
      std::cout << "\n";
    }
  }
  return 0;
}
