// Shared logic for the selection benches (Tables 2, 3, 9, 10, 11): per-seed
// config grids and seed-averaged selection metrics, following the paper's
// protocol ("repeat over three seeds, comparing embedding pairs of the same
// seed, and report the average").
#pragma once

#include "bench/bench_common.hpp"
#include "core/selection.hpp"

namespace anchor::bench {

/// Pairwise selection error (Table 2) averaged over seeds.
inline double mean_pairwise_error(pipeline::Pipeline& pipe,
                                  const std::string& task, embed::Algo algo,
                                  core::Measure measure) {
  std::vector<double> per_seed;
  for (const auto seed : pipe.config().seeds) {
    per_seed.push_back(core::pairwise_selection_error(
        pipe.config_grid(task, algo, seed), measure));
  }
  return mean(per_seed);
}

/// Worst-case pairwise error (Table 10): max over seeds of the largest
/// instability increase a wrong pairwise pick can cause.
inline double worst_pairwise_error(pipeline::Pipeline& pipe,
                                   const std::string& task, embed::Algo algo,
                                   core::Measure measure) {
  double worst = 0.0;
  for (const auto seed : pipe.config().seeds) {
    worst = std::max(worst, core::pairwise_worst_case_error(
                                pipe.config_grid(task, algo, seed), measure));
  }
  return worst;
}

/// Budget-selection gap to oracle (Table 3 / Table 11) averaged / maxed over
/// seeds.
inline core::BudgetSelectionResult seed_budget_selection(
    pipeline::Pipeline& pipe, const std::string& task, embed::Algo algo,
    const core::Criterion& criterion) {
  core::BudgetSelectionResult out;
  std::vector<double> means;
  for (const auto seed : pipe.config().seeds) {
    const auto r = core::budget_selection(pipe.config_grid(task, algo, seed),
                                          criterion);
    means.push_back(r.mean_abs_gap_pct);
    out.worst_abs_gap_pct = std::max(out.worst_abs_gap_pct, r.worst_abs_gap_pct);
    out.num_budgets = r.num_budgets;
  }
  out.mean_abs_gap_pct = mean(means);
  return out;
}

/// All criteria of Table 3: the five measures plus the two naive baselines.
inline std::vector<core::Criterion> all_criteria() {
  std::vector<core::Criterion> cs;
  for (const auto m : core::kAllMeasures) cs.push_back(core::Criterion::of(m));
  cs.push_back(core::Criterion::high_precision());
  cs.push_back(core::Criterion::low_precision());
  return cs;
}

}  // namespace anchor::bench
