// Extension: downstream churn *reduction* via the Monte Carlo stabilization
// operator of Fard et al. (2016) — the complementary technique the paper's
// related-work section points to. The paper studies instability introduced
// by the embedding; this bench asks how much of that instability the
// *downstream* side can absorb by training the retrained model against a
// blend of the gold labels and the previous model's predictions.
//
// The headline finding REINFORCES the paper's thesis: when the embedding
// itself has moved a lot (low-memory cells), label stabilization has little
// traction — the features changed under the model, and no target blending
// recovers the old decision surface. When the embedding is stable
// (high-memory cells), stabilization shaves the residual churn. The
// embedding's memory is the dominant lever; the downstream-side operator
// only polishes what the embedding side already made possible.
#include "bench/bench_common.hpp"

#include <algorithm>

#include "core/instability.hpp"
#include "model/linear_bow.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Extension — churn reduction via label stabilization",
               "the Fard et al. (2016) operator from the paper's §7");

  pipeline::Pipeline pipe = make_pipeline();
  const auto algo = embed::Algo::kCbow;
  const auto& ds = pipe.sentiment_dataset("sst2");
  const std::vector<float> lambdas = {0.0f, 0.5f, 0.9f, 1.0f};
  const std::vector<std::pair<std::size_t, int>> cells = {
      {16, 1}, {16, 32}, {64, 32}};  // low / mid / high memory
  const std::vector<std::uint64_t> seeds = {1, 2};

  TextTable table([&] {
    std::vector<std::string> h = {"dim", "bits"};
    for (const float l : lambdas) {
      h.push_back("churn% λ=" + format_double(l, 2));
    }
    h.push_back("acc% λ=0");
    h.push_back("acc% λ=1");
    return h;
  }());

  std::vector<double> churn_lo_by_lambda, churn_hi_by_lambda;
  double worst_acc_cost = 0.0;
  for (const auto& [dim, bits] : cells) {
    std::vector<double> churn(lambdas.size(), 0.0);
    double acc0 = 0.0, acc_hi = 0.0;
    for (const auto seed : seeds) {
      const auto [x17, x18] = pipe.quantized_pair(algo, dim, seed, bits);
      model::LinearBowConfig mc;
      mc.init_seed = seed;
      mc.sampling_seed = seed;
      const model::LinearBowClassifier m17(x17, ds.train_sentences,
                                           ds.train_labels, mc);
      const auto p17 = m17.predict_all(ds.test_sentences);
      const auto anchor = m17.probabilities_all(ds.train_sentences);

      for (std::size_t li = 0; li < lambdas.size(); ++li) {
        model::LinearBowConfig sc = mc;
        sc.stabilization_lambda = lambdas[li];
        const model::LinearBowClassifier m18(
            x18, ds.train_sentences, ds.train_labels, sc,
            lambdas[li] > 0.0f ? &anchor : nullptr);
        const auto p18 = m18.predict_all(ds.test_sentences);
        churn[li] += core::prediction_disagreement_pct(p17, p18) /
                     static_cast<double>(seeds.size());

        std::size_t correct = 0;
        for (std::size_t i = 0; i < p18.size(); ++i) {
          correct += p18[i] == ds.test_labels[i] ? 1 : 0;
        }
        const double acc = 100.0 * static_cast<double>(correct) /
                           static_cast<double>(p18.size());
        if (li == 0) acc0 += acc / static_cast<double>(seeds.size());
        if (li == lambdas.size() - 1) {
          acc_hi += acc / static_cast<double>(seeds.size());
        }
      }
    }
    std::vector<std::string> row = {std::to_string(dim),
                                    std::to_string(bits)};
    for (const double c : churn) row.push_back(format_double(c, 1));
    row.push_back(format_double(acc0, 1));
    row.push_back(format_double(acc_hi, 1));
    table.add_row(std::move(row));

    if (dim == cells.front().first && bits == cells.front().second) {
      churn_lo_by_lambda = churn;
    }
    // The stabilization-helps contrast is read at the matched-dimension
    // full-precision cell (same dim as the low-memory cell, b=32), so the
    // only thing that changed between the two rows is the precision.
    if (dim == cells.front().first && bits == 32) {
      churn_hi_by_lambda = churn;
    }
    worst_acc_cost = std::max(worst_acc_cost, acc0 - acc_hi);
  }
  table.print(std::cout);
  std::cout << "\nFinding: the embedding's memory is the dominant churn "
            << "lever. Label\nstabilization cannot absorb feature movement "
            << "(low-memory rows); it only\npolishes the residual churn "
            << "once the embedding is already stable.\n";

  // The memory axis must dwarf the stabilization axis: going from the
  // low-memory to the high-memory cell at λ=0 removes more churn than the
  // best λ removes at the low-memory cell.
  const double memory_gain =
      churn_lo_by_lambda.front() - churn_hi_by_lambda.front();
  const double best_lambda_gain =
      churn_lo_by_lambda.front() -
      *std::min_element(churn_lo_by_lambda.begin(), churn_lo_by_lambda.end());
  shape_check("embedding memory removes more churn than any λ at fixed "
              "low memory (the paper's lever dominates Fard et al.'s)",
              memory_gain > best_lambda_gain);
  shape_check("at the full-precision cell, λ=1 does not increase churn "
              "(stabilization polishes once features are stable)",
              churn_hi_by_lambda.back() <= churn_hi_by_lambda.front() + 0.5);
  shape_check("accuracy cost of λ=1 stays under 5% absolute",
              worst_acc_cost < 5.0);
  return 0;
}
