// Figures 4, 5, 6 (Appendix D.1): the stability–memory trends on the
// remaining sentiment tasks (Subj, MR, MPQA) — dimension sweeps at 32-bit
// and 1-bit precision, a precision sweep at the mid dimension, and the full
// joint grid.
#include "bench/bench_common.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using anchor::format_double;
  print_header("Figures 4-6 — sentiment appendix trends (Subj, MR, MPQA)",
               "Figures 4, 5 and 6");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto& cfg = pipe.config();
  const std::vector<std::string> tasks = {"subj", "mr", "mpqa"};

  // Figure 4: dimension sweeps at b=32 (a) and b=1 (b).
  for (const int bits : {32, 1}) {
    std::cout << "Figure 4 (" << (bits == 32 ? "a" : "b") << ") — dimension "
              << "sweep at " << bits << "-bit precision (% disagreement):\n";
    anchor::TextTable table([&] {
      std::vector<std::string> h = {"Task/Algo"};
      for (const auto d : cfg.dims) h.push_back("d=" + std::to_string(d));
      return h;
    }());
    for (const auto& task : tasks) {
      for (const auto algo : main_algos()) {
        std::vector<std::string> row = {task_display_name(task) + "/" +
                                        algo_name(algo)};
        for (const auto dim : cfg.dims) {
          std::vector<double> per_seed;
          for (const auto seed : cfg.seeds) {
            per_seed.push_back(
                pipe.downstream_instability(task, algo, dim, bits, seed));
          }
          row.push_back(format_double(mean(per_seed), 2));
        }
        table.add_row(std::move(row));
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Figure 5: precision sweep at the mid dimension.
  const std::size_t mid_dim = cfg.dims[2];
  std::cout << "Figure 5 — precision sweep at d=" << mid_dim
            << " (% disagreement):\n";
  anchor::TextTable f5([&] {
    std::vector<std::string> h = {"Task/Algo"};
    for (const int b : cfg.precisions) h.push_back("b=" + std::to_string(b));
    return h;
  }());
  for (const auto& task : tasks) {
    for (const auto algo : main_algos()) {
      std::vector<std::string> row = {task_display_name(task) + "/" +
                                      algo_name(algo)};
      for (const int bits : cfg.precisions) {
        std::vector<double> per_seed;
        for (const auto seed : cfg.seeds) {
          per_seed.push_back(
              pipe.downstream_instability(task, algo, mid_dim, bits, seed));
        }
        row.push_back(format_double(mean(per_seed), 2));
      }
      f5.add_row(std::move(row));
    }
  }
  f5.print(std::cout);

  // Figure 6: joint grid summary — instability at min vs max memory, with
  // the shape check the paper's panels support, plus the full SST-2 grid.
  std::cout << "\nFigure 6 — joint dimension-precision grids (all four "
               "sentiment tasks), min vs max memory:\n";
  anchor::TextTable f6(
      {"Task/Algo", "DI @ min memory", "DI @ max memory"});
  bool all_improve = true;
  for (const std::string& task : {std::string("sst2"), std::string("subj"),
                                  std::string("mr"), std::string("mpqa")}) {
    for (const auto algo : main_algos()) {
      const auto grid = pipe.instability_grid(task, algo);
      double lo_mem = 1e18, hi_mem = -1, lo_di = 0, hi_di = 0;
      for (const auto& cell : grid) {
        const double mem = static_cast<double>(cell.dim) * cell.bits;
        if (mem < lo_mem) { lo_mem = mem; lo_di = cell.mean_pct; }
        if (mem > hi_mem) { hi_mem = mem; hi_di = cell.mean_pct; }
      }
      all_improve = all_improve && (hi_di <= lo_di);
      f6.add_row({task_display_name(task) + "/" + algo_name(algo),
                  format_double(lo_di, 2), format_double(hi_di, 2)});
    }
  }
  f6.print(std::cout);
  shape_check("max-memory cells at least as stable as min-memory cells "
              "across all sentiment tasks/algos",
              all_improve);
  return 0;
}
