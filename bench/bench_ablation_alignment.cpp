// Ablations of the compression-protocol design choices DESIGN.md calls out
// (paper Appendix C.2 asserts these choices reduce gratuitous instability):
//   1. Procrustes alignment before compression vs no alignment,
//   2. shared vs independent clipping thresholds,
//   3. deterministic vs stochastic rounding.
#include "bench/bench_common.hpp"

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "model/linear_bow.hpp"

namespace {

using anchor::embed::Embedding;

double downstream_di(anchor::pipeline::Pipeline& pipe, const Embedding& x17,
                     const Embedding& x18, std::uint64_t seed) {
  const auto& ds = pipe.sentiment_dataset("sst2");
  anchor::model::LinearBowConfig mc;
  mc.init_seed = seed;
  mc.sampling_seed = seed;
  const anchor::model::LinearBowClassifier m17(x17, ds.train_sentences,
                                               ds.train_labels, mc);
  const anchor::model::LinearBowClassifier m18(x18, ds.train_sentences,
                                               ds.train_labels, mc);
  return anchor::core::prediction_disagreement_pct(
      m17.predict_all(ds.test_sentences), m18.predict_all(ds.test_sentences));
}

}  // namespace

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  using namespace anchor::compress;
  using anchor::format_double;
  using anchor::pipeline::Year;
  print_header("Ablation — alignment, clip sharing, rounding mode",
               "the Appendix C.2 protocol choices");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const auto algo = anchor::embed::Algo::kCbow;
  const std::size_t dim = 32;
  const std::vector<int> bits_list = {1, 2, 4};
  const std::vector<std::uint64_t> seeds = {1, 2};

  anchor::TextTable table({"bits", "aligned+shared-clip (paper)",
                           "no alignment", "independent clips",
                           "stochastic rounding"});
  double paper_total = 0.0, noalign_total = 0.0, indep_total = 0.0;
  for (const int bits : bits_list) {
    std::vector<double> paper_di, noalign_di, indep_di, stoch_di;
    for (const auto seed : seeds) {
      const Embedding raw17 = pipe.raw_embedding(Year::k17, algo, dim, seed);
      const Embedding raw18 = pipe.raw_embedding(Year::k18, algo, dim, seed);
      auto [al17, al18] = pipe.aligned_pair(algo, dim, seed);

      QuantizeConfig qc;
      qc.bits = bits;

      // (1) Paper protocol: aligned, shared clip, deterministic rounding.
      QuantizeResult q17 = uniform_quantize(al17, qc);
      QuantizeConfig qc18 = qc;
      qc18.clip_override = q17.clip;
      QuantizeResult q18 = uniform_quantize(al18, qc18);
      paper_di.push_back(
          downstream_di(pipe, q17.embedding, q18.embedding, seed));

      // (2) No alignment.
      QuantizeResult r17 = uniform_quantize(raw17, qc);
      QuantizeConfig rc18 = qc;
      rc18.clip_override = r17.clip;
      QuantizeResult r18 = uniform_quantize(raw18, rc18);
      noalign_di.push_back(
          downstream_di(pipe, r17.embedding, r18.embedding, seed));

      // (3) Independent clip thresholds (aligned).
      QuantizeResult i18 = uniform_quantize(al18, qc);
      indep_di.push_back(
          downstream_di(pipe, q17.embedding, i18.embedding, seed));

      // (4) Stochastic rounding (aligned, shared clip).
      QuantizeConfig sc = qc;
      sc.rounding = Rounding::kStochastic;
      sc.stochastic_seed = seed;
      QuantizeResult s17 = uniform_quantize(al17, sc);
      QuantizeConfig sc18 = sc;
      sc18.clip_override = s17.clip;
      sc18.stochastic_seed = seed + 100;
      QuantizeResult s18 = uniform_quantize(al18, sc18);
      stoch_di.push_back(
          downstream_di(pipe, s17.embedding, s18.embedding, seed));
    }
    paper_total += mean(paper_di);
    noalign_total += mean(noalign_di);
    indep_total += mean(indep_di);
    table.add_row({std::to_string(bits), format_double(mean(paper_di), 2),
                   format_double(mean(noalign_di), 2),
                   format_double(mean(indep_di), 2),
                   format_double(mean(stoch_di), 2)});
  }
  table.print(std::cout);
  shape_check("Procrustes alignment reduces instability at low precision",
              paper_total < noalign_total);
  std::cout << "(independent clips total " << format_double(indep_total, 2)
            << " vs shared " << format_double(paper_total, 2) << ")\n";
  return 0;
}
