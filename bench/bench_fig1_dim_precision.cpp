// Figure 1: downstream instability of sentiment (SST-2) and NER
// (CoNLL-2003) under (top) varying dimension at full precision and
// (bottom) varying precision at a fixed mid dimension, for CBOW, GloVe,
// and MC embeddings.
#include "bench/bench_common.hpp"

#include "la/stats.hpp"

namespace anchor::bench {
namespace {

void dimension_sweep(pipeline::Pipeline& pipe, const std::string& task,
                     int bits) {
  const auto& cfg = pipe.config();
  TextTable table([&] {
    std::vector<std::string> header = {"Dimension"};
    for (const auto algo : main_algos()) header.push_back(algo_name(algo));
    return header;
  }());

  // For the shape check: mean DI at the smallest vs largest dimension.
  double small_dim_di = 0.0, large_dim_di = 0.0;
  for (const std::size_t dim : cfg.dims) {
    std::vector<std::string> row = {std::to_string(dim)};
    for (const auto algo : main_algos()) {
      std::vector<double> per_seed;
      for (const auto seed : cfg.seeds) {
        per_seed.push_back(
            pipe.downstream_instability(task, algo, dim, bits, seed));
      }
      const double di = mean(per_seed);
      row.push_back(format_double(di, 2) + "%");
      if (dim == cfg.dims.front()) small_dim_di += di;
      if (dim == cfg.dims.back()) large_dim_di += di;
    }
    table.add_row(std::move(row));
  }
  std::cout << task_display_name(task) << " — % disagreement vs dimension (b="
            << bits << "):\n";
  table.print(std::cout);
  shape_check("instability decreases from smallest to largest dimension (" +
                  task_display_name(task) + ")",
              large_dim_di < small_dim_di);
  std::cout << "\n";
}

void precision_sweep(pipeline::Pipeline& pipe, const std::string& task,
                     std::size_t dim) {
  const auto& cfg = pipe.config();
  TextTable table([&] {
    std::vector<std::string> header = {"Precision"};
    for (const auto algo : main_algos()) header.push_back(algo_name(algo));
    return header;
  }());

  double coarse_di = 0.0, fine_di = 0.0;
  for (const int bits : cfg.precisions) {
    std::vector<std::string> row = {std::to_string(bits)};
    for (const auto algo : main_algos()) {
      std::vector<double> per_seed;
      for (const auto seed : cfg.seeds) {
        per_seed.push_back(
            pipe.downstream_instability(task, algo, dim, bits, seed));
      }
      const double di = mean(per_seed);
      row.push_back(format_double(di, 2) + "%");
      if (bits == cfg.precisions.front()) coarse_di += di;
      if (bits == cfg.precisions.back()) fine_di += di;
    }
    table.add_row(std::move(row));
  }
  std::cout << task_display_name(task)
            << " — % disagreement vs precision (d=" << dim << "):\n";
  table.print(std::cout);
  shape_check("instability decreases from 1-bit to full precision (" +
                  task_display_name(task) + ")",
              fine_di < coarse_di);
  std::cout << "\n";
}

}  // namespace
}  // namespace anchor::bench

int main() {
  using namespace anchor;
  using namespace anchor::bench;
  print_header("Figure 1 — effect of dimension and precision",
               "Figure 1 (SST-2 and CoNLL-2003, CBOW/GloVe/MC)");
  anchor::pipeline::Pipeline pipe = make_pipeline();
  const std::size_t mid_dim = pipe.config().dims[2];  // the paper uses d=100

  for (const std::string task : {"sst2", "conll2003"}) {
    dimension_sweep(pipe, task, 32);
    precision_sweep(pipe, task, mid_dim);
  }
  return 0;
}
