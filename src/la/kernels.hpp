// Runtime-dispatched SIMD kernel layer.
//
// Every hot inner loop of the library funnels through the handful of
// primitives here: cosine/dot scoring for the k-NN measure, axpy-style
// row updates inside the matmul family, row normalization, X·Yᵀ tiles for
// neighbor scoring, and fused dequantization of the serving layer's
// bit-packed snapshot rows. Each primitive has
//   • a portable scalar implementation (namespace scalar, always compiled,
//     the parity baseline for tests and benches), and
//   • an AVX2+FMA implementation selected at runtime via
//     __builtin_cpu_supports, compiled with function-level target attributes
//     so the rest of the library needs no special flags.
// Define ANCHOR_DISABLE_SIMD (CMake: -DANCHOR_DISABLE_SIMD=ON) to compile
// the scalar paths only; set_simd_enabled(false) switches at runtime.
//
// Numerical contract: axpy and dequantize_rows perform the same operations
// in the same per-element order as their scalar versions and are bit-exact
// with them. The reduction kernels (dot, l2_normalize, matvec_rowmajor,
// gemm_nt) reassociate the accumulation across SIMD lanes, so they agree
// with scalar only to rounding (the parity tests bound this at 1e-6 on
// random data; in practice ~1e-13). Dispatch is per-process, not per-call:
// a given process always runs one implementation, so repeated measure
// evaluations are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace anchor::la::kernels {

/// True when this binary carries the AVX2+FMA code path and the CPU
/// reports avx2 && fma at runtime.
bool simd_available();

/// Runtime dispatch toggle; defaults to simd_available(). Disabling falls
/// back to the scalar implementations (used by parity tests and the
/// scalar-baseline bench cells).
bool simd_enabled();
void set_simd_enabled(bool on);

/// Name of the active code path: "avx2" or "scalar".
const char* active_isa();

/// Σ a[i]·b[i].
double dot(const double* a, const double* b, std::size_t n);

/// y[i] += alpha·x[i]. Bit-exact with the scalar loop.
void axpy(double alpha, const double* x, double* y, std::size_t n);

/// Scales x to unit L2 norm in place; returns the pre-scaling norm.
/// Zero vectors are left untouched (norm 0 is returned).
double l2_normalize(double* x, std::size_t n);

/// Givens rotation applied in place to two length-n vectors:
/// x[i] ← c·x[i] − s·y[i], y[i] ← s·x[i] + c·y[i]. Bit-exact with the
/// scalar loop (mul+sub / mul+add, no fused contraction) — the Jacobi
/// eigensolver's inner update on contiguous rows.
void rot(double* x, double* y, std::size_t n, double c, double s);

/// y[i] = dot(row i of m, x) for row-major m (rows × cols).
void matvec_rowmajor(const double* m, std::size_t rows, std::size_t cols,
                     const double* x, double* y);

/// C = A·Bᵀ for row-major A (a_rows × cols) and B (b_rows × cols); C is
/// a_rows × b_rows, fully overwritten. Blocked over row tiles of both
/// operands so the B tile stays cache-resident while A streams — the
/// neighbor-scoring shape (queries × vocab similarity panels).
void gemm_nt(const double* a, std::size_t a_rows, const double* b,
             std::size_t b_rows, std::size_t cols, double* c);

/// Bytes per bit-packed row of `dim` codes at `bits` ∈ {1,2,4,8} (codes are
/// packed little-endian within each byte, the serve snapshot layout).
std::size_t packed_row_bytes(std::size_t dim, int bits);

/// Unpacks `num_rows` consecutive bit-packed rows (stride
/// packed_row_bytes(dim, bits)) into out[0 .. num_rows·dim), dequantizing on
/// the compress::dequantize_code grid: value = -clip + code·(2·clip/levels).
/// Bit-exact with the per-code scalar path for all of bits ∈ {1,2,4,8}.
void dequantize_rows(const std::uint8_t* codes, std::size_t num_rows,
                     std::size_t dim, int bits, float clip, float* out);

/// Asymmetric-distance (ADC) scan over product-quantized codes — the ANN
/// engine's hot loop, sibling of dequantize_rows. `codes` holds one cell's
/// codes COLUMN-MAJOR: for each sub-quantizer s ∈ [0, m), `count`
/// contiguous bytes, i.e. codes[s·count + i] is row i's code for
/// sub-quantizer s (the transposed layout is what lets the AVX2 path load
/// 8 rows' codes of one sub-quantizer with a single 8-byte load). `lut` is
/// the per-query table, m × ksub floats, row-major. Writes
///   out[i] = Σ_s lut[s·ksub + codes[s·count + i]]
/// for i ∈ [0, count). Each element accumulates in ascending s order in
/// both paths, so the AVX2 path is bit-exact with scalar (like axpy).
void adc_scan(const std::uint8_t* codes, std::size_t count, std::size_t m,
              std::size_t ksub, const float* lut, float* out);

/// Fused decode of product-quantized rows — the serving twin of adc_scan.
/// `codes` holds `num_rows` consecutive rows ROW-MAJOR, one byte per code:
/// codes[r·m + s] is row r's centroid index for sub-quantizer s (the
/// EmbeddingSnapshot PQ layout; contrast adc_scan's column-major cells).
/// `codebooks` is m × ksub × sub_dim floats: sub-quantizer s's centroid c
/// lives at codebooks[(s·ksub + c)·sub_dim]. Writes
///   out[r·(m·sub_dim) + s·sub_dim .. +sub_dim) = centroid(s, codes[r·m+s])
/// for r ∈ [0, num_rows). Pure centroid copies — no arithmetic — so the
/// AVX2 path (vector loads/stores over each slice) is bit-exact with
/// scalar by construction, like axpy and dequantize_rows.
void pq_decode_rows(const std::uint8_t* codes, std::size_t num_rows,
                    std::size_t m, std::size_t sub_dim, std::size_t ksub,
                    const float* codebooks, float* out);

/// Σ (a[i]−b[i])² over float vectors — the exact re-rank distance of the
/// ANN engine. Reduction kernel: the AVX2 path reassociates across lanes
/// like dot, so it agrees with scalar only to rounding (parity tests
/// bound the relative error at 1e-5 on random data).
float l2_sq_f32(const float* a, const float* b, std::size_t n);

/// Portable reference implementations — always compiled, identical
/// signatures. Tests pin parity against these; benches use them as the
/// scalar baseline.
namespace scalar {
double dot(const double* a, const double* b, std::size_t n);
void axpy(double alpha, const double* x, double* y, std::size_t n);
void rot(double* x, double* y, std::size_t n, double c, double s);
double l2_normalize(double* x, std::size_t n);
void matvec_rowmajor(const double* m, std::size_t rows, std::size_t cols,
                     const double* x, double* y);
void gemm_nt(const double* a, std::size_t a_rows, const double* b,
             std::size_t b_rows, std::size_t cols, double* c);
void dequantize_rows(const std::uint8_t* codes, std::size_t num_rows,
                     std::size_t dim, int bits, float clip, float* out);
void adc_scan(const std::uint8_t* codes, std::size_t count, std::size_t m,
              std::size_t ksub, const float* lut, float* out);
void pq_decode_rows(const std::uint8_t* codes, std::size_t num_rows,
                    std::size_t m, std::size_t sub_dim, std::size_t ksub,
                    const float* codebooks, float* out);
float l2_sq_f32(const float* a, const float* b, std::size_t n);
}  // namespace scalar

}  // namespace anchor::la::kernels
