// Orthogonal Procrustes alignment (Schönemann, 1966).
//
// The paper aligns every Wiki'18 embedding to its Wiki'17 counterpart before
// compression and downstream training (Appendix C.2); this module provides
// that alignment.
#pragma once

#include "la/matrix.hpp"

namespace anchor::la {

/// Returns the orthogonal Ω minimizing ‖A − B·Ω‖F (so B·Ω is the rotation of
/// B closest to A). Computed from the SVD of BᵀA: Ω = U·Vᵀ.
Matrix procrustes_rotation(const Matrix& a, const Matrix& b);

/// Convenience: returns B·Ω, i.e. B rotated onto A.
Matrix procrustes_align(const Matrix& a, const Matrix& b);

}  // namespace anchor::la
