// Top-k symmetric eigensolver by orthogonal (block power) iteration.
//
// The Jacobi solver in eigen.hpp is dense O(n³) — right for d×d Gram
// matrices, wrong for the n×n sparse PPMI matrix the SVD embedding factors.
// Orthogonal iteration with a Rayleigh–Ritz projection needs only A·X
// products, so it runs in O(nnz·k) per sweep and never densifies A.
#pragma once

#include <cstdint>
#include <functional>

#include "la/matrix.hpp"
#include "la/sparse.hpp"

namespace anchor::la {

/// Replaces the columns of `x` with an orthonormal basis of their span
/// (modified Gram–Schmidt with one re-orthogonalization pass). Columns that
/// collapse below `tol`·‖column‖ are replaced by deterministic pseudo-random
/// directions re-orthogonalized against the basis, so the result always has
/// full column rank.
void orthonormalize_columns(Matrix& x, double tol = 1e-12,
                            std::uint64_t refill_seed = 99);

struct SubspaceOptions {
  std::size_t max_iters = 300;
  /// Convergence: stop when every Ritz value's relative change across one
  /// iteration falls below this tolerance.
  double tol = 1e-9;
  std::uint64_t seed = 7;
  /// Extra basis vectors beyond k; oversampling sharpens convergence of the
  /// trailing wanted eigenpairs (discarded from the result).
  std::size_t oversample = 4;
};

/// Top-k eigenpairs (by |eigenvalue|... in practice the PPMI use-case has a
/// PSD-dominant spectrum, and Ritz values are reported signed and sorted
/// descending). `apply` computes Y = A·X for the implicit symmetric A of
/// order n.
struct TopEigsResult {
  std::vector<double> values;  // k Ritz values, sorted descending
  Matrix vectors;              // n×k, orthonormal columns
  std::size_t iterations = 0;
};

TopEigsResult top_eigs(const std::function<Matrix(const Matrix&)>& apply,
                       std::size_t n, std::size_t k,
                       const SubspaceOptions& options = {});

/// Convenience overload for a CSR matrix.
TopEigsResult top_eigs(const SparseMatrix& a, std::size_t k,
                       const SubspaceOptions& options = {});

}  // namespace anchor::la
