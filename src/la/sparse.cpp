#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace anchor::la {

SparseMatrix SparseMatrix::from_triplets(std::size_t n,
                                         std::vector<SparseEntry> entries) {
  SparseMatrix m;
  m.n_ = n;
  for (const auto& e : entries) {
    ANCHOR_CHECK_LT(static_cast<std::size_t>(e.row), n);
    ANCHOR_CHECK_LT(static_cast<std::size_t>(e.col), n);
  }
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  m.row_ptr_.assign(n + 1, 0);
  m.cols_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (!m.cols_.empty() && i > 0 && entries[i - 1].row == e.row &&
        entries[i - 1].col == e.col) {
      m.values_.back() += e.value;  // merge duplicate cell
      continue;
    }
    m.cols_.push_back(e.col);
    m.values_.push_back(e.value);
    m.row_ptr_[static_cast<std::size_t>(e.row) + 1] = m.cols_.size();
  }
  // Rows with no entries inherit the previous row's end offset.
  for (std::size_t r = 1; r <= n; ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  ANCHOR_CHECK_EQ(x.size(), n_);
  std::vector<double> y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[static_cast<std::size_t>(cols_[k])];
    }
    y[r] = acc;
  }
  return y;
}

Matrix SparseMatrix::multiply(const Matrix& x) const {
  ANCHOR_CHECK_EQ(x.rows(), n_);
  const std::size_t k = x.cols();
  Matrix y(n_, k, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double* yrow = y.row(r);
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double v = values_[p];
      const double* xrow = x.row(static_cast<std::size_t>(cols_[p]));
      for (std::size_t j = 0; j < k; ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  Matrix d(n_, n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      d(r, static_cast<std::size_t>(cols_[p])) += values_[p];
    }
  }
  return d;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  ANCHOR_CHECK_LT(r, n_);
  ANCHOR_CHECK_LT(c, n_);
  const auto begin = cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::int32_t>(c));
  if (it == end || *it != static_cast<std::int32_t>(c)) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_.begin())];
}

double SparseMatrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      acc += std::abs(values_[p]);
    }
    best = std::max(best, acc);
  }
  return best;
}

}  // namespace anchor::la
