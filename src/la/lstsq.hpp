// Least squares and Cholesky solves.
//
// Used by (a) Proposition 1's closed-form linear-regression predictions and
// (b) the linear-log trend fits of Appendix C.4.
#pragma once

#include "la/matrix.hpp"

namespace anchor::la {

/// Cholesky factor L (lower triangular, A = L·Lᵀ) of a symmetric positive
/// definite matrix. Throws CheckError when A is not SPD.
Matrix cholesky(const Matrix& a);

/// Solves A·x = b for SPD A via Cholesky.
std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b);

/// Ordinary least squares: argmin_w ‖X·w − y‖². Solved through the normal
/// equations with a small diagonal damping (`ridge`) for numerical safety;
/// the default damping is far below the scale of any experiment here.
std::vector<double> lstsq(const Matrix& x, const std::vector<double>& y,
                          double ridge = 1e-10);

/// Hat-matrix predictions of an OLS fit: ŷ = X·(XᵀX)⁻¹·Xᵀ·y. This is the
/// quantity Proposition 1 reasons about (equal to U·Uᵀ·y).
std::vector<double> lstsq_predictions(const Matrix& x,
                                      const std::vector<double>& y,
                                      double ridge = 1e-10);

}  // namespace anchor::la
