// Dense row-major matrix and the handful of BLAS-style kernels the library
// needs. No external linear-algebra dependency: every routine used by the
// paper reproduction (gemm, Gram products, Frobenius norms, transposes) is
// implemented here and unit-tested against closed-form oracles.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace anchor::la {

/// Dense row-major matrix of doubles with value semantics.
///
/// Sized for the reproduction's "tall and thin" regime (vocabulary × embedding
/// dimension): all O(n·d²) algorithms in the library avoid materializing n×n
/// Gram matrices, per Appendix B.1 of the paper.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Adopts an existing row-major buffer (must have rows*cols elements).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    ANCHOR_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    ANCHOR_CHECK_LT(r, rows_);
    ANCHOR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    ANCHOR_CHECK_LT(r, rows_);
    ANCHOR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) {
    ANCHOR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* row(std::size_t r) const {
    ANCHOR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A · B. Shapes are checked.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ · B without forming Aᵀ. The workhorse for Gram products of tall
/// matrices: for A, B ∈ R^{n×d} this is O(n·d²) time and O(d²) memory.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ without forming Bᵀ.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& m);

/// Gram matrix AᵀA (symmetric by construction).
Matrix gram(const Matrix& a);

Matrix add(const Matrix& a, const Matrix& b);
Matrix subtract(const Matrix& a, const Matrix& b);
Matrix scale(const Matrix& a, double s);

double frobenius_norm(const Matrix& m);
/// ‖M‖F² — avoids the sqrt for identities like the PIP-loss trick.
double frobenius_norm_sq(const Matrix& m);
double trace(const Matrix& m);

/// Maximum absolute element-wise difference; the comparison primitive used
/// throughout the tests.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// y = M·x for a vector x (as a column).
std::vector<double> matvec(const Matrix& m, const std::vector<double>& x);

}  // namespace anchor::la
