#include "la/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/lstsq.hpp"
#include "util/rng.hpp"

namespace anchor::la {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  ANCHOR_CHECK_EQ(x.size(), y.size());
  ANCHOR_CHECK_GE(x.size(), 2u);
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks_with_ties(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Tied block [i, j] shares the average 1-based rank.
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  return pearson(ranks_with_ties(x), ranks_with_ties(y));
}

TrendFit fit_shared_slope(const std::vector<TrendPoint>& points) {
  ANCHOR_CHECK_GE(points.size(), 2u);
  std::size_t num_tasks = 0;
  for (const auto& p : points) num_tasks = std::max(num_tasks, p.task_id + 1);

  // Design matrix: [log2_x | one-hot(task)] exactly as Appendix C.4. The
  // one-hot block gives each task its own intercept C_T.
  Matrix x(points.size(), 1 + num_tasks, 0.0);
  std::vector<double> y(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    x(i, 0) = points[i].log2_x;
    x(i, 1 + points[i].task_id) = 1.0;
    y[i] = points[i].disagreement_pct;
  }
  const std::vector<double> beta = lstsq(x, y, 1e-9);

  TrendFit fit;
  fit.slope = beta[0];
  fit.intercepts.assign(beta.begin() + 1, beta.end());

  // R² over all points.
  const std::vector<double> pred = matvec(x, beta);
  const double mean_y =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - pred[i]) * (y[i] - pred[i]);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

BootstrapInterval bootstrap_spearman_ci(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        std::size_t num_resamples,
                                        double level, std::uint64_t seed) {
  ANCHOR_CHECK_EQ(x.size(), y.size());
  ANCHOR_CHECK_GT(x.size(), 2u);
  ANCHOR_CHECK_GT(num_resamples, 1u);
  ANCHOR_CHECK_GT(level, 0.0);
  ANCHOR_CHECK_LT(level, 1.0);

  BootstrapInterval out;
  out.point = spearman(x, y);

  Rng rng(seed);
  const std::size_t n = x.size();
  std::vector<double> rx(n), ry(n), rhos;
  rhos.reserve(num_resamples);
  for (std::size_t r = 0; r < num_resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pick = rng.index(n);
      rx[i] = x[pick];
      ry[i] = y[pick];
    }
    rhos.push_back(spearman(rx, ry));
  }
  std::sort(rhos.begin(), rhos.end());
  const double tail = (1.0 - level) / 2.0;
  const auto at_quantile = [&](double q) {
    const double pos = q * static_cast<double>(rhos.size() - 1);
    const std::size_t lo_idx = static_cast<std::size_t>(pos);
    const std::size_t hi_idx = std::min(rhos.size() - 1, lo_idx + 1);
    const double frac = pos - static_cast<double>(lo_idx);
    return rhos[lo_idx] * (1.0 - frac) + rhos[hi_idx] * frac;
  };
  out.lo = at_quantile(tail);
  out.hi = at_quantile(1.0 - tail);
  return out;
}

}  // namespace anchor::la
