// Compressed-sparse-row symmetric matrix and its dense products.
//
// The PPMI matrix a vocabulary induces is n×n but Zipf-sparse; the SVD-based
// embedding algorithms (Hellrich et al., 2019 study their stability) only
// ever need A·X products against tall-thin dense blocks. CSR storage plus a
// row-parallel-free, cache-friendly matmat is all that requires.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace anchor::la {

/// One (row, col, value) triplet used to assemble a sparse matrix.
struct SparseEntry {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// Square sparse matrix in CSR form. Symmetry is the caller's contract (the
/// co-occurrence builders emit both triangles); the class itself only
/// assumes squareness.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Assembles from triplets. Duplicate (row, col) cells are summed; zero
  /// values are kept (callers prune upstream when they want pruning).
  static SparseMatrix from_triplets(std::size_t n,
                                    std::vector<SparseEntry> entries);

  std::size_t n() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A·x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Y = A·X for a dense tall-thin block X ∈ R^{n×k}.
  Matrix multiply(const Matrix& x) const;

  /// Dense copy (tests and tiny-n tooling only).
  Matrix to_dense() const;

  /// Value at (r, c), zero when the cell is not stored. O(log nnz_row).
  double at(std::size_t r, std::size_t c) const;

  /// Largest absolute row sum = induced ∞-norm; a cheap spectral bound used
  /// to sanity-check convergence tolerances.
  double inf_norm() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;   // n+1 offsets into cols_/values_
  std::vector<std::int32_t> cols_;
  std::vector<double> values_;
};

}  // namespace anchor::la
