#include "la/procrustes.hpp"

#include "la/svd.hpp"

namespace anchor::la {

Matrix procrustes_rotation(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  // M = BᵀA is d×d; Ω = U·Vᵀ from M = U·S·Vᵀ.
  const Matrix m = matmul_at_b(b, a);
  SvdResult s = svd(m);
  return matmul_a_bt(s.u, s.v);
}

Matrix procrustes_align(const Matrix& a, const Matrix& b) {
  return matmul(b, procrustes_rotation(a, b));
}

}  // namespace anchor::la
