#include "la/lstsq.hpp"

#include <cmath>

namespace anchor::la {

Matrix cholesky(const Matrix& a) {
  ANCHOR_CHECK_EQ(a.rows(), a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        ANCHOR_CHECK_MSG(acc > 0.0, "cholesky: matrix not positive definite "
                                    "(pivot " << acc << " at " << i << ")");
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.size());
  const Matrix l = cholesky(a);
  const std::size_t n = b.size();
  // Forward substitution L·z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * z[k];
    z[i] = acc / l(i, i);
  }
  // Backward substitution Lᵀ·x = z.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

std::vector<double> lstsq(const Matrix& x, const std::vector<double>& y,
                          double ridge) {
  ANCHOR_CHECK_EQ(x.rows(), y.size());
  Matrix g = gram(x);
  // Damping scaled to the Gram trace keeps the behaviour size-invariant.
  const double damp = ridge * std::max(1.0, trace(g) / static_cast<double>(g.rows()));
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += damp;
  std::vector<double> xty(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) xty[c] += row[c] * y[r];
  }
  return solve_spd(g, xty);
}

std::vector<double> lstsq_predictions(const Matrix& x,
                                      const std::vector<double>& y,
                                      double ridge) {
  const std::vector<double> w = lstsq(x, y, ridge);
  return matvec(x, w);
}

}  // namespace anchor::la
