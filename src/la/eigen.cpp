#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/kernels.hpp"

namespace anchor::la {

namespace {

double offdiag_norm_sq(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) acc += 2.0 * a(i, j) * a(i, j);
  }
  return acc;
}

}  // namespace

EigenResult eigen_symmetric(const Matrix& input, double tol, int max_sweeps) {
  ANCHOR_CHECK_EQ(input.rows(), input.cols());
  const std::size_t n = input.rows();
  // Symmetrize; reject matrices that are non-symmetric beyond round-off.
  Matrix a(n, n);
  double asym = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 0.5 * (input(i, j) + input(j, i));
      asym = std::max(asym, std::abs(input(i, j) - input(j, i)));
      scale = std::max(scale, std::abs(input(i, j)));
    }
  }
  ANCHOR_CHECK_MSG(asym <= 1e-6 * std::max(1.0, scale),
                   "eigen_symmetric: input is not symmetric (max asym=" << asym
                                                                        << ")");

  // V is accumulated transposed (rows of vt are eigenvector candidates):
  // the rotation V ← V·J becomes Vᵀ ← JᵀVᵀ, a contiguous two-row Givens
  // update instead of a strided two-column walk.
  Matrix vt = Matrix::identity(n);
  const double norm_sq = frobenius_norm_sq(a);
  const double threshold = tol * tol * std::max(norm_sq, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiag_norm_sq(a) <= threshold) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic stable rotation computation (Golub & Van Loan §8.5).
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // A ← JᵀAJ, exploiting symmetry: rotate the two *rows* (contiguous,
        // SIMD rot kernel), fix the 2×2 pivot block with the exact Jacobi
        // identities, then mirror the updated rows onto the two columns
        // instead of recomputing them with a second strided rotation pass.
        double* ap = a.row(p);
        double* aq = a.row(q);
        kernels::rot(ap, aq, n, c, s);
        ap[p] = app - t * apq;
        aq[q] = aqq + t * apq;
        ap[q] = 0.0;
        aq[p] = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          a(k, p) = ap[k];
          a(k, q) = aq[k];
        }
        // Accumulate Vᵀ ← JᵀVᵀ.
        kernels::rot(vt.row(p), vt.row(q), n, c, s);
      }
    }
  }

  // Extract and sort descending by eigenvalue.
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] > values[y]; });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    result.values[i] = values[order[i]];
    const double* vrow = vt.row(order[i]);
    for (std::size_t k = 0; k < n; ++k) result.vectors(k, i) = vrow[k];
  }
  return result;
}

}  // namespace anchor::la
