// Statistics helpers: rank correlations and the linear-log trend fits used
// throughout the paper's analysis sections.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace anchor::la {

/// Pearson correlation coefficient. Returns 0 when either input is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Average ranks with ties sharing the mean rank (the convention SciPy uses,
/// and the one the paper's Spearman numbers are computed with).
std::vector<double> ranks_with_ties(const std::vector<double>& v);

/// Spearman rank correlation = Pearson correlation of the tied ranks.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// One observation for the Appendix C.4 linear-log fit: a task id (for the
/// per-task intercept), the log2 of the memory/dimension/precision variable,
/// and the downstream disagreement in percent.
struct TrendPoint {
  std::size_t task_id = 0;
  double log2_x = 0.0;
  double disagreement_pct = 0.0;
};

/// Result of the shared-slope fit DI_t ≈ intercept[t] + slope · log2(x).
struct TrendFit {
  double slope = 0.0;                  // the paper reports ≈ −1.3 for memory
  std::vector<double> intercepts;      // one per task id (C_T in the paper)
  double r_squared = 0.0;              // fit quality over all points
};

/// Fits one slope shared across tasks with an independent intercept per task
/// (the exact design matrix construction of Appendix C.4).
TrendFit fit_shared_slope(const std::vector<TrendPoint>& points);

/// Percentile bootstrap confidence interval for the Spearman correlation of
/// paired observations: resample (x_i, y_i) pairs with replacement
/// `num_resamples` times and take the [(1−level)/2, 1−(1−level)/2]
/// percentiles of the resampled correlations. Deterministic given the seed.
struct BootstrapInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // Spearman on the original sample
};

BootstrapInterval bootstrap_spearman_ci(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        std::size_t num_resamples = 2000,
                                        double level = 0.95,
                                        std::uint64_t seed = 1234);

}  // namespace anchor::la
