// Thin singular value decomposition for tall matrices.
//
// For X ∈ R^{n×d} with n ≥ d we take the Gram route: eigendecompose
// XᵀX = V·Λ·Vᵀ (d×d, via Jacobi), set S = √Λ, and recover U = X·V·S⁻¹.
// This is O(n·d²) time and O(d²) extra memory — exactly the cost model
// Appendix B.1 of the paper assumes — and is accurate for the moderately
// conditioned embedding matrices this library works with. Directions whose
// singular value falls below a relative rank tolerance are re-orthogonalized
// against the retained ones so U always has orthonormal columns.
#pragma once

#include "la/matrix.hpp"

namespace anchor::la {

/// X = U · diag(singular_values) · Vᵀ with U ∈ R^{n×r}, V ∈ R^{d×r} where
/// r = min(n, d) (thin SVD). Singular values are sorted descending.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;  // d×r, right singular vectors as columns

  /// Numerical rank. The default tolerance reflects the Gram route's
  /// squared condition number: eigenvalues of XᵀX carry ~1e-14 relative
  /// error, so singular values below ~1e-7·σ_max are numerically zero.
  std::size_t rank(double rel_tol = 1e-6) const;
};

/// Thin SVD of an arbitrary matrix (n ≥ d or n < d both supported; the
/// wide case is handled by decomposing the transpose).
SvdResult svd(const Matrix& x);

/// Left singular vectors only — the quantity the eigenspace measures need.
/// Equivalent to svd(x).u but skips the V recovery when n < d.
Matrix left_singular_vectors(const Matrix& x);

}  // namespace anchor::la
