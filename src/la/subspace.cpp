#include "la/subspace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/eigen.hpp"
#include "util/rng.hpp"

namespace anchor::la {

namespace {

double column_norm(const Matrix& x, std::size_t c) {
  double acc = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) acc += x(r, c) * x(r, c);
  return std::sqrt(acc);
}

void subtract_projection(Matrix& x, std::size_t target, std::size_t basis) {
  double dot = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) dot += x(r, basis) * x(r, target);
  for (std::size_t r = 0; r < x.rows(); ++r) x(r, target) -= dot * x(r, basis);
}

}  // namespace

void orthonormalize_columns(Matrix& x, double tol, std::uint64_t refill_seed) {
  Rng rng(refill_seed);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double original = column_norm(x, c);
    // Two MGS passes: the second mops up the O(ε·κ) residual of the first.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t b = 0; b < c; ++b) subtract_projection(x, c, b);
    }
    double norm = column_norm(x, c);
    while (norm <= tol * std::max(original, 1.0)) {
      for (std::size_t r = 0; r < x.rows(); ++r) x(r, c) = rng.normal();
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t b = 0; b < c; ++b) subtract_projection(x, c, b);
      }
      norm = column_norm(x, c);
    }
    const double inv = 1.0 / norm;
    for (std::size_t r = 0; r < x.rows(); ++r) x(r, c) *= inv;
  }
}

TopEigsResult top_eigs(const std::function<Matrix(const Matrix&)>& apply,
                       std::size_t n, std::size_t k,
                       const SubspaceOptions& options) {
  ANCHOR_CHECK_GT(k, 0u);
  ANCHOR_CHECK_LE(k, n);
  const std::size_t block = std::min(n, k + options.oversample);

  Rng rng(options.seed);
  Matrix q(n, block);
  for (double& v : q.storage()) v = rng.normal();
  orthonormalize_columns(q);

  std::vector<double> prev(block, 0.0);
  TopEigsResult result;
  for (std::size_t it = 0; it < options.max_iters; ++it) {
    result.iterations = it + 1;
    Matrix aq = apply(q);
    ANCHOR_CHECK_EQ(aq.rows(), n);
    ANCHOR_CHECK_EQ(aq.cols(), block);

    // Rayleigh–Ritz on the current subspace: T = Qᵀ(AQ) is block×block.
    const Matrix t = matmul_at_b(q, aq);
    const EigenResult ritz = eigen_symmetric(t);

    // Rotate the iterate into the Ritz basis and re-orthonormalize; this is
    // orthogonal iteration with in-loop spectral ordering, so the leading
    // columns converge to the leading eigenvectors.
    q = matmul(aq, ritz.vectors);
    orthonormalize_columns(q);

    double worst = 0.0;
    for (std::size_t j = 0; j < block; ++j) {
      const double denom = std::max(std::abs(ritz.values[j]), 1e-30);
      worst = std::max(worst, std::abs(ritz.values[j] - prev[j]) / denom);
    }
    prev = ritz.values;
    if (worst < options.tol && it > 0) break;
  }

  // Final Rayleigh–Ritz to report consistent (value, vector) pairs.
  Matrix aq = apply(q);
  const Matrix t = matmul_at_b(q, aq);
  const EigenResult ritz = eigen_symmetric(t);
  Matrix rotated = matmul(q, ritz.vectors);

  result.values.assign(ritz.values.begin(),
                       ritz.values.begin() + static_cast<std::ptrdiff_t>(k));
  result.vectors = Matrix(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      result.vectors(r, c) = rotated(r, c);
    }
  }
  return result;
}

TopEigsResult top_eigs(const SparseMatrix& a, std::size_t k,
                       const SubspaceOptions& options) {
  return top_eigs([&a](const Matrix& x) { return a.multiply(x); }, a.n(), k,
                  options);
}

}  // namespace anchor::la
