#include "la/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "util/check.hpp"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(ANCHOR_DISABLE_SIMD)
#define ANCHOR_KERNELS_AVX2 1
#include <immintrin.h>
#else
#define ANCHOR_KERNELS_AVX2 0
#endif

namespace anchor::la::kernels {

// ---- scalar reference path ---------------------------------------------

namespace scalar {

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void rot(double* x, double* y, std::size_t n, double c, double s) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

double l2_normalize(double* x, std::size_t n) {
  const double norm = std::sqrt(dot(x, x, n));
  if (norm > 0.0) {
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
  }
  return norm;
}

void matvec_rowmajor(const double* m, std::size_t rows, std::size_t cols,
                     const double* x, double* y) {
  for (std::size_t i = 0; i < rows; ++i) y[i] = dot(m + i * cols, x, cols);
}

void gemm_nt(const double* a, std::size_t a_rows, const double* b,
             std::size_t b_rows, std::size_t cols, double* c) {
  for (std::size_t i = 0; i < a_rows; ++i) {
    const double* arow = a + i * cols;
    double* crow = c + i * b_rows;
    for (std::size_t j = 0; j < b_rows; ++j) {
      crow[j] = dot(arow, b + j * cols, cols);
    }
  }
}

void dequantize_rows(const std::uint8_t* codes, std::size_t num_rows,
                     std::size_t dim, int bits, float clip, float* out) {
  ANCHOR_CHECK_MSG(bits == 1 || bits == 2 || bits == 4 || bits == 8,
                   "dequantize_rows supports bits in {1,2,4,8}");
  const std::size_t stride = packed_row_bytes(dim, bits);
  // Same expression shape as compress::dequantize_code: -clip + code·delta,
  // delta computed once per call — fused per-row instead of per-code.
  const float levels = static_cast<float>((1u << bits) - 1u);
  const float delta = (2.0f * clip) / levels;
  const std::size_t per = 8u / static_cast<std::size_t>(bits);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1u);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint8_t* row_bytes = codes + r * stride;
    float* dst = out + r * dim;
    for (std::size_t j = 0; j < dim; ++j) {
      const std::size_t shift = (j % per) * static_cast<std::size_t>(bits);
      const std::uint8_t code =
          static_cast<std::uint8_t>((row_bytes[j / per] >> shift) & mask);
      dst[j] = -clip + static_cast<float>(code) * delta;
    }
  }
}

void adc_scan(const std::uint8_t* codes, std::size_t count, std::size_t m,
              std::size_t ksub, const float* lut, float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    float acc = 0.0f;
    for (std::size_t s = 0; s < m; ++s) {
      acc += lut[s * ksub + codes[s * count + i]];
    }
    out[i] = acc;
  }
}

void pq_decode_rows(const std::uint8_t* codes, std::size_t num_rows,
                    std::size_t m, std::size_t sub_dim, std::size_t ksub,
                    const float* codebooks, float* out) {
  const std::size_t dim = m * sub_dim;
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint8_t* row_codes = codes + r * m;
    float* dst = out + r * dim;
    for (std::size_t s = 0; s < m; ++s) {
      const float* centroid =
          codebooks + (s * ksub + row_codes[s]) * sub_dim;
      for (std::size_t j = 0; j < sub_dim; ++j) {
        dst[s * sub_dim + j] = centroid[j];
      }
    }
  }
}

float l2_sq_f32(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace scalar

std::size_t packed_row_bytes(std::size_t dim, int bits) {
  const std::size_t per = 8u / static_cast<std::size_t>(bits);
  return (dim + per - 1) / per;
}

namespace {

// Expands one bit-packed row (lowest bits first within each byte, the
// EmbeddingSnapshot layout) into byte-per-code form. Byte-at-a-time with
// unrolled shifts — ~3× the per-code modulo walk the scalar baseline keeps.
inline void unpack_codes_fast(const std::uint8_t* row_bytes, std::size_t dim,
                              int bits, std::uint8_t* codes) {
  std::size_t j = 0;
  std::size_t b = 0;
  switch (bits) {
    case 1:
      for (; j + 8 <= dim; j += 8, ++b) {
        const std::uint8_t v = row_bytes[b];
        codes[j] = v & 1u;
        codes[j + 1] = (v >> 1) & 1u;
        codes[j + 2] = (v >> 2) & 1u;
        codes[j + 3] = (v >> 3) & 1u;
        codes[j + 4] = (v >> 4) & 1u;
        codes[j + 5] = (v >> 5) & 1u;
        codes[j + 6] = (v >> 6) & 1u;
        codes[j + 7] = (v >> 7) & 1u;
      }
      for (; j < dim; ++j) codes[j] = (row_bytes[b] >> (j % 8)) & 1u;
      break;
    case 2:
      for (; j + 4 <= dim; j += 4, ++b) {
        const std::uint8_t v = row_bytes[b];
        codes[j] = v & 3u;
        codes[j + 1] = (v >> 2) & 3u;
        codes[j + 2] = (v >> 4) & 3u;
        codes[j + 3] = v >> 6;
      }
      for (; j < dim; ++j) codes[j] = (row_bytes[b] >> ((j % 4) * 2)) & 3u;
      break;
    case 4:
      for (; j + 2 <= dim; j += 2, ++b) {
        const std::uint8_t v = row_bytes[b];
        codes[j] = v & 15u;
        codes[j + 1] = v >> 4;
      }
      if (j < dim) codes[j] = row_bytes[b] & 15u;
      break;
    default:
      break;
  }
}

}  // namespace

// ---- AVX2 + FMA path ---------------------------------------------------

#if ANCHOR_KERNELS_AVX2

namespace avx2 {

__attribute__((target("avx2,fma"))) static inline double hsum(__m256d v) {
  // ((v0+v2) + (v1+v3)) — fixed lane order keeps repeated calls identical.
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

__attribute__((target("avx2,fma"))) double dot(const double* a,
                                               const double* b,
                                               std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  double total =
      hsum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2,fma"))) void axpy(double alpha, const double* x,
                                              double* y, std::size_t n) {
  // mul+add rather than fmadd: the contract is bit-exactness with the
  // scalar y[i] += alpha·x[i] (the project builds with -ffp-contract=off).
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) void rot(double* x, double* y,
                                             std::size_t n, double c,
                                             double s) {
  // mul/sub/add without contraction: bit-exact with scalar::rot.
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(
        x + i, _mm256_sub_pd(_mm256_mul_pd(vc, vx), _mm256_mul_pd(vs, vy)));
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_mul_pd(vs, vx), _mm256_mul_pd(vc, vy)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

__attribute__((target("avx2,fma"))) double l2_normalize(double* x,
                                                        std::size_t n) {
  const double norm = std::sqrt(dot(x, x, n));
  if (norm > 0.0) {
    const __m256d vinv = _mm256_set1_pd(1.0 / norm);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vinv));
    }
    const double inv = 1.0 / norm;
    for (; i < n; ++i) x[i] *= inv;
  }
  return norm;
}

__attribute__((target("avx2,fma"))) void matvec_rowmajor(
    const double* m, std::size_t rows, std::size_t cols, const double* x,
    double* y) {
  // Two rows per iteration share each load of x.
  std::size_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    const double* r0 = m + i * cols;
    const double* r1 = r0 + cols;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const __m256d vx = _mm256_loadu_pd(x + j);
      a0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + j), vx, a0);
      a1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1 + j), vx, a1);
    }
    double s0 = hsum(a0);
    double s1 = hsum(a1);
    for (; j < cols; ++j) {
      s0 += r0[j] * x[j];
      s1 += r1[j] * x[j];
    }
    y[i] = s0;
    y[i + 1] = s1;
  }
  for (; i < rows; ++i) y[i] = dot(m + i * cols, x, cols);
}

__attribute__((target("avx2,fma"))) void gemm_nt(const double* a,
                                                 std::size_t a_rows,
                                                 const double* b,
                                                 std::size_t b_rows,
                                                 std::size_t cols, double* c) {
  // Register blocking: 4 B-rows share each A load (4 independent FMA
  // accumulators); cache blocking: a 32-row A tile stays L2-resident while
  // the B panel streams past it once.
  constexpr std::size_t kARowTile = 32;
  for (std::size_t ib = 0; ib < a_rows; ib += kARowTile) {
    const std::size_t i_end = std::min(ib + kARowTile, a_rows);
    std::size_t j = 0;
    for (; j + 4 <= b_rows; j += 4) {
      const double* b0 = b + j * cols;
      const double* b1 = b0 + cols;
      const double* b2 = b1 + cols;
      const double* b3 = b2 + cols;
      for (std::size_t i = ib; i < i_end; ++i) {
        const double* arow = a + i * cols;
        __m256d a0 = _mm256_setzero_pd();
        __m256d a1 = _mm256_setzero_pd();
        __m256d a2 = _mm256_setzero_pd();
        __m256d a3 = _mm256_setzero_pd();
        std::size_t k = 0;
        for (; k + 4 <= cols; k += 4) {
          const __m256d va = _mm256_loadu_pd(arow + k);
          a0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b0 + k), a0);
          a1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b1 + k), a1);
          a2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b2 + k), a2);
          a3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(b3 + k), a3);
        }
        double s0 = hsum(a0);
        double s1 = hsum(a1);
        double s2 = hsum(a2);
        double s3 = hsum(a3);
        for (; k < cols; ++k) {
          const double av = arow[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        double* crow = c + i * b_rows + j;
        crow[0] = s0;
        crow[1] = s1;
        crow[2] = s2;
        crow[3] = s3;
      }
    }
    for (; j < b_rows; ++j) {
      const double* brow = b + j * cols;
      for (std::size_t i = ib; i < i_end; ++i) {
        c[i * b_rows + j] = dot(a + i * cols, brow, cols);
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void dequantize_codes8(
    const std::uint8_t* codes, std::size_t n, float clip, float delta,
    float* out) {
  // mul+add (not fma) matches the scalar -clip + code·delta bit-for-bit.
  const __m256 vdelta = _mm256_set1_ps(delta);
  const __m256 vnegclip = _mm256_set1_ps(-clip);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i b8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + j));
    const __m256 vf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b8));
    _mm256_storeu_ps(out + j,
                     _mm256_add_ps(_mm256_mul_ps(vf, vdelta), vnegclip));
  }
  for (; j < n; ++j) {
    out[j] = -clip + static_cast<float>(codes[j]) * delta;
  }
}

void dequantize_rows(const std::uint8_t* codes, std::size_t num_rows,
                     std::size_t dim, int bits, float clip, float* out) {
  ANCHOR_CHECK_MSG(bits == 1 || bits == 2 || bits == 4 || bits == 8,
                   "dequantize_rows supports bits in {1,2,4,8}");
  const std::size_t stride = packed_row_bytes(dim, bits);
  const float levels = static_cast<float>((1u << bits) - 1u);
  const float delta = (2.0f * clip) / levels;
  // Sub-byte codes unpack into a reused byte-per-code scratch first; the
  // byte→float conversion then shares the 8-bit SIMD path.
  thread_local std::vector<std::uint8_t> scratch;
  if (bits < 8 && scratch.size() < dim) scratch.resize(dim);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint8_t* row_bytes = codes + r * stride;
    const std::uint8_t* row_codes = row_bytes;
    if (bits < 8) {
      unpack_codes_fast(row_bytes, dim, bits, scratch.data());
      row_codes = scratch.data();
    }
    dequantize_codes8(row_codes, dim, clip, delta, out + r * dim);
  }
}

__attribute__((target("avx2,fma"))) void adc_scan(
    const std::uint8_t* codes, std::size_t count, std::size_t m,
    std::size_t ksub, const float* lut, float* out) {
  // 8 rows per iteration: one 8-byte load per sub-quantizer picks up the
  // rows' codes (the column-major cell layout makes them contiguous), a
  // gather fetches their LUT entries. Plain adds in ascending s order —
  // each out[i] sums in exactly the scalar order, so this path is
  // bit-exact with scalar::adc_scan.
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t s = 0; s < m; ++s) {
      const __m128i b8 = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(codes + s * count + i));
      const __m256i idx = _mm256_cvtepu8_epi32(b8);
      acc = _mm256_add_ps(
          acc, _mm256_i32gather_ps(lut + s * ksub, idx, sizeof(float)));
    }
    _mm256_storeu_ps(out + i, acc);
  }
  for (; i < count; ++i) {
    float acc = 0.0f;
    for (std::size_t s = 0; s < m; ++s) {
      acc += lut[s * ksub + codes[s * count + i]];
    }
    out[i] = acc;
  }
}

__attribute__((target("avx2,fma"))) void pq_decode_rows(
    const std::uint8_t* codes, std::size_t num_rows, std::size_t m,
    std::size_t sub_dim, std::size_t ksub, const float* codebooks,
    float* out) {
  // Pure centroid copies, widened to 8-float vector moves. No arithmetic
  // touches the values, so this path is bit-exact with scalar by
  // construction. Two sub-quantizers per iteration keep both the code
  // fetch and the store stream busy.
  const std::size_t dim = m * sub_dim;
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::uint8_t* row_codes = codes + r * m;
    float* dst = out + r * dim;
    for (std::size_t s = 0; s < m; ++s) {
      const float* centroid = codebooks + (s * ksub + row_codes[s]) * sub_dim;
      float* slice = dst + s * sub_dim;
      std::size_t j = 0;
      for (; j + 8 <= sub_dim; j += 8) {
        _mm256_storeu_ps(slice + j, _mm256_loadu_ps(centroid + j));
      }
      for (; j + 4 <= sub_dim; j += 4) {
        _mm_storeu_ps(slice + j, _mm_loadu_ps(centroid + j));
      }
      for (; j < sub_dim; ++j) slice[j] = centroid[j];
    }
  }
}

__attribute__((target("avx2,fma"))) float l2_sq_f32(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  // Fixed lane order, like hsum: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  float total = _mm_cvtss_f32(_mm_add_ss(s, _mm_shuffle_ps(s, s, 1)));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

}  // namespace avx2

#endif  // ANCHOR_KERNELS_AVX2

// ---- dispatch ----------------------------------------------------------

namespace {

bool detect_simd() {
#if ANCHOR_KERNELS_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::atomic<bool>& simd_flag() {
  static std::atomic<bool> enabled{detect_simd()};
  return enabled;
}

inline bool use_simd() {
#if ANCHOR_KERNELS_AVX2
  return simd_flag().load(std::memory_order_relaxed);
#else
  return false;
#endif
}

}  // namespace

bool simd_available() { return detect_simd(); }

bool simd_enabled() { return use_simd(); }

void set_simd_enabled(bool on) { simd_flag().store(on && detect_simd()); }

const char* active_isa() { return use_simd() ? "avx2" : "scalar"; }

double dot(const double* a, const double* b, std::size_t n) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::dot(a, b, n);
#endif
  return scalar::dot(a, b, n);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::axpy(alpha, x, y, n);
#endif
  scalar::axpy(alpha, x, y, n);
}

void rot(double* x, double* y, std::size_t n, double c, double s) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::rot(x, y, n, c, s);
#endif
  scalar::rot(x, y, n, c, s);
}

double l2_normalize(double* x, std::size_t n) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::l2_normalize(x, n);
#endif
  return scalar::l2_normalize(x, n);
}

void matvec_rowmajor(const double* m, std::size_t rows, std::size_t cols,
                     const double* x, double* y) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::matvec_rowmajor(m, rows, cols, x, y);
#endif
  scalar::matvec_rowmajor(m, rows, cols, x, y);
}

void gemm_nt(const double* a, std::size_t a_rows, const double* b,
             std::size_t b_rows, std::size_t cols, double* c) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::gemm_nt(a, a_rows, b, b_rows, cols, c);
#endif
  scalar::gemm_nt(a, a_rows, b, b_rows, cols, c);
}

void dequantize_rows(const std::uint8_t* codes, std::size_t num_rows,
                     std::size_t dim, int bits, float clip, float* out) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) {
    return avx2::dequantize_rows(codes, num_rows, dim, bits, clip, out);
  }
#endif
  scalar::dequantize_rows(codes, num_rows, dim, bits, clip, out);
}

void adc_scan(const std::uint8_t* codes, std::size_t count, std::size_t m,
              std::size_t ksub, const float* lut, float* out) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::adc_scan(codes, count, m, ksub, lut, out);
#endif
  scalar::adc_scan(codes, count, m, ksub, lut, out);
}

void pq_decode_rows(const std::uint8_t* codes, std::size_t num_rows,
                    std::size_t m, std::size_t sub_dim, std::size_t ksub,
                    const float* codebooks, float* out) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) {
    return avx2::pq_decode_rows(codes, num_rows, m, sub_dim, ksub, codebooks,
                                out);
  }
#endif
  scalar::pq_decode_rows(codes, num_rows, m, sub_dim, ksub, codebooks, out);
}

float l2_sq_f32(const float* a, const float* b, std::size_t n) {
#if ANCHOR_KERNELS_AVX2
  if (use_simd()) return avx2::l2_sq_f32(a, b, n);
#endif
  return scalar::l2_sq_f32(a, b, n);
}

}  // namespace anchor::la::kernels
