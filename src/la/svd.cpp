#include "la/svd.hpp"

#include <algorithm>
#include <cmath>

#include "la/eigen.hpp"
#include "la/kernels.hpp"

namespace anchor::la {

namespace {

/// Modified Gram-Schmidt over the *rows* of ut (i.e. the columns of U,
/// handed in transposed so every projection is a contiguous dot/axpy).
/// Rows whose residual collapses (linearly dependent set) are replaced with
/// a canonical basis vector orthogonalized against the rest, so the result
/// is always a full orthonormal set.
void orthonormalize_rows(Matrix& ut) {
  const std::size_t n = ut.cols();
  const std::size_t r = ut.rows();
  for (std::size_t j = 0; j < r; ++j) {
    double* uj = ut.row(j);
    // Project out previously accepted rows (twice-is-enough reorthog).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        const double* uk = ut.row(k);
        kernels::axpy(-kernels::dot(uk, uj, n), uk, uj, n);
      }
    }
    if (kernels::l2_normalize(uj, n) > 1e-12) continue;
    // Degenerate row: seed with successive canonical vectors until one
    // survives projection.
    for (std::size_t seed = 0; seed < n; ++seed) {
      std::fill(uj, uj + n, 0.0);
      uj[seed] = 1.0;
      for (std::size_t k = 0; k < j; ++k) {
        const double* uk = ut.row(k);
        kernels::axpy(-kernels::dot(uk, uj, n), uk, uj, n);
      }
      if (kernels::l2_normalize(uj, n) > 0.5) break;
    }
  }
}

SvdResult svd_tall(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  ANCHOR_CHECK_GE(n, d);

  const Matrix g = gram(x);  // d×d
  EigenResult eig = eigen_symmetric(g);

  SvdResult result;
  result.singular_values.resize(d);
  result.v = eig.vectors;  // columns already sorted by descending eigenvalue
  for (std::size_t i = 0; i < d; ++i) {
    result.singular_values[i] = std::sqrt(std::max(0.0, eig.values[i]));
  }

  const double sigma_max = result.singular_values.empty()
                               ? 0.0
                               : result.singular_values.front();
  const double cutoff = 1e-10 * std::max(sigma_max, 1e-300);

  // U = X · (V·S⁻¹) as one gemm over V with its columns pre-scaled by 1/σ
  // (zeroed for tiny σ — those columns are filled by the orthonormalization
  // pass below).
  Matrix v_scaled = result.v;
  for (std::size_t j = 0; j < d; ++j) {
    const double sigma = result.singular_values[j];
    const double inv = sigma > cutoff ? 1.0 / sigma : 0.0;
    for (std::size_t k = 0; k < d; ++k) v_scaled(k, j) *= inv;
  }
  // Orthonormalize U's columns as rows of Uᵀ: contiguous dot/axpy instead
  // of d-strided column walks.
  Matrix ut = transpose(matmul(x, v_scaled));
  orthonormalize_rows(ut);
  result.u = transpose(ut);
  return result;
}

}  // namespace

std::size_t SvdResult::rank(double rel_tol) const {
  if (singular_values.empty()) return 0;
  const double cutoff = rel_tol * singular_values.front();
  std::size_t r = 0;
  for (double s : singular_values) {
    if (s > cutoff) ++r;
  }
  return r;
}

SvdResult svd(const Matrix& x) {
  ANCHOR_CHECK(!x.empty());
  if (x.rows() >= x.cols()) return svd_tall(x);
  // Wide case: Xᵀ = U'SV'ᵀ  ⇒  X = V'SU'ᵀ.
  SvdResult t = svd_tall(transpose(x));
  SvdResult result;
  result.u = std::move(t.v);
  result.v = std::move(t.u);
  result.singular_values = std::move(t.singular_values);
  return result;
}

Matrix left_singular_vectors(const Matrix& x) { return svd(x).u; }

}  // namespace anchor::la
