#include "la/svd.hpp"

#include <algorithm>
#include <cmath>

#include "la/eigen.hpp"

namespace anchor::la {

namespace {

/// Modified Gram-Schmidt pass over the columns of U, in place. Columns whose
/// residual collapses (linearly dependent set) are replaced with a canonical
/// basis vector orthogonalized against the rest, so the result is always a
/// full orthonormal set.
void orthonormalize_columns(Matrix& u) {
  const std::size_t n = u.rows();
  const std::size_t r = u.cols();
  for (std::size_t j = 0; j < r; ++j) {
    // Project out previously accepted columns (twice-is-enough reorthog).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += u(i, k) * u(i, j);
        for (std::size_t i = 0; i < n; ++i) u(i, j) -= dot * u(i, k);
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += u(i, j) * u(i, j);
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (std::size_t i = 0; i < n; ++i) u(i, j) /= norm;
      continue;
    }
    // Degenerate column: seed with successive canonical vectors until one
    // survives projection.
    for (std::size_t seed = 0; seed < n; ++seed) {
      for (std::size_t i = 0; i < n; ++i) u(i, j) = (i == seed) ? 1.0 : 0.0;
      for (std::size_t k = 0; k < j; ++k) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += u(i, k) * u(i, j);
        for (std::size_t i = 0; i < n; ++i) u(i, j) -= dot * u(i, k);
      }
      double nn = 0.0;
      for (std::size_t i = 0; i < n; ++i) nn += u(i, j) * u(i, j);
      nn = std::sqrt(nn);
      if (nn > 0.5) {
        for (std::size_t i = 0; i < n; ++i) u(i, j) /= nn;
        break;
      }
    }
  }
}

SvdResult svd_tall(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  ANCHOR_CHECK_GE(n, d);

  const Matrix g = gram(x);  // d×d
  EigenResult eig = eigen_symmetric(g);

  SvdResult result;
  result.singular_values.resize(d);
  result.v = eig.vectors;  // columns already sorted by descending eigenvalue
  for (std::size_t i = 0; i < d; ++i) {
    result.singular_values[i] = std::sqrt(std::max(0.0, eig.values[i]));
  }

  const double sigma_max = result.singular_values.empty()
                               ? 0.0
                               : result.singular_values.front();
  const double cutoff = 1e-10 * std::max(sigma_max, 1e-300);

  // U = X · V · S⁻¹ column by column; tiny-σ columns are filled by the
  // orthonormalization pass below.
  result.u = Matrix(n, d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const double sigma = result.singular_values[j];
    if (sigma <= cutoff) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double* xrow = x.row(i);
      double acc = 0.0;
      for (std::size_t k = 0; k < d; ++k) acc += xrow[k] * result.v(k, j);
      result.u(i, j) = acc / sigma;
    }
  }
  orthonormalize_columns(result.u);
  return result;
}

}  // namespace

std::size_t SvdResult::rank(double rel_tol) const {
  if (singular_values.empty()) return 0;
  const double cutoff = rel_tol * singular_values.front();
  std::size_t r = 0;
  for (double s : singular_values) {
    if (s > cutoff) ++r;
  }
  return r;
}

SvdResult svd(const Matrix& x) {
  ANCHOR_CHECK(!x.empty());
  if (x.rows() >= x.cols()) return svd_tall(x);
  // Wide case: Xᵀ = U'SV'ᵀ  ⇒  X = V'SU'ᵀ.
  SvdResult t = svd_tall(transpose(x));
  SvdResult result;
  result.u = std::move(t.v);
  result.v = std::move(t.u);
  result.singular_values = std::move(t.singular_values);
  return result;
}

Matrix left_singular_vectors(const Matrix& x) { return svd(x).u; }

}  // namespace anchor::la
