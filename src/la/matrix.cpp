#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace anchor::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols(), 0.0);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row(r);
    const double* brow = b.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ari = arow[i];
      if (ari == 0.0) continue;
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += ari * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    double* crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

Matrix gram(const Matrix& a) { return matmul_at_b(a, a); }

Matrix add(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.storage()[i] += b.storage()[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.storage()[i] -= b.storage()[i];
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c = a;
  for (double& x : c.storage()) x *= s;
  return c;
}

double frobenius_norm_sq(const Matrix& m) {
  double acc = 0.0;
  for (double x : m.storage()) acc += x * x;
  return acc;
}

double frobenius_norm(const Matrix& m) { return std::sqrt(frobenius_norm_sq(m)); }

double trace(const Matrix& m) {
  const std::size_t n = std::min(m.rows(), m.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += m(i, i);
  return acc;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.storage()[i] - b.storage()[i]));
  }
  return worst;
}

std::vector<double> matvec(const Matrix& m, const std::vector<double>& x) {
  ANCHOR_CHECK_EQ(m.cols(), x.size());
  std::vector<double> y(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace anchor::la
