#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"
#include "util/thread_pool.hpp"

namespace anchor::la {

namespace {

// Fixed row-block sizes for the parallel paths. Blocking is keyed to the
// *size* of the input, never the pool width, so results are bit-for-bit
// identical at any thread count (the determinism contract of the measure
// layer). Below the threshold everything stays serial — identical to the
// historical loops.
constexpr std::size_t kParallelRowThreshold = 512;
constexpr std::size_t kReduceRowBlock = 256;  // matmul_at_b partial width
constexpr std::size_t kGemmRowTile = 64;      // matmul/matmul_a_bt tiles

}  // namespace

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols(), 0.0);
  // ikj loop order keeps the inner loop streaming over contiguous rows.
  // Every output row is an independent computation, so tall products fan
  // out over the pool in fixed tiles (bit-exact with the serial loop).
  const auto run_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double* arow = a.row(i);
      double* crow = c.row(i);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        kernels::axpy(aik, b.row(k), crow, b.cols());
      }
    }
  };
  if (a.rows() < kParallelRowThreshold) {
    run_rows(0, a.rows());
  } else {
    const std::size_t tiles = (a.rows() + kGemmRowTile - 1) / kGemmRowTile;
    util::global_pool().parallel_for(0, tiles, [&](std::size_t t) {
      run_rows(t * kGemmRowTile,
               std::min((t + 1) * kGemmRowTile, a.rows()));
    });
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  const auto accumulate = [&](Matrix& c, std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const double* arow = a.row(r);
      const double* brow = b.row(r);
      for (std::size_t i = 0; i < a.cols(); ++i) {
        const double ari = arow[i];
        if (ari == 0.0) continue;
        kernels::axpy(ari, brow, c.row(i), b.cols());
      }
    }
  };
  Matrix c(a.cols(), b.cols(), 0.0);
  if (a.rows() < kParallelRowThreshold) {
    accumulate(c, 0, a.rows());
    return c;
  }
  // Tall reduction: fixed row blocks accumulate into private partials in
  // parallel, then fold in block order. The grouping depends only on the
  // input height — never the pool size — so the (reassociated) sum is the
  // same at every thread count. Doubling the block height past 32 blocks
  // bounds the transient partial storage on very tall inputs.
  std::size_t block_rows = kReduceRowBlock;
  while (block_rows * 32 < a.rows()) block_rows *= 2;
  const std::size_t blocks = (a.rows() + block_rows - 1) / block_rows;
  std::vector<Matrix> partials(blocks);
  util::global_pool().parallel_for(0, blocks, [&](std::size_t blk) {
    partials[blk] = Matrix(a.cols(), b.cols(), 0.0);
    accumulate(partials[blk], blk * block_rows,
               std::min((blk + 1) * block_rows, a.rows()));
  });
  for (const Matrix& p : partials) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      c.storage()[i] += p.storage()[i];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  if (a.rows() < kParallelRowThreshold) {
    kernels::gemm_nt(a.data(), a.rows(), b.data(), b.rows(), a.cols(),
                     c.data());
    return c;
  }
  // Every output element is an independent dot product, so tiling the A
  // rows across the pool is bit-exact with the single-call gemm.
  const std::size_t tiles = (a.rows() + kGemmRowTile - 1) / kGemmRowTile;
  util::global_pool().parallel_for(0, tiles, [&](std::size_t t) {
    const std::size_t lo = t * kGemmRowTile;
    const std::size_t hi = std::min(lo + kGemmRowTile, a.rows());
    kernels::gemm_nt(a.data() + lo * a.cols(), hi - lo, b.data(), b.rows(),
                     a.cols(), c.data() + lo * b.rows());
  });
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

Matrix gram(const Matrix& a) { return matmul_at_b(a, a); }

Matrix add(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.storage()[i] += b.storage()[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.storage()[i] -= b.storage()[i];
  return c;
}

Matrix scale(const Matrix& a, double s) {
  Matrix c = a;
  for (double& x : c.storage()) x *= s;
  return c;
}

double frobenius_norm_sq(const Matrix& m) {
  return kernels::dot(m.data(), m.data(), m.size());
}

double frobenius_norm(const Matrix& m) { return std::sqrt(frobenius_norm_sq(m)); }

double trace(const Matrix& m) {
  const std::size_t n = std::min(m.rows(), m.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += m(i, i);
  return acc;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ANCHOR_CHECK_EQ(a.rows(), b.rows());
  ANCHOR_CHECK_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.storage()[i] - b.storage()[i]));
  }
  return worst;
}

std::vector<double> matvec(const Matrix& m, const std::vector<double>& x) {
  ANCHOR_CHECK_EQ(m.cols(), x.size());
  std::vector<double> y(m.rows(), 0.0);
  kernels::matvec_rowmajor(m.data(), m.rows(), m.cols(), x.data(), y.data());
  return y;
}

}  // namespace anchor::la
