// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Jacobi is the right choice here: the matrices are small (d×d for embedding
// dimension d ≤ a few hundred), it is unconditionally stable, and it delivers
// fully orthogonal eigenvectors — which the eigenspace measures depend on.
#pragma once

#include "la/matrix.hpp"

namespace anchor::la {

/// Result of eigendecomposition A = V · diag(values) · Vᵀ.
/// Eigenvalues are sorted descending; eigenvectors are the *columns* of V.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // n×n, column i pairs with values[i]
};

/// Eigendecomposition of a symmetric matrix. The input is symmetrized
/// (averaged with its transpose) to absorb round-off asymmetry; a genuinely
/// non-symmetric input is a caller bug and is rejected beyond a tolerance.
///
/// `tol` bounds the off-diagonal Frobenius mass at convergence, relative to
/// the matrix norm.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12,
                            int max_sweeps = 64);

}  // namespace anchor::la
