#include "ann/ivf_pq.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "compress/pq.hpp"
#include "la/kernels.hpp"
#include "util/check.hpp"

namespace anchor::ann {
namespace {

/// Effective knobs for a given store shape: nlist/pq_bits shrink until the
/// k-means problems are well-posed (2^bits ≤ rows), pq_m shrinks to the
/// largest divisor of dim. Pure function of (config, n, dim), so every
/// process sizing an index over the same store agrees.
AnnConfig clamp_config(const AnnConfig& config, std::size_t n,
                       std::size_t dim) {
  AnnConfig c = config;
  c.nlist_bits = std::max(0, std::min(c.nlist_bits, 16));
  while (c.nlist_bits > 0 && (std::size_t{1} << c.nlist_bits) > n) {
    --c.nlist_bits;
  }
  c.pq_bits = std::max(1, std::min(c.pq_bits, 8));
  while (c.pq_bits > 1 && (std::size_t{1} << c.pq_bits) > n) {
    --c.pq_bits;
  }
  c.pq_m = std::min(std::max<std::size_t>(c.pq_m, 1), dim);
  while (dim % c.pq_m != 0) --c.pq_m;
  if (c.nprobe == 0) c.nprobe = kDefaultNprobe;
  if (c.rerank == 0) c.rerank = kDefaultRerank;
  return c;
}

/// Index of the centroid nearest to `v` (L2²; first minimum wins, so ties
/// break toward the lowest centroid id). Scalar on purpose: encoding must
/// be identical on every host regardless of the runtime ISA dispatch.
std::size_t nearest_centroid(const float* v, const float* centroids,
                             std::size_t count, std::size_t dim) {
  std::size_t best = 0;
  float best_d = 0.0f;
  for (std::size_t c = 0; c < count; ++c) {
    const float* cent = centroids + c * dim;
    float d = 0.0f;
    for (std::size_t j = 0; j < dim; ++j) {
      const float diff = v[j] - cent[j];
      d += diff * diff;
    }
    if (c == 0 || d < best_d) {
      best = c;
      best_d = d;
    }
  }
  return best;
}

embed::Embedding snapshot_rows(const serve::EmbeddingSnapshot& snap) {
  embed::Embedding rows(snap.vocab_size(), snap.dim());
  std::vector<std::size_t> ids(rows.vocab_size);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  snap.copy_rows(ids.data(), ids.size(), rows.data.data());
  return rows;
}

/// Do these artifacts describe exactly the encoding a PQ snapshot already
/// stores? Requires the trivial coarse stage (one all-zero cell, so the
/// residual IS the row) and bitwise-equal codebooks. Float equality is the
/// right comparison: matching artifacts come from the same training run,
/// so anything but equality means a different encoding.
bool artifacts_match_snapshot(const IvfPqArtifacts& art,
                              const serve::EmbeddingSnapshot& snap) {
  if (!snap.is_pq()) return false;
  if (art.nlist() != 1 || art.dim != snap.dim()) return false;
  for (const float c : art.coarse) {
    if (c != 0.0f) return false;
  }
  return art.codebooks == snap.pq_codebook_vectors();
}

}  // namespace

IvfPqArtifacts train_ivfpq(const embed::Embedding& rows,
                           const AnnConfig& config) {
  ANCHOR_CHECK_GT(rows.vocab_size, std::size_t{0});
  ANCHOR_CHECK_GT(rows.dim, std::size_t{0});
  const AnnConfig c = clamp_config(config, rows.vocab_size, rows.dim);

  // Stage 1 — coarse cells. A product quantizer with a single sub-vector is
  // a full-dimension vector quantizer: its one codebook is the cell
  // centroid set and its codes are the cell assignments.
  compress::PqConfig coarse_cfg;
  coarse_cfg.num_subvectors = 1;
  coarse_cfg.bits = c.nlist_bits == 0 ? 1 : c.nlist_bits;
  coarse_cfg.max_iters = c.train_iters;
  coarse_cfg.seed = c.seed;
  const compress::PqResult coarse = compress::pq_quantize(rows, coarse_cfg);

  IvfPqArtifacts art;
  art.dim = rows.dim;
  art.coarse = coarse.codebooks[0];
  if (c.nlist_bits == 0) {
    // One cell: its centroid is the first (and only) trained centroid.
    art.coarse.resize(rows.dim);
  }

  // Stage 2 — residual codebooks, trained on (row − its cell centroid).
  // Residuals concentrate around 0 regardless of which cell a row landed
  // in, which is why one codebook set can be shared across all cells.
  embed::Embedding residuals(rows.vocab_size, rows.dim);
  const std::size_t nlist = art.nlist();
  for (std::size_t w = 0; w < rows.vocab_size; ++w) {
    std::size_t cell = coarse.codes[w];
    if (cell >= nlist) cell = 0;
    const float* cent = art.coarse.data() + cell * rows.dim;
    const float* src = rows.row(w);
    float* dst = residuals.row(w);
    for (std::size_t j = 0; j < rows.dim; ++j) dst[j] = src[j] - cent[j];
  }
  compress::PqConfig pq_cfg;
  pq_cfg.num_subvectors = c.pq_m;
  pq_cfg.bits = c.pq_bits;
  pq_cfg.max_iters = c.train_iters;
  pq_cfg.seed = c.seed + 1;
  art.codebooks = compress::pq_quantize(residuals, pq_cfg).codebooks;
  return art;
}

IvfPqArtifacts snapshot_artifacts(const serve::EmbeddingSnapshot& snap) {
  ANCHOR_CHECK_MSG(snap.is_pq(),
                   "snapshot_artifacts requires a pq-mode snapshot");
  IvfPqArtifacts art;
  art.dim = snap.dim();
  art.coarse.assign(snap.dim(), 0.0f);  // one zero cell: residual == row
  art.codebooks = snap.pq_codebook_vectors();
  return art;
}

IvfPqIndex::IvfPqIndex(serve::SnapshotPtr snap, const AnnConfig& config)
    : snap_(std::move(snap)) {
  ANCHOR_CHECK(snap_ != nullptr);
  n_ = snap_->vocab_size();
  dim_ = snap_->dim();
  ANCHOR_CHECK_GT(n_, std::size_t{0});
  build(config);
}

void IvfPqIndex::build(const AnnConfig& config) {
  config_ = clamp_config(config, n_, dim_);

  if (!config.artifacts.empty()) {
    ANCHOR_CHECK_EQ(config.artifacts.dim, dim_);
    ANCHOR_CHECK(!config.artifacts.codebooks.empty());
    artifacts_ = config.artifacts;
  } else if (snap_->is_pq()) {
    // The store already paid for a PQ encoding of every row — mirror it
    // instead of training a second one, so index and snapshot share one
    // set of codes/codebooks (and the build below skips re-encoding).
    artifacts_ = snapshot_artifacts(*snap_);
  } else {
    artifacts_ = train_ivfpq(snapshot_rows(*snap_), config_);
  }
  config_.artifacts = IvfPqArtifacts{};  // knobs only; artifacts_ is canonical

  nlist_ = artifacts_.nlist();
  m_ = artifacts_.codebooks.size();
  ANCHOR_CHECK_GT(nlist_, std::size_t{0});
  ANCHOR_CHECK_GT(m_, std::size_t{0});
  ANCHOR_CHECK_EQ(dim_ % m_, std::size_t{0});
  sub_dim_ = dim_ / m_;
  ksub_ = artifacts_.codebooks[0].size() / sub_dim_;
  ANCHOR_CHECK_GT(ksub_, std::size_t{0});
  ANCHOR_CHECK_LE(ksub_, std::size_t{256});  // codes_ stores bytes

  reused_snapshot_codes_ = artifacts_match_snapshot(artifacts_, *snap_);
  if (reused_snapshot_codes_) {
    // The snapshot's stored codes ARE this index's codes: one cell holding
    // every row, ids ascending, codes transposed into the column-major
    // block adc_scan consumes. Still a pure function of (row bytes,
    // artifacts), so shards whose snapshots encode with SHARED codebooks
    // merge bit-identically to a single-process index — the same contract
    // as the trained-artifacts path, minus the O(n·ksub·dim) re-encode.
    cell_start_ = {0, static_cast<std::uint32_t>(n_)};
    cell_ids_.resize(n_);
    std::iota(cell_ids_.begin(), cell_ids_.end(), std::uint32_t{0});
    codes_.resize(n_ * m_);
    for (std::size_t w = 0; w < n_; ++w) {
      const std::uint8_t* row = snap_->pq_row_codes(w);
      for (std::size_t s = 0; s < m_; ++s) codes_[s * n_ + w] = row[s];
    }
    return;
  }

  // Encode every row: cell assignment + residual PQ codes. Encoding is a
  // pure scalar function of (row bytes, artifacts_), the shard-determinism
  // contract from the header.
  const embed::Embedding rows = snapshot_rows(*snap_);
  std::vector<std::uint32_t> cell_of(n_);
  std::vector<std::uint8_t> row_codes(n_ * m_);  // row-major staging
  std::vector<float> residual(dim_);
  std::vector<std::uint32_t> cell_count(nlist_, 0);
  for (std::size_t w = 0; w < n_; ++w) {
    const float* src = rows.row(w);
    const std::size_t cell =
        nearest_centroid(src, artifacts_.coarse.data(), nlist_, dim_);
    cell_of[w] = static_cast<std::uint32_t>(cell);
    ++cell_count[cell];
    const float* cent = artifacts_.coarse.data() + cell * dim_;
    for (std::size_t j = 0; j < dim_; ++j) residual[j] = src[j] - cent[j];
    for (std::size_t s = 0; s < m_; ++s) {
      row_codes[w * m_ + s] = static_cast<std::uint8_t>(nearest_centroid(
          residual.data() + s * sub_dim_, artifacts_.codebooks[s].data(),
          ksub_, sub_dim_));
    }
  }

  // Inverted lists with ids ascending within each cell (rows are visited in
  // id order below), plus the per-cell column-major code blocks adc_scan
  // consumes.
  cell_start_.assign(nlist_ + 1, 0);
  for (std::size_t c = 0; c < nlist_; ++c) {
    cell_start_[c + 1] = cell_start_[c] + cell_count[c];
  }
  cell_ids_.resize(n_);
  codes_.resize(n_ * m_);
  std::vector<std::uint32_t> fill(nlist_, 0);
  for (std::size_t w = 0; w < n_; ++w) {
    const std::size_t c = cell_of[w];
    const std::size_t pos = fill[c]++;
    cell_ids_[cell_start_[c] + pos] = static_cast<std::uint32_t>(w);
    const std::size_t base = std::size_t{cell_start_[c]} * m_;
    const std::size_t count = cell_count[c];
    for (std::size_t s = 0; s < m_; ++s) {
      codes_[base + s * count + pos] = row_codes[w * m_ + s];
    }
  }
}

TopKResult IvfPqIndex::candidates(const float* query, std::size_t rerank,
                                  std::size_t nprobe) const {
  namespace k = la::kernels;
  if (rerank == 0) rerank = config_.rerank;
  if (nprobe == 0) nprobe = config_.nprobe;
  nprobe = std::min(nprobe, nlist_);

  // Rank cells by coarse distance; ties break toward the lower cell id so
  // the probe set is deterministic (and identical on every shard — coarse
  // distances depend only on the shared centroids and the query).
  std::vector<std::pair<float, std::uint32_t>> cell_rank(nlist_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    cell_rank[c] = {k::l2_sq_f32(query, artifacts_.coarse.data() + c * dim_,
                                 dim_),
                    static_cast<std::uint32_t>(c)};
  }
  std::partial_sort(cell_rank.begin(), cell_rank.begin() + nprobe,
                    cell_rank.end());

  // ADC over each probed cell: per-cell LUT (the residual target is
  // query − centroid, so the LUT is per cell, not per query), then one
  // adc_scan sweep over the cell's column-major code block.
  std::vector<float> lut(m_ * ksub_);
  std::vector<float> residual(dim_);
  std::vector<float> adc;
  std::vector<std::pair<float, std::uint32_t>> pool;  // (adc, local id)
  for (std::size_t p = 0; p < nprobe; ++p) {
    const std::uint32_t c = cell_rank[p].second;
    const std::size_t begin = cell_start_[c];
    const std::size_t count = cell_start_[c + 1] - begin;
    if (count == 0) continue;
    const float* cent = artifacts_.coarse.data() + std::size_t{c} * dim_;
    for (std::size_t j = 0; j < dim_; ++j) residual[j] = query[j] - cent[j];
    for (std::size_t s = 0; s < m_; ++s) {
      const float* r = residual.data() + s * sub_dim_;
      const float* cb = artifacts_.codebooks[s].data();
      float* row = lut.data() + s * ksub_;
      for (std::size_t j = 0; j < ksub_; ++j) {
        const float* cent_j = cb + j * sub_dim_;
        float d = 0.0f;
        for (std::size_t t = 0; t < sub_dim_; ++t) {
          const float diff = r[t] - cent_j[t];
          d += diff * diff;
        }
        row[j] = d;
      }
    }
    adc.resize(count);
    k::adc_scan(codes_.data() + begin * m_, count, m_, ksub_, lut.data(),
                adc.data());
    for (std::size_t i = 0; i < count; ++i) {
      pool.emplace_back(adc[i], cell_ids_[begin + i]);
    }
  }

  // Shortlist: best `rerank` by (adc, id) — the id tiebreak is what makes
  // the router-side merge reconstruct this exact selection.
  const std::size_t keep = std::min(rerank, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + keep, pool.end());
  pool.resize(keep);

  TopKResult out;
  out.version = snap_->version();
  out.cells_probed = static_cast<std::uint32_t>(nprobe);
  out.shortlist = static_cast<std::uint32_t>(keep);
  out.hits.resize(keep);
  if (keep > 0) {
    // Exact re-rank distances against the true snapshot rows.
    std::vector<std::size_t> ids(keep);
    for (std::size_t i = 0; i < keep; ++i) ids[i] = pool[i].second;
    std::vector<float> exact_rows(keep * dim_);
    snap_->copy_rows(ids.data(), keep, exact_rows.data());
    for (std::size_t i = 0; i < keep; ++i) {
      out.hits[i].id = pool[i].second;
      out.hits[i].adc = pool[i].first;
      out.hits[i].exact =
          k::l2_sq_f32(query, exact_rows.data() + i * dim_, dim_);
    }
  }
  return out;
}

TopKResult IvfPqIndex::search(const float* query, std::size_t k,
                              std::size_t nprobe, std::size_t rerank) const {
  TopKResult out = candidates(query, rerank, nprobe);
  std::sort(out.hits.begin(), out.hits.end(),
            [](const TopKHit& a, const TopKHit& b) {
              return a.exact != b.exact ? a.exact < b.exact : a.id < b.id;
            });
  if (out.hits.size() > k) out.hits.resize(k);
  return out;
}

}  // namespace anchor::ann
