// Serving-side ANN façade: owns the IVF-PQ index cache keyed on snapshot
// epoch, so index build/swap follows the store's version lifecycle — a
// promote (or canary/rollout step) that changes the live snapshot lazily
// builds the matching index on first TOPK and the old one ages out. Also
// home of the online gate measure: top-k churn of served TOPK results
// between two index versions (the paper's kNN-overlap instability, §3.1,
// applied to the serving path itself).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ann/ivf_pq.hpp"
#include "serve/embedding_store.hpp"

namespace anchor::ann {

class AnnService {
 public:
  /// `config` fixes the index shape for every version this service builds;
  /// `store` outlives the service.
  AnnService(serve::EmbeddingStore& store, AnnConfig config);

  const AnnConfig& config() const { return config_; }

  /// Index for the current live snapshot (builds on miss). Returns nullptr
  /// when the store has no live version.
  IvfPqIndexPtr index_for_live();

  /// Index for an explicit snapshot (builds on miss, epoch-keyed).
  IvfPqIndexPtr index_for(const serve::SnapshotPtr& snap);

  /// Search against the live index. 0-valued knobs use config defaults.
  TopKResult topk(const float* query, std::size_t k, std::size_t nprobe = 0,
                  std::size_t rerank = 0);

  /// Mean top-k churn between the two snapshots' indexes: for `queries`
  /// deterministic probe queries (rows of `a`, evenly strided), the mean of
  /// 1 − |topk_a ∩ topk_b| / k. 0 = identical served results, 1 = total
  /// churn. Snapshots of different dimension score 1.0 outright.
  double topk_churn(const serve::SnapshotPtr& a, const serve::SnapshotPtr& b,
                    std::size_t queries, std::size_t k);

  /// Total index builds (cache misses) — exported as a counter.
  std::uint64_t builds() const { return builds_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kMaxCached = 4;

  serve::EmbeddingStore& store_;
  AnnConfig config_;
  std::mutex mu_;
  std::vector<IvfPqIndexPtr> cache_;  // most-recently-used first
  std::atomic<std::uint64_t> builds_{0};
};

}  // namespace anchor::ann
