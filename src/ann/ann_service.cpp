#include "ann/ann_service.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace anchor::ann {

AnnService::AnnService(serve::EmbeddingStore& store, AnnConfig config)
    : store_(store), config_(std::move(config)) {}

IvfPqIndexPtr AnnService::index_for_live() {
  serve::SnapshotPtr live = store_.live();
  if (!live) return nullptr;
  return index_for(live);
}

IvfPqIndexPtr AnnService::index_for(const serve::SnapshotPtr& snap) {
  ANCHOR_CHECK(snap != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i]->epoch() == snap->epoch()) {
      IvfPqIndexPtr hit = cache_[i];
      cache_.erase(cache_.begin() + i);
      cache_.insert(cache_.begin(), hit);
      return hit;
    }
  }
  // Build under the lock: concurrent first-TOPK callers would otherwise
  // race to build the same index, and a build is the expensive path anyway.
  auto index = std::make_shared<const IvfPqIndex>(snap, config_);
  builds_.fetch_add(1, std::memory_order_relaxed);
  cache_.insert(cache_.begin(), index);
  if (cache_.size() > kMaxCached) cache_.resize(kMaxCached);
  return index;
}

TopKResult AnnService::topk(const float* query, std::size_t k,
                            std::size_t nprobe, std::size_t rerank) {
  IvfPqIndexPtr index = index_for_live();
  ANCHOR_CHECK_MSG(index != nullptr, "topk with no live snapshot");
  return index->search(query, k, nprobe, rerank);
}

double AnnService::topk_churn(const serve::SnapshotPtr& a,
                              const serve::SnapshotPtr& b,
                              std::size_t queries, std::size_t k) {
  ANCHOR_CHECK(a != nullptr);
  ANCHOR_CHECK(b != nullptr);
  if (a->dim() != b->dim()) return 1.0;
  if (k == 0 || queries == 0 || a->vocab_size() == 0) return 0.0;
  IvfPqIndexPtr ia = index_for(a);
  IvfPqIndexPtr ib = index_for(b);

  queries = std::min(queries, a->vocab_size());
  const std::size_t stride = a->vocab_size() / queries;
  std::vector<float> q(a->dim());
  double churn_sum = 0.0;
  for (std::size_t i = 0; i < queries; ++i) {
    a->copy_row(i * stride, q.data());
    const TopKResult ra = ia->search(q.data(), k);
    const TopKResult rb = ib->search(q.data(), k);
    std::unordered_set<std::uint64_t> in_a;
    in_a.reserve(ra.hits.size());
    for (const TopKHit& h : ra.hits) in_a.insert(h.id);
    std::size_t overlap = 0;
    for (const TopKHit& h : rb.hits) overlap += in_a.count(h.id);
    // Normalize by the smaller achievable set so tiny stores (k > vocab)
    // don't register phantom churn.
    const std::size_t denom =
        std::max<std::size_t>(1, std::min({k, ra.hits.size(), rb.hits.size(),
                                           std::size_t{1} * a->vocab_size()}));
    churn_sum += 1.0 - static_cast<double>(overlap) / static_cast<double>(denom);
  }
  return churn_sum / static_cast<double>(queries);
}

}  // namespace anchor::ann
