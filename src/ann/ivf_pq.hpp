// IVF-PQ approximate nearest-neighbor index over an embedding snapshot —
// the serving-path realization of the paper's k-NN instability measure:
// the same top-k sets whose churn across versions core/measures scores
// offline are served online from this index (and their churn across INDEX
// versions is the new promotion-gate measure, ann::AnnService::topk_churn).
//
// Structure (Jégou et al., 2011):
//   • A coarse quantizer of 2^nlist_bits k-means cells, trained with the
//     vector k-means already inside compress/pq (a PQ with one sub-vector
//     IS a full-dimension vector quantizer — the codebook is the cell
//     centroid set, the codes are the cell assignments).
//   • Per-row PQ codes of the RESIDUAL (row − its cell centroid), m
//     sub-quantizers × 2^pq_bits centroids each, via compress::pq_quantize.
//   • Search: probe the nprobe cells nearest the query, score every row in
//     them with the asymmetric-distance (ADC) LUT kernel
//     la::kernels::adc_scan, keep the `rerank` best as a shortlist, and
//     re-rank the shortlist with exact fp32 L2 against the snapshot rows.
//
// Determinism contract (what the cluster merge test pins): every float in
// a search result is a deterministic function of (row bytes, training
// artifacts, query, knobs). Shards that encode their row slices with
// SHARED artifacts (IvfPqArtifacts — the shared-across-shards codebooks,
// same protocol as the PQ codebooks_override / shared clip threshold of
// Appendix C.2) produce per-row cell assignments, codes, ADC and exact
// distances identical to a single-process index over the concatenated
// rows, so a router-side merge of per-shard candidate lists reconstructs
// the single-process result bit for bit (ties broken by ascending id).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/embedding_store.hpp"

namespace anchor::ann {

/// Shared default knobs: the router fills unset (0) per-request knobs with
/// these same values it assumes the backends use, so an explicit value is
/// always on the wire for merged searches.
inline constexpr std::size_t kDefaultNprobe = 8;
inline constexpr std::size_t kDefaultRerank = 64;

/// Deployment-shared training artifacts. Train once (on the full
/// concatenated rows, or any common sample), hand the SAME artifacts to
/// every shard: row encoding becomes a pure function of the row bytes, the
/// precondition for router-merged top-k ≡ single-process top-k.
struct IvfPqArtifacts {
  std::size_t dim = 0;
  /// nlist × dim row-major cell centroids.
  std::vector<float> coarse;
  /// codebooks[s]: 2^pq_bits × (dim/m) row-major residual centroids.
  std::vector<std::vector<float>> codebooks;

  bool empty() const { return coarse.empty(); }
  std::size_t nlist() const {
    return dim == 0 ? 0 : coarse.size() / dim;
  }
};

struct AnnConfig {
  /// Coarse cells = 2^nlist_bits, clamped down so cells ≤ vocab.
  int nlist_bits = 6;
  /// PQ sub-quantizers; clamped to the largest divisor of dim ≤ pq_m.
  std::size_t pq_m = 8;
  /// Code width per sub-quantizer (≤ 8: codes are stored as bytes);
  /// clamped down so 2^pq_bits ≤ vocab.
  int pq_bits = 8;
  /// Default cells probed / shortlist re-ranked when a query passes 0.
  std::size_t nprobe = kDefaultNprobe;
  std::size_t rerank = kDefaultRerank;
  /// Lloyd iterations + seed for both training stages.
  std::size_t train_iters = 25;
  std::uint64_t seed = 42;
  /// When non-empty, skip training and encode with these shared artifacts
  /// (the multi-shard deployment contract).
  IvfPqArtifacts artifacts;
};

/// One search hit. `id` is a row id in the index's own (local) id space;
/// the cluster layer translates to global ids via the shard's row_begin.
struct TopKHit {
  std::uint64_t id = 0;
  float exact = 0.0f;  // exact fp32 L2² to the snapshot row
  float adc = 0.0f;    // ADC (LUT-approximated) L2² that shortlisted it
};

/// Reply shape of the TOPK RPC (wire codec in net/wire.hpp).
inline constexpr std::uint8_t kTopKFlagPartial = 1;  // ≥1 shard degraded

struct TopKResult {
  std::string version;             // snapshot the index was built from
  std::uint32_t cells_probed = 0;  // summed across shards when merged
  std::uint32_t shortlist = 0;     // ADC candidates re-ranked exactly
  std::uint8_t flags = 0;
  std::vector<TopKHit> hits;
};

/// Trains coarse + residual codebooks on `rows` with AnnConfig's knobs.
/// Deterministic given (rows, config): shards training on the same rows
/// (e.g. the full pre-slice matrix) get identical artifacts.
IvfPqArtifacts train_ivfpq(const embed::Embedding& rows,
                           const AnnConfig& config);

/// Artifacts mirroring a PQ-mode snapshot's own encoding: one all-zero
/// coarse cell (residual ≡ row) plus the snapshot's codebooks. An index
/// built with these artifacts over that snapshot reuses the stored codes
/// verbatim — the store and the index share one encoding, no re-encode,
/// no training pass. Requires snap.is_pq().
IvfPqArtifacts snapshot_artifacts(const serve::EmbeddingSnapshot& snap);

class IvfPqIndex {
 public:
  /// Builds the index over every row of `snap` (dequantized through the
  /// same path lookups serve, so quantized deployments sharing a clip
  /// threshold stay byte-deterministic across shards). Trains artifacts
  /// on the snapshot's own rows unless config.artifacts is set — except
  /// for PQ-mode snapshots, which default to snapshot_artifacts() so the
  /// index reuses the store's codes/codebooks instead of re-encoding.
  IvfPqIndex(serve::SnapshotPtr snap, const AnnConfig& config);

  const std::string& version() const { return snap_->version(); }
  std::uint64_t epoch() const { return snap_->epoch(); }
  std::size_t vocab_size() const { return n_; }
  std::size_t dim() const { return dim_; }
  std::size_t nlist() const { return nlist_; }
  std::size_t pq_m() const { return m_; }
  std::size_t ksub() const { return ksub_; }
  const AnnConfig& config() const { return config_; }
  /// The artifacts this index encodes with (trained or shared) — what a
  /// deployment extracts from its reference index to hand to shards.
  const IvfPqArtifacts& artifacts() const { return artifacts_; }
  /// True when the build copied the snapshot's stored PQ codes instead of
  /// re-encoding every row: the snapshot is PQ-mode and the artifacts
  /// (explicit or defaulted) match its encoding exactly.
  bool reused_snapshot_codes() const { return reused_snapshot_codes_; }

  /// The candidate stage: the `rerank` rows with the smallest ADC distance
  /// among the nprobe probed cells, each scored exactly as well, sorted by
  /// (adc, id) ascending. hits[i].id is a local row id. This is what a
  /// shard returns for a router-merged search (TOPK mode 1).
  TopKResult candidates(const float* query, std::size_t rerank,
                        std::size_t nprobe) const;

  /// Full search: candidates, then the k best by (exact, id) ascending.
  /// 0-valued knobs fall back to config defaults.
  TopKResult search(const float* query, std::size_t k, std::size_t nprobe = 0,
                    std::size_t rerank = 0) const;

 private:
  void build(const AnnConfig& config);

  serve::SnapshotPtr snap_;
  AnnConfig config_;  // effective (clamped) knobs
  std::size_t n_ = 0, dim_ = 0;
  std::size_t nlist_ = 0;    // coarse cells
  std::size_t m_ = 0;        // PQ sub-quantizers (divides dim_)
  std::size_t sub_dim_ = 0;  // dim_ / m_
  std::size_t ksub_ = 0;     // 2^pq_bits residual centroids per sub-quantizer
  bool reused_snapshot_codes_ = false;
  IvfPqArtifacts artifacts_;
  /// Inverted lists: rows grouped by cell, ids ascending within each cell.
  std::vector<std::uint32_t> cell_start_;  // nlist_+1 prefix offsets
  std::vector<std::uint32_t> cell_ids_;    // n_ local row ids
  /// PQ codes in the cell-block column-major layout adc_scan consumes:
  /// cell c's block starts at cell_start_[c]·m_ and holds, for each
  /// sub-quantizer s, cell_count contiguous code bytes.
  std::vector<std::uint8_t> codes_;
};

using IvfPqIndexPtr = std::shared_ptr<const IvfPqIndex>;

}  // namespace anchor::ann
