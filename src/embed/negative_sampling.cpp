#include "embed/negative_sampling.hpp"

#include <cmath>

#include "util/check.hpp"

namespace anchor::embed {

UnigramTable::UnigramTable(const std::vector<std::int64_t>& counts,
                           double power, std::size_t table_size) {
  ANCHOR_CHECK(!counts.empty());
  ANCHOR_CHECK_GT(table_size, 0u);
  double total = 0.0;
  for (std::int64_t c : counts) {
    ANCHOR_CHECK_GE(c, 0);
    total += std::pow(static_cast<double>(c), power);
  }
  ANCHOR_CHECK_GT(total, 0.0);

  table_.resize(table_size);
  std::size_t word = 0;
  double cumulative = std::pow(static_cast<double>(counts[0]), power) / total;
  for (std::size_t i = 0; i < table_size; ++i) {
    table_[i] = static_cast<std::int32_t>(word);
    const double frontier =
        (static_cast<double>(i) + 1.0) / static_cast<double>(table_size);
    while (cumulative < frontier && word + 1 < counts.size()) {
      ++word;
      cumulative += std::pow(static_cast<double>(counts[word]), power) / total;
    }
  }
}

FrequentWordSubsampler::FrequentWordSubsampler(
    const std::vector<std::int64_t>& counts, double sample) {
  ANCHOR_CHECK(!counts.empty());
  keep_prob_.assign(counts.size(), 2.0);  // > 1 means "always keep"
  if (sample <= 0.0) return;
  double total = 0.0;
  for (const std::int64_t c : counts) {
    ANCHOR_CHECK_GE(c, 0);
    total += static_cast<double>(c);
  }
  ANCHOR_CHECK_GT(total, 0.0);
  const double threshold = sample * total;
  for (std::size_t w = 0; w < counts.size(); ++w) {
    const double f = static_cast<double>(counts[w]);
    if (f <= 0.0) continue;  // unseen words: keep (they never occur anyway)
    keep_prob_[w] = (std::sqrt(f / threshold) + 1.0) * threshold / f;
  }
}

std::vector<std::int32_t> FrequentWordSubsampler::filter(
    const std::vector<std::int32_t>& sentence, Rng& rng) const {
  std::vector<std::int32_t> out;
  out.reserve(sentence.size());
  for (const std::int32_t w : sentence) {
    if (keep(w, rng)) out.push_back(w);
  }
  return out;
}

float sigmoid(float x) {
  if (x > 30.0f) return 1.0f;
  if (x < -30.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace anchor::embed
