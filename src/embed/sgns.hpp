// Skip-gram with negative sampling (Mikolov et al., 2013b) — word2vec's
// second training mode, kept faithful to the C implementation: for every
// (center, context) pair inside a dynamically sized window, the *context*
// word's input vector is trained to predict the center word against
// unigram^0.75 negatives. The paper's study uses CBOW; skip-gram is the
// natural extension for checking that the stability–memory tradeoff is not
// a CBOW artifact (the fastText run in Appendix E.1 is skip-gram-based).
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/corpus.hpp"

namespace anchor::embed {

struct SgnsConfig {
  std::size_t dim = 64;
  std::size_t window = 5;          // max one-sided window (sampled per token)
  std::size_t negatives = 5;
  std::size_t epochs = 5;
  float learning_rate = 0.025f;    // word2vec's skip-gram default
  float min_learning_rate_frac = 1e-4f;
  /// Frequent-word subsampling threshold (word2vec `-sample`); 0 disables.
  /// The reference default is 1e-3; our synthetic corpora are small enough
  /// that the study keeps it off for exact comparability across algorithms.
  double subsample = 0.0;
  std::uint64_t seed = 1;
};

/// Trains skip-gram input vectors on the corpus; returns the input matrix
/// (syn0), matching what downstream pipelines consume for CBOW.
Embedding train_sgns(const text::Corpus& corpus, const SgnsConfig& config);

}  // namespace anchor::embed
