// Embedding interchange IO: the word2vec text format.
//
// Header line "<vocab> <dim>", then one "<word> <v0> <v1> ..." line per
// word. This is the format the original word2vec/GloVe tools emit and every
// downstream NLP toolkit reads, so embeddings trained by the CLI can be
// inspected or consumed outside this library. Token ids round-trip through
// Corpus::word_string ("w0042"), preserving the id order on load.
#pragma once

#include <filesystem>
#include <string>

#include "embed/embedding.hpp"

namespace anchor::embed {

/// Writes `e` in word2vec text format. Word strings are the synthetic ids
/// ("w0000", "w0001", ...) in row order. Throws on IO failure.
void save_text(const Embedding& e, const std::filesystem::path& path);

/// Reads a word2vec-text-format embedding. Word strings must be the
/// synthetic ids in any order; rows are placed at their id. Throws on parse
/// errors, duplicate or out-of-range ids, and dimension mismatches.
Embedding load_text(const std::filesystem::path& path);

}  // namespace anchor::embed
