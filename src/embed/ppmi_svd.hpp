// PPMI-SVD embeddings: truncated eigendecomposition of the (symmetric) PPMI
// matrix, X = U_d · Λ_d^p (Levy, Goldberg & Dagan, 2015). This is the
// count-based family whose *stability* Hellrich et al. (2019) — cited by the
// paper — study under down-sampling; including it checks that the
// stability–memory tradeoff covers spectral methods with no SGD randomness
// at all (the only instability stimulus left is the corpus change itself,
// plus the random start of the eigensolver).
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/cooc.hpp"

namespace anchor::embed {

struct PpmiSvdConfig {
  std::size_t dim = 64;
  /// Eigenvalue weighting exponent p in X = U·Λ^p. p=0.5 (the symmetric
  /// square-root weighting) is the Levy et al. recommendation.
  double eigenvalue_power = 0.5;
  std::uint64_t seed = 1;  // eigensolver start (sign/rotation of the basis)
  std::size_t max_iters = 200;
};

/// Factors `a_ppmi` (produce it with text::ppmi) into a dim-dimensional
/// embedding. Eigenvalues below zero are clamped: PPMI is not PSD, but its
/// negative tail carries no co-occurrence signal and Λ^0.5 needs Λ ≥ 0.
/// Column signs are canonicalized (largest-|entry| coordinate positive) so
/// two runs differ only through the data, not the eigensolver's sign freedom.
Embedding train_ppmi_svd(const text::CoocMatrix& a_ppmi,
                         const PpmiSvdConfig& config);

}  // namespace anchor::embed
