#include "embed/cbow.hpp"

#include <algorithm>

#include "embed/negative_sampling.hpp"

namespace anchor::embed {

Embedding train_cbow(const text::Corpus& corpus, const CbowConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  ANCHOR_CHECK_GT(config.epochs, 0u);
  const std::size_t vocab = corpus.vocab_size;
  const std::size_t dim = config.dim;

  Rng rng(config.seed);
  // word2vec init: syn0 uniform in [-0.5/dim, 0.5/dim], syn1neg zero.
  Embedding syn0(vocab, dim);
  for (auto& x : syn0.data) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  Embedding syn1(vocab, dim, 0.0f);

  const UnigramTable table(corpus.word_counts);
  const FrequentWordSubsampler subsampler(corpus.word_counts,
                                          config.subsample);
  const double total_tokens = static_cast<double>(corpus.total_tokens());
  const double total_work = total_tokens * static_cast<double>(config.epochs);

  std::vector<float> hidden(dim), grad(dim);
  double processed = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    for (const auto& raw_sentence : corpus.sentences) {
      const std::vector<std::int32_t> sentence =
          config.subsample > 0.0 ? subsampler.filter(raw_sentence, erng)
                                 : raw_sentence;
      const std::size_t len = sentence.size();
      for (std::size_t pos = 0; pos < len; ++pos, processed += 1.0) {
        // Linear LR decay over the whole run, floored like word2vec.
        const float lr = std::max(
            config.learning_rate * config.min_learning_rate_frac,
            config.learning_rate *
                static_cast<float>(1.0 - processed / (total_work + 1.0)));

        // Dynamic window: word2vec samples b ∈ [0, window) and uses
        // window - b context on each side.
        const std::size_t b = erng.index(config.window);
        const std::size_t reach = config.window - b;
        const std::size_t lo = pos >= reach ? pos - reach : 0;
        const std::size_t hi = std::min(len, pos + reach + 1);

        std::fill(hidden.begin(), hidden.end(), 0.0f);
        std::size_t context_count = 0;
        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          const float* v = syn0.row(static_cast<std::size_t>(sentence[c]));
          for (std::size_t j = 0; j < dim; ++j) hidden[j] += v[j];
          ++context_count;
        }
        if (context_count == 0) continue;
        const float inv = 1.0f / static_cast<float>(context_count);
        for (std::size_t j = 0; j < dim; ++j) hidden[j] *= inv;

        std::fill(grad.begin(), grad.end(), 0.0f);
        const std::int32_t target = sentence[pos];
        for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
          std::int32_t sample_word;
          float label;
          if (neg == 0) {
            sample_word = target;
            label = 1.0f;
          } else {
            sample_word = table.sample(erng);
            if (sample_word == target) continue;
            label = 0.0f;
          }
          float* out = syn1.row(static_cast<std::size_t>(sample_word));
          float dot = 0.0f;
          for (std::size_t j = 0; j < dim; ++j) dot += hidden[j] * out[j];
          const float g = (label - sigmoid(dot)) * lr;
          for (std::size_t j = 0; j < dim; ++j) {
            grad[j] += g * out[j];
            out[j] += g * hidden[j];
          }
        }

        // Propagate the averaged-hidden gradient back to every context word.
        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          float* v = syn0.row(static_cast<std::size_t>(sentence[c]));
          for (std::size_t j = 0; j < dim; ++j) v[j] += grad[j];
        }
      }
    }
  }
  return syn0;
}

}  // namespace anchor::embed
