#include "embed/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "text/corpus.hpp"

namespace anchor::embed {

void save_text(const Embedding& e, const std::filesystem::path& path) {
  std::ofstream out(path);
  ANCHOR_CHECK_MSG(out.good(), "cannot open embedding file for writing");
  out << e.vocab_size << ' ' << e.dim << '\n';
  out.precision(8);
  for (std::size_t w = 0; w < e.vocab_size; ++w) {
    out << text::Corpus::word_string(static_cast<std::int32_t>(w));
    const float* row = e.row(w);
    for (std::size_t j = 0; j < e.dim; ++j) out << ' ' << row[j];
    out << '\n';
  }
  ANCHOR_CHECK_MSG(out.good(), "write failure while saving embedding");
}

Embedding load_text(const std::filesystem::path& path) {
  std::ifstream in(path);
  ANCHOR_CHECK_MSG(in.good(), "cannot open embedding file for reading");
  std::size_t vocab = 0, dim = 0;
  in >> vocab >> dim;
  ANCHOR_CHECK_MSG(in.good() && vocab > 0 && dim > 0,
                   "malformed embedding header");

  Embedding e(vocab, dim);
  std::vector<bool> filled(vocab, false);
  for (std::size_t i = 0; i < vocab; ++i) {
    std::string word;
    in >> word;
    ANCHOR_CHECK_MSG(in.good(), "truncated embedding file");
    ANCHOR_CHECK_MSG(word.size() > 1 && word[0] == 'w',
                     "unexpected word token (not a synthetic id)");
    std::size_t id = 0;
    try {
      id = static_cast<std::size_t>(std::stoul(word.substr(1)));
    } catch (const std::exception&) {
      ANCHOR_CHECK_MSG(false, "unparseable word id");
    }
    ANCHOR_CHECK_LT(id, vocab);
    ANCHOR_CHECK_MSG(!filled[id], "duplicate word id in embedding file");
    filled[id] = true;
    float* row = e.row(id);
    for (std::size_t j = 0; j < dim; ++j) {
      in >> row[j];
      ANCHOR_CHECK_MSG(!in.fail(), "unparseable embedding value");
    }
  }
  return e;
}

}  // namespace anchor::embed
