// fastText-style subword skipgram (Bojanowski et al., 2017), used by the
// paper's Appendix E.1 robustness study (FT-SG). A word's input vector is
// the average of its word vector and hashed character n-gram vectors; the
// skipgram objective with negative sampling is trained over those averaged
// representations.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"
#include "text/corpus.hpp"

namespace anchor::embed {

struct FastTextConfig {
  std::size_t dim = 64;
  std::size_t window = 5;
  std::size_t negatives = 5;
  std::size_t epochs = 5;
  std::size_t min_ngram = 3;
  std::size_t max_ngram = 5;
  std::size_t bucket_count = 1u << 15;  // hashed n-gram table rows
  float learning_rate = 0.05f;
  float min_learning_rate_frac = 1e-4f;
  std::uint64_t seed = 1;
};

/// Character n-grams of the boundary-marked word string "<word>", hashed to
/// bucket ids. Exposed for testing.
std::vector<std::uint32_t> word_ngram_buckets(const std::string& word,
                                              const FastTextConfig& config);

/// Trains subword skipgram; the returned matrix contains the *composed*
/// per-word vectors (word vector averaged with its n-gram vectors), which is
/// what downstream consumers of fastText embeddings use.
Embedding train_fasttext(const text::Corpus& corpus,
                         const FastTextConfig& config);

}  // namespace anchor::embed
