// Shared machinery for negative-sampling trainers (CBOW, fastText-subword).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace anchor::embed {

/// word2vec-style unigram^0.75 negative-sampling table. Draws are O(1)
/// against a precomputed table, as in the original C implementation.
class UnigramTable {
 public:
  /// `counts` are corpus word frequencies; `power` is the smoothing exponent
  /// (0.75 in word2vec); `table_size` trades memory for fidelity.
  UnigramTable(const std::vector<std::int64_t>& counts, double power = 0.75,
               std::size_t table_size = 1u << 20);

  std::int32_t sample(Rng& rng) const {
    return table_[rng.index(table_.size())];
  }

 private:
  std::vector<std::int32_t> table_;
};

/// word2vec's frequent-word subsampling (the C implementation's `-sample`
/// flag): token w survives a pass with probability
/// (√(f/(t·N)) + 1)·(t·N)/f, where f is w's corpus count, N the total token
/// count, and t the sample threshold. Rare words always survive; very
/// frequent words are aggressively dropped, which both speeds training and
/// improves representations of the remaining words.
class FrequentWordSubsampler {
 public:
  /// `sample` ≤ 0 disables subsampling (keep everything).
  FrequentWordSubsampler(const std::vector<std::int64_t>& counts,
                         double sample);

  bool keep(std::int32_t w, Rng& rng) const {
    const double p = keep_prob_[static_cast<std::size_t>(w)];
    return p >= 1.0 || rng.uniform() < p;
  }

  /// Survival probability of word w (1.0 when subsampling is disabled).
  double keep_probability(std::int32_t w) const {
    return std::min(1.0, keep_prob_[static_cast<std::size_t>(w)]);
  }

  /// Filters one sentence; the trainers run on the surviving tokens so a
  /// dropped token vanishes from both the center and context roles, exactly
  /// as in the reference implementation's input stream.
  std::vector<std::int32_t> filter(const std::vector<std::int32_t>& sentence,
                                   Rng& rng) const;

 private:
  std::vector<double> keep_prob_;
};

/// Numerically clamped logistic function (word2vec clamps to ±6; we clamp
/// wider but guard exp overflow).
float sigmoid(float x);

}  // namespace anchor::embed
