#include "embed/glove.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace anchor::embed {

Embedding train_glove(const text::CoocMatrix& cooc, const GloveConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  ANCHOR_CHECK_GT(cooc.vocab_size, 0u);
  ANCHOR_CHECK(!cooc.entries.empty());
  const std::size_t vocab = cooc.vocab_size;
  const std::size_t dim = config.dim;

  Rng rng(config.seed);
  // Reference init: uniform in [-0.5, 0.5] / dim for vectors and biases.
  auto init = [&](std::vector<float>& v) {
    for (auto& x : v) {
      x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
    }
  };
  Embedding w(vocab, dim), c(vocab, dim);
  init(w.data);
  init(c.data);
  std::vector<float> bw(vocab), bc(vocab);
  init(bw);
  init(bc);

  // AdaGrad accumulators start at 1 as in the reference implementation.
  std::vector<float> gw(vocab * dim, 1.0f), gc(vocab * dim, 1.0f);
  std::vector<float> gbw(vocab, 1.0f), gbc(vocab, 1.0f);

  std::vector<std::size_t> order(cooc.entries.size());
  std::iota(order.begin(), order.end(), 0u);

  const float eta = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    erng.shuffle(order);
    for (const std::size_t idx : order) {
      const auto& e = cooc.entries[idx];
      const auto i = static_cast<std::size_t>(e.row);
      const auto j = static_cast<std::size_t>(e.col);
      const double weight =
          e.value < config.x_max
              ? std::pow(e.value / config.x_max, config.alpha)
              : 1.0;

      float* wi = w.row(i);
      float* cj = c.row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < dim; ++k) dot += wi[k] * cj[k];
      const float diff = static_cast<float>(
          weight * (dot + bw[i] + bc[j] - std::log(e.value)));
      // Clip the per-cell error like the reference code does implicitly via
      // its gradient clipping; keeps rare extreme cells from destabilizing.
      const float fdiff = std::clamp(diff, -10.0f, 10.0f);

      float* gwi = gw.data() + i * dim;
      float* gcj = gc.data() + j * dim;
      for (std::size_t k = 0; k < dim; ++k) {
        const float gradw = fdiff * cj[k];
        const float gradc = fdiff * wi[k];
        wi[k] -= eta * gradw / std::sqrt(gwi[k]);
        cj[k] -= eta * gradc / std::sqrt(gcj[k]);
        gwi[k] += gradw * gradw;
        gcj[k] += gradc * gradc;
      }
      bw[i] -= eta * fdiff / std::sqrt(gbw[i]);
      bc[j] -= eta * fdiff / std::sqrt(gbc[j]);
      gbw[i] += fdiff * fdiff;
      gbc[j] += fdiff * fdiff;
    }
  }

  // Released vectors: word + context sum (GloVe's default output mode).
  Embedding out(vocab, dim);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    out.data[i] = w.data[i] + c.data[i];
  }
  return out;
}

}  // namespace anchor::embed
