// GloVe (Pennington et al., 2014) re-implementation: AdaGrad on the weighted
// least-squares objective over observed co-occurrence cells, with word and
// context vectors plus bias terms; the released embedding is the sum of the
// word and context vectors, as in the reference code.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/cooc.hpp"

namespace anchor::embed {

struct GloveConfig {
  std::size_t dim = 64;
  std::size_t epochs = 25;
  float learning_rate = 0.05f;  // AdaGrad base step
  double x_max = 20.0;          // weighting knee (100 in the paper's corpora;
                                // scaled to our corpus counts)
  double alpha = 0.75;          // weighting exponent
  std::uint64_t seed = 1;
};

/// Trains on a precomputed co-occurrence matrix (use
/// text::count_cooccurrences with distance weighting, as GloVe does).
Embedding train_glove(const text::CoocMatrix& cooc, const GloveConfig& config);

}  // namespace anchor::embed
