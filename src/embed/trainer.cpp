#include "embed/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "text/cooc.hpp"

namespace anchor::embed {

namespace {

std::size_t scaled_epochs(std::size_t base, double scale) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(base * scale)));
}

}  // namespace

Embedding train_embedding(const text::Corpus& corpus, Algo algo,
                          const TrainOptions& options) {
  switch (algo) {
    case Algo::kCbow: {
      CbowConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      config.epochs = scaled_epochs(config.epochs, options.epoch_scale);
      return train_cbow(corpus, config);
    }
    case Algo::kGloVe: {
      text::CoocConfig cc;
      cc.distance_weighting = true;
      const text::CoocMatrix cooc = text::count_cooccurrences(corpus, cc);
      GloveConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      config.epochs = scaled_epochs(config.epochs, options.epoch_scale);
      return train_glove(cooc, config);
    }
    case Algo::kMc: {
      text::CoocConfig cc;
      cc.distance_weighting = false;
      const text::CoocMatrix cooc = text::count_cooccurrences(corpus, cc);
      const text::CoocMatrix a = text::ppmi(cooc);
      McConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      config.epochs = scaled_epochs(config.epochs, options.epoch_scale);
      return train_mc(a, config);
    }
    case Algo::kFastText: {
      FastTextConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      config.epochs = scaled_epochs(config.epochs, options.epoch_scale);
      return train_fasttext(corpus, config);
    }
    case Algo::kSgns: {
      SgnsConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      config.epochs = scaled_epochs(config.epochs, options.epoch_scale);
      return train_sgns(corpus, config);
    }
    case Algo::kPpmiSvd: {
      text::CoocConfig cc;
      cc.distance_weighting = false;
      const text::CoocMatrix cooc = text::count_cooccurrences(corpus, cc);
      const text::CoocMatrix a = text::ppmi(cooc);
      PpmiSvdConfig config;
      config.dim = options.dim;
      config.seed = options.seed;
      return train_ppmi_svd(a, config);
    }
  }
  ANCHOR_CHECK_MSG(false, "unknown algo");
  return {};
}

}  // namespace anchor::embed
