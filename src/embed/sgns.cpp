#include "embed/sgns.hpp"

#include <algorithm>

#include "embed/negative_sampling.hpp"

namespace anchor::embed {

Embedding train_sgns(const text::Corpus& corpus, const SgnsConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  ANCHOR_CHECK_GT(config.epochs, 0u);
  const std::size_t vocab = corpus.vocab_size;
  const std::size_t dim = config.dim;

  Rng rng(config.seed);
  Embedding syn0(vocab, dim);
  for (auto& x : syn0.data) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  Embedding syn1(vocab, dim, 0.0f);

  const UnigramTable table(corpus.word_counts);
  const FrequentWordSubsampler subsampler(corpus.word_counts,
                                          config.subsample);
  const double total_tokens = static_cast<double>(corpus.total_tokens());
  const double total_work = total_tokens * static_cast<double>(config.epochs);

  std::vector<float> grad(dim);
  double processed = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    for (const auto& raw_sentence : corpus.sentences) {
      const std::vector<std::int32_t> sentence =
          config.subsample > 0.0 ? subsampler.filter(raw_sentence, erng)
                                 : raw_sentence;
      const std::size_t len = sentence.size();
      for (std::size_t pos = 0; pos < len; ++pos, processed += 1.0) {
        const float lr = std::max(
            config.learning_rate * config.min_learning_rate_frac,
            config.learning_rate *
                static_cast<float>(1.0 - processed / (total_work + 1.0)));

        const std::size_t b = erng.index(config.window);
        const std::size_t reach = config.window - b;
        const std::size_t lo = pos >= reach ? pos - reach : 0;
        const std::size_t hi = std::min(len, pos + reach + 1);
        const std::int32_t center = sentence[pos];

        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          float* in = syn0.row(static_cast<std::size_t>(sentence[c]));
          std::fill(grad.begin(), grad.end(), 0.0f);

          for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
            std::int32_t sample_word;
            float label;
            if (neg == 0) {
              sample_word = center;
              label = 1.0f;
            } else {
              sample_word = table.sample(erng);
              if (sample_word == center) continue;
              label = 0.0f;
            }
            float* out = syn1.row(static_cast<std::size_t>(sample_word));
            float dot = 0.0f;
            for (std::size_t j = 0; j < dim; ++j) dot += in[j] * out[j];
            const float g = (label - sigmoid(dot)) * lr;
            for (std::size_t j = 0; j < dim; ++j) {
              grad[j] += g * out[j];
              out[j] += g * in[j];
            }
          }
          for (std::size_t j = 0; j < dim; ++j) in[j] += grad[j];
        }
      }
    }
  }
  return syn0;
}

}  // namespace anchor::embed
