// Matrix completion (MC) embeddings: online stochastic factorization of the
// PPMI matrix after Jin et al. (2016), matching the paper's own C++ MC
// implementation (§2.2): V = argmin_X Σ_{(i,j)∈Θ} (X_i·X_jᵀ − A_ij)² over
// the observed PPMI cells, trained by SGD with stepwise learning-rate decay
// and a loss-based stopping tolerance.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/cooc.hpp"

namespace anchor::embed {

struct McConfig {
  std::size_t dim = 64;
  std::size_t epochs = 30;
  std::size_t lr_decay_epochs = 10;  // halve the LR every this many epochs
  float learning_rate = 0.05f;       // paper's Table 4 uses 0.2 at 4.5B-token
                                     // scale; 0.2 diverges on the synthetic
                                     // corpora, 0.05 is stable at every dim
  double stopping_tolerance = 1e-4;  // stop when relative loss change < tol
  std::uint64_t seed = 1;
};

/// Trains a single (symmetric) embedding matrix on the observed entries of
/// `a_ppmi` (produce it with text::ppmi).
Embedding train_mc(const text::CoocMatrix& a_ppmi, const McConfig& config);

}  // namespace anchor::embed
