#include "embed/embedding.hpp"

#include <cmath>

namespace anchor::embed {

la::Matrix Embedding::to_matrix() const {
  la::Matrix m(vocab_size, dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    m.storage()[i] = static_cast<double>(data[i]);
  }
  return m;
}

Embedding Embedding::from_matrix(const la::Matrix& m) {
  Embedding e(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.storage().size(); ++i) {
    e.data[i] = static_cast<float>(m.storage()[i]);
  }
  return e;
}

double Embedding::cosine(std::size_t a, std::size_t b) const {
  const float* ra = row(a);
  const float* rb = row(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    dot += static_cast<double>(ra[j]) * rb[j];
    na += static_cast<double>(ra[j]) * ra[j];
    nb += static_cast<double>(rb[j]) * rb[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kCbow: return "CBOW";
    case Algo::kGloVe: return "GloVe";
    case Algo::kMc: return "MC";
    case Algo::kFastText: return "FT-SG";
    case Algo::kSgns: return "SGNS";
    case Algo::kPpmiSvd: return "PPMI-SVD";
  }
  ANCHOR_CHECK_MSG(false, "unknown algo");
  return {};
}

}  // namespace anchor::embed
