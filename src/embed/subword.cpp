#include "embed/subword.hpp"

#include <algorithm>

#include "embed/negative_sampling.hpp"

namespace anchor::embed {

namespace {

// fastText's FNV-1a variant for n-gram hashing.
std::uint32_t hash_ngram(const std::string& s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

std::vector<std::uint32_t> word_ngram_buckets(const std::string& word,
                                              const FastTextConfig& config) {
  ANCHOR_CHECK_GE(config.max_ngram, config.min_ngram);
  ANCHOR_CHECK_GT(config.bucket_count, 0u);
  const std::string marked = "<" + word + ">";
  std::vector<std::uint32_t> buckets;
  for (std::size_t n = config.min_ngram; n <= config.max_ngram; ++n) {
    if (marked.size() < n) break;
    for (std::size_t i = 0; i + n <= marked.size(); ++i) {
      const std::string gram = marked.substr(i, n);
      if (gram == marked) continue;  // the full word is the word vector itself
      buckets.push_back(hash_ngram(gram) %
                        static_cast<std::uint32_t>(config.bucket_count));
    }
  }
  return buckets;
}

Embedding train_fasttext(const text::Corpus& corpus,
                         const FastTextConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  const std::size_t vocab = corpus.vocab_size;
  const std::size_t dim = config.dim;

  // Precompute each word's n-gram bucket list once.
  std::vector<std::vector<std::uint32_t>> subwords(vocab);
  for (std::size_t w = 0; w < vocab; ++w) {
    subwords[w] = word_ngram_buckets(text::Corpus::word_string(
                                         static_cast<std::int32_t>(w)),
                                     config);
  }

  Rng rng(config.seed);
  Embedding word_in(vocab, dim);
  Embedding gram_in(config.bucket_count, dim);
  for (auto& x : word_in.data) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  for (auto& x : gram_in.data) {
    x = static_cast<float>((rng.uniform() - 0.5) / static_cast<double>(dim));
  }
  Embedding out(vocab, dim, 0.0f);

  const UnigramTable table(corpus.word_counts);
  const double total_work = static_cast<double>(corpus.total_tokens()) *
                            static_cast<double>(config.epochs);

  std::vector<float> input(dim), grad(dim);
  double processed = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    for (const auto& sentence : corpus.sentences) {
      const std::size_t len = sentence.size();
      for (std::size_t pos = 0; pos < len; ++pos, processed += 1.0) {
        const float lr = std::max(
            config.learning_rate * config.min_learning_rate_frac,
            config.learning_rate *
                static_cast<float>(1.0 - processed / (total_work + 1.0)));

        const std::size_t b = erng.index(config.window);
        const std::size_t reach = config.window - b;
        const std::size_t lo = pos >= reach ? pos - reach : 0;
        const std::size_t hi = std::min(len, pos + reach + 1);

        const auto center = static_cast<std::size_t>(sentence[pos]);
        const auto& grams = subwords[center];
        const float inv = 1.0f / static_cast<float>(1 + grams.size());

        // Composed input: average of word vector and its n-gram vectors.
        const float* wv = word_in.row(center);
        for (std::size_t j = 0; j < dim; ++j) input[j] = wv[j];
        for (const std::uint32_t g : grams) {
          const float* gv = gram_in.row(g);
          for (std::size_t j = 0; j < dim; ++j) input[j] += gv[j];
        }
        for (std::size_t j = 0; j < dim; ++j) input[j] *= inv;

        for (std::size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          const std::int32_t target = sentence[c];
          std::fill(grad.begin(), grad.end(), 0.0f);
          for (std::size_t neg = 0; neg <= config.negatives; ++neg) {
            std::int32_t sample_word;
            float label;
            if (neg == 0) {
              sample_word = target;
              label = 1.0f;
            } else {
              sample_word = table.sample(erng);
              if (sample_word == target) continue;
              label = 0.0f;
            }
            float* ov = out.row(static_cast<std::size_t>(sample_word));
            float dot = 0.0f;
            for (std::size_t j = 0; j < dim; ++j) dot += input[j] * ov[j];
            const float g = (label - sigmoid(dot)) * lr;
            for (std::size_t j = 0; j < dim; ++j) {
              grad[j] += g * ov[j];
              ov[j] += g * input[j];
            }
          }
          // Distribute the gradient across the word and its n-grams with the
          // same averaging weight used on the forward path.
          float* wv_mut = word_in.row(center);
          for (std::size_t j = 0; j < dim; ++j) wv_mut[j] += grad[j] * inv;
          for (const std::uint32_t g : grams) {
            float* gv = gram_in.row(g);
            for (std::size_t j = 0; j < dim; ++j) gv[j] += grad[j] * inv;
          }
        }
      }
    }
  }

  // Compose final per-word vectors.
  Embedding composed(vocab, dim);
  for (std::size_t w = 0; w < vocab; ++w) {
    const auto& grams = subwords[w];
    const float inv = 1.0f / static_cast<float>(1 + grams.size());
    float* dst = composed.row(w);
    const float* wv = word_in.row(w);
    for (std::size_t j = 0; j < dim; ++j) dst[j] = wv[j];
    for (const std::uint32_t g : grams) {
      const float* gv = gram_in.row(g);
      for (std::size_t j = 0; j < dim; ++j) dst[j] += gv[j];
    }
    for (std::size_t j = 0; j < dim; ++j) dst[j] *= inv;
  }
  return composed;
}

}  // namespace anchor::embed
