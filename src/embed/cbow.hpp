// Continuous bag-of-words with negative sampling (Mikolov et al., 2013),
// re-implemented after Google's word2vec C code: averaged context window,
// separate input/output matrices, unigram^0.75 negative table, linear
// learning-rate decay. Single-threaded and fully deterministic given the
// seed, so prediction churn in the experiments is attributable to the data.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/corpus.hpp"

namespace anchor::embed {

struct CbowConfig {
  std::size_t dim = 64;
  std::size_t window = 5;          // max one-sided window (sampled per token)
  std::size_t negatives = 5;
  std::size_t epochs = 5;
  float learning_rate = 0.05f;     // word2vec default; decays linearly
  float min_learning_rate_frac = 1e-4f;
  /// Frequent-word subsampling threshold (word2vec `-sample`); 0 disables.
  /// The reference default is 1e-3; our synthetic corpora are small enough
  /// that the study keeps it off for exact comparability across algorithms.
  double subsample = 0.0;
  std::uint64_t seed = 1;
};

/// Trains CBOW input vectors on the corpus; returns the input matrix (syn0),
/// which is what the paper's downstream pipelines consume.
Embedding train_cbow(const text::Corpus& corpus, const CbowConfig& config);

}  // namespace anchor::embed
