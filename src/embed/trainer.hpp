// Unified entry point: train any of the studied embedding algorithms on a
// corpus with a given dimension and seed, using each algorithm's paper
// hyperparameters (Table 4) scaled to the synthetic corpora.
#pragma once

#include "embed/cbow.hpp"
#include "embed/glove.hpp"
#include "embed/mc.hpp"
#include "embed/ppmi_svd.hpp"
#include "embed/sgns.hpp"
#include "embed/subword.hpp"

namespace anchor::embed {

struct TrainOptions {
  std::size_t dim = 64;
  std::uint64_t seed = 1;
  /// Epoch multiplier for quick tests (1.0 = default budget).
  double epoch_scale = 1.0;
};

/// Trains `algo` on `corpus`. GloVe/MC build their co-occurrence / PPMI
/// inputs internally (window 5, distance weighting for GloVe only, per the
/// respective reference implementations).
Embedding train_embedding(const text::Corpus& corpus, Algo algo,
                          const TrainOptions& options);

}  // namespace anchor::embed
