#include "embed/mc.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace anchor::embed {

Embedding train_mc(const text::CoocMatrix& a_ppmi, const McConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  ANCHOR_CHECK(!a_ppmi.entries.empty());
  const std::size_t vocab = a_ppmi.vocab_size;
  const std::size_t dim = config.dim;

  Rng rng(config.seed);
  Embedding x(vocab, dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (auto& v : x.data) v = static_cast<float>(rng.normal(0.0, scale));

  std::vector<std::size_t> order(a_ppmi.entries.size());
  std::iota(order.begin(), order.end(), 0u);

  double prev_loss = -1.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr =
        config.learning_rate /
        static_cast<float>(1u << (epoch / config.lr_decay_epochs));
    Rng erng = rng.fork(epoch);
    erng.shuffle(order);

    double loss = 0.0;
    for (const std::size_t idx : order) {
      const auto& e = a_ppmi.entries[idx];
      const auto i = static_cast<std::size_t>(e.row);
      const auto j = static_cast<std::size_t>(e.col);
      float* xi = x.row(i);
      float* xj = x.row(j);
      float dot = 0.0f;
      for (std::size_t k = 0; k < dim; ++k) dot += xi[k] * xj[k];
      const float err = dot - static_cast<float>(e.value);
      loss += static_cast<double>(err) * err;
      const float step = std::clamp(lr * err, -1.0f, 1.0f);
      if (i == j) {
        // Diagonal cell: d/dxi (xi·xi − a)² = 4(xi·xi − a)·xi.
        for (std::size_t k = 0; k < dim; ++k) xi[k] -= 2.0f * step * xi[k];
        continue;
      }
      for (std::size_t k = 0; k < dim; ++k) {
        const float xik = xi[k];
        xi[k] -= step * xj[k];
        xj[k] -= step * xik;
      }
    }
    loss /= static_cast<double>(a_ppmi.entries.size());
    // The paper's MC trainer stops once the loss plateaus.
    if (prev_loss >= 0.0 &&
        std::abs(prev_loss - loss) <
            config.stopping_tolerance * std::max(prev_loss, 1e-12)) {
      break;
    }
    prev_loss = loss;
  }
  return x;
}

}  // namespace anchor::embed
