#include "embed/ppmi_svd.hpp"

#include <algorithm>
#include <cmath>

#include "la/sparse.hpp"
#include "la/subspace.hpp"

namespace anchor::embed {

Embedding train_ppmi_svd(const text::CoocMatrix& a_ppmi,
                         const PpmiSvdConfig& config) {
  ANCHOR_CHECK_GT(config.dim, 0u);
  ANCHOR_CHECK_GT(a_ppmi.vocab_size, config.dim);

  std::vector<la::SparseEntry> triplets;
  triplets.reserve(a_ppmi.entries.size());
  for (const auto& e : a_ppmi.entries) {
    triplets.push_back({e.row, e.col, e.value});
  }
  const la::SparseMatrix a =
      la::SparseMatrix::from_triplets(a_ppmi.vocab_size, std::move(triplets));

  la::SubspaceOptions opts;
  opts.seed = config.seed;
  opts.max_iters = config.max_iters;
  const la::TopEigsResult eigs = la::top_eigs(a, config.dim, opts);

  const std::size_t n = a_ppmi.vocab_size;
  Embedding x(n, config.dim);
  for (std::size_t j = 0; j < config.dim; ++j) {
    const double lambda = std::max(eigs.values[j], 0.0);
    const double weight = std::pow(lambda, config.eigenvalue_power);

    // Canonical sign: make the largest-magnitude coordinate positive.
    std::size_t arg = 0;
    double best = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double v = std::abs(eigs.vectors(r, j));
      if (v > best) {
        best = v;
        arg = r;
      }
    }
    const double sign = eigs.vectors(arg, j) >= 0.0 ? 1.0 : -1.0;

    for (std::size_t r = 0; r < n; ++r) {
      x.row(r)[j] = static_cast<float>(sign * weight * eigs.vectors(r, j));
    }
  }
  return x;
}

}  // namespace anchor::embed
