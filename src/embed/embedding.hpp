// Embedding matrix type shared by all training algorithms.
//
// Stored in float (training precision); analysis code converts to the
// double-precision la::Matrix on demand. Rows are word ids, matching the
// corpus vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace anchor::embed {

/// Row-major float embedding matrix (vocab × dim).
struct Embedding {
  std::size_t vocab_size = 0;
  std::size_t dim = 0;
  std::vector<float> data;

  Embedding() = default;
  Embedding(std::size_t vocab, std::size_t d, float fill = 0.0f)
      : vocab_size(vocab), dim(d), data(vocab * d, fill) {}

  float* row(std::size_t w) {
    ANCHOR_CHECK_LT(w, vocab_size);
    return data.data() + w * dim;
  }
  const float* row(std::size_t w) const {
    ANCHOR_CHECK_LT(w, vocab_size);
    return data.data() + w * dim;
  }

  /// Double-precision copy for the analysis/linear-algebra layers.
  la::Matrix to_matrix() const;
  /// Inverse of to_matrix (used after Procrustes alignment).
  static Embedding from_matrix(const la::Matrix& m);

  /// Cosine similarity between two word rows (0 when either row is zero).
  double cosine(std::size_t a, std::size_t b) const;
};

/// The embedding algorithms studied in the paper (§2.2, App. E.1), plus two
/// extensions: skip-gram negative sampling (word2vec's other mode) and
/// PPMI-SVD (the spectral family of Hellrich et al., 2019).
enum class Algo { kCbow, kGloVe, kMc, kFastText, kSgns, kPpmiSvd };

std::string algo_name(Algo algo);

}  // namespace anchor::embed
