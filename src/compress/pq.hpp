// Product quantization of embedding rows (Jégou et al., 2011 style), as a
// stand-in for the "deep compositional code learning" family the paper's
// §2.3 cites (Shu & Nakayama, 2018): each row is split into m sub-vectors
// and each sub-vector is replaced by the nearest of 2^b learned centroids,
// so a row costs m·b bits plus a shared codebook. Like DCCL it is a
// vector-level (not scalar) compressor, which is the property that matters
// for the stability comparison.
//
// The Wiki'18 member of a pair can reuse its partner's codebooks
// (`codebooks_override`), mirroring the shared-clip-threshold protocol of
// Appendix C.2.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"

namespace anchor::compress {

struct PqConfig {
  std::size_t num_subvectors = 4;  // m; must divide the embedding dimension
  int bits = 6;                    // per sub-vector code width; 2^b centroids
  std::size_t max_iters = 40;      // Lloyd iterations per sub-quantizer
  double tol = 1e-7;
  std::uint64_t seed = 1;
  /// When non-empty: m codebooks, each 2^b × (dim/m) row-major floats.
  std::vector<std::vector<float>> codebooks_override;
};

struct PqResult {
  embed::Embedding embedding;  // rows reconstructed from their codes
  /// codebooks[s] holds 2^b centroids of sub-dimension dim/m, row-major.
  std::vector<std::vector<float>> codebooks;
  /// codes[w·m + s] = centroid index of word w's sub-vector s.
  std::vector<std::uint32_t> codes;
  double distortion = 0.0;     // mean squared reconstruction error per entry

  /// Storage cost of the coded representation in bits per word (excludes
  /// the shared codebook, amortized across the vocabulary).
  std::size_t bits_per_word() const { return codebooks.size() * code_bits; }
  int code_bits = 0;
};

/// Learns (or reuses) per-sub-vector codebooks with Lloyd k-means and
/// reconstructs every row from its nearest codes.
PqResult pq_quantize(const embed::Embedding& input, const PqConfig& config);

}  // namespace anchor::compress
