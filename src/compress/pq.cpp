#include "compress/pq.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace anchor::compress {

namespace {

double sq_dist(const float* a, const float* b, std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    acc += diff * diff;
  }
  return acc;
}

std::size_t nearest_centroid(const std::vector<float>& codebook,
                             const float* v, std::size_t sub_dim) {
  const std::size_t k = codebook.size() / sub_dim;
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < k; ++c) {
    const double dist = sq_dist(codebook.data() + c * sub_dim, v, sub_dim);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

/// Lloyd k-means over the `n` sub-vectors of one slice. Initialization is
/// deterministic given the seed (distinct random rows), and empty clusters
/// are re-seeded from the point currently farthest from its centroid.
std::vector<float> lloyd(const std::vector<float>& points, std::size_t n,
                         std::size_t sub_dim, std::size_t k,
                         std::size_t max_iters, double tol,
                         std::uint64_t seed) {
  anchor::Rng rng(seed);
  std::vector<float> codebook(k * sub_dim);
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t pick = rng.index(n);
    std::copy_n(points.data() + pick * sub_dim, sub_dim,
                codebook.data() + c * sub_dim);
  }

  std::vector<std::size_t> assign(n, 0);
  std::vector<double> sums(k * sub_dim);
  std::vector<std::size_t> counts(k);
  double prev_distortion = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    double distortion = 0.0;
    double worst_dist = -1.0;
    std::size_t worst_point = 0;
    for (std::size_t i = 0; i < n; ++i) {
      assign[i] = nearest_centroid(codebook, points.data() + i * sub_dim,
                                   sub_dim);
      const double d = sq_dist(points.data() + i * sub_dim,
                               codebook.data() + assign[i] * sub_dim, sub_dim);
      distortion += d;
      if (d > worst_dist) {
        worst_dist = d;
        worst_point = i;
      }
    }
    distortion /= static_cast<double>(n);

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[assign[i]];
      for (std::size_t j = 0; j < sub_dim; ++j) {
        sums[assign[i] * sub_dim + j] += points[i * sub_dim + j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        std::copy_n(points.data() + worst_point * sub_dim, sub_dim,
                    codebook.data() + c * sub_dim);
        continue;
      }
      for (std::size_t j = 0; j < sub_dim; ++j) {
        codebook[c * sub_dim + j] = static_cast<float>(
            sums[c * sub_dim + j] / static_cast<double>(counts[c]));
      }
    }
    if (prev_distortion - distortion <
        tol * std::max(prev_distortion, 1e-30)) {
      break;
    }
    prev_distortion = distortion;
  }
  return codebook;
}

}  // namespace

PqResult pq_quantize(const embed::Embedding& input, const PqConfig& config) {
  ANCHOR_CHECK_GT(config.num_subvectors, 0u);
  ANCHOR_CHECK_GT(config.bits, 0);
  ANCHOR_CHECK_LE(config.bits, 16);
  ANCHOR_CHECK_EQ(input.dim % config.num_subvectors, 0u);
  const std::size_t m = config.num_subvectors;
  const std::size_t sub_dim = input.dim / m;
  const std::size_t k = std::size_t{1} << config.bits;
  const std::size_t n = input.vocab_size;
  ANCHOR_CHECK_GT(n, 0u);
  // More centroids than points would silently shrink the codebook and break
  // the shared-codebook protocol between a pair; reject loudly instead.
  // With an override the codebook is fixed, not trained, so a slice smaller
  // than k (e.g. one shard of a sharded store encoding with shared
  // codebooks) is fine.
  ANCHOR_CHECK_MSG(k <= n || !config.codebooks_override.empty(),
                   "2^bits centroids exceed the vocabulary size");

  PqResult result;
  result.code_bits = config.bits;
  result.codebooks.resize(m);
  result.codes.assign(n * m, 0);
  result.embedding = embed::Embedding(n, input.dim);

  if (!config.codebooks_override.empty()) {
    ANCHOR_CHECK_EQ(config.codebooks_override.size(), m);
    for (std::size_t s = 0; s < m; ++s) {
      ANCHOR_CHECK_EQ(config.codebooks_override[s].size(), k * sub_dim);
    }
  }

  double total_err = 0.0;
  std::vector<float> slice(n * sub_dim);
  for (std::size_t s = 0; s < m; ++s) {
    // Gather the s-th sub-vector of every row into a contiguous slice.
    for (std::size_t w = 0; w < n; ++w) {
      std::copy_n(input.row(w) + s * sub_dim, sub_dim,
                  slice.data() + w * sub_dim);
    }
    result.codebooks[s] =
        config.codebooks_override.empty()
            ? lloyd(slice, n, sub_dim, k, config.max_iters, config.tol,
                    config.seed + s)
            : config.codebooks_override[s];

    for (std::size_t w = 0; w < n; ++w) {
      const std::size_t code = nearest_centroid(
          result.codebooks[s], slice.data() + w * sub_dim, sub_dim);
      result.codes[w * m + s] = static_cast<std::uint32_t>(code);
      const float* centroid = result.codebooks[s].data() + code * sub_dim;
      float* out = result.embedding.row(w) + s * sub_dim;
      std::copy_n(centroid, sub_dim, out);
      total_err += sq_dist(slice.data() + w * sub_dim, centroid, sub_dim);
    }
  }
  result.distortion =
      total_err / static_cast<double>(input.data.size());
  return result;
}

}  // namespace anchor::compress
