#include "compress/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace anchor::compress {

namespace {

/// Nearest centroid index in a sorted codebook (branchless binary search on
/// the midpoints would also work; lower_bound keeps it obvious).
std::size_t nearest(const std::vector<float>& codebook, float v) {
  const auto it = std::lower_bound(codebook.begin(), codebook.end(), v);
  if (it == codebook.begin()) return 0;
  if (it == codebook.end()) return codebook.size() - 1;
  const std::size_t hi = static_cast<std::size_t>(it - codebook.begin());
  const std::size_t lo = hi - 1;
  return (v - codebook[lo]) <= (codebook[hi] - v) ? lo : hi;
}

/// Deterministic quantile-spread initialization: centroids at the k evenly
/// spaced quantiles of the data. For 1-D Lloyd this both converges fast and
/// removes init randomness between the two embeddings of a pair.
std::vector<float> quantile_init(std::vector<float> sorted, std::size_t k) {
  std::vector<float> centroids(k);
  const std::size_t n = sorted.size();
  for (std::size_t i = 0; i < k; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(k);
    const std::size_t idx = std::min(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
    centroids[i] = sorted[idx];
  }
  // Collapse duplicates (heavy ties at 0 for sparse-ish matrices) by nudging
  // upward one representable step; Lloyd will re-spread them.
  for (std::size_t i = 1; i < k; ++i) {
    if (centroids[i] <= centroids[i - 1]) {
      centroids[i] = std::nextafter(centroids[i - 1],
                                    std::numeric_limits<float>::max());
    }
  }
  return centroids;
}

}  // namespace

KmeansResult kmeans_quantize(const embed::Embedding& input,
                             const KmeansConfig& config) {
  ANCHOR_CHECK_GT(config.bits, 0);
  ANCHOR_CHECK_LE(config.bits, 32);
  KmeansResult result;
  if (config.bits >= 32) {
    result.embedding = input;
    return result;
  }
  const std::size_t k = std::size_t{1} << config.bits;
  ANCHOR_CHECK_GT(input.data.size(), 0u);

  std::vector<float> codebook;
  if (!config.codebook_override.empty()) {
    ANCHOR_CHECK_EQ(config.codebook_override.size(), k);
    codebook = config.codebook_override;
    ANCHOR_CHECK_MSG(
        std::is_sorted(codebook.begin(), codebook.end()),
        "codebook_override must be sorted ascending");
  } else {
    std::vector<float> sorted = input.data;
    std::sort(sorted.begin(), sorted.end());
    codebook = quantile_init(std::move(sorted), k);

    // 1-D Lloyd: assign each entry to its nearest centroid, recenter.
    double prev_distortion = std::numeric_limits<double>::max();
    std::vector<double> sums(k);
    std::vector<std::size_t> counts(k);
    for (std::size_t iter = 0; iter < config.max_iters; ++iter) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), std::size_t{0});
      double distortion = 0.0;
      for (const float v : input.data) {
        const std::size_t c = nearest(codebook, v);
        sums[c] += v;
        ++counts[c];
        const double d = static_cast<double>(v) - codebook[c];
        distortion += d * d;
      }
      distortion /= static_cast<double>(input.data.size());
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] > 0) {
          codebook[c] = static_cast<float>(sums[c] /
                                           static_cast<double>(counts[c]));
        }
      }
      std::sort(codebook.begin(), codebook.end());
      if (prev_distortion - distortion <
          config.tol * std::max(prev_distortion, 1e-30)) {
        break;
      }
      prev_distortion = distortion;
    }
  }

  result.embedding = embed::Embedding(input.vocab_size, input.dim);
  double distortion = 0.0;
  for (std::size_t i = 0; i < input.data.size(); ++i) {
    const float snapped = codebook[nearest(codebook, input.data[i])];
    result.embedding.data[i] = snapped;
    const double d = static_cast<double>(input.data[i]) - snapped;
    distortion += d * d;
  }
  result.distortion = distortion / static_cast<double>(input.data.size());
  result.codebook = std::move(codebook);
  return result;
}

}  // namespace anchor::compress
