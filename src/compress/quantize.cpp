#include "compress/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace anchor::compress {

namespace {

/// Snaps x to the 2^bits-level uniform grid on [-clip, clip].
/// `jitter` ∈ [0,1) implements stochastic rounding (0.5 = deterministic).
float snap(float x, float clip, int bits, float jitter) {
  return dequantize_code(quantize_code(x, clip, bits, jitter), clip, bits);
}

double quantization_mse(const std::vector<float>& values, float clip,
                        int bits) {
  double acc = 0.0;
  for (const float x : values) {
    const double err = static_cast<double>(x) - snap(x, clip, bits, 0.5f);
    acc += err * err;
  }
  return acc / static_cast<double>(values.size());
}

}  // namespace

float optimal_clip_threshold(const std::vector<float>& values, int bits) {
  ANCHOR_CHECK(!values.empty());
  ANCHOR_CHECK_GE(bits, 1);
  float max_abs = 0.0f;
  for (const float x : values) max_abs = std::max(max_abs, std::abs(x));
  if (max_abs == 0.0f) return 1.0f;  // all-zero input; any grid is exact
  if (bits >= 16) return max_abs;

  // Subsample for the threshold scan: MSE estimates stabilize quickly and
  // the full matrix can be large.
  constexpr std::size_t kMaxSample = 65536;
  std::vector<float> sample;
  if (values.size() > kMaxSample) {
    const std::size_t stride = values.size() / kMaxSample;
    sample.reserve(kMaxSample + 1);
    for (std::size_t i = 0; i < values.size(); i += stride) {
      sample.push_back(values[i]);
    }
  } else {
    sample = values;
  }

  float best_clip = max_abs;
  double best_mse = quantization_mse(sample, max_abs, bits);
  constexpr int kSteps = 40;
  for (int s = 2; s < kSteps; ++s) {
    const float c = max_abs * static_cast<float>(s) / kSteps;
    const double mse = quantization_mse(sample, c, bits);
    if (mse < best_mse) {
      best_mse = mse;
      best_clip = c;
    }
  }
  return best_clip;
}

QuantizeResult uniform_quantize(const embed::Embedding& input,
                                const QuantizeConfig& config) {
  ANCHOR_CHECK(config.bits == 1 || config.bits == 2 || config.bits == 4 ||
               config.bits == 8 || config.bits == 16 || config.bits == 32);
  QuantizeResult result;
  if (config.bits == 32) {
    result.embedding = input;
    result.clip = 0.0f;
    return result;
  }

  const float clip = config.clip_override > 0.0f
                         ? config.clip_override
                         : optimal_clip_threshold(input.data, config.bits);
  result.clip = clip;
  result.embedding = embed::Embedding(input.vocab_size, input.dim);

  if (config.rounding == Rounding::kDeterministic) {
    for (std::size_t i = 0; i < input.data.size(); ++i) {
      result.embedding.data[i] = snap(input.data[i], clip, config.bits, 0.5f);
    }
  } else {
    Rng rng(config.stochastic_seed);
    for (std::size_t i = 0; i < input.data.size(); ++i) {
      result.embedding.data[i] =
          snap(input.data[i], clip, config.bits,
               static_cast<float>(rng.uniform()));
    }
  }
  return result;
}

}  // namespace anchor::compress
