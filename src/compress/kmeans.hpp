// Scalar k-means quantization of embedding matrices (Andrews, 2016).
//
// The paper's §2.3 cites k-means compression as the more complex technique
// that uniform quantization matches on downstream *quality* (May et al.,
// 2019); this module lets the benches ask the analogous *stability*
// question. Every entry of the matrix is replaced by the nearest of 2^b
// codebook values learned by 1-D Lloyd iterations, so each entry costs b
// bits plus a shared 2^b-float codebook.
//
// Mirroring the uniform quantizer's shared-clip-threshold protocol
// (Appendix C.2), a Wiki'18 embedding can reuse its Wiki'17 partner's
// codebook via `codebook_override`, removing the codebook itself as a
// source of disagreement.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"

namespace anchor::compress {

struct KmeansConfig {
  int bits = 4;                  // 2^bits centroids; 32 = passthrough
  std::size_t max_iters = 60;    // Lloyd iterations
  double tol = 1e-7;             // stop when relative distortion change < tol
  std::uint64_t seed = 1;        // centroid init (k-means++ style spread)
  /// When non-empty, skip codebook learning and assign to these centroids.
  std::vector<float> codebook_override;
};

struct KmeansResult {
  embed::Embedding embedding;   // entries snapped to the learned centroids
  std::vector<float> codebook;  // 2^bits centroid values, sorted ascending
  double distortion = 0.0;      // mean squared quantization error
};

/// Learns (or reuses) a 1-D codebook over all matrix entries and snaps every
/// entry to its nearest centroid. bits=32 returns the input unchanged.
KmeansResult kmeans_quantize(const embed::Embedding& input,
                             const KmeansConfig& config);

}  // namespace anchor::compress
