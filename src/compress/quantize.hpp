// Uniform quantization of embedding matrices (May et al., 2019 "smallfry"
// style), as used throughout the paper's precision axis.
//
// Each entry is clipped to [-c, c] and rounded to one of 2^b equally spaced
// values, so it is representable in b bits. Two details matter for the
// *stability* experiments (Appendix C.2) and are faithfully reproduced:
//   1. rounding is deterministic (midpoint rule), and
//   2. the clipping threshold is computed once from the first embedding of a
//      pair and reused for the second, removing a gratuitous source of
//      disagreement between the Wiki'17 and Wiki'18 compressions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "embed/embedding.hpp"

namespace anchor::compress {

/// Rounding mode; the paper uses deterministic rounding (stochastic is kept
/// for the ablation bench).
enum class Rounding { kDeterministic, kStochastic };

/// Clipping threshold minimizing the quantization MSE for `bits`-bit uniform
/// quantization of `values`, found by scanning candidate thresholds between
/// 5% and 100% of max|x|. For bits ≥ 16 clipping is unnecessary and max|x|
/// is returned directly.
float optimal_clip_threshold(const std::vector<float>& values, int bits);

/// Code index of `x` on the 2^bits-level uniform grid over [-clip, clip].
/// `jitter` ∈ [0,1) selects the rounding (0.5 = deterministic midpoint).
/// This pair is the single definition of the grid — uniform_quantize and
/// the serving layer's packed snapshots both go through it, so they can
/// never desynchronize. Inline: both sit on per-element hot loops.
/// NaN inputs quantize as 0.0 (the float→int cast would otherwise be UB);
/// infinities clamp to ±clip.
inline std::uint32_t quantize_code(float x, float clip, int bits,
                                   float jitter = 0.5f) {
  if (std::isnan(x)) x = 0.0f;
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const float delta = (2.0f * clip) / levels;
  float t = (std::clamp(x, -clip, clip) + clip) / delta;
  t = std::floor(t + jitter);
  t = std::clamp(t, 0.0f, levels);
  return static_cast<std::uint32_t>(t);
}

/// Grid value of a code produced by quantize_code.
inline float dequantize_code(std::uint32_t code, float clip, int bits) {
  const auto levels = static_cast<float>((1u << bits) - 1u);
  const float delta = (2.0f * clip) / levels;
  return -clip + static_cast<float>(code) * delta;
}

struct QuantizeConfig {
  int bits = 8;  // b ∈ {1, 2, 4, 8, 16, 32}; 32 = full precision passthrough
  Rounding rounding = Rounding::kDeterministic;
  /// When > 0, use this clip threshold instead of computing one — this is
  /// how a Wiki'18 embedding reuses its Wiki'17 partner's threshold.
  float clip_override = 0.0f;
  std::uint64_t stochastic_seed = 1;  // only used for Rounding::kStochastic
};

struct QuantizeResult {
  embed::Embedding embedding;  // values snapped to the 2^b-level grid
  float clip = 0.0f;           // threshold actually used
};

/// Quantizes every entry of `input` to `config.bits` bits. b=32 returns the
/// input unchanged (full precision), matching the paper's convention.
QuantizeResult uniform_quantize(const embed::Embedding& input,
                                const QuantizeConfig& config);

/// Memory footprint in bits per word for a (dimension, precision) pair —
/// the x-axis of the paper's Figures 2 and 3.
inline std::size_t bits_per_word(std::size_t dim, int bits) {
  return dim * static_cast<std::size_t>(bits);
}

}  // namespace anchor::compress
