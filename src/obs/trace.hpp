// Cross-process request tracing for the serving fleet.
//
// A TraceContext is 17 bytes — trace id, span id, flags — carried in the
// optional wire-frame extension of protocol v3 (net/PROTOCOL.md), so one
// sampled lookup can be followed client → router → backend → batcher →
// LookupService. Each component brackets its stage with monotonic
// (steady_clock) timestamps and records a SpanRecord into the
// process-wide Tracer's lock-free span ring; the request originator
// calls finish_request(), which — when the request exceeded the
// configured threshold — appends one JSONL line with every local span of
// the trace to the slow-request log. Timestamps are comparable across
// processes on one machine (CLOCK_MONOTONIC); cross-machine spans share
// the trace id but not a clock.
//
// Recording discipline matches the rest of the stats plane: the hot path
// is an atomic cursor fetch_add plus relaxed stores behind a per-slot
// sequence number (odd = being written); readers discard slots whose
// sequence changed under them, so a racing scan drops a span instead of
// tearing one. Nothing on the record path takes a lock — the slow-log
// append (mutex + file I/O) happens only on the threshold-triggered
// path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace anchor::obs {

struct TraceContext {
  static constexpr std::uint8_t kSampled = 0x1;

  std::uint64_t trace_id = 0;  // 0 = no trace attached
  std::uint64_t span_id = 0;
  std::uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }
  bool sampled() const { return valid() && (flags & kSampled) != 0; }

  /// Child context for a sub-request (same trace, fresh span id) — what a
  /// router stamps on the frames it fans out to backends.
  TraceContext child() const;
  /// Fresh root context with random ids.
  static TraceContext start(bool sampled = true);
};

/// Stage identifiers: where in the pipeline a span was measured. Values
/// are stable (they appear in slow logs and tests).
enum class TraceStage : std::uint8_t {
  kClientSend = 1,    // client: frame sent → reply decoded
  kRouterRecv = 2,    // router: request frame parsed → reply written
  kRouterScatter = 3, // router: first backend send → last backend reply
  kShardRtt = 4,      // router: one backend's send → its replies (detail=shard)
  kRouterMerge = 5,   // router: scatter done → merged result ready
  kBackendRecv = 6,   // backend: request frame parsed → reply written
  kBatchQueue = 7,    // backend: request enqueued → its batch started
  kBatchExec = 8,     // backend: batch started → results scattered
  kDequantize = 9,    // backend: cache/dequantize pass inside the lookup
  kTopkSearch = 10,   // backend: IVF-PQ probe+ADC+re-rank inside a TOPK
};

const char* trace_stage_name(TraceStage stage);

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  TraceStage stage = TraceStage::kClientSend;
  std::uint32_t detail = 0;  // stage-specific (shard index for kShardRtt)
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

struct TracerConfig {
  /// finish_request() appends to the slow log when the request took at
  /// least this long. 0 = log every sampled request (tests, debugging).
  double slow_threshold_us = 10000.0;
  /// JSONL slow-request log path; empty disables the slow log entirely.
  std::string slow_log_path;
  /// Size-capped rotation: when an append would push the log past this
  /// many bytes, the file is renamed to "<path>.1" (replacing any
  /// previous .1) and a fresh log starts — at most 2× the cap on disk,
  /// the classic logrotate-keep-one scheme. 0 disables rotation
  /// (unbounded growth, the pre-rotation behavior). Default 16 MiB.
  std::uint64_t slow_log_max_bytes = 16ull << 20;
};

class Tracer {
 public:
  /// Process-wide instance: one ring per process means an in-process
  /// cluster (tests) sees client, router, and backend spans of a trace
  /// in one place, and a daemon's slow log covers all its stages.
  static Tracer& instance();

  void configure(TracerConfig config);
  TracerConfig config() const;

  /// Records one completed span. No-op unless ctx.sampled(). Lock-free.
  void record(const TraceContext& ctx, TraceStage stage,
              std::uint64_t start_ns, std::uint64_t end_ns,
              std::uint32_t detail = 0);

  /// Request-completion hook for the originating layer (client roundtrip,
  /// daemon handler): triggers the slow-log append when the total
  /// duration crosses the threshold.
  void finish_request(const TraceContext& ctx, std::uint64_t start_ns,
                      std::uint64_t end_ns);

  /// Every stable span of `trace_id` currently in the ring, sorted by
  /// start time. Spans overwritten by ring wrap (or mid-write during the
  /// scan) are absent — this is an observability surface, not an audit
  /// log.
  std::vector<SpanRecord> spans_for(std::uint64_t trace_id) const;

  std::uint64_t spans_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded span (tests isolate themselves with this).
  void clear();

  static std::uint64_t now_ns();

  /// Thread-local context bridge: the batcher executes coalesced batches
  /// on worker threads where the request's TraceContext is not in any
  /// argument list (LookupService's API predates tracing). Scope installs
  /// a context for the duration of a batch execution; LookupService reads
  /// current() to attribute its dequantize span.
  static const TraceContext& current();
  class Scope {
   public:
    explicit Scope(const TraceContext& ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceContext saved_;
  };

 private:
  static constexpr std::size_t kRing = 4096;

  /// Seqlock-protected slot: seq odd while a writer owns it; readers
  /// accept a slot only when seq is even and unchanged across the field
  /// reads. Fields are atomics (relaxed) so a doomed racy read is merely
  /// discarded, never undefined.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<std::uint32_t> stage_detail{0};  // stage | detail << 8
  };

  void append_slow_log(const TraceContext& ctx, double total_us,
                       std::uint64_t start_ns);

  std::array<Slot, kRing> ring_{};
  std::atomic<std::uint64_t> cursor_{0};
  mutable std::mutex mu_;  // config + slow-log appends (cold path only)
  TracerConfig config_;
};

}  // namespace anchor::obs
