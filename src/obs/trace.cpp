#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace anchor::obs {

namespace {

/// Per-thread splitmix64 stream seeded from the monotonic clock and the
/// thread id — ids need to be unique-in-practice across the fleet, not
/// cryptographic.
std::uint64_t next_id() {
  static std::atomic<std::uint64_t> salt{0x9e3779b97f4a7c15ull};
  thread_local std::uint64_t state =
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1) ^
      salt.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;  // 0 means "no trace"
}

thread_local TraceContext g_current{};

}  // namespace

TraceContext TraceContext::child() const {
  TraceContext c = *this;
  c.span_id = next_id();
  return c;
}

TraceContext TraceContext::start(bool sampled) {
  TraceContext c;
  c.trace_id = next_id();
  c.span_id = next_id();
  c.flags = sampled ? kSampled : 0;
  return c;
}

const char* trace_stage_name(TraceStage stage) {
  switch (stage) {
    case TraceStage::kClientSend:
      return "client_send";
    case TraceStage::kRouterRecv:
      return "router_recv";
    case TraceStage::kRouterScatter:
      return "router_scatter";
    case TraceStage::kShardRtt:
      return "shard_rtt";
    case TraceStage::kRouterMerge:
      return "router_merge";
    case TraceStage::kBackendRecv:
      return "backend_recv";
    case TraceStage::kBatchQueue:
      return "batch_queue";
    case TraceStage::kBatchExec:
      return "batch_exec";
    case TraceStage::kDequantize:
      return "dequantize";
    case TraceStage::kTopkSearch:
      return "topk";
  }
  return "unknown";
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::configure(TracerConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
}

TracerConfig Tracer::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

void Tracer::record(const TraceContext& ctx, TraceStage stage,
                    std::uint64_t start_ns, std::uint64_t end_ns,
                    std::uint32_t detail) {
  if (!ctx.sampled()) return;
  Slot& slot = ring_[cursor_.fetch_add(1, std::memory_order_relaxed) % kRing];
  // Seqlock write: odd seq marks the slot in flux; the release store of
  // the even seq publishes the fields. A reader that raced us sees a
  // changed (or odd) seq and discards the slot.
  const std::uint64_t seq =
      slot.seq.load(std::memory_order_relaxed) | 1ull;
  slot.seq.store(seq, std::memory_order_release);
  slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  slot.span_id.store(ctx.span_id, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.stage_detail.store(
      static_cast<std::uint32_t>(stage) | (detail << 8),
      std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::spans_for(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (const Slot& slot : ring_) {
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // never written / in flux
    SpanRecord r;
    r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    r.span_id = slot.span_id.load(std::memory_order_relaxed);
    r.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    r.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    const std::uint32_t sd = slot.stage_detail.load(std::memory_order_relaxed);
    r.stage = static_cast<TraceStage>(sd & 0xff);
    r.detail = sd >> 8;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    if (r.trace_id == trace_id) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;  // enclosing span first
            });
  return out;
}

void Tracer::clear() {
  for (Slot& slot : ring_) {
    const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed) | 1ull;
    slot.seq.store(seq, std::memory_order_release);
    slot.trace_id.store(0, std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_release);
  }
}

void Tracer::finish_request(const TraceContext& ctx, std::uint64_t start_ns,
                            std::uint64_t end_ns) {
  if (!ctx.sampled()) return;
  const double total_us =
      static_cast<double>(end_ns - start_ns) / 1000.0;
  TracerConfig cfg = config();
  if (cfg.slow_log_path.empty() || total_us < cfg.slow_threshold_us) return;
  append_slow_log(ctx, total_us, start_ns);
}

void Tracer::append_slow_log(const TraceContext& ctx, double total_us,
                             std::uint64_t start_ns) {
  // Span collection happens outside the mutex; only the file append is
  // serialized.
  const std::vector<SpanRecord> spans = spans_for(ctx.trace_id);
  std::ostringstream line;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(ctx.trace_id));
  line << "{\"trace\":\"" << hex << "\",\"total_us\":" << total_us
       << ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) line << ',';
    first = false;
    // Starts are reported relative to the request start so a reader can
    // eyeball the waterfall without 19-digit timestamps.
    const double rel_us =
        (static_cast<double>(s.start_ns) - static_cast<double>(start_ns)) /
        1000.0;
    const double dur_us =
        static_cast<double>(s.end_ns - s.start_ns) / 1000.0;
    line << "{\"stage\":\"" << trace_stage_name(s.stage) << "\"";
    if (s.stage == TraceStage::kShardRtt) {
      line << ",\"shard\":" << s.detail;
    }
    line << ",\"start_us\":" << rel_us << ",\"dur_us\":" << dur_us << "}";
  }
  line << "]}\n";
  std::lock_guard<std::mutex> lock(mu_);
  // Size-capped rotation under the same mutex as the append: if THIS
  // line would push the file past the cap, the current log becomes
  // "<path>.1" (dropping any older .1) and the line starts a fresh file
  // — a line is never split across the boundary.
  if (config_.slow_log_max_bytes > 0) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(config_.slow_log_path, ec);
    if (!ec && size + line.str().size() > config_.slow_log_max_bytes) {
      std::filesystem::rename(config_.slow_log_path,
                              config_.slow_log_path + ".1", ec);
      // A failed rename (e.g. cross-device) falls through to appending —
      // losing rotation beats losing the slow request.
    }
  }
  std::ofstream out(config_.slow_log_path, std::ios::app);
  if (out) out << line.str();
}

const TraceContext& Tracer::current() { return g_current; }

Tracer::Scope::Scope(const TraceContext& ctx) : saved_(g_current) {
  g_current = ctx;
}

Tracer::Scope::~Scope() { g_current = saved_; }

}  // namespace anchor::obs
