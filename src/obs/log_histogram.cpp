#include "obs/log_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace anchor::obs {

std::uint64_t LogHistogram::to_units(double value) {
  if (!(value > 0.0)) return 0;  // negatives and NaN clamp to 0
  const double scaled = value * kUnitScale;
  if (scaled >= static_cast<double>(kMaxUnits)) return kMaxUnits;
  return static_cast<std::uint64_t>(std::llround(scaled));
}

std::size_t LogHistogram::bucket_index(std::uint64_t units) {
  if (units > kMaxUnits) units = kMaxUnits;
  if (units < kSubBuckets) return static_cast<std::size_t>(units);
  const int msb = std::bit_width(units) - 1;  // ≥ kSubBucketBits
  const int shift = msb - kSubBucketBits;
  const std::uint64_t sub = (units >> shift) - kSubBuckets;
  return (static_cast<std::size_t>(shift + 1) << kSubBucketBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LogHistogram::bucket_lower_units(std::size_t idx) {
  if (idx < kSubBuckets) return idx;
  const int shift = static_cast<int>(idx >> kSubBucketBits) - 1;
  const std::uint64_t sub = idx & (kSubBuckets - 1);
  return (kSubBuckets + sub) << shift;
}

std::uint64_t LogHistogram::bucket_width_units(std::size_t idx) {
  if (idx < kSubBuckets) return 1;
  const int shift = static_cast<int>(idx >> kSubBucketBits) - 1;
  return 1ull << shift;
}

void LogHistogram::record_units(std::uint64_t units, std::uint64_t n) {
  buckets_[bucket_index(units)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_units_.fetch_add(units * n, std::memory_order_relaxed);
  // min/max via CAS loops: contention is rare (only genuinely new
  // extremes retry) and the loop is bounded by monotonicity.
  std::uint64_t cur = min_units_.load(std::memory_order_relaxed);
  while (units < cur && !min_units_.compare_exchange_weak(
                            cur, units, std::memory_order_relaxed)) {
  }
  cur = max_units_.load(std::memory_order_relaxed);
  while (units > cur && !max_units_.compare_exchange_weak(
                            cur, units, std::memory_order_relaxed)) {
  }
}

void LogHistogram::merge_from(const LogHistogram& other) {
  merge_from(other.snapshot());
}

void LogHistogram::merge_from(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    if (other.counts[i] != 0) {
      buckets_[i].fetch_add(other.counts[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_units_.fetch_add(other.sum_units, std::memory_order_relaxed);
  std::uint64_t cur = min_units_.load(std::memory_order_relaxed);
  while (other.min_units < cur &&
         !min_units_.compare_exchange_weak(cur, other.min_units,
                                           std::memory_order_relaxed)) {
  }
  cur = max_units_.load(std::memory_order_relaxed);
  while (other.max_units > cur &&
         !max_units_.compare_exchange_weak(cur, other.max_units,
                                           std::memory_order_relaxed)) {
  }
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_units_.store(0, std::memory_order_relaxed);
  min_units_.store(~0ull, std::memory_order_relaxed);
  max_units_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kNumBuckets);
  // Buckets first, count last: the sum of the copied buckets is then at
  // least the copied count, so quantile() — which walks buckets until it
  // covers rank ceil(q·count) — always terminates inside the loop.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += s.counts[i];
  }
  s.sum_units = sum_units_.load(std::memory_order_relaxed);
  const std::uint64_t mn = min_units_.load(std::memory_order_relaxed);
  s.min_units = mn == ~0ull ? 0 : mn;
  s.max_units = max_units_.load(std::memory_order_relaxed);
  s.count = std::min(total, count_.load(std::memory_order_relaxed));
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0 && other.counts.empty()) return;
  if (counts.empty()) {
    counts.resize(LogHistogram::kNumBuckets);
  }
  for (std::size_t i = 0; i < other.counts.size() && i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  if (count == 0) {
    min_units = other.min_units;
    max_units = other.max_units;
  } else if (other.count > 0) {
    min_units = std::min(min_units, other.min_units);
    max_units = std::max(max_units, other.max_units);
  }
  count += other.count;
  sum_units += other.sum_units;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, matching the old sorted-sample estimator: the target is
  // the ceil(q·n)-th smallest recorded value; we return the lower bound
  // of its bucket (see the error contract in the header).
  const double exact = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      return LogHistogram::from_units(LogHistogram::bucket_lower_units(i));
    }
  }
  // Snapshot raced with concurrent records (count ahead of buckets):
  // report the max as the best available tail estimate.
  return LogHistogram::from_units(max_units);
}

double HistogramSnapshot::mean() const {
  if (count == 0) return 0.0;
  return LogHistogram::from_units(sum_units) / static_cast<double>(count);
}

double HistogramSnapshot::min() const {
  return count == 0 ? 0.0 : LogHistogram::from_units(min_units);
}

double HistogramSnapshot::max() const {
  return count == 0 ? 0.0 : LogHistogram::from_units(max_units);
}

}  // namespace anchor::obs
