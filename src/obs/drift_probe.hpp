// Continuous instability probing: the paper's drift measures as live
// gauges instead of gate-time-only numbers.
//
// The deployment gate and the canary compute top-k agreement and per-key
// displacement exactly once per rollout attempt. Between rollouts the
// fleet is blind: a bad hot-swap, a corrupted snapshot reload, or plain
// embedding drift shows up only as downstream symptom. A DriftProbe pins
// a REFERENCE panel at construction — a fixed sample of probe rows from
// the then-live snapshot, L2-normalized in its own space, with each
// probe's own-space top-k neighbors precomputed — and then, every
// `--drift-interval` (or on demand), scores the CURRENT live snapshot
// against it:
//
//   • topk_agreement — mean |reference top-k ∩ live top-k| / k, each side
//     computed within its own panel's geometry, so pure rotations score
//     1.0 (rotation-invariant, same measure the canary uses online).
//   • displacement — 1 − cos(reference row, live row) per probe,
//     clamped to [0, 2]; the p95 and mean are exported.
//
// Gauges (continuous versions of the paper's instability measures):
//   anchor_drift_topk_agreement, anchor_drift_displacement_p95,
//   anchor_drift_displacement_mean, anchor_drift_probe_runs_total.
//
// The probe is deliberately read-only and out-of-band: it copies probe
// rows through EmbeddingSnapshot::copy_rows like any lookup, touches no
// serving state, and runs on its own background thread.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "la/matrix.hpp"
#include "obs/metrics.hpp"
#include "serve/embedding_store.hpp"

namespace anchor::obs {

struct DriftProbeConfig {
  std::size_t probe_rows = 256;
  std::size_t knn_k = 5;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Background sampling period; 0 disables the thread (run_once only).
  std::uint64_t interval_ms = 0;
};

/// One probe run's scores.
struct DriftSample {
  std::string live_version;
  std::uint64_t probes = 0;  // probe rows scored (in both vocabularies)
  double topk_agreement = 1.0;
  double displacement_mean = 0.0;
  double displacement_p95 = 0.0;
  bool same_snapshot = false;  // live is still the pinned reference
};

class DriftProbe {
 public:
  /// Pins the store's live snapshot as the reference and builds its
  /// normalized probe panel. The store must outlive the probe.
  DriftProbe(const serve::EmbeddingStore& store, DriftProbeConfig config);
  ~DriftProbe();
  DriftProbe(const DriftProbe&) = delete;
  DriftProbe& operator=(const DriftProbe&) = delete;

  /// Scores the current live snapshot against the reference panel and
  /// (when metrics are registered) updates the gauges. Thread-safe.
  DriftSample run_once();

  /// Registers the drift gauges; subsequent runs update them.
  void register_metrics(MetricsRegistry& registry);

  /// Starts the background sampler (no-op when interval_ms == 0).
  void start();
  void stop();

  DriftSample last() const;
  const std::string& reference_version() const { return reference_version_; }
  const DriftProbeConfig& config() const { return config_; }

 private:
  /// Own-space top-k of panel row `self` within `panel` (self excluded),
  /// deterministic tie-break. False when the row has zero norm.
  bool panel_topk(const la::Matrix& panel, std::size_t self,
                  std::vector<int>* out) const;
  void loop();

  const serve::EmbeddingStore& store_;
  DriftProbeConfig config_;

  serve::SnapshotPtr reference_;
  std::string reference_version_;
  std::vector<std::size_t> probe_ids_;
  la::Matrix reference_panel_;               // normalized probe rows
  std::vector<std::uint8_t> reference_valid_;  // nonzero-norm probe rows
  std::vector<std::vector<int>> reference_topk_;

  Gauge* agreement_gauge_ = nullptr;
  Gauge* displacement_p95_gauge_ = nullptr;
  Gauge* displacement_mean_gauge_ = nullptr;
  Counter* runs_counter_ = nullptr;

  mutable std::mutex mu_;  // last_ + serialized run_once
  DriftSample last_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace anchor::obs
