#include "obs/drift_probe.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "la/kernels.hpp"
#include "util/rng.hpp"

namespace anchor::obs {

namespace {

/// Copies the probe rows of `snap` into an L2-normalized panel. Probe ids
/// outside the snapshot's vocabulary (a shrunk candidate) stay zero rows
/// flagged invalid; zero-norm in-vocabulary rows likewise.
void build_panel(const serve::EmbeddingSnapshot& snap,
                 const std::vector<std::size_t>& ids, la::Matrix* panel,
                 std::vector<std::uint8_t>* valid) {
  const std::size_t dim = snap.dim();
  *panel = la::Matrix(ids.size(), dim);
  valid->assign(ids.size(), 0);
  std::vector<float> buf(dim);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= snap.vocab_size()) continue;
    snap.copy_rows(&ids[i], 1, buf.data());
    double* dst = panel->row(i);
    for (std::size_t j = 0; j < dim; ++j) dst[j] = buf[j];
    (*valid)[i] = la::kernels::l2_normalize(dst, dim) != 0.0 ? 1 : 0;
  }
}

}  // namespace

DriftProbe::DriftProbe(const serve::EmbeddingStore& store,
                       DriftProbeConfig config)
    : store_(store), config_(config) {
  if (config_.knn_k == 0) config_.knn_k = 1;
  reference_ = store_.live();
  if (!reference_) return;  // empty store: probe stays inert
  reference_version_ = reference_->version();

  const std::size_t vocab = reference_->vocab_size();
  std::size_t m = std::min(config_.probe_rows, vocab);
  if (m == 0) m = 1;
  probe_ids_.reserve(m);
  if (m == vocab) {
    for (std::size_t i = 0; i < m; ++i) probe_ids_.push_back(i);
  } else {
    // Same fixed-sample discipline as the canary probe panel: one seeded
    // draw at pin time, stable for the probe's lifetime.
    Rng rng(config_.seed ^ 0x6472696674703935ull);
    std::unordered_set<std::size_t> seen;
    while (probe_ids_.size() < m) {
      const std::size_t id = rng.index(vocab);
      if (seen.insert(id).second) probe_ids_.push_back(id);
    }
  }

  build_panel(*reference_, probe_ids_, &reference_panel_, &reference_valid_);
  reference_topk_.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    if (reference_valid_[p]) {
      panel_topk(reference_panel_, p, &reference_topk_[p]);
    }
  }
}

DriftProbe::~DriftProbe() { stop(); }

bool DriftProbe::panel_topk(const la::Matrix& panel, std::size_t self,
                            std::vector<int>* out) const {
  const std::size_t m = panel.rows();
  const std::size_t dim = panel.cols();
  thread_local std::vector<double> scores;
  thread_local std::vector<int> idx;
  scores.resize(m);
  la::kernels::matvec_rowmajor(panel.data(), m, dim, panel.row(self),
                               scores.data());
  idx.clear();
  idx.reserve(m);
  for (std::size_t p = 0; p < m; ++p) {
    if (p != self) idx.push_back(static_cast<int>(p));
  }
  const std::size_t k = std::min(config_.knn_k, idx.size());
  if (k == 0) return false;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                    idx.end(), [&](int a, int b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  out->assign(idx.begin(), idx.begin() + static_cast<long>(k));
  return true;
}

DriftSample DriftProbe::run_once() {
  std::lock_guard<std::mutex> lock(mu_);
  DriftSample sample;
  const serve::SnapshotPtr live = store_.live();
  if (!reference_ || !live) {
    last_ = sample;
    return sample;
  }
  sample.live_version = live->version();
  sample.same_snapshot = live.get() == reference_.get();

  if (live->dim() != reference_->dim()) {
    // A dimensionality change is maximal drift by definition — nothing
    // is commensurable across the swap.
    sample.topk_agreement = 0.0;
    sample.displacement_mean = 2.0;
    sample.displacement_p95 = 2.0;
  } else {
    la::Matrix live_panel;
    std::vector<std::uint8_t> live_valid;
    build_panel(*live, probe_ids_, &live_panel, &live_valid);

    const std::size_t dim = reference_->dim();
    double agreement_sum = 0.0;
    std::uint64_t agreement_n = 0;
    std::vector<double> displacements;
    displacements.reserve(probe_ids_.size());
    std::vector<int> live_topk;
    for (std::size_t p = 0; p < probe_ids_.size(); ++p) {
      if (!reference_valid_[p] || !live_valid[p]) continue;
      // Own-space top-k overlap: each side's neighbors computed within
      // its own panel geometry, so pure rotations agree perfectly.
      if (panel_topk(live_panel, p, &live_topk) &&
          !reference_topk_[p].empty()) {
        std::size_t overlap = 0;
        for (const int r : reference_topk_[p]) {
          if (std::find(live_topk.begin(), live_topk.end(), r) !=
              live_topk.end()) {
            ++overlap;
          }
        }
        const std::size_t k =
            std::max(reference_topk_[p].size(), live_topk.size());
        agreement_sum +=
            static_cast<double>(overlap) / static_cast<double>(k);
        ++agreement_n;
      }
      // Rows are unit-norm, so the dot IS the cosine.
      const double cos = la::kernels::dot(reference_panel_.row(p),
                                          live_panel.row(p), dim);
      displacements.push_back(std::clamp(1.0 - cos, 0.0, 2.0));
    }
    sample.probes = displacements.size();
    sample.topk_agreement =
        agreement_n != 0 ? agreement_sum / static_cast<double>(agreement_n)
                         : 0.0;
    if (!displacements.empty()) {
      double sum = 0.0;
      for (const double d : displacements) sum += d;
      sample.displacement_mean =
          sum / static_cast<double>(displacements.size());
      std::sort(displacements.begin(), displacements.end());
      const std::size_t rank = static_cast<std::size_t>(
          std::ceil(0.95 * static_cast<double>(displacements.size())));
      sample.displacement_p95 =
          displacements[std::min(rank == 0 ? 0 : rank - 1,
                                 displacements.size() - 1)];
    }
  }

  last_ = sample;
  if (runs_counter_ != nullptr) runs_counter_->inc();
  if (agreement_gauge_ != nullptr) {
    agreement_gauge_->set(sample.topk_agreement);
  }
  if (displacement_p95_gauge_ != nullptr) {
    displacement_p95_gauge_->set(sample.displacement_p95);
  }
  if (displacement_mean_gauge_ != nullptr) {
    displacement_mean_gauge_->set(sample.displacement_mean);
  }
  return sample;
}

void DriftProbe::register_metrics(MetricsRegistry& registry) {
  agreement_gauge_ = &registry.gauge(
      "anchor_drift_topk_agreement",
      "Mean own-space top-k agreement of the live snapshot against the "
      "pinned reference panel (1 = no drift)");
  displacement_p95_gauge_ = &registry.gauge(
      "anchor_drift_displacement_p95",
      "p95 per-key cosine displacement (1 - cos) of live probe rows vs "
      "the pinned reference panel");
  displacement_mean_gauge_ = &registry.gauge(
      "anchor_drift_displacement_mean",
      "Mean per-key cosine displacement of live probe rows vs the pinned "
      "reference panel");
  runs_counter_ = &registry.counter(
      "anchor_drift_probe_runs_total", "Completed drift-probe runs");
}

void DriftProbe::start() {
  if (config_.interval_ms == 0 || !reference_ || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void DriftProbe::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DriftProbe::loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock,
                          std::chrono::milliseconds(config_.interval_ms),
                          [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    run_once();
    lock.lock();
  }
}

DriftSample DriftProbe::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

}  // namespace anchor::obs
