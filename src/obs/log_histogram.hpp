// Mergeable log-bucketed latency histograms (the HdrHistogram idea).
//
// Percentile aggregation across processes is the problem this solves: a
// percentile of percentiles is not a percentile, so the router maxing
// per-shard p99s (the pre-v3 kStats contract) systematically misreports
// the fleet tail. A LogHistogram records values into fixed
// logarithmically-spaced buckets whose COUNTS merge exactly — integer
// adds, commutative and associative, bit-identical regardless of merge
// order — so any number of shard histograms collapse into one fleet
// histogram whose quantiles are as good as a single process recording
// all the traffic.
//
// Bucketing (all integer math, deterministic across platforms): a value
// v ≥ 0 is scaled to integer units u = round(v · 2^kFracBits), then
// indexed HdrHistogram-style — u < 32 maps to exact unit buckets, larger
// u to 32 linear sub-buckets per power-of-two octave:
//
//   idx(u) = u                                          u < 32
//   idx(u) = ((msb(u) − 4) << 5) + ((u >> (msb(u) − 5)) − 32)   otherwise
//
// so each bucket spans at most 1/32 = 3.125% of its lower bound. That is
// the documented quantile error: quantile() returns the lower bound of
// the bucket holding the target rank, hence the true quantile q satisfies
//
//   quantile(p) ≤ q < quantile(p) · (1 + kMaxRelativeError)
//
// (plus the fixed ±2^-(kFracBits+1) unit-scale rounding of record()).
// Many round test values — any v whose scaled units have ≤ 6 significant
// bits, e.g. 3, 6, 7, 20, 50, 200 µs — sit exactly on a bucket lower
// bound and round-trip exactly.
//
// Concurrency: record() is lock-free — one relaxed fetch_add on the
// bucket plus relaxed aggregate updates; there is no mutex anywhere on
// the write path. snapshot() reads the buckets relaxed, so a snapshot
// taken during concurrent recording is "consistent enough" (counts may
// trail the aggregates by in-flight records), same discipline as
// ServeStats counters. reset() zeroes buckets in place; records racing a
// reset land on either side of it — attribution, not corruption.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace anchor::obs {

/// Plain-value copy of a LogHistogram: what snapshots, wire frames, and
/// merges operate on. Counts are dense (kNumBuckets entries) or empty
/// (all-zero); the wire codec in net/wire.cpp transmits them sparsely.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_units = 0;  // Σ recorded values, in 2^-kFracBits units
  std::uint64_t min_units = 0;  // valid only when count > 0
  std::uint64_t max_units = 0;
  std::vector<std::uint64_t> counts;  // per-bucket; empty == all zero

  /// Exact merge: integer adds per bucket. Commutative and associative —
  /// merging shard snapshots in any order yields bit-identical counts.
  void merge(const HistogramSnapshot& other);

  /// Deterministic quantile estimate: the lower bound of the bucket
  /// containing nearest-rank ceil(q·count). The true quantile lies in
  /// [returned, returned · (1 + kMaxRelativeError)). 0 when empty.
  double quantile(double q) const;
  double mean() const;
  double min() const;
  double max() const;
};

class LogHistogram {
 public:
  /// Sub-unit resolution of record(): values are scaled by 2^kFracBits
  /// before bucketing, so sub-unit measurements (µs fractions, agreement
  /// scores in [0,1]) still resolve into distinct buckets.
  static constexpr int kFracBits = 10;
  static constexpr double kUnitScale = double{1 << kFracBits};
  /// Sub-buckets per power-of-two octave; bounds the bucket width.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Worst-case relative width of any log bucket — the documented
  /// quantile error bound.
  static constexpr double kMaxRelativeError =
      1.0 / static_cast<double>(kSubBuckets);
  /// Units clamp: values above this saturate into the top bucket. 2^62
  /// units ≈ 4.5·10^15 at kFracBits = 10 — beyond any latency we record.
  static constexpr std::uint64_t kMaxUnits = (1ull << 62) - 1;
  /// Highest index + 1 for a kMaxUnits value (msb 61 → shift 56).
  static constexpr std::size_t kNumBuckets =
      ((61 - kSubBucketBits + 1) + 1) << kSubBucketBits;  // 1856

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one value (negative values clamp to 0). Lock-free.
  void record(double value) { record_units(to_units(value), 1); }
  /// Records `n` occurrences of one value in a single pass.
  void record_n(double value, std::uint64_t n) {
    if (n != 0) record_units(to_units(value), n);
  }

  /// Adds every bucket of `other` into this histogram (exact merge).
  void merge_from(const LogHistogram& other);
  void merge_from(const HistogramSnapshot& other);

  /// Zeroes every bucket and aggregate. Concurrent records may land on
  /// either side of the sweep (attribution is fuzzy, like the ServeStats
  /// counter reset), but no pre-reset count survives it.
  void reset();

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Convenience: snapshot().quantile(q).
  double quantile(double q) const { return snapshot().quantile(q); }

  HistogramSnapshot snapshot() const;

  // ---- bucket math (exposed for tests and the wire codec) --------------
  static std::uint64_t to_units(double value);
  static double from_units(std::uint64_t units) {
    return static_cast<double>(units) / kUnitScale;
  }
  static std::size_t bucket_index(std::uint64_t units);
  /// Smallest units value mapping to bucket `idx`.
  static std::uint64_t bucket_lower_units(std::size_t idx);
  /// Width of bucket `idx` in units (1 for the linear region).
  static std::uint64_t bucket_width_units(std::size_t idx);

 private:
  void record_units(std::uint64_t units, std::uint64_t n);

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_units_{0};
  std::atomic<std::uint64_t> min_units_{~0ull};
  std::atomic<std::uint64_t> max_units_{0};
};

}  // namespace anchor::obs
