#include "obs/windowed.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace anchor::obs {

namespace {

/// A slice overlaps the trailing window [now − window, now] when its end
/// lies past the window start. Edge slices count fully: windowed rates
/// resolve to one slice width by design.
bool overlaps_window(const WindowSlice& s, std::uint64_t slice_us,
                     std::uint64_t now_us, std::uint64_t window_us) {
  const std::uint64_t window_begin =
      now_us >= window_us ? now_us - window_us : 0;
  const std::uint64_t slice_end = (s.epoch + 1) * slice_us;
  return slice_end > window_begin;
}

}  // namespace

void WindowedSnapshot::merge(const WindowedSnapshot& other) {
  if (slice_us == 0) slice_us = other.slice_us;
  if (other.slice_us != 0 && other.slice_us != slice_us) {
    throw std::runtime_error(
        "WindowedSnapshot::merge: slice width mismatch — recorders must "
        "agree on the bucketing to be mergeable");
  }
  now_us = std::max(now_us, other.now_us);
  std::vector<WindowSlice> merged;
  merged.reserve(slices.size() + other.slices.size());
  std::size_t i = 0, j = 0;
  while (i < slices.size() || j < other.slices.size()) {
    if (j >= other.slices.size() ||
        (i < slices.size() && slices[i].epoch < other.slices[j].epoch)) {
      merged.push_back(std::move(slices[i++]));
    } else if (i >= slices.size() ||
               other.slices[j].epoch < slices[i].epoch) {
      merged.push_back(other.slices[j++]);
    } else {
      WindowSlice s = std::move(slices[i++]);
      const WindowSlice& o = other.slices[j++];
      s.requests += o.requests;
      s.errors += o.errors;
      s.latency.merge(o.latency);
      merged.push_back(std::move(s));
    }
  }
  slices = std::move(merged);
}

std::uint64_t WindowedSnapshot::requests_in(std::uint64_t window_us) const {
  std::uint64_t n = 0;
  for (const WindowSlice& s : slices) {
    if (overlaps_window(s, slice_us, now_us, window_us)) n += s.requests;
  }
  return n;
}

std::uint64_t WindowedSnapshot::errors_in(std::uint64_t window_us) const {
  std::uint64_t n = 0;
  for (const WindowSlice& s : slices) {
    if (overlaps_window(s, slice_us, now_us, window_us)) n += s.errors;
  }
  return n;
}

double WindowedSnapshot::qps(std::uint64_t window_us) const {
  if (window_us == 0) return 0.0;
  return static_cast<double>(requests_in(window_us)) /
         (static_cast<double>(window_us) / 1e6);
}

double WindowedSnapshot::error_rate(std::uint64_t window_us) const {
  const std::uint64_t req = requests_in(window_us);
  if (req == 0) return 0.0;
  return static_cast<double>(errors_in(window_us)) /
         static_cast<double>(req);
}

HistogramSnapshot WindowedSnapshot::latency_in(
    std::uint64_t window_us) const {
  HistogramSnapshot out;
  for (const WindowSlice& s : slices) {
    if (overlaps_window(s, slice_us, now_us, window_us)) {
      out.merge(s.latency);
    }
  }
  return out;
}

std::uint64_t count_over(const HistogramSnapshot& h, double threshold) {
  if (h.counts.empty()) return 0;
  const std::uint64_t units = LogHistogram::to_units(threshold);
  const std::size_t idx = LogHistogram::bucket_index(units);
  std::uint64_t n = 0;
  for (std::size_t b = idx; b < h.counts.size(); ++b) n += h.counts[b];
  return n;
}

WindowedStats::WindowedStats(const WindowedConfig& config) : config_(config) {
  if (config_.slice_us == 0) config_.slice_us = 1;
  if (config_.num_slices < 2) config_.num_slices = 2;
  slots_.reserve(config_.num_slices);
  for (std::size_t i = 0; i < config_.num_slices; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

std::uint64_t WindowedStats::wall_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void WindowedStats::record_many_at(std::uint64_t now_us, double latency_us,
                                   std::uint64_t requests,
                                   std::uint64_t errors) {
  if (requests == 0 && errors == 0) return;
  const std::uint64_t epoch = now_us / config_.slice_us;
  Slot& slot = *slots_[epoch % slots_.size()];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    // Slice boundary: reset the slot for the new epoch. Double-checked
    // under the rotate mutex so exactly one rotator sweeps; a record
    // racing the sweep lands on one side of the boundary (one slice of
    // attribution fuzz, like LogHistogram::reset).
    std::lock_guard<std::mutex> lock(slot.rotate_mu);
    if (slot.epoch.load(std::memory_order_relaxed) != epoch) {
      slot.latency.reset();
      slot.requests.store(0, std::memory_order_relaxed);
      slot.errors.store(0, std::memory_order_relaxed);
      slot.epoch.store(epoch, std::memory_order_release);
    }
  }
  slot.requests.fetch_add(requests, std::memory_order_relaxed);
  slot.errors.fetch_add(errors, std::memory_order_relaxed);
  if (latency_us >= 0.0) {
    slot.latency.record_n(latency_us, requests != 0 ? requests : 1);
  }
}

WindowedSnapshot WindowedStats::snapshot_at(std::uint64_t now_us) const {
  WindowedSnapshot out;
  out.slice_us = config_.slice_us;
  out.now_us = now_us;
  const std::uint64_t cur = now_us / config_.slice_us;
  const std::uint64_t n = slots_.size();
  const std::uint64_t min_epoch = cur >= n - 1 ? cur - (n - 1) : 0;
  for (const auto& sp : slots_) {
    const Slot& slot = *sp;
    const std::uint64_t e = slot.epoch.load(std::memory_order_acquire);
    if (e == kEmptyEpoch || e < min_epoch || e > cur) continue;
    WindowSlice s;
    s.epoch = e;
    s.requests = slot.requests.load(std::memory_order_relaxed);
    s.errors = slot.errors.load(std::memory_order_relaxed);
    s.latency = slot.latency.snapshot();
    if (s.requests == 0 && s.errors == 0 && s.latency.count == 0) continue;
    out.slices.push_back(std::move(s));
  }
  std::sort(out.slices.begin(), out.slices.end(),
            [](const WindowSlice& a, const WindowSlice& b) {
              return a.epoch < b.epoch;
            });
  return out;
}

SloState SloMonitor::evaluate(const WindowedSnapshot& w) const {
  SloState st;
  if (config_.error_budget <= 0.0) return st;
  const auto burn = [&](std::uint64_t window_us) {
    const std::uint64_t req = w.requests_in(window_us);
    if (req == 0) return 0.0;
    std::uint64_t bad = w.errors_in(window_us);
    if (config_.p99_target_us > 0.0) {
      bad += count_over(w.latency_in(window_us), config_.p99_target_us);
    }
    if (bad > req) bad = req;
    return (static_cast<double>(bad) / static_cast<double>(req)) /
           config_.error_budget;
  };
  st.short_burn = burn(config_.short_window_us);
  st.long_burn = burn(config_.long_window_us);
  // Both windows must burn: the short window makes the alert responsive,
  // the long window keeps one spike from paging.
  const double floor_burn = std::min(st.short_burn, st.long_burn);
  if (floor_burn >= config_.page_burn) {
    st.alert = 2;
  } else if (floor_burn >= config_.warn_burn) {
    st.alert = 1;
  }
  return st;
}

}  // namespace anchor::obs
