#include "obs/heavy_hitters.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace anchor::obs {

namespace {

/// splitmix64 finalizer — full-avalanche stripe hash so sequential ids
/// (the common key space) spread across stripes instead of striding.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Canonical entry order: count desc, key asc — deterministic, so merged
/// snapshots are bit-identical regardless of merge order.
bool canonical_less(const HeavyHitter& a, const HeavyHitter& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

std::uint64_t wall_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---- SketchSnapshot ------------------------------------------------------

void SketchSnapshot::merge(const SketchSnapshot& other) {
  total += other.total;
  if (capacity == 0 || (other.capacity != 0 && other.capacity < capacity)) {
    capacity = other.capacity;
  }
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(entries.size() + other.entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    index.emplace(entries[i].key, i);
  }
  for (const HeavyHitter& e : other.entries) {
    const auto it = index.find(e.key);
    if (it == index.end()) {
      index.emplace(e.key, entries.size());
      entries.push_back(e);
    } else {
      entries[it->second].count += e.count;
      entries[it->second].error += e.error;
    }
  }
  std::sort(entries.begin(), entries.end(), canonical_less);
}

std::vector<HeavyHitter> SketchSnapshot::top(std::size_t k) const {
  const std::size_t n = std::min(k, entries.size());
  return std::vector<HeavyHitter>(entries.begin(),
                                  entries.begin() + static_cast<long>(n));
}

// ---- SpaceSavingSketch ---------------------------------------------------

SpaceSavingSketch::SpaceSavingSketch(Config config) {
  if (config.stripes == 0) config.stripes = 1;
  if (config.capacity < config.stripes) config.capacity = config.stripes;
  stripe_capacity_ = config.capacity / config.stripes;
  stripes_.reserve(config.stripes);
  for (std::size_t i = 0; i < config.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    stripes_.back()->entries.reserve(stripe_capacity_);
  }
}

void SpaceSavingSketch::offer(std::uint64_t key, std::uint64_t n) {
  if (n == 0) return;
  Stripe& stripe = *stripes_[mix64(key) % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.total += n;
  const auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    stripe.entries[it->second].count += n;
    return;
  }
  if (stripe.entries.size() < stripe_capacity_) {
    stripe.index.emplace(key, stripe.entries.size());
    stripe.entries.push_back(HeavyHitter{key, n, 0});
    return;
  }
  // Full: evict the minimum-count entry (smallest key breaks ties, so
  // eviction is deterministic) and inherit its count as the error bound —
  // the Space-Saving replacement rule.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < stripe.entries.size(); ++i) {
    const HeavyHitter& e = stripe.entries[i];
    const HeavyHitter& v = stripe.entries[victim];
    if (e.count < v.count || (e.count == v.count && e.key < v.key)) {
      victim = i;
    }
  }
  HeavyHitter& slot = stripe.entries[victim];
  stripe.index.erase(slot.key);
  stripe.index.emplace(key, victim);
  slot.error = slot.count;
  slot.count += n;
  slot.key = key;
}

SketchSnapshot SpaceSavingSketch::snapshot() const {
  SketchSnapshot out;
  out.capacity = stripe_capacity_ * stripes_.size();
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    out.total += sp->total;
    out.entries.insert(out.entries.end(), sp->entries.begin(),
                       sp->entries.end());
  }
  std::sort(out.entries.begin(), out.entries.end(), canonical_less);
  return out;
}

void SpaceSavingSketch::reset() {
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    sp->index.clear();
    sp->entries.clear();
    sp->total = 0;
  }
}

// ---- HeatMapSnapshot -----------------------------------------------------

void HeatMapSnapshot::merge(const HeatMapSnapshot& other) {
  total += other.total;
  elapsed_us = std::max(elapsed_us, other.elapsed_us);
  for (const HeatRange& r : other.ranges) {
    const auto it = std::lower_bound(
        ranges.begin(), ranges.end(), r,
        [](const HeatRange& a, const HeatRange& b) {
          if (a.row_begin != b.row_begin) return a.row_begin < b.row_begin;
          return a.row_end < b.row_end;
        });
    if (it != ranges.end() && it->row_begin == r.row_begin &&
        it->row_end == r.row_end) {
      if (it->buckets.size() != r.buckets.size()) {
        throw std::runtime_error(
            "HeatMapSnapshot::merge: bucket fanout mismatch for range");
      }
      for (std::size_t i = 0; i < r.buckets.size(); ++i) {
        it->buckets[i] += r.buckets[i];
      }
    } else {
      ranges.insert(it, r);
    }
  }
}

void HeatMapSnapshot::shift_rows(std::uint64_t shift) {
  for (HeatRange& r : ranges) {
    r.row_begin += shift;
    r.row_end += shift;
  }
}

std::uint64_t HeatMapSnapshot::range_total(std::uint64_t row) const {
  for (const HeatRange& r : ranges) {
    if (row >= r.row_begin && row < r.row_end) {
      std::uint64_t n = 0;
      for (const std::uint64_t b : r.buckets) n += b;
      return n;
    }
  }
  return 0;
}

// ---- RangeHeatMap --------------------------------------------------------

RangeHeatMap::RangeHeatMap(Config config) : config_(config) {
  if (config_.buckets == 0) config_.buckets = 1;
  if (config_.row_end < config_.row_begin) {
    config_.row_end = config_.row_begin;
  }
  // More bins than rows just aliases empty bins; clamp for tidy output.
  const std::uint64_t span = config_.row_end - config_.row_begin;
  if (span != 0 && config_.buckets > span) {
    config_.buckets = static_cast<std::size_t>(span);
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(config_.buckets);
  for (std::size_t i = 0; i < config_.buckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  start_us_ = wall_micros();
}

void RangeHeatMap::record(std::uint64_t id, std::uint64_t n) {
  if (n == 0) return;
  const std::uint64_t span = config_.row_end - config_.row_begin;
  std::size_t bucket = 0;
  if (span != 0) {
    const std::uint64_t off =
        id <= config_.row_begin ? 0
        : id >= config_.row_end ? span - 1
                                : id - config_.row_begin;
    // off/span in [0,1) scaled to the fanout; 128-bit-free since off and
    // buckets are both far below 2^32 in practice — guard anyway by
    // dividing first when the product could overflow.
    bucket = static_cast<std::size_t>(
        off > (~0ull / config_.buckets)
            ? (off / span) * config_.buckets
            : off * config_.buckets / span);
    if (bucket >= config_.buckets) bucket = config_.buckets - 1;
  }
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  total_.fetch_add(n, std::memory_order_relaxed);
}

HeatMapSnapshot RangeHeatMap::snapshot() const {
  return snapshot_at(wall_micros());
}

HeatMapSnapshot RangeHeatMap::snapshot_at(std::uint64_t now_us) const {
  HeatMapSnapshot out;
  out.total = total_.load(std::memory_order_relaxed);
  out.elapsed_us = now_us >= start_us_ ? now_us - start_us_ : 0;
  HeatRange r;
  r.row_begin = config_.row_begin;
  r.row_end = config_.row_end;
  r.buckets.resize(config_.buckets);
  for (std::size_t i = 0; i < config_.buckets; ++i) {
    r.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.ranges.push_back(std::move(r));
  return out;
}

}  // namespace anchor::obs
