#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace anchor::obs {

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  CounterEntry& e = counters_[name];
  if (!e.counter) e.counter = std::make_unique<Counter>();
  if (e.help.empty()) e.help = help;
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  GaugeEntry& e = gauges_[name];
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  if (e.help.empty()) e.help = help;
  return *e.gauge;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramEntry& e = histograms_[name];
  if (!e.owned) {
    e.owned = std::make_unique<LogHistogram>();
    LogHistogram* raw = e.owned.get();
    e.source = [raw] { return raw->snapshot(); };
  }
  if (e.help.empty()) e.help = help;
  return *e.owned;
}

void MetricsRegistry::register_histogram(
    const std::string& name, const std::string& help,
    std::function<HistogramSnapshot()> source) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramEntry& e = histograms_[name];
  e.owned.reset();
  e.source = std::move(source);
  if (e.help.empty()) e.help = help;
}

void MetricsRegistry::on_collect(std::function<void(MetricsRegistry&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsReport MetricsRegistry::snapshot() {
  // Collectors run WITHOUT the registry lock held: they call back into
  // counter()/gauge() (create-or-get takes the lock per call), so holding
  // it across them would self-deadlock.
  std::vector<std::function<void(MetricsRegistry&)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn(*this);

  MetricsReport report;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : counters_) {
    MetricValue v;
    v.kind = MetricKind::kCounter;
    v.name = name;
    v.help = e.help;
    v.counter = e.counter->value();
    report.metrics.push_back(std::move(v));
  }
  for (const auto& [name, e] : gauges_) {
    MetricValue v;
    v.kind = MetricKind::kGauge;
    v.name = name;
    v.help = e.help;
    v.gauge = e.gauge->value();
    report.metrics.push_back(std::move(v));
  }
  for (const auto& [name, e] : histograms_) {
    MetricValue v;
    v.kind = MetricKind::kHistogram;
    v.name = name;
    v.help = e.help;
    if (e.source) v.hist = e.source();
    report.metrics.push_back(std::move(v));
  }
  std::sort(report.metrics.begin(), report.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return report;
}

namespace {

/// Metric name without any trailing literal label set — what the # TYPE
/// and # HELP lines must carry.
std::string base_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splits "name{labels}" so histogram series can splice "le" into an
/// existing label set.
void split_labels(const std::string& name, std::string* base,
                  std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Drop the surrounding braces; keep the inner "k=\"v\",..." text.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

void append_number(std::ostringstream& os, double v) {
  // %.17g keeps doubles round-trippable; trim the common integer case.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    os << static_cast<std::int64_t>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
  }
}

/// HELP-line escaping per the exposition spec: backslash and newline
/// only (quotes are legal in help text).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_prometheus(const MetricsReport& report) {
  std::ostringstream os;
  for (const MetricValue& m : report.metrics) {
    const std::string base = base_name(m.name);
    if (!m.help.empty()) {
      os << "# HELP " << base << ' ' << escape_help(m.help) << '\n';
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << base << " counter\n";
        os << m.name << ' ' << m.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << base << " gauge\n";
        os << m.name << ' ';
        append_number(os, m.gauge);
        os << '\n';
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << base << " histogram\n";
        std::string name_base, labels;
        split_labels(m.name, &name_base, &labels);
        const std::string prefix =
            labels.empty() ? name_base + "_bucket{le=\""
                           : name_base + "_bucket{" + labels + ",le=\"";
        // Cumulative counts at power-of-two bounds: every 2^k lies on a
        // LogHistogram bucket boundary, so each series value is the
        // exact count of samples strictly below the bound (values
        // exactly on a bound count into the next series).
        std::uint64_t cum = 0;
        std::size_t next_bucket = 0;
        const auto flush_below = [&](std::size_t bucket_limit) {
          for (; next_bucket < bucket_limit &&
                 next_bucket < m.hist.counts.size();
               ++next_bucket) {
            cum += m.hist.counts[next_bucket];
          }
        };
        for (int k = 0; k <= 20; ++k) {
          const std::uint64_t bound_units = 1ull
                                            << (k + LogHistogram::kFracBits);
          flush_below(LogHistogram::bucket_index(bound_units));
          os << prefix << (1ull << k) << "\"} " << cum << '\n';
        }
        flush_below(m.hist.counts.size());
        os << prefix << "+Inf\"} " << cum << '\n';
        os << name_base << (labels.empty() ? "_sum " : "_sum{" + labels + "} ");
        append_number(os, LogHistogram::from_units(m.hist.sum_units));
        os << '\n';
        os << name_base
           << (labels.empty() ? "_count " : "_count{" + labels + "} ")
           << m.hist.count << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string to_text(const MetricsReport& report) {
  std::ostringstream os;
  for (const MetricValue& m : report.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " = " << m.counter << '\n';
        break;
      case MetricKind::kGauge:
        os << m.name << " = ";
        append_number(os, m.gauge);
        os << '\n';
        break;
      case MetricKind::kHistogram:
        os << m.name << ": count=" << m.hist.count;
        if (m.hist.count > 0) {
          os << " mean=";
          append_number(os, m.hist.mean());
          os << " p50=";
          append_number(os, m.hist.quantile(0.50));
          os << " p99=";
          append_number(os, m.hist.quantile(0.99));
          os << " max=";
          append_number(os, m.hist.max());
        }
        os << '\n';
        break;
    }
  }
  return os.str();
}

}  // namespace anchor::obs
