// Unified metrics plane: named counters, gauges, and histograms with
// Prometheus text exposition.
//
// A MetricsRegistry is the one surface a daemon exports its numbers
// through: serve/net/cluster components register (or bridge) their
// metrics here, and every consumer — the METRICS RPC, the --metrics
// Prometheus endpoint, `anchor_cli metrics` — renders the same
// MetricsReport. Two registration styles:
//
//   • owned: counter()/gauge()/histogram() create (or return) a metric
//     the registry owns; components keep the reference and update it on
//     their hot path (atomics, no locks).
//   • bridged: sources whose numbers already live elsewhere (ServeStats,
//     canary state) register an on_collect callback that copies the
//     current values into registry metrics at snapshot time, or a
//     histogram provider that snapshots a live LogHistogram. No double
//     counting, no hot-path changes in the source.
//
// Naming follows Prometheus conventions (snake_case, counters end in
// _total, unit suffixes like _us); a name may carry a literal label set
// ("anchor_live_version_info{version=\"v2\"}") which the text exposition
// passes through.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log_histogram.hpp"

namespace anchor::obs {

/// Monotonically increasing value. set() exists for bridged sources whose
/// authoritative counter lives elsewhere.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One metric's point-in-time value — the wire/exposition unit.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  std::string help;
  std::uint64_t counter = 0;           // kCounter
  double gauge = 0.0;                  // kGauge
  HistogramSnapshot hist;              // kHistogram
};

struct MetricsReport {
  std::vector<MetricValue> metrics;  // sorted by name
};

/// Prometheus text exposition (format version 0.0.4). Histograms render
/// cumulative _bucket{le="..."} series at power-of-two bounds (which
/// align exactly with LogHistogram bucket boundaries), plus _sum/_count.
/// HELP text is escaped per the spec (backslash and newline).
std::string to_prometheus(const MetricsReport& report);
/// Human-readable dump for `anchor_cli metrics`.
std::string to_text(const MetricsReport& report);

/// Escapes a string for use INSIDE a Prometheus label value: backslash →
/// \\, double-quote → \", newline → \n (exposition-format spec). Every
/// label value built from external input (snapshot versions, encodings,
/// replica addresses) must pass through this, or a hostile version string
/// like `ev"} 1` would forge arbitrary series in the scrape.
std::string escape_label_value(const std::string& value);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  LogHistogram& histogram(const std::string& name,
                          const std::string& help = "");

  /// Bridged histogram: `source` is called at snapshot time (e.g. wraps
  /// ServeStats::latency_histogram). Replaces any previous registration
  /// under the same name.
  void register_histogram(const std::string& name, const std::string& help,
                          std::function<HistogramSnapshot()> source);

  /// Snapshot-time hook for bridged counters/gauges: runs before the
  /// metric values are read, so the callback can set() them from their
  /// authoritative source.
  void on_collect(std::function<void(MetricsRegistry&)> fn);

  /// Runs the collect hooks and renders every metric, sorted by name.
  MetricsReport snapshot();

 private:
  struct HistogramEntry {
    std::string help;
    std::unique_ptr<LogHistogram> owned;          // null when bridged
    std::function<HistogramSnapshot()> source;
  };
  struct CounterEntry {
    std::string help;
    std::unique_ptr<Counter> counter;
  };
  struct GaugeEntry {
    std::string help;
    std::unique_ptr<Gauge> gauge;
  };

  mutable std::mutex mu_;  // registration + snapshot; hot paths touch
                           // only the returned references
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
  std::vector<std::function<void(MetricsRegistry&)>> collectors_;
};

}  // namespace anchor::obs
