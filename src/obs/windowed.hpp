// Windowed (rolling-rate) telemetry: a rotating ring of time-bucketed
// LogHistogram+counter slices, plus an SLO monitor on top.
//
// The PR-6 metrics plane exports process-lifetime cumulative counters and
// histograms — fine for "how much since boot", useless for "how fast right
// now". A WindowedStats keeps the last `num_slices` × `slice_us` of
// traffic in a ring of slices (default 16 × 5 s = 80 s of history), each
// slice a LogHistogram plus request/error counters keyed by its absolute
// epoch (floor(unix_micros / slice_us)). Rolling 10 s / 1 m QPS, error
// rate, and latency quantiles fall out of summing the slices that overlap
// the trailing window.
//
// Mergeability is the same contract as HistogramSnapshot: slices are keyed
// by absolute wall-clock epoch (system_clock, so epochs line up across
// processes), and merging snapshots adds same-epoch slices bucket-by-
// bucket — integer adds, commutative and associative, bit-identical to a
// single recorder that saw all the traffic. The router merges backend
// windowed snapshots exactly like it merges latency histograms.
//
// Concurrency: record() is lock-free in the steady state (relaxed
// fetch_adds into the current slice); a slice boundary crossing takes that
// slot's rotate mutex once per slice_us to reset it for the new epoch.
// Records racing a rotation land on one side or the other of the slice
// boundary — attribution fuzz of at most one slice, never corruption,
// same discipline as LogHistogram::reset().
//
// The SloMonitor implements multi-window burn-rate alerting: a request
// violates the SLO when it errored or took longer than the p99 target;
// the burn rate over a window is (violating fraction) / error_budget.
// With budget 0.01 and target T, "burn ≤ 1" is exactly "p99 ≤ T". The
// alert state requires BOTH the short and the long window to burn (the
// classic page-on-fast-AND-slow rule, scaled to the ring's 80 s horizon)
// so a single hiccup spike does not page and a sustained breach does.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/log_histogram.hpp"

namespace anchor::obs {

/// One time bucket of a windowed snapshot, keyed by absolute epoch
/// (floor(unix_micros / slice_us)).
struct WindowSlice {
  std::uint64_t epoch = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  HistogramSnapshot latency;
};

/// Plain-value copy of a WindowedStats ring: what the HEAT RPC carries and
/// the router merges. Slices are sorted by epoch ascending.
struct WindowedSnapshot {
  std::uint64_t slice_us = 0;
  std::uint64_t now_us = 0;  // capture time; trailing windows end here
  std::vector<WindowSlice> slices;

  /// Exact merge: same-epoch slices add counters and histogram buckets
  /// (commutative, associative, bit-identical in any merge order);
  /// now_us takes the max. Throws on slice-width mismatch — recorders
  /// must agree on the bucketing to be mergeable, like histogram bucket
  /// layouts.
  void merge(const WindowedSnapshot& other);

  /// Trailing-window aggregates over [now_us − window_us, now_us]. A
  /// slice counts when it overlaps the window at all, so the edge slice
  /// contributes fully — resolution is one slice width, documented.
  std::uint64_t requests_in(std::uint64_t window_us) const;
  std::uint64_t errors_in(std::uint64_t window_us) const;
  double qps(std::uint64_t window_us) const;
  double error_rate(std::uint64_t window_us) const;  // errors / requests
  HistogramSnapshot latency_in(std::uint64_t window_us) const;
};

/// Count of recorded values ≥ `threshold`, to log-bucket resolution: whole
/// buckets at or above the threshold's bucket count fully, so the result
/// can overcount by at most the threshold bucket's population (relative
/// bucket width ≤ LogHistogram::kMaxRelativeError).
std::uint64_t count_over(const HistogramSnapshot& h, double threshold);

struct WindowedConfig {
  std::uint64_t slice_us = 5'000'000;  // 5 s slices
  std::size_t num_slices = 16;         // 80 s of history
};

class WindowedStats {
 public:
  explicit WindowedStats(const WindowedConfig& config = {});
  WindowedStats(const WindowedStats&) = delete;
  WindowedStats& operator=(const WindowedStats&) = delete;

  /// Records one request. Lock-free except on a slice rotation.
  void record(double latency_us, bool error) {
    record_many_at(wall_micros(), latency_us, 1, error ? 1 : 0);
  }
  /// Records a coalesced batch: `requests` keys that shared one observed
  /// latency (the batcher's per-flush hook).
  void record_many(double latency_us, std::uint64_t requests,
                   std::uint64_t errors) {
    record_many_at(wall_micros(), latency_us, requests, errors);
  }
  /// Counts requests that carried no latency observation (the batcher's
  /// unsampled-clock fast path) — same no-fake-zeroes discipline as
  /// ServeStats::record_batch_unsampled.
  void record_unsampled(std::uint64_t requests, std::uint64_t errors) {
    record_many_at(wall_micros(), -1.0, requests, errors);
  }
  /// Deterministic-time variant for tests. A negative `latency_us` counts
  /// the requests without a latency observation.
  void record_many_at(std::uint64_t now_us, double latency_us,
                      std::uint64_t requests, std::uint64_t errors);

  WindowedSnapshot snapshot() const { return snapshot_at(wall_micros()); }
  WindowedSnapshot snapshot_at(std::uint64_t now_us) const;

  const WindowedConfig& config() const { return config_; }

  /// Unix wall-clock microseconds — wall (not steady) time so slice
  /// epochs from different processes line up for merging.
  static std::uint64_t wall_micros();

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{kEmptyEpoch};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    LogHistogram latency;
    std::mutex rotate_mu;
  };
  static constexpr std::uint64_t kEmptyEpoch = ~0ull;

  WindowedConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

struct SloConfig {
  /// Latency target: a request slower than this violates the SLO.
  /// 0 disables the latency term (errors alone burn budget).
  double p99_target_us = 0.0;
  /// Allowed violating fraction. 0.01 with a latency target T reads
  /// "p99 ≤ T": burn rate 1.0 means exactly 1% of requests violate.
  double error_budget = 0.01;
  std::uint64_t short_window_us = 10'000'000;
  std::uint64_t long_window_us = 60'000'000;
  double warn_burn = 1.0;   // alert 1 when both windows burn ≥ this
  double page_burn = 10.0;  // alert 2 when both windows burn ≥ this
};

struct SloState {
  double short_burn = 0.0;
  double long_burn = 0.0;
  int alert = 0;  // 0 = ok, 1 = warn, 2 = page — the exported gauge
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = {}) : config_(config) {}

  /// Pure function of the snapshot — no internal state, so evaluating a
  /// merged fleet snapshot is as valid as a single daemon's.
  SloState evaluate(const WindowedSnapshot& w) const;

  const SloConfig& config() const { return config_; }

 private:
  SloConfig config_;
};

}  // namespace anchor::obs
